"""Real multiprocessing backend."""

import pytest

from repro.core.config import Configuration
from repro.core.engine import Engine
from repro.core.restrictions import generate_restriction_sets
from repro.core.schedule import generate_schedules
from repro.pattern.catalog import house, triangle
from repro.runtime.parallel import measure_task_costs, parallel_count


def make_plan(pattern, iep_k=0):
    s = generate_schedules(pattern)[0]
    rs = generate_restriction_sets(pattern)[0]
    return Configuration(pattern, s, rs).compile(iep_k=iep_k)


class TestParallelCount:
    def test_matches_serial(self, er_small):
        plan = make_plan(house())
        expected = Engine(er_small, plan).count()
        res = parallel_count(er_small, plan, n_workers=2)
        assert res.count == expected
        assert res.n_workers == 2
        assert res.n_tasks > 0

    def test_single_worker_path(self, er_small):
        plan = make_plan(triangle())
        expected = Engine(er_small, plan).count()
        res = parallel_count(er_small, plan, n_workers=1)
        assert res.count == expected

    def test_iep_plan(self, er_small):
        plan = make_plan(house(), iep_k=2)
        expected = Engine(er_small, plan).count()
        assert parallel_count(er_small, plan, n_workers=2, split_depth=1).count == expected

    def test_accepts_configuration(self, er_small):
        cfg = Configuration(
            triangle(), (0, 1, 2), generate_restriction_sets(triangle())[0]
        )
        expected = Engine(er_small, cfg.compile()).count()
        assert parallel_count(er_small, cfg, n_workers=1).count == expected

    def test_rejects_garbage(self, er_small):
        with pytest.raises(TypeError):
            parallel_count(er_small, 42)


class TestMeasureTaskCosts:
    def test_costs_nonnegative_and_complete(self, er_small):
        plan = make_plan(triangle())
        costs = measure_task_costs(er_small, plan, split_depth=1)
        engine = Engine(er_small, plan)
        n_tasks = sum(1 for _ in engine.iter_prefixes(1))
        assert len(costs) == n_tasks
        assert all(c >= 0 for c in costs)

    def test_limit(self, er_small):
        plan = make_plan(triangle())
        assert len(measure_task_costs(er_small, plan, split_depth=1, limit=5)) == 5
