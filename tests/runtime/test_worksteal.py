"""Work-stealing policy unit tests."""

import pytest

from repro.runtime.worksteal import StealPolicy, VictimSelector, initial_distribution


class TestStealPolicy:
    def test_defaults(self):
        p = StealPolicy()
        assert p.should_steal(0) and p.should_steal(1)
        assert not p.should_steal(2)

    def test_batch_half(self):
        p = StealPolicy(steal_batch_fraction=0.5)
        assert p.batch_size(10) == 5
        assert p.batch_size(1) == 1  # at least one
        assert p.batch_size(0) == 0

    def test_batch_full(self):
        assert StealPolicy(steal_batch_fraction=1.0).batch_size(7) == 7

    def test_validation(self):
        with pytest.raises(ValueError):
            StealPolicy(steal_threshold=0)
        with pytest.raises(ValueError):
            StealPolicy(steal_batch_fraction=0.0)
        with pytest.raises(ValueError):
            StealPolicy(steal_batch_fraction=1.5)
        with pytest.raises(ValueError):
            StealPolicy(max_victim_probes=0)


class TestVictimSelector:
    def test_picks_nonempty_victim(self):
        sel = VictimSelector(4, seed=1)
        lengths = [0, 5, 0, 3]
        for _ in range(20):
            v = sel.pick(0, lengths)
            assert v in (1, 3)

    def test_never_picks_self(self):
        sel = VictimSelector(3, seed=2)
        lengths = [4, 4, 4]
        assert all(sel.pick(1, lengths) != 1 for _ in range(20))

    def test_none_when_all_empty(self):
        sel = VictimSelector(3, seed=3)
        assert sel.pick(0, [0, 0, 0]) is None

    def test_deterministic_stream(self):
        a = VictimSelector(5, seed=7)
        b = VictimSelector(5, seed=7)
        lengths = [1, 2, 3, 4, 5]
        assert [a.pick(0, lengths) for _ in range(10)] == [
            b.pick(0, lengths) for _ in range(10)
        ]

    def test_pick_loaded(self):
        sel = VictimSelector(4, seed=1)
        assert sel.pick_loaded(0, [9, 1, 7, 2]) == 2
        assert sel.pick_loaded(0, [9, 0, 0, 0]) is None

    def test_single_node(self):
        sel = VictimSelector(1, seed=1)
        assert sel.pick(0, [5]) is None

    def test_invalid_n(self):
        with pytest.raises(ValueError):
            VictimSelector(0)


class TestInitialDistribution:
    def test_block_covers_all(self):
        queues = initial_distribution(10, 3, mode="block")
        flat = sorted(t for q in queues for t in q)
        assert flat == list(range(10))
        sizes = [len(q) for q in queues]
        assert max(sizes) - min(sizes) <= 1

    def test_cyclic_covers_all(self):
        queues = initial_distribution(10, 4, mode="cyclic")
        flat = sorted(t for q in queues for t in q)
        assert flat == list(range(10))
        assert queues[0] == [0, 4, 8]

    def test_more_nodes_than_tasks(self):
        queues = initial_distribution(2, 5, mode="block")
        assert sum(len(q) for q in queues) == 2

    def test_unknown_mode(self):
        with pytest.raises(ValueError):
            initial_distribution(5, 2, mode="random")
