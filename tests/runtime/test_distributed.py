"""The distributed backend: exactness, scheduling properties, fallbacks.

Three pillars:

* **count invariance** — the exact count must not depend on any
  simulation/partition parameter (`n_nodes`, seed, `StealPolicy`,
  distribution mode, task granularity, inner executor); only the
  *simulated timing* may change;
* **scheduling properties** — every viable root belongs to exactly one
  task, and on uniform cost distributions the simulated makespan is
  monotone non-increasing as nodes grow;
* **capability honesty** — enumeration requests raise
  :class:`~repro.core.backend.BackendUnsupportedError` naming the
  backend, and the session layer falls back per declared capability
  flags instead of crashing.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.bruteforce import bruteforce_count
from repro.core.api import count_pattern, match_query
from repro.core.backend import BackendUnsupportedError, get_backend
from repro.core.query import MatchQuery
from repro.core.session import MatchSession, get_session
from repro.pattern.catalog import get_pattern, house, triangle
from repro.runtime.cluster import scaling_curve
from repro.runtime.distributed import (
    DEFAULT_NODE_COUNTS,
    DistributedBackend,
    distributed_count_ctx,
    make_task_counter,
)
from repro.runtime.worksteal import StealPolicy


def plan_ctx(graph, pattern, *, use_iep=False):
    """A plain context for (graph, pattern) via the session planner."""
    entry = get_session(graph).plan_for(MatchQuery(pattern, use_iep=use_iep))
    return entry.context(graph)


# ---------------------------------------------------------------------------
# count invariance
# ---------------------------------------------------------------------------
class TestCountInvariance:
    def test_matches_bruteforce(self, er_small):
        for pattern in (triangle(), house()):
            expected = bruteforce_count(er_small, pattern)
            got = count_pattern(er_small, pattern, backend="distributed")
            assert got == expected, pattern.name

    def test_invariant_under_simulation_parameters(self, er_small):
        """n_nodes / seed / StealPolicy shape the simulation, never the count."""
        ctx = plan_ctx(er_small, house())
        expected = bruteforce_count(er_small, house())
        variants = [
            dict(node_counts=(1,)),
            dict(node_counts=(3, 7, 31)),
            dict(node_counts=(1, 2), seed=0),
            dict(node_counts=(1, 2), seed=12345),
            dict(node_counts=(2,), policy=StealPolicy(steal_threshold=1,
                                                      steal_batch_fraction=0.01)),
            dict(node_counts=(2,), policy=StealPolicy(steal_threshold=8,
                                                      steal_batch_fraction=1.0,
                                                      max_victim_probes=1)),
            dict(node_counts=(4,), threads_per_node=1, steal_latency=0.0),
        ]
        for options in variants:
            report = distributed_count_ctx(ctx, **options)
            assert report.count == expected, options

    @settings(max_examples=12, deadline=None)
    @given(
        n_tasks=st.integers(min_value=1, max_value=60),
        distribution=st.sampled_from(["block", "cyclic"]),
        inner=st.sampled_from(["vectorised", "compiled", "interpreter"]),
    )
    def test_invariant_under_partitioning(self, n_tasks, distribution, inner):
        """Any task granularity x distribution x inner executor counts alike."""
        from repro.graph.generators import erdos_renyi

        graph = erdos_renyi(40, 0.25, seed=101)  # == er_small (fn-scope for hypothesis)
        ctx = plan_ctx(graph, triangle())
        report = distributed_count_ctx(
            ctx,
            n_tasks=n_tasks,
            distribution=distribution,
            inner=inner,
            node_counts=(1,),
        )
        assert report.count == 153  # pinned in the conformance goldens

    def test_iep_plan_counts_exactly(self, er_small):
        """IEP-capable inner: raw partial sums + one final division."""
        ctx = plan_ctx(er_small, house(), use_iep=True)
        assert ctx.plan.iep_k > 0
        expected = bruteforce_count(er_small, house())
        for inner in ("compiled", "interpreter"):
            report = distributed_count_ctx(ctx, node_counts=(1,), inner=inner)
            assert report.count == expected, inner
            assert report.inner_backend == inner


# ---------------------------------------------------------------------------
# scheduling properties
# ---------------------------------------------------------------------------
class TestScheduling:
    @pytest.mark.parametrize("distribution", ["block", "cyclic"])
    @pytest.mark.parametrize("n_tasks", [1, 7, 40, 1000])
    def test_every_root_executes_exactly_once(self, er_small, distribution, n_tasks):
        ctx = plan_ctx(er_small, house())
        report = distributed_count_ctx(
            ctx,
            n_tasks=n_tasks,
            distribution=distribution,
            node_counts=(1,),
            record_tasks=True,
        )
        executed = [v for task in report.task_roots for v in task]
        assert sorted(executed) == list(range(er_small.n_vertices))
        assert len(executed) == len(set(executed))  # no root runs twice
        assert report.n_tasks == len(report.task_roots) <= min(
            n_tasks, er_small.n_vertices
        )
        assert all(task for task in report.task_roots)  # no empty tasks

    def test_zero_latency_steals_deliver_immediately(self):
        """Regression: the zero-latency park must not defer a batch that
        has already arrived behind an unrelated running task."""
        from repro.runtime.cluster import ClusterSimulator, ClusterSpec

        costs = np.concatenate([np.full(16, 5e-3), np.full(48, 1e-5)])
        spec = ClusterSpec(4, threads_per_node=1, steal_latency=0.0)
        result = ClusterSimulator(spec).run(costs, distribution="block")
        assert result.steals > 0
        # Free stealing on this skew keeps the nodes nearly balanced;
        # deferred deliveries pushed efficiency well below this floor.
        assert result.efficiency > 0.6

    def test_makespan_monotone_on_uniform_costs(self):
        """More nodes never slow a uniform workload down (Fig. 12's
        near-linear regime degrades gracefully, it does not invert)."""
        for n_tasks in (7, 96, 960):
            costs = np.full(n_tasks, 1e-3)
            results = scaling_curve(
                costs, [1, 2, 4, 8, 16], threads_per_node=2, steal_latency=1e-4
            )
            makespans = [r.makespan for r in results]
            for previous, current in zip(makespans, makespans[1:]):
                assert current <= previous + 1e-12, (n_tasks, makespans)

    def test_count_only_path_skips_simulation(self, er_small):
        ctx = plan_ctx(er_small, house())
        report = distributed_count_ctx(ctx, simulate=False)
        assert report.results == ()
        assert report.speedups == ()
        assert report.count == bruteforce_count(er_small, house())
        # the backend's count() entry point takes the same shortcut
        assert get_backend("distributed").count(ctx) == report.count
        # ... and a simulate=False instance skips it on every channel
        quiet = DistributedBackend(simulate=False)
        count, rep = quiet.count_with_report(ctx)
        assert count == report.count and rep.results == ()

    def test_report_simulation_profile(self, er_small):
        ctx = plan_ctx(er_small, house())
        report = distributed_count_ctx(ctx, node_counts=(1, 2, 4))
        assert report.node_counts == (1, 2, 4)
        assert len(report.results) == len(report.makespans) == 3
        assert report.speedups[0] == pytest.approx(1.0)
        assert all(m > 0 for m in report.makespans)
        assert len(report.task_seconds) == report.n_tasks
        assert report.seconds_execute >= sum(report.task_seconds) * 0.5
        assert report.task_roots is None  # not recorded unless asked
        assert "tasks" in report.describe()

    def test_single_node_single_thread_is_serial_replay(self, er_small):
        ctx = plan_ctx(er_small, triangle())
        report = distributed_count_ctx(
            ctx, node_counts=(1,), threads_per_node=1, steal_latency=0.0,
            dispatch_overhead=0.0,
        )
        sim = report.results[0]
        assert sim.steals == 0
        assert sim.makespan == pytest.approx(sum(report.task_seconds), rel=1e-6)


# ---------------------------------------------------------------------------
# the inner-executor factory
# ---------------------------------------------------------------------------
class TestTaskCounter:
    def test_vectorised_bulk_path(self, er_small):
        ctx = plan_ctx(er_small, house())
        counter, effective = make_task_counter(ctx, "vectorised")
        assert effective == "vectorised"
        total = counter(list(range(er_small.n_vertices)))
        assert total == bruteforce_count(er_small, house())

    def test_iep_plan_falls_back_to_prefix_kernel(self, er_small):
        ctx = plan_ctx(er_small, house(), use_iep=True)
        _, effective = make_task_counter(ctx, "vectorised")
        assert effective == "compiled"

    def test_induced_mode_stays_vectorised_with_induced_counts(self, er_small):
        # The frontier engine serves induced contexts directly now; the
        # task counter must thread the mode through (a plain-semantics
        # engine here would return silently wrong partial sums).
        from repro.baselines.bruteforce import bruteforce_induced_count
        from repro.core.backend import MatchContext

        plain = plan_ctx(er_small, house())
        ctx = MatchContext(graph=er_small, plan=plain.plan, mode="induced")
        counter, effective = make_task_counter(ctx, "vectorised")
        assert effective == "vectorised"
        total = counter(list(range(er_small.n_vertices)))
        assert total == bruteforce_induced_count(er_small, house())

    def test_directed_mode_served_by_vectorised(self, er_small):
        from repro.core.directed import DirectedMatcher
        from repro.graph.digraph import random_digraph
        from repro.pattern.directed import transitive_triangle
        from repro.core.backend import MatchContext

        dg = random_digraph(20, 0.2, seed=1)
        matcher = DirectedMatcher(transitive_triangle())
        plan = matcher.plan(dg).plan
        ctx = MatchContext(graph=dg, plan=plan, mode="directed")
        counter, effective = make_task_counter(ctx, "vectorised")
        assert effective == "vectorised"
        assert counter(list(range(dg.n_vertices))) == matcher.count(dg)

    def test_partial_sums_compose(self, er_small):
        """Splitting the root set anywhere preserves the total."""
        ctx = plan_ctx(er_small, triangle())
        counter, _ = make_task_counter(ctx, "vectorised")
        whole = counter(list(range(er_small.n_vertices)))
        for cut in (1, 13, 39):
            parts = counter(list(range(cut))) + counter(
                list(range(cut, er_small.n_vertices))
            )
            assert parts == whole, cut


# ---------------------------------------------------------------------------
# other matching modes through the distributed backend
# ---------------------------------------------------------------------------
class TestOtherModes:
    def test_induced(self, er_small):
        from repro.baselines.bruteforce import bruteforce_induced_count
        from repro.core.induced import induced_count

        expected = bruteforce_induced_count(er_small, house())
        assert induced_count(er_small, house(), backend="distributed") == expected

    def test_directed(self):
        from repro.baselines.bruteforce import bruteforce_directed_count
        from repro.core.directed import DirectedMatcher
        from repro.graph.digraph import random_digraph
        from repro.pattern.directed import transitive_triangle

        dig = random_digraph(45, 0.12, seed=11)
        pattern = transitive_triangle()
        expected = bruteforce_directed_count(dig, pattern)
        assert DirectedMatcher(pattern).count(dig, backend="distributed") == expected

    def test_labeled(self):
        from repro.core.labeled import LabeledMatcher, labeled_bruteforce_count
        from repro.graph.generators import erdos_renyi
        from repro.graph.labeled import assign_random_labels
        from repro.pattern.labeled import LabeledPattern

        g = erdos_renyi(35, 0.25, seed=5)
        lg = assign_random_labels(g, 2, seed=7)
        lp = LabeledPattern(triangle(), (0, 0, 1))
        expected = labeled_bruteforce_count(lg, lp)
        assert LabeledMatcher(lp).count(lg, backend="distributed") == expected


# ---------------------------------------------------------------------------
# capability honesty and session fallbacks (regression)
# ---------------------------------------------------------------------------
class TestCapabilityFallbacks:
    def test_enumeration_raises_naming_the_backend(self, er_small):
        """An unsupported request must say *which* backend refused."""
        ctx = plan_ctx(er_small, house())
        for name in ("distributed", "compiled"):
            with pytest.raises(BackendUnsupportedError, match=name):
                get_backend(name).enumerate_embeddings(ctx)

    def test_unsupported_mode_raises_naming_the_backend(self, er_small):
        # The compiled backend serves directed DirectedPlans now; a
        # directed context carrying an undirected ExecutionPlan is the
        # remaining mismatch it must refuse by name.
        from repro.core.backend import MatchContext

        plain = plan_ctx(er_small, triangle())
        directed = MatchContext(graph=er_small, plan=plain.plan, mode="directed")
        with pytest.raises(BackendUnsupportedError, match="compiled"):
            get_backend("compiled").count(directed)

    def test_session_enumerate_falls_back_per_capabilities(self, er_small):
        """`enumerate` on counting-only backends degrades, never crashes."""
        session = MatchSession(er_small)
        reference = {
            tuple(e)
            for e in session.enumerate(MatchQuery(house()), backend="interpreter")
        }
        for name in ("distributed", "compiled", "parallel"):
            got = {
                tuple(e)
                for e in session.enumerate(MatchQuery(house()), backend=name)
            }
            assert got == reference, name

    def test_session_count_falls_back_when_plan_unsupported(self, er_small):
        """A 1-loop IEP plan has nothing to distribute: capability-driven
        fallback to the interpreter, not a crash."""
        session = MatchSession(er_small)
        query = MatchQuery(get_pattern("star-3"), use_iep=True)
        assert session.plan_for(query).plan.n_loops == 1
        result = session.count(query, backend="distributed")
        assert result.backend == "interpreter"
        assert result.distributed_report is None
        assert result.count == session.count(query, backend="interpreter").count

    def test_capability_aware_iep_resolution(self):
        """Name channel plans IEP-free (vectorised inner); an IEP-capable
        inner flips the instance's declared capability."""
        assert MatchQuery(house(), backend="distributed").resolved_use_iep is False
        iep_capable = DistributedBackend(inner="compiled")
        assert iep_capable.capabilities.iep is True
        assert MatchQuery(house(), backend=iep_capable).resolved_use_iep is True
        assert DistributedBackend().capabilities.iep is False

    def test_preference_channels_attach_report(self, er_small):
        expected = bruteforce_count(er_small, triangle())
        # call-level channel
        result = get_session(er_small).count(
            MatchQuery(triangle()), backend="distributed"
        )
        assert result.backend == "distributed"
        assert result.count == expected
        assert result.distributed_report is not None
        assert result.distributed_report.node_counts == DEFAULT_NODE_COUNTS
        # query channel (one-shot seam)
        result = match_query(er_small, MatchQuery(triangle(), backend="distributed"))
        assert result.distributed_report is not None
        # session-default channel
        session = MatchSession(er_small, backend="distributed")
        result = session.count(MatchQuery(triangle()))
        assert result.backend == "distributed"
        assert result.distributed_report is not None
        # other backends stay report-free
        plain = get_session(er_small).count(MatchQuery(triangle()), backend="compiled")
        assert plain.distributed_report is None

    def test_constructor_validation(self, er_small):
        ctx = plan_ctx(er_small, triangle())
        with pytest.raises(ValueError, match="node_counts"):
            distributed_count_ctx(ctx, node_counts=())
        with pytest.raises(ValueError, match="n_tasks"):
            distributed_count_ctx(ctx, n_tasks=0)
        with pytest.raises(ValueError, match="vectorized"):
            DistributedBackend(inner="vectorized")  # typo must not demote silently
        with pytest.raises(ValueError, match="parallel"):
            # registered, but has no per-task entry point: demoting it
            # silently would skew the measured cost profile
            DistributedBackend(inner="parallel")
        with pytest.raises(ValueError, match="n_tasks"):
            DistributedBackend(n_tasks=0)  # fails at construction, not mid-count
        with pytest.raises(ValueError, match="node_counts"):
            DistributedBackend(node_counts=())
        with pytest.raises(ValueError, match="node_counts"):
            DistributedBackend(node_counts=(4, 0))
