"""Task partitioning: prefix tasks must tile the search exactly."""

import pytest

from repro.core.config import Configuration
from repro.core.engine import Engine
from repro.core.restrictions import generate_restriction_sets
from repro.core.schedule import generate_schedules
from repro.pattern.catalog import house, triangle
from repro.runtime.tasks import (
    Task,
    choose_split_depth,
    execute_task,
    generate_tasks,
    run_partitioned,
)


def make_plan(pattern, iep_k=0):
    s = generate_schedules(pattern)[0]
    rs = generate_restriction_sets(pattern)[0]
    return Configuration(pattern, s, rs).compile(iep_k=iep_k)


class TestSplitDepth:
    def test_simple_pattern_single_loop(self):
        assert choose_split_depth(make_plan(triangle())) == 1

    def test_complex_pattern_two_loops(self):
        assert choose_split_depth(make_plan(house())) == 2

    def test_target_tasks_deepens(self, er_small):
        plan = make_plan(house())
        shallow = choose_split_depth(plan)
        deep = choose_split_depth(plan, target_tasks=10**6, graph=er_small)
        assert deep >= shallow

    def test_never_exceeds_loops(self, er_small):
        plan = make_plan(triangle())
        d = choose_split_depth(plan, target_tasks=10**9, graph=er_small)
        assert d <= plan.n_loops - 1


class TestPartitionedRun:
    def test_equals_direct_count(self, er_small):
        for pattern in (triangle(), house()):
            plan = make_plan(pattern)
            direct = Engine(er_small, plan).count()
            total, parts = run_partitioned(er_small, plan)
            assert total == direct
            assert len(parts) > 1

    def test_iep_plan_partitioned(self, er_small):
        plan = make_plan(house(), iep_k=2)
        direct = Engine(er_small, plan).count()
        total, _ = run_partitioned(er_small, plan, split_depth=1)
        assert total == direct

    def test_partial_sums_are_raw(self, er_small):
        """Task results are pre-division so they can be summed."""
        plan = make_plan(triangle())
        engine = Engine(er_small, plan)
        tasks = list(generate_tasks(engine, 1))
        total_raw = sum(execute_task(engine, t) for t in tasks)
        assert engine.finalize_count(total_raw) == engine.count()

    def test_tasks_cover_disjointly(self, er_small):
        """Every embedding is found by exactly one task: the sum over
        tasks equals the total (no double counting, no gaps)."""
        plan = make_plan(house())
        engine = Engine(er_small, plan)
        per_task = [execute_task(engine, t) for t in generate_tasks(engine, 2)]
        assert sum(per_task) == engine.count()

    def test_task_dataclass(self):
        t = Task((3, 5))
        assert t.depth == 2
        assert t.prefix == (3, 5)
