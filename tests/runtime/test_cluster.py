"""Event-driven cluster simulation: conservation, determinism, scaling shape."""

import numpy as np
import pytest

from repro.runtime.cluster import ClusterSimulator, ClusterSpec, scaling_curve
from repro.runtime.worksteal import StealPolicy


def uniform_costs(n, value=1e-3):
    return np.full(n, value)


class TestSpec:
    def test_total_threads(self):
        assert ClusterSpec(4, threads_per_node=24).total_threads == 96

    def test_validation(self):
        with pytest.raises(ValueError):
            ClusterSpec(0)
        with pytest.raises(ValueError):
            ClusterSpec(1, threads_per_node=0)


class TestSimulation:
    def test_all_work_executed(self):
        costs = uniform_costs(100)
        res = ClusterSimulator(ClusterSpec(2, threads_per_node=2)).run(costs)
        assert res.total_work == pytest.approx(costs.sum())
        assert sum(res.per_node_busy) >= costs.sum()  # includes dispatch

    def test_single_node_single_thread_is_serial(self):
        costs = uniform_costs(50, 2e-3)
        spec = ClusterSpec(1, threads_per_node=1, dispatch_overhead=0.0)
        res = ClusterSimulator(spec).run(costs)
        assert res.makespan == pytest.approx(costs.sum(), rel=1e-6)
        assert res.steals == 0

    def test_deterministic(self):
        rng = np.random.default_rng(1)
        costs = rng.exponential(1e-3, 200)
        a = ClusterSimulator(ClusterSpec(4, threads_per_node=2), seed=9).run(costs)
        b = ClusterSimulator(ClusterSpec(4, threads_per_node=2), seed=9).run(costs)
        assert a.makespan == b.makespan
        assert a.steals == b.steals

    def test_makespan_at_least_ideal_and_max_task(self):
        rng = np.random.default_rng(2)
        costs = rng.exponential(1e-3, 300)
        res = ClusterSimulator(ClusterSpec(8, threads_per_node=2)).run(costs)
        assert res.makespan >= res.ideal_time * 0.99
        assert res.makespan >= costs.max()

    def test_stealing_happens_under_imbalance(self):
        # Block distribution + skewed costs: the early nodes run out.
        costs = np.concatenate([np.full(50, 5e-3), np.full(50, 1e-5)])
        spec = ClusterSpec(4, threads_per_node=1)
        res = ClusterSimulator(spec).run(costs, distribution="block")
        assert res.steals > 0

    def test_efficiency_bounded(self):
        costs = uniform_costs(64)
        res = ClusterSimulator(ClusterSpec(2, threads_per_node=2)).run(costs)
        assert 0 < res.efficiency <= 1.0

    def test_imbalance_metric(self):
        costs = uniform_costs(40)
        res = ClusterSimulator(ClusterSpec(2, threads_per_node=2)).run(costs)
        assert res.imbalance >= 1.0

    def test_input_validation(self):
        sim = ClusterSimulator(ClusterSpec(1))
        with pytest.raises(ValueError):
            sim.run([])
        with pytest.raises(ValueError):
            sim.run([-1.0])


class TestScalingShape:
    """Figure 12's qualitative behaviour."""

    def test_speedup_with_ample_parallelism(self):
        # Many uniform tasks: near-linear until nodes * threads ~ tasks.
        costs = uniform_costs(4000, 1e-3)
        results = scaling_curve(costs, [1, 2, 4, 8], threads_per_node=4,
                                steal_latency=1e-5)
        times = [r.makespan for r in results]
        assert times[1] < times[0] * 0.65
        assert times[2] < times[1] * 0.65
        assert times[3] < times[2] * 0.7

    def test_saturation_with_few_tasks(self):
        """P2/P3 on Orkut in the paper: short runs stop scaling."""
        costs = uniform_costs(64, 1e-3)
        results = scaling_curve(costs, [1, 16, 64], threads_per_node=4)
        t1, t16, t64 = (r.makespan for r in results)
        assert t16 < t1
        # Beyond saturation, no further meaningful gain.
        assert t64 > t16 * 0.5

    def test_heavy_tail_limits_speedup(self):
        """One giant task bounds the makespan regardless of node count."""
        costs = np.concatenate([[0.5], np.full(500, 1e-4)])
        results = scaling_curve(costs, [1, 32], threads_per_node=4)
        assert results[1].makespan >= 0.5

    def test_work_stealing_beats_no_stealing_under_skew(self):
        rng = np.random.default_rng(5)
        costs = rng.pareto(1.5, 400) * 1e-4
        lazy = StealPolicy(steal_threshold=1, steal_batch_fraction=0.01)
        eager = StealPolicy(steal_threshold=4, steal_batch_fraction=0.5)
        r_lazy = scaling_curve(costs, [8], threads_per_node=2, policy=lazy)[0]
        r_eager = scaling_curve(costs, [8], threads_per_node=2, policy=eager)[0]
        assert r_eager.makespan <= r_lazy.makespan * 1.1
