"""Reproduced GraphZero: single restriction set + weaker model."""

import pytest

from repro.baselines.bruteforce import bruteforce_count
from repro.baselines.graphzero import (
    GraphZeroMatcher,
    graphzero_cost,
    graphzero_count,
    graphzero_restriction_set,
)
from repro.core.restrictions import (
    generate_restriction_sets,
    surviving_permutations,
    validate_restriction_set,
)
from repro.graph.stats import GraphStats
from repro.pattern.automorphism import automorphisms
from repro.pattern.catalog import clique, cycle_6_tri, house, pentagon, rectangle, triangle
from repro.pattern.pattern import Pattern


class TestRestrictionSet:
    @pytest.mark.parametrize(
        "pattern",
        [triangle(), rectangle(), house(), pentagon(), cycle_6_tri(), clique(4), clique(5)],
        ids=lambda p: p.name,
    )
    def test_set_is_valid(self, pattern):
        rs = graphzero_restriction_set(pattern)
        assert validate_restriction_set(pattern, rs)

    def test_single_set_only(self):
        """GraphZero's defining limitation vs GraphPi."""
        a = graphzero_restriction_set(house())
        b = graphzero_restriction_set(house())
        assert a == b  # deterministic, exactly one

    def test_eliminates_to_identity(self):
        p = rectangle()
        rs = graphzero_restriction_set(p)
        assert surviving_permutations(automorphisms(p), rs) == [tuple(range(4))]

    def test_graphpi_superset_of_choices(self):
        """GraphPi's generator explores a strictly larger space than the
        single GraphZero set for symmetric patterns."""
        p = rectangle()
        pi_sets = generate_restriction_sets(p)
        assert len(pi_sets) > 1

    def test_asymmetric_pattern_empty(self):
        p = Pattern(6, [(0, 2), (0, 3), (0, 5), (1, 2), (1, 4), (2, 3)])
        assert graphzero_restriction_set(p) == frozenset()


class TestCostModel:
    def test_degree_only_model_ignores_triangles(self):
        """Two graphs with equal |V|, |E| but different triangle counts
        must get identical GraphZero costs — the model's blind spot."""
        from repro.graph.builder import graph_from_edges

        tri_rich = graph_from_edges(
            [(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5)]
        )
        tri_free = graph_from_edges(
            [(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 0)]
        )
        s1, s2 = GraphStats.of(tri_rich), GraphStats.of(tri_free)
        assert s1.triangles != s2.triangles
        sched = (0, 1, 2, 3, 4)
        assert graphzero_cost(house(), sched, s1) == graphzero_cost(house(), sched, s2)

    def test_prefers_connected_schedules(self, er_small):
        stats = GraphStats.of(er_small)
        good = graphzero_cost(house(), (0, 1, 2, 3, 4), stats)
        bad = graphzero_cost(house(), (2, 3, 4, 0, 1), stats)
        assert good < bad


class TestMatcher:
    def test_counts_match_bruteforce(self, er_small, all_small_patterns):
        for pattern in all_small_patterns:
            assert graphzero_count(er_small, pattern) == bruteforce_count(
                er_small, pattern
            ), pattern.name

    def test_plan_exposes_choice(self, er_small):
        m = GraphZeroMatcher(house())
        plan = m.plan(er_small)
        assert plan.config.restrictions == m.restriction_set
        assert plan.predicted_cost > 0

    def test_match_yields_valid_embeddings(self, er_small):
        for emb in GraphZeroMatcher(triangle()).match(er_small, limit=10):
            a, b, c = emb
            assert er_small.has_edge(a, b) and er_small.has_edge(b, c)

    def test_rejects_disconnected(self):
        with pytest.raises(ValueError):
            GraphZeroMatcher(Pattern(4, [(0, 1), (2, 3)]))

    def test_plan_requires_input(self):
        with pytest.raises(ValueError):
            GraphZeroMatcher(triangle()).plan()
