"""Fractal-style extension baseline."""

import pytest

from repro.baselines.bruteforce import bruteforce_count, bruteforce_enumerate
from repro.baselines.fractal import FractalMatcher, fractal_count
from repro.pattern.catalog import house, pentagon, rectangle, triangle
from repro.pattern.pattern import Pattern


class TestCorrectness:
    def test_counts_match_bruteforce(self, er_small, all_small_patterns):
        for pattern in all_small_patterns:
            assert fractal_count(er_small, pattern) == bruteforce_count(
                er_small, pattern
            ), pattern.name

    def test_embeddings_distinct_and_valid(self, er_small):
        pattern = rectangle()
        embs = list(FractalMatcher(pattern).enumerate_embeddings(er_small))
        assert len(embs) == len(set(embs))
        for emb in embs:
            for u, v in pattern.edges:
                assert er_small.has_edge(emb[u], emb[v])

    def test_same_embedding_sets_as_bruteforce(self, er_small):
        pattern = triangle()
        ours = {frozenset(e) for e in FractalMatcher(pattern).enumerate_embeddings(er_small)}
        brute = {frozenset(e) for e in bruteforce_enumerate(er_small, pattern)}
        assert ours == brute

    def test_pattern_larger_than_graph(self):
        from repro.graph.generators import complete_graph

        assert fractal_count(complete_graph(3), rectangle()) == 0

    def test_rejects_disconnected(self):
        with pytest.raises(ValueError):
            FractalMatcher(Pattern(4, [(0, 1), (2, 3)]))


class TestCostProfile:
    def test_frontier_materialisation_recorded(self, er_small):
        m = FractalMatcher(house())
        m.count(er_small)
        assert len(m.stats.levels) == house().n_vertices
        assert m.stats.peak_frontier >= m.stats.levels[0]
        assert m.stats.extensions_tested > 0

    def test_canonicality_rejections_counted(self, er_small):
        """All-but-one orbit member must be rejected at the leaves."""
        m = FractalMatcher(triangle())
        count = m.count(er_small)
        # |Aut| = 6: each distinct triangle appears as 6 assignments.
        assert m.stats.canonicality_rejections == count * 5

    def test_memory_cap_raises(self, er_medium):
        """Fractal's Orkut OOM (Figure 8), reproduced as a frontier cap."""
        m = FractalMatcher(pentagon(), max_frontier=50)
        with pytest.raises(MemoryError):
            m.count(er_medium)

    def test_frontier_grows_into_inner_levels(self, er_medium):
        m = FractalMatcher(triangle())
        m.count(er_medium)
        # Level 1 (one vertex each) is |V|; level 2 is ~sum of degrees.
        assert m.stats.levels[1] > m.stats.levels[0]
