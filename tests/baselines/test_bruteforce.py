"""Brute-force oracle, itself cross-checked against networkx VF2."""

import networkx as nx
import pytest

from repro.baselines.bruteforce import (
    bruteforce_count,
    bruteforce_enumerate,
    count_assignments,
)
from repro.graph.generators import complete_graph, erdos_renyi
from repro.pattern.automorphism import automorphism_count
from repro.pattern.catalog import clique, house, path, rectangle, star, triangle


def to_nx(graph):
    g = nx.Graph()
    g.add_nodes_from(range(graph.n_vertices))
    g.add_edges_from(graph.edges())
    return g


def nx_count(graph, pattern):
    """Independent oracle: VF2 subgraph monomorphisms / |Aut|."""
    big = to_nx(graph)
    small = nx.Graph()
    small.add_nodes_from(range(pattern.n_vertices))
    small.add_edges_from(pattern.edges)
    matcher = nx.algorithms.isomorphism.GraphMatcher(big, small)
    n = sum(1 for _ in matcher.subgraph_monomorphisms_iter())
    aut = automorphism_count(pattern)
    assert n % aut == 0
    return n // aut


class TestAssignments:
    def test_triangle_in_k3(self):
        assert count_assignments(complete_graph(3), triangle()) == 6

    def test_divisibility_by_aut(self, er_small):
        for pattern in (triangle(), rectangle(), house()):
            total = count_assignments(er_small, pattern)
            assert total % automorphism_count(pattern) == 0


class TestAgainstNetworkx:
    @pytest.mark.parametrize(
        "pattern",
        [triangle(), rectangle(), house(), clique(4), path(4), star(3)],
        ids=lambda p: p.name,
    )
    def test_counts_match_vf2(self, pattern):
        g = erdos_renyi(30, 0.25, seed=55)
        assert bruteforce_count(g, pattern) == nx_count(g, pattern)

    def test_multiple_seeds(self):
        for seed in range(3):
            g = erdos_renyi(25, 0.3, seed=seed)
            assert bruteforce_count(g, triangle()) == nx_count(g, triangle())


class TestEnumerate:
    def test_distinct_and_minimal(self, er_small):
        embs = list(bruteforce_enumerate(er_small, rectangle()))
        assert len(embs) == len(set(embs))
        assert len(embs) == bruteforce_count(er_small, rectangle())

    def test_pattern_too_big(self):
        assert list(bruteforce_enumerate(complete_graph(2), triangle())) == []

    def test_embeddings_valid(self, er_small):
        pattern = house()
        for emb in bruteforce_enumerate(er_small, pattern):
            for u, v in pattern.edges:
                assert er_small.has_edge(emb[u], emb[v])
