"""Peregrine-style baseline: correctness and data-obliviousness."""

from __future__ import annotations

import pytest

from repro.baselines.bruteforce import bruteforce_count
from repro.baselines.peregrine import (
    PeregrineMatcher,
    constraint_profile,
    peregrine_count,
    peregrine_restriction_score,
    peregrine_schedule_score,
)
from repro.graph.generators import erdos_renyi, random_power_law
from repro.pattern.catalog import clique, house, pentagon, rectangle, triangle
from repro.pattern.pattern import Pattern

PATTERNS = [triangle(), rectangle(), house(), pentagon(), clique(4)]


class TestCorrectness:
    @pytest.mark.parametrize("pattern", PATTERNS, ids=lambda p: p.name)
    def test_matches_bruteforce(self, pattern, er_small):
        assert peregrine_count(er_small, pattern) == bruteforce_count(
            er_small, pattern
        )

    def test_agrees_with_graphpi_on_powerlaw(self, powerlaw_small):
        from repro.core.api import count_pattern

        for pattern in (triangle(), house()):
            assert peregrine_count(powerlaw_small, pattern) == count_pattern(
                powerlaw_small, pattern
            )

    def test_enumeration_distinct(self, er_small):
        m = PeregrineMatcher(rectangle())
        embs = list(m.match(er_small))
        # distinct as subgraphs: same vertex set may host several C4s
        # (K4 contains 3), so compare mapped edge sets
        pat_edges = rectangle().edges
        subgraphs = {
            frozenset(frozenset((e[u], e[v])) for u, v in pat_edges) for e in embs
        }
        assert len(subgraphs) == len(embs)
        assert len(embs) == bruteforce_count(er_small, rectangle())

    def test_disconnected_rejected(self):
        with pytest.raises(ValueError):
            PeregrineMatcher(Pattern(4, [(0, 1), (2, 3)]))


class TestDataObliviousness:
    def test_plan_is_graph_independent(self):
        """The defining property: the same pattern gives the same plan
        regardless of the data graph (plan() takes no graph at all)."""
        m1 = PeregrineMatcher(house())
        m2 = PeregrineMatcher(house())
        assert m1.plan().config == m2.plan().config

    def test_plan_cached(self):
        m = PeregrineMatcher(house())
        assert m.plan() is m.plan()

    def test_graphpi_can_differ_per_graph(self):
        """GraphPi's choice may move with the data distribution; the
        Peregrine baseline's cannot.  (Not asserting GraphPi *must*
        differ — only that Peregrine never does.)"""
        from repro.core.api import PatternMatcher

        dense = erdos_renyi(80, 0.3, seed=1)
        sparse = random_power_law(400, avg_degree=3.0, exponent=2.4, seed=2)
        peregrine_cfg = PeregrineMatcher(house()).plan().config
        gp = PatternMatcher(house(), use_codegen=False)
        cfg_dense = gp.plan(dense, codegen=False).chosen.config
        cfg_sparse = gp.plan(sparse, codegen=False).chosen.config
        # Peregrine's is one fixed configuration...
        assert peregrine_cfg == PeregrineMatcher(house()).plan().config
        # ...and it is a valid configuration of the same pattern
        assert cfg_dense.pattern == peregrine_cfg.pattern == cfg_sparse.pattern


class TestScores:
    def test_constraint_profile_shape(self):
        p = house()
        s = tuple(range(5))
        prof = constraint_profile(p, s)
        assert len(prof) == 5
        assert prof[0] == 0  # nothing bound before the first vertex

    def test_schedule_score_prefers_constrained_prefix(self):
        """For the house, a schedule starting at the triangle's apex
        binds more neighbours early than one starting at a base corner."""
        p = house()
        schedules = [tuple(range(5)), (3, 4, 0, 1, 2)]
        scores = [peregrine_schedule_score(p, s) for s in schedules]
        best = min(range(2), key=lambda i: scores[i])
        # the winner's constraint profile dominates at the first
        # position where they differ
        prof_best = constraint_profile(p, schedules[best])
        prof_other = constraint_profile(p, schedules[1 - best])
        for a, b in zip(prof_best, prof_other):
            if a != b:
                assert a > b
                break

    def test_restriction_score_prefers_shallow_checks(self):
        p = rectangle()
        s = (0, 1, 2, 3)
        shallow = frozenset({(0, 1), (0, 2), (1, 3)})
        deep = frozenset({(0, 3), (1, 3), (2, 3)})
        assert peregrine_restriction_score(p, s, shallow) < peregrine_restriction_score(
            p, s, deep
        )

    def test_deterministic_choice(self):
        a = PeregrineMatcher(pentagon()).plan().config
        b = PeregrineMatcher(pentagon()).plan().config
        assert a.schedule == b.schedule and a.restrictions == b.restrictions
