"""The paper's §V-A correctness methodology: all systems agree.

*"To guarantee the correctness of GraphPi, we compare GraphPi's results
with those of Fractal and (the reproduced version of) GraphZero.  The
results show that the numbers of embeddings obtained by three systems
are the same."*
"""

import pytest

from repro.baselines.bruteforce import bruteforce_count
from repro.baselines.fractal import fractal_count
from repro.baselines.graphzero import graphzero_count
from repro.baselines.peregrine import peregrine_count
from repro.core.api import PatternMatcher
from repro.graph.generators import erdos_renyi, random_power_law, watts_strogatz
from repro.pattern.catalog import paper_patterns

GRAPHS = [
    ("er", erdos_renyi(35, 0.25, seed=1)),
    ("powerlaw", random_power_law(60, 6.0, seed=2)),
    ("smallworld", watts_strogatz(50, 3, 0.3, seed=3)),
]


@pytest.mark.parametrize("gname,graph", GRAPHS, ids=[g[0] for g in GRAPHS])
def test_four_systems_agree_small_patterns(gname, graph, all_small_patterns):
    for pattern in all_small_patterns:
        reference = bruteforce_count(graph, pattern)
        assert PatternMatcher(pattern).count(graph, use_iep=False) == reference
        assert PatternMatcher(pattern).count(graph, use_iep=True) == reference
        assert graphzero_count(graph, pattern) == reference
        assert fractal_count(graph, pattern) == reference
        assert peregrine_count(graph, pattern) == reference


@pytest.mark.parametrize("pname", ["P1", "P2", "P3", "P4"])
def test_paper_patterns_three_systems(pname):
    """P5/P6 are too heavy for the brute-force oracle on CI-sized inputs;
    P1–P4 cover 5- and 6-vertex shapes."""
    graph = erdos_renyi(28, 0.3, seed=44)
    pattern = paper_patterns()[pname]
    pi = PatternMatcher(pattern).count(graph, use_iep=True)
    assert pi == PatternMatcher(pattern).count(graph, use_iep=False)
    assert pi == graphzero_count(graph, pattern)
    assert pi == peregrine_count(graph, pattern)
    assert pi == bruteforce_count(graph, pattern)


def test_p5_p6_graphpi_vs_graphzero():
    graph = erdos_renyi(20, 0.4, seed=45)
    for pname in ("P5", "P6"):
        pattern = paper_patterns()[pname]
        pi = PatternMatcher(pattern, max_restriction_sets=8).count(graph, use_iep=False)
        gz = graphzero_count(graph, pattern)
        assert pi == gz, pname
