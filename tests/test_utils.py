"""Utility layer: timing, RNG, validation, tables."""

import time

import numpy as np
import pytest

from repro.utils.rng import make_rng, spawn_rngs
from repro.utils.tables import Table, format_seconds, format_speedup
from repro.utils.timing import Timer, timed
from repro.utils.validation import (
    check_index,
    check_positive,
    check_probability,
    require,
)


class TestTimer:
    def test_measures_elapsed(self):
        with Timer() as t:
            time.sleep(0.01)
        assert t.elapsed >= 0.009
        assert t.last == t.elapsed

    def test_accumulates_laps(self):
        t = Timer()
        for _ in range(3):
            with t:
                pass
        assert len(t.laps) == 3
        assert t.elapsed == pytest.approx(sum(t.laps))

    def test_timed_decorator(self):
        @timed
        def f(x):
            return x * 2

        assert f(21) == 42
        assert f.call_count == 1
        assert f.total_seconds >= 0
        f.reset_timing()
        assert f.call_count == 0


class TestRng:
    def test_seed_coercion(self):
        a, b = make_rng(7), make_rng(7)
        assert a.integers(0, 100) == b.integers(0, 100)

    def test_generator_passthrough(self):
        g = np.random.default_rng(1)
        assert make_rng(g) is g

    def test_spawn_independent_streams(self):
        streams = spawn_rngs(5, 3)
        draws = [s.integers(0, 10**9) for s in streams]
        assert len(set(draws)) == 3

    def test_spawn_deterministic(self):
        a = [r.integers(0, 10**9) for r in spawn_rngs(5, 4)]
        b = [r.integers(0, 10**9) for r in spawn_rngs(5, 4)]
        assert a == b

    def test_spawn_negative(self):
        with pytest.raises(ValueError):
            spawn_rngs(1, -1)


class TestValidation:
    def test_require(self):
        require(True, "fine")
        with pytest.raises(ValueError, match="broken"):
            require(False, "broken")

    def test_check_positive(self):
        check_positive(1, "x")
        check_positive(0, "x", strict=False)
        with pytest.raises(ValueError):
            check_positive(0, "x")
        with pytest.raises(ValueError):
            check_positive(-1, "x", strict=False)

    def test_check_probability(self):
        check_probability(0.0, "p")
        check_probability(1.0, "p")
        with pytest.raises(ValueError):
            check_probability(1.01, "p")

    def test_check_index(self):
        assert check_index(2, 5, "i") == 2
        with pytest.raises(IndexError):
            check_index(5, 5, "i")
        with pytest.raises(TypeError):
            check_index(1.5, 5, "i")


class TestTables:
    def test_render_alignment(self):
        t = Table(["name", "value"], title="demo")
        t.add_row(["a", 1])
        t.add_row(["longer", 22])
        out = t.render()
        assert "demo" in out
        lines = out.splitlines()
        assert lines[-1].startswith("longer")

    def test_row_width_mismatch(self):
        t = Table(["a", "b"])
        with pytest.raises(ValueError):
            t.add_row([1])

    def test_tsv_round_trip(self):
        t = Table(["x", "y"])
        t.add_row(["1", "2"])
        t.add_row(["3", "4"])
        back = Table.from_tsv(t.to_tsv())
        assert back.columns == ["x", "y"] and back.rows == t.rows

    def test_from_tsv_empty(self):
        with pytest.raises(ValueError):
            Table.from_tsv("")

    def test_format_seconds(self):
        assert format_seconds(5e-7).endswith("us")
        assert format_seconds(0.02).endswith("ms")
        assert format_seconds(3.5) == "3.50 s"
        assert format_seconds(300) == "5.0 min"
        assert format_seconds(float("inf")) == "timeout"
        assert format_seconds(float("nan")) == "n/a"

    def test_format_speedup(self):
        assert format_speedup(105.3) == "105x"
        assert format_speedup(23.2) == "23.2x"
        assert format_speedup(1.4) == "1.40x"
        assert format_speedup(float("nan")) == "n/a"
        assert format_speedup(0.0) == "n/a"
