"""Neighbourhood-sampling estimator: unbiasedness, edge cases, failure modes."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.approx.sampling import EstimateResult, NeighborhoodSampler, approximate_count
from repro.baselines.bruteforce import bruteforce_count
from repro.core.api import PatternMatcher, count_pattern
from repro.graph.builder import graph_from_edges
from repro.graph.generators import complete_graph, erdos_renyi
from repro.pattern.catalog import clique, house, path, rectangle, triangle


@pytest.fixture(scope="module")
def g_er():
    return erdos_renyi(60, 0.2, seed=31)


class TestSampleOnce:
    def test_returns_zero_or_positive_weight(self, g_er):
        s = NeighborhoodSampler(g_er, triangle(), seed=1)
        vals = [s.sample_once() for _ in range(200)]
        assert all(v >= 0 for v in vals)
        assert any(v > 0 for v in vals)

    def test_pattern_larger_than_graph(self):
        g = complete_graph(3)
        s = NeighborhoodSampler(g, clique(4), seed=1)
        assert s.sample_once() == 0.0

    def test_weight_on_complete_graph_first_trial(self):
        """On K_n with the triangle pattern and restriction set
        {(1,0),(2,1)} every trial that survives the range slices yields
        the same weight structure; all trials are bounded by n·(n-1)·(n-2)."""
        g = complete_graph(8)
        s = NeighborhoodSampler(g, triangle(), seed=3)
        for _ in range(50):
            w = s.sample_once()
            assert w <= 8 * 7 * 6


class TestUnbiasedness:
    @pytest.mark.parametrize("pattern", [triangle(), path(3), rectangle()],
                             ids=lambda p: p.name)
    def test_mean_converges_to_truth(self, g_er, pattern):
        truth = bruteforce_count(g_er, pattern)
        assert truth > 0
        res = approximate_count(g_er, pattern, n_samples=60_000, seed=42)
        # 60k samples: require the truth within ~5 standard errors
        assert abs(res.estimate - truth) <= max(5 * res.std_error, 0.15 * truth)

    def test_exact_on_complete_graph_triangle(self):
        """On K_n every path in the restricted DFS tree succeeds, so the
        estimator has tiny variance there."""
        g = complete_graph(10)
        truth = count_pattern(g, triangle(), use_iep=False)
        res = approximate_count(g, triangle(), n_samples=4_000, seed=5)
        assert res.relative_error(truth) < 0.25

    def test_house_estimate(self, g_er):
        truth = count_pattern(g_er, house(), use_iep=False)
        res = approximate_count(g_er, house(), n_samples=80_000, seed=7)
        assert res.relative_error(truth) < 0.3


class TestEstimateResult:
    def test_ci_brackets_estimate(self, g_er):
        res = approximate_count(g_er, triangle(), n_samples=5_000, seed=11)
        assert res.ci_low <= res.estimate <= res.ci_high

    def test_ci_widens_with_confidence(self, g_er):
        s = NeighborhoodSampler(g_er, triangle(), seed=13)
        lo = s.estimate(2_000, confidence=0.5)
        s2 = NeighborhoodSampler(g_er, triangle(), seed=13)
        hi = s2.estimate(2_000, confidence=0.99)
        assert (hi.ci_high - hi.ci_low) >= (lo.ci_high - lo.ci_low)

    def test_relative_error_of_zero_truth(self):
        r = EstimateResult(estimate=0.0, std_error=0.0, n_samples=10, hits=0,
                           confidence=0.95)
        assert r.relative_error(0) == 0.0
        r2 = EstimateResult(estimate=5.0, std_error=1.0, n_samples=10, hits=2,
                            confidence=0.95)
        assert math.isinf(r2.relative_error(0))

    def test_bad_args(self, g_er):
        s = NeighborhoodSampler(g_er, triangle(), seed=1)
        with pytest.raises(ValueError):
            s.estimate(0)
        with pytest.raises(ValueError):
            s.estimate(10, confidence=1.5)


class TestRareEmbeddingFailure:
    """The paper's intro claim: sampling fails when embeddings are rare."""

    def test_zero_hits_on_embedding_free_graph(self):
        # a tree has no triangles
        edges = [(i, i + 1) for i in range(40)]
        g = graph_from_edges(edges)
        res = approximate_count(g, triangle(), n_samples=2_000, seed=17)
        assert res.hits == 0
        assert res.estimate == 0.0
        # indistinguishable from "few": CI is [0, 0] — no signal
        assert res.ci_high == 0.0

    def test_rare_pattern_high_variance(self):
        """Plant exactly one 4-clique in a sparse graph: the estimator's
        coefficient of variation must dwarf that of an abundant pattern."""
        rng_edges = [(i, i + 1) for i in range(200)]
        planted = [(300, 301), (300, 302), (300, 303), (301, 302), (301, 303), (302, 303)]
        bridge = [(200, 300)]
        g = graph_from_edges(rng_edges + planted + bridge)
        assert count_pattern(g, clique(4), use_iep=False) == 1

        s = NeighborhoodSampler(g, clique(4), seed=23)
        res = s.estimate(3_000)
        # nearly all trials miss
        assert res.hits < 0.05 * res.n_samples

    def test_determinism_with_seed(self, g_er):
        a = approximate_count(g_er, triangle(), n_samples=500, seed=99)
        b = approximate_count(g_er, triangle(), n_samples=500, seed=99)
        assert a.estimate == b.estimate


class TestPlanInteraction:
    def test_rejects_iep_plan(self, g_er):
        matcher = PatternMatcher(rectangle(), use_codegen=False)
        rep = matcher.plan(g_er, use_iep=True, codegen=False)
        if rep.plan.iep_k == 0:
            pytest.skip("model did not choose IEP here")
        with pytest.raises(ValueError, match="iep_k=0"):
            NeighborhoodSampler(g_er, rectangle(), plan=rep.plan)

    def test_explicit_plan_used(self, g_er):
        matcher = PatternMatcher(triangle(), use_codegen=False)
        rep = matcher.plan(g_er, use_iep=False, codegen=False)
        s = NeighborhoodSampler(g_er, triangle(), plan=rep.plan, seed=3)
        assert s.plan is rep.plan
        truth = bruteforce_count(g_er, triangle())
        res = s.estimate(40_000)
        assert abs(res.estimate - truth) <= max(5 * res.std_error, 0.15 * truth)
