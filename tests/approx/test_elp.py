"""Error–latency profiles: calibration math and the rare-pattern gate."""

from __future__ import annotations

import math

import pytest

from repro.approx.elp import ErrorLatencyProfile, RareEmbeddingError, build_elp
from repro.graph.builder import graph_from_edges
from repro.graph.generators import erdos_renyi
from repro.pattern.catalog import clique, triangle


@pytest.fixture(scope="module")
def g_er():
    return erdos_renyi(60, 0.2, seed=31)


@pytest.fixture(scope="module")
def profile(g_er):
    return build_elp(g_er, triangle(), pilot_samples=3_000, seed=41)


class TestProfileMath:
    def test_budget_shrinks_with_looser_error(self, profile):
        assert profile.samples_for(0.10) <= profile.samples_for(0.01)

    def test_budget_error_roundtrip(self, profile):
        n = profile.samples_for(0.05)
        # evaluating the expected error at the chosen budget recovers
        # (at most) the target
        assert profile.error_at(n) <= 0.05 + 1e-9

    def test_error_decreases_with_samples(self, profile):
        assert profile.error_at(10_000) < profile.error_at(100)

    def test_inverse_square_root_law(self, profile):
        # quadrupling the budget must halve the expected error
        e1, e4 = profile.error_at(1_000), profile.error_at(4_000)
        assert e4 == pytest.approx(e1 / 2)

    def test_cv_positive_for_abundant_pattern(self, profile):
        assert 0 < profile.coefficient_of_variation < math.inf
        assert profile.pilot_hits > 0

    def test_bad_args(self, profile):
        with pytest.raises(ValueError):
            profile.samples_for(0.0)
        with pytest.raises(ValueError):
            profile.error_at(0)


class TestRareGate:
    def test_zero_hit_pilot_raises(self):
        g = graph_from_edges([(i, i + 1) for i in range(30)])  # triangle-free
        prof = build_elp(g, triangle(), pilot_samples=500, seed=43)
        assert prof.pilot_hits == 0
        assert math.isinf(prof.coefficient_of_variation)
        assert math.isinf(prof.error_at(10_000))
        with pytest.raises(RareEmbeddingError):
            prof.samples_for(0.05)

    def test_rare_pattern_needs_more_samples_than_common(self, g_er):
        common = build_elp(g_er, triangle(), pilot_samples=4_000, seed=47)
        rare_graph = graph_from_edges(
            [(i, i + 1) for i in range(150)]
            + [(200, 201), (200, 202), (201, 202), (0, 200)]
        )
        rare = build_elp(rare_graph, triangle(), pilot_samples=4_000, seed=47)
        if rare.pilot_hits == 0:
            with pytest.raises(RareEmbeddingError):
                rare.samples_for(0.05)
        else:
            assert rare.samples_for(0.05) > common.samples_for(0.05)
