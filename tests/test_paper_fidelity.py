"""End-to-end pins against the paper's worked examples.

Each test reproduces a concrete number or trace printed in the paper
itself (not the evaluation figures — those are benchmarks).  These are
the strongest fidelity checks we have: if one of these breaks, the
implementation has diverged from the paper's semantics, not just its
performance.
"""

from repro.core.config import Configuration
from repro.core.engine import Engine
from repro.core.perf_model import PerformanceModel, filter_probabilities
from repro.core.restrictions import (
    generate_restriction_sets,
    no_conflict,
    surviving_permutations,
    validate_restriction_set,
)
from repro.core.schedule import generate_schedules, independent_suffix_size
from repro.pattern.automorphism import automorphisms
from repro.pattern.catalog import cycle_6_tri, house, rectangle
from repro.pattern.permutation import perm_from_cycles as pc


class TestFigure4EliminationTrace:
    """Figure 4(d): the rectangle's elimination rounds, exactly."""

    # A=0, B=1, C=2, D=3; the circled permutations of Fig. 4(c).
    P1 = (0, 1, 2, 3)                 # ① identity
    P2 = pc(4, [(0, 3, 2, 1)])        # ② (A,D,C,B)
    P3 = pc(4, [(0, 1, 2, 3)])        # ③ (A,B,C,D)
    P4 = pc(4, [(1, 3)])              # ④ (B,D)
    P5 = pc(4, [(0, 2)])              # ⑤ (A,C)
    P6 = pc(4, [(0, 2), (1, 3)])      # ⑥ (A,C)(B,D)
    P7 = pc(4, [(0, 1), (2, 3)])      # ⑦ (A,B)(C,D)
    P8 = pc(4, [(0, 3), (1, 2)])      # ⑧ (A,D)(B,C)

    def group(self):
        return [self.P1, self.P2, self.P3, self.P4, self.P5, self.P6,
                self.P7, self.P8]

    def test_round1_id_b_gt_d(self):
        """R1 = id(B) > id(D) eliminates exactly ④ and ⑥."""
        survivors = surviving_permutations(self.group(), {(1, 3)})
        assert set(survivors) == {self.P1, self.P2, self.P3, self.P5,
                                  self.P7, self.P8}

    def test_round2_adds_id_a_gt_c(self):
        """R2 = id(A) > id(C) with R1 leaves only ① and ⑦."""
        survivors = surviving_permutations(self.group(), {(1, 3), (0, 2)})
        assert set(survivors) == {self.P1, self.P7}

    def test_round3_either_branch_finishes(self):
        """R3 = id(A)>id(B) or R4 = id(C)>id(D) each reduce to identity."""
        for extra in [(0, 1), (2, 3)]:
            survivors = surviving_permutations(
                self.group(), {(1, 3), (0, 2), extra}
            )
            assert survivors == [self.P1]
            assert validate_restriction_set(rectangle(), frozenset(
                {(1, 3), (0, 2), extra}
            ))

    def test_both_final_sets_are_generated(self):
        """Algorithm 1 must produce both Round-3 branches of Fig. 4(d)."""
        sets = set(generate_restriction_sets(rectangle()))
        assert frozenset({(1, 3), (0, 2), (0, 1)}) in sets
        assert frozenset({(1, 3), (0, 2), (2, 3)}) in sets

    def test_permutation_2_elimination_argument(self):
        """§IV-A's worked no_conflict example: permutation ② is
        eliminated by {id(B)>id(D), id(A)>id(C)} because the combined
        constraint digraph has a cycle."""
        assert not no_conflict(self.P2, {(1, 3), (0, 2)})


class TestFigure5HouseConfiguration:
    """Fig. 5: the paper's 'optimal configuration' for the House."""

    def test_paper_configuration_is_generated(self):
        pattern = house()
        assert (0, 1, 2, 3, 4) in generate_schedules(pattern)
        sets = generate_restriction_sets(pattern)
        assert frozenset({(0, 1)}) in sets

    def test_f1_is_half(self):
        """§IV-C: 'n!/2 possibilities can be filtered out by the
        restriction id(A) > id(B) ... thus f = 1/2'."""
        cfg = Configuration(house(), (0, 1, 2, 3, 4), frozenset({(0, 1)}))
        fs = filter_probabilities(cfg.compile())
        assert fs[1] == 0.5

    def test_house_k_is_2(self):
        """§IV-B: 'the vertex D is not connected to E ... therefore
        k = 2 in the case of the House pattern'."""
        assert independent_suffix_size(house()) == 2

    def test_model_reproduces_paper_choice_on_skewed_graph(self):
        """On a Wiki-Vote-like proxy the optimiser lands on the paper's
        configuration (schedule A,B,C,D,E + id(A)>id(B)) — observed
        stable across seeds."""
        from repro.graph.datasets import load_dataset
        from repro.graph.stats import GraphStats

        graph = load_dataset("wiki-vote", scale=0.25, seed=7)
        stats = GraphStats.of(graph)
        pattern = house()
        model = PerformanceModel(stats)
        configs = [
            Configuration(pattern, s, rs)
            for s in generate_schedules(pattern, dedup_automorphic=True)
            for rs in generate_restriction_sets(pattern)
        ]
        best = model.choose(configs)
        assert best.config.restrictions == frozenset({(0, 1)})


class TestFigure6CycleSixTri:
    """Fig. 6: the Cycle-6-Tri IEP example."""

    def test_k_is_3(self):
        assert independent_suffix_size(cycle_6_tri()) == 3

    def test_pseudocode_restriction_available(self):
        """Fig. 6(b) line 7 breaks on id(B) > id(C): the pair (1, 2)
        must be available as a complete single-restriction set."""
        sets = generate_restriction_sets(cycle_6_tri())
        assert frozenset({(1, 2)}) in sets or frozenset({(2, 1)}) in sets

    def test_iep_counts_match_loops(self):
        from repro.graph.generators import erdos_renyi

        g = erdos_renyi(35, 0.3, seed=99)
        pattern = cycle_6_tri()
        rs = frozenset({(1, 2)}) if frozenset({(1, 2)}) in set(
            generate_restriction_sets(pattern)
        ) else generate_restriction_sets(pattern)[0]
        cfg = Configuration(pattern, (0, 1, 2, 3, 4, 5), rs)
        assert Engine(g, cfg.compile(iep_k=3)).count() == Engine(
            g, cfg.compile()
        ).count()

    def test_iep_example_algebra(self):
        """§IV-D's worked Algorithm-2 example: |A_{1,2} ∩ A_{2,3} ∩ A_{4,5}|
        for k = 6 factorises into components [1,2,3], [4,5], [6]."""
        import numpy as np

        from repro.core.iep import _event_intersection_cardinality
        from repro.graph.intersection import VERTEX_DTYPE, intersect_many

        rng = np.random.default_rng(5)
        sets = [
            np.unique(rng.integers(0, 30, size=12)).astype(VERTEX_DTYPE)
            for _ in range(6)
        ]
        # paper is 1-indexed; we use 0-indexed pairs.
        got = _event_intersection_cardinality(sets, 6, [(0, 1), (1, 2), (3, 4)])
        expected = (
            len(intersect_many([sets[0], sets[1], sets[2]]))
            * len(intersect_many([sets[3], sets[4]]))
            * len(sets[5])
        )
        assert got == expected


class TestSectionIIClaims:
    def test_seven_clique_5040(self):
        from math import factorial

        from repro.pattern.automorphism import automorphism_count
        from repro.pattern.catalog import clique

        assert automorphism_count(clique(7)) == factorial(7) == 5040

    def test_house_instead_restriction_works_too(self):
        """§II-B: 'we can use a restriction id(C) > id(D) instead of
        id(A) > id(B) to eliminate automorphisms' — in our labelling the
        house's second swapped pair is (C, D) = (2, 3)."""
        assert validate_restriction_set(house(), frozenset({(2, 3)}))
        assert validate_restriction_set(house(), frozenset({(0, 1)}))

    def test_house_automorphism_is_the_mirror(self):
        auts = automorphisms(house())
        assert len(auts) == 2
        # The non-trivial one swaps (A,B) and (C,E)... in our labelling
        # the mirror swaps A<->B and C<->E? It must swap the two roof
        # vertices' wings: verify it is an involution moving 4 vertices.
        sigma = [a for a in auts if a != (0, 1, 2, 3, 4)][0]
        moved = [v for v in range(5) if sigma[v] != v]
        assert len(moved) == 4
        assert all(sigma[sigma[v]] == v for v in range(5))
