"""Cross-backend golden-count conformance suite.

GraphZero's lesson (and GraphMini's, and this repo's own history): every
new execution strategy must count *identically* to the reference, on
real workloads, not just on the unit fixtures it was developed against.
This suite pins that invariant once and for all:

* backends are **auto-discovered** at collection time via
  :func:`repro.core.backend.available_backends` — registering a new
  backend automatically parametrises every test here over it, with zero
  new test code (constructor overrides for expensive backends go in
  :data:`BACKEND_OPTIONS`, defaulting to none);
* the workload is the catalog patterns x three graphs (an Erdős–Rényi
  generated graph, a skewed power-law graph, and a dataset proxy)
  against **pinned golden counts**.  The goldens were produced by the
  interpreter backend and, where brute force is tractable (`er-40`),
  verified against :func:`repro.baselines.bruteforce.bruteforce_count`;
  all graphs are deterministic (seeded generators / seeded proxies), so
  the numbers are stable across runs and platforms;
* backends that declare enumeration support must also yield the exact
  same *embedding sets* as the interpreter.

A backend that cannot serve plain-mode counting is skipped on the
counting tests (capabilities are declared, not probed), so the suite
stays green for special-purpose registrations too.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.api import count_pattern, match_pattern, match_query
from repro.core.backend import available_backends, get_backend
from repro.core.query import MatchQuery
from repro.graph.datasets import load_dataset
from repro.graph.digraph import (
    digraph_from_edges,
    price_citation_graph,
    random_digraph,
)
from repro.graph.generators import erdos_renyi, random_power_law
from repro.graph.labeled import assign_random_labels
from repro.pattern.catalog import clique, house, pentagon, rectangle, triangle
from repro.pattern.directed import get_directed_pattern
from repro.pattern.labeled import LabeledPattern

# ---------------------------------------------------------------------------
# the pinned workload
# ---------------------------------------------------------------------------
GRAPH_BUILDERS = {
    "er-40": lambda: erdos_renyi(40, 0.25, seed=101),
    "powerlaw-150": lambda: random_power_law(150, avg_degree=8.0, exponent=2.2, seed=303),
    "wiki-vote-0.1": lambda: load_dataset("wiki-vote", scale=0.1, seed=2020),
}

PATTERN_BUILDERS = {
    "triangle": triangle,
    "rectangle": rectangle,
    "house": house,
    "pentagon": pentagon,
    "clique-4": lambda: clique(4),
}

#: golden exact counts: interpreter-produced, brute-force-verified on
#: er-40 (the graph small enough for the O(n^k) oracle).
GOLDEN = {
    "er-40": {
        "triangle": 153,
        "rectangle": 913,
        "house": 7722,
        "pentagon": 6270,
        "clique-4": 19,
    },
    "powerlaw-150": {
        "triangle": 470,
        "rectangle": 4460,
        "house": 108151,
        "pentagon": 43202,
        "clique-4": 381,
    },
    "wiki-vote-0.1": {
        "triangle": 891,
        "rectangle": 10599,
        "house": 333154,
        "pentagon": 132042,
        "clique-4": 961,
    },
}

#: the labeled workload: data labels are i.i.d. from a 2-letter
#: alphabet (seed 7), pattern vertices alternate labels (i % 2).  The
#: er-40 goldens are verified against a label-filtered brute-force
#: oracle (label-compatible injective homomorphisms divided by the
#: label-preserving automorphism count); the larger graphs are pinned
#: from the interpreter and cross-checked by every labeled-capable
#: backend here.
LABEL_ALPHABET = 2
LABEL_SEED = 7

LABELED_PATTERN_BUILDERS = {
    "triangle": triangle,
    "rectangle": rectangle,
    "house": house,
}

LABELED_GOLDEN = {
    "er-40": {"triangle": 50, "rectangle": 107, "house": 453},
    "powerlaw-150": {"triangle": 200, "rectangle": 586, "house": 8305},
    "wiki-vote-0.1": {"triangle": 423, "rectangle": 1510, "house": 22150},
}

#: vertex-induced (§V-A) golden counts: interpreter-produced,
#: brute-force-verified on er-40 via bruteforce_induced_count.  The
#: induced triangle equals the plain triangle by construction (a
#: 3-clique has no non-edges) — kept as a cross-matrix consistency row.
INDUCED_PATTERN_BUILDERS = {
    "triangle": triangle,
    "rectangle": rectangle,
    "house": house,
}

INDUCED_GOLDEN = {
    "er-40": {"triangle": 153, "rectangle": 476, "house": 2410},
    "powerlaw-150": {"triangle": 470, "rectangle": 951, "house": 7581},
    "wiki-vote-0.1": {"triangle": 891, "rectangle": 2416, "house": 22990},
}

def _oriented_powerlaw():
    """The powerlaw-150 skeleton with a seeded random orientation.

    A low-to-high orientation would be acyclic (dcycle rows all zero);
    the seeded coin keeps directed cycles in the matrix while staying
    deterministic across runs and platforms.
    """
    ug = random_power_law(150, avg_degree=8.0, exponent=2.2, seed=303)
    rng = np.random.default_rng(909)
    arcs = [(u, v) if rng.random() < 0.5 else (v, u) for u, v in ug.edges()]
    return digraph_from_edges(arcs, n_vertices=ug.n_vertices, name="powerlaw-d-150")


#: the directed workload runs on its own graph set: directed semantics
#: need arc data the undirected trio cannot supply, so the matrix pairs
#: a directed ER graph, the powerlaw skeleton under a seeded random
#: orientation, and a Price preferential-citation DAG (its dcycle /
#: dclique rows are structurally zero — pinned as such on purpose).
DIRECTED_GRAPH_BUILDERS = {
    "er-d-40": lambda: random_digraph(40, 0.25, seed=404),
    "powerlaw-d-150": _oriented_powerlaw,
    "citation-120": lambda: price_citation_graph(120, out_degree=4, seed=7),
}

DIRECTED_PATTERN_NAMES = ("ffl", "bifan", "dcycle-3", "dclique-3", "dpath-4")

#: directed golden counts: interpreter-produced and, on er-d-40 (small
#: enough for the O(n^k) oracle), verified against
#: :func:`repro.baselines.bruteforce.bruteforce_directed_count`.
DIRECTED_GOLDEN = {
    "er-d-40": {
        "ffl": 1019,
        "bifan": 2342,
        "dcycle-3": 352,
        "dclique-3": 3,
        "dpath-4": 38674,
    },
    "powerlaw-d-150": {
        "ffl": 346,
        "bifan": 604,
        "dcycle-3": 124,
        "dclique-3": 0,
        "dpath-4": 25048,
    },
    "citation-120": {
        "ffl": 405,
        "bifan": 2174,
        "dcycle-3": 0,
        "dclique-3": 0,
        "dpath-4": 2696,
    },
}

#: fast paths that must actually *run* on directed plans: the selection
#: policy falls back to the interpreter silently, so the suite asserts
#: `MatchResult.backend` to prove no fallback happened.
DIRECTED_NO_FALLBACK = ("vectorised", "compiled")

#: constructor overrides for backends whose defaults are too heavy for
#: a conformance matrix (a future backend needs an entry only if its
#: defaults are unsuitable; absence means "instantiate by name").
BACKEND_OPTIONS = {
    "parallel": {"n_workers": 2},
    # counts only — the scaling replay is pinned in its own suite.
    "distributed": {"simulate": False},
}

#: collection-time discovery: every registered backend, automatically.
ALL_BACKENDS = sorted(available_backends())
TRACED_BACKENDS = sorted(
    name
    for name, info in available_backends().items()
    if info.capabilities.traced
)
ENUMERATING_BACKENDS = sorted(
    name
    for name, info in available_backends().items()
    if info.capabilities.enumeration
)

_GRAPH_CACHE: dict[str, object] = {}


def conformance_graph(name: str):
    """One shared graph object per name, so the session plan cache is
    reused across every backend x pattern combination."""
    if name not in _GRAPH_CACHE:
        _GRAPH_CACHE[name] = GRAPH_BUILDERS[name]()
    return _GRAPH_CACHE[name]


def labeled_conformance_graph(name: str):
    """The labeled twin of :func:`conformance_graph` (same sharing)."""
    key = f"labeled:{name}"
    if key not in _GRAPH_CACHE:
        _GRAPH_CACHE[key] = assign_random_labels(
            conformance_graph(name), LABEL_ALPHABET, seed=LABEL_SEED
        )
    return _GRAPH_CACHE[key]


def directed_conformance_graph(name: str):
    """The directed twin of :func:`conformance_graph` (same sharing)."""
    key = f"directed:{name}"
    if key not in _GRAPH_CACHE:
        _GRAPH_CACHE[key] = DIRECTED_GRAPH_BUILDERS[name]()
    return _GRAPH_CACHE[key]


def labeled_pattern(pname: str) -> LabeledPattern:
    base = LABELED_PATTERN_BUILDERS[pname]()
    return LabeledPattern(
        base, tuple(i % LABEL_ALPHABET for i in range(base.n_vertices))
    )


def backend_spec(name: str):
    options = BACKEND_OPTIONS.get(name)
    return get_backend(name, **options) if options else name


# ---------------------------------------------------------------------------
# the suite
# ---------------------------------------------------------------------------
class TestGoldenCounts:
    """Every registered backend must reproduce every pinned count."""

    @pytest.mark.parametrize("backend", ALL_BACKENDS)
    @pytest.mark.parametrize("gname", sorted(GRAPH_BUILDERS))
    @pytest.mark.parametrize("pname", sorted(PATTERN_BUILDERS))
    def test_pinned_count(self, backend, gname, pname):
        caps = available_backends()[backend].capabilities
        if not caps.supports_mode("plain"):
            pytest.skip(f"backend {backend!r} does not cover plain matching")
        graph = conformance_graph(gname)
        pattern = PATTERN_BUILDERS[pname]()
        got = count_pattern(graph, pattern, backend=backend_spec(backend))
        assert got == GOLDEN[gname][pname], (
            f"backend {backend!r} returned {got} for {pname} on {gname}; "
            f"golden count is {GOLDEN[gname][pname]}"
        )

    def test_goldens_cover_the_full_matrix(self):
        for golden, builders in (
            (GOLDEN, PATTERN_BUILDERS),
            (LABELED_GOLDEN, LABELED_PATTERN_BUILDERS),
            (INDUCED_GOLDEN, INDUCED_PATTERN_BUILDERS),
        ):
            assert set(golden) == set(GRAPH_BUILDERS)
            for gname, per_pattern in golden.items():
                assert set(per_pattern) == set(builders), gname
        # the directed matrix runs on its own graph set (arc data).
        assert set(DIRECTED_GOLDEN) == set(DIRECTED_GRAPH_BUILDERS)
        for gname, per_pattern in DIRECTED_GOLDEN.items():
            assert set(per_pattern) == set(DIRECTED_PATTERN_NAMES), gname


class TestLabeledGoldenCounts:
    """Labeled matching: every labeled-capable backend, pinned counts."""

    @pytest.mark.parametrize("backend", ALL_BACKENDS)
    @pytest.mark.parametrize("gname", sorted(GRAPH_BUILDERS))
    @pytest.mark.parametrize("pname", sorted(LABELED_PATTERN_BUILDERS))
    def test_pinned_labeled_count(self, backend, gname, pname):
        caps = available_backends()[backend].capabilities
        if not caps.supports_mode("labeled"):
            pytest.skip(f"backend {backend!r} does not cover labeled matching")
        graph = labeled_conformance_graph(gname)
        query = MatchQuery(labeled_pattern(pname))
        got = int(match_query(graph, query, backend=backend_spec(backend)))
        assert got == LABELED_GOLDEN[gname][pname], (
            f"backend {backend!r} returned {got} for labeled {pname} on "
            f"{gname}; golden count is {LABELED_GOLDEN[gname][pname]}"
        )


class TestInducedGoldenCounts:
    """Vertex-induced semantics: every induced-capable backend, pinned counts."""

    @pytest.mark.parametrize("backend", ALL_BACKENDS)
    @pytest.mark.parametrize("gname", sorted(GRAPH_BUILDERS))
    @pytest.mark.parametrize("pname", sorted(INDUCED_PATTERN_BUILDERS))
    def test_pinned_induced_count(self, backend, gname, pname):
        caps = available_backends()[backend].capabilities
        if not caps.supports_mode("induced"):
            pytest.skip(f"backend {backend!r} does not cover induced matching")
        graph = conformance_graph(gname)
        query = MatchQuery(
            INDUCED_PATTERN_BUILDERS[pname](), semantics="induced"
        )
        got = int(match_query(graph, query, backend=backend_spec(backend)))
        assert got == INDUCED_GOLDEN[gname][pname], (
            f"backend {backend!r} returned {got} for induced {pname} on "
            f"{gname}; golden count is {INDUCED_GOLDEN[gname][pname]}"
        )

    def test_induced_triangle_equals_plain(self):
        """Cross-matrix consistency: a clique has no non-edges to forbid."""
        for gname in GRAPH_BUILDERS:
            assert INDUCED_GOLDEN[gname]["triangle"] == GOLDEN[gname]["triangle"]


class TestDirectedGoldenCounts:
    """Directed matching: every directed-capable backend, pinned counts.

    The two fast paths (`vectorised`, `compiled`) additionally prove —
    via `MatchResult.backend` — that they served the query themselves
    rather than letting the selection policy fall back silently to the
    interpreter.
    """

    @pytest.mark.parametrize("backend", ALL_BACKENDS)
    @pytest.mark.parametrize("gname", sorted(DIRECTED_GRAPH_BUILDERS))
    @pytest.mark.parametrize("pname", DIRECTED_PATTERN_NAMES)
    def test_pinned_directed_count(self, backend, gname, pname):
        caps = available_backends()[backend].capabilities
        if not caps.supports_mode("directed"):
            pytest.skip(f"backend {backend!r} does not cover directed matching")
        graph = directed_conformance_graph(gname)
        query = MatchQuery(get_directed_pattern(pname))
        result = match_query(graph, query, backend=backend_spec(backend))
        assert int(result) == DIRECTED_GOLDEN[gname][pname], (
            f"backend {backend!r} returned {int(result)} for directed "
            f"{pname} on {gname}; golden count is {DIRECTED_GOLDEN[gname][pname]}"
        )
        if backend in DIRECTED_NO_FALLBACK:
            assert result.backend == backend, (
                f"{backend!r} fell back to {result.backend!r} on directed "
                f"{pname}/{gname} — the fast path must serve this itself"
            )

    def test_directed_fast_paths_are_registered(self):
        """The no-fallback list must stay in sync with the registry."""
        for name in DIRECTED_NO_FALLBACK:
            caps = available_backends()[name].capabilities
            assert caps.supports_mode("directed"), name


class TestDirectedEnumerationConformance:
    """Directed enumerating backends must match the interpreter's sets."""

    @pytest.mark.parametrize("backend", ENUMERATING_BACKENDS)
    @pytest.mark.parametrize("pname", ["ffl", "dcycle-3"])
    def test_directed_embedding_sets_match_interpreter(self, backend, pname):
        caps = available_backends()[backend].capabilities
        if not caps.supports_mode("directed"):
            pytest.skip(f"backend {backend!r} does not cover directed matching")
        graph = directed_conformance_graph("er-d-40")
        query = MatchQuery(get_directed_pattern(pname))
        from repro.core.session import get_session

        session = get_session(graph)
        reference = {
            tuple(e) for e in session.enumerate(query, backend="interpreter")
        }
        got = {
            tuple(e)
            for e in session.enumerate(query, backend=backend_spec(backend))
        }
        assert got == reference
        assert len(reference) == DIRECTED_GOLDEN["er-d-40"][pname]


class TestEnumerationConformance:
    """Enumerating backends must yield the interpreter's embedding sets."""

    @pytest.mark.parametrize("backend", ENUMERATING_BACKENDS)
    @pytest.mark.parametrize("pname", ["triangle", "house"])
    def test_embedding_sets_match_interpreter(self, backend, pname):
        caps = available_backends()[backend].capabilities
        if not caps.supports_mode("plain"):
            pytest.skip(f"backend {backend!r} does not cover plain matching")
        graph = conformance_graph("er-40")
        pattern = PATTERN_BUILDERS[pname]()
        reference = {
            tuple(e) for e in match_pattern(graph, pattern, backend="interpreter")
        }
        got = {
            tuple(e)
            for e in match_pattern(graph, pattern, backend=backend_spec(backend))
        }
        assert got == reference
        assert len(reference) == GOLDEN["er-40"][pname]


class TestTracedConformance:
    """Backends that declare ``traced`` must actually attach span trees.

    The capability column in ``repro backends`` (and the generated
    docs table) is a promise: with tracing enabled, an execution via
    the session yields a :class:`MatchResult` whose trace contains the
    backend's fine-grained spans (``depth`` for the frontier engines,
    ``task`` for the distributed master) — and the count is still the
    golden one.
    """

    def test_the_traced_set_is_nonempty(self):
        assert "vectorised" in TRACED_BACKENDS

    @pytest.mark.parametrize("backend", TRACED_BACKENDS)
    def test_traced_backend_attaches_fine_grained_spans(self, backend):
        from repro import obs

        caps = available_backends()[backend].capabilities
        if not caps.supports_mode("plain"):
            pytest.skip(f"backend {backend!r} does not cover plain matching")
        graph = conformance_graph("er-40")
        query = MatchQuery(PATTERN_BUILDERS["house"]())
        obs.enable()
        try:
            result = match_query(graph, query, backend=backend_spec(backend))
        finally:
            obs.disable()
        assert int(result) == GOLDEN["er-40"]["house"]
        assert result.trace is not None, (
            f"{backend!r} declares traced=True but attached no trace"
        )
        fine = [s for s in result.trace.spans() if s.name in ("depth", "task")]
        assert fine, (
            f"{backend!r} declares traced=True but emitted no depth/task spans"
        )
        # match -> execute -> depth/task: the promised nesting.
        assert result.trace.depth() >= 3
