"""Cross-backend golden-count conformance suite.

GraphZero's lesson (and GraphMini's, and this repo's own history): every
new execution strategy must count *identically* to the reference, on
real workloads, not just on the unit fixtures it was developed against.
This suite pins that invariant once and for all:

* backends are **auto-discovered** at collection time via
  :func:`repro.core.backend.available_backends` — registering a new
  backend automatically parametrises every test here over it, with zero
  new test code (constructor overrides for expensive backends go in
  :data:`BACKEND_OPTIONS`, defaulting to none);
* the workload is the catalog patterns x three graphs (an Erdős–Rényi
  generated graph, a skewed power-law graph, and a dataset proxy)
  against **pinned golden counts**.  The goldens were produced by the
  interpreter backend and, where brute force is tractable (`er-40`),
  verified against :func:`repro.baselines.bruteforce.bruteforce_count`;
  all graphs are deterministic (seeded generators / seeded proxies), so
  the numbers are stable across runs and platforms;
* backends that declare enumeration support must also yield the exact
  same *embedding sets* as the interpreter.

A backend that cannot serve plain-mode counting is skipped on the
counting tests (capabilities are declared, not probed), so the suite
stays green for special-purpose registrations too.
"""

from __future__ import annotations

import pytest

from repro.core.api import count_pattern, match_pattern
from repro.core.backend import available_backends, get_backend
from repro.graph.datasets import load_dataset
from repro.graph.generators import erdos_renyi, random_power_law
from repro.pattern.catalog import clique, house, pentagon, rectangle, triangle

# ---------------------------------------------------------------------------
# the pinned workload
# ---------------------------------------------------------------------------
GRAPH_BUILDERS = {
    "er-40": lambda: erdos_renyi(40, 0.25, seed=101),
    "powerlaw-150": lambda: random_power_law(150, avg_degree=8.0, exponent=2.2, seed=303),
    "wiki-vote-0.1": lambda: load_dataset("wiki-vote", scale=0.1, seed=2020),
}

PATTERN_BUILDERS = {
    "triangle": triangle,
    "rectangle": rectangle,
    "house": house,
    "pentagon": pentagon,
    "clique-4": lambda: clique(4),
}

#: golden exact counts: interpreter-produced, brute-force-verified on
#: er-40 (the graph small enough for the O(n^k) oracle).
GOLDEN = {
    "er-40": {
        "triangle": 153,
        "rectangle": 913,
        "house": 7722,
        "pentagon": 6270,
        "clique-4": 19,
    },
    "powerlaw-150": {
        "triangle": 470,
        "rectangle": 4460,
        "house": 108151,
        "pentagon": 43202,
        "clique-4": 381,
    },
    "wiki-vote-0.1": {
        "triangle": 891,
        "rectangle": 10599,
        "house": 333154,
        "pentagon": 132042,
        "clique-4": 961,
    },
}

#: constructor overrides for backends whose defaults are too heavy for
#: a conformance matrix (a future backend needs an entry only if its
#: defaults are unsuitable; absence means "instantiate by name").
BACKEND_OPTIONS = {
    "parallel": {"n_workers": 2},
    # counts only — the scaling replay is pinned in its own suite.
    "distributed": {"simulate": False},
}

#: collection-time discovery: every registered backend, automatically.
ALL_BACKENDS = sorted(available_backends())
ENUMERATING_BACKENDS = sorted(
    name
    for name, info in available_backends().items()
    if info.capabilities.enumeration
)

_GRAPH_CACHE: dict[str, object] = {}


def conformance_graph(name: str):
    """One shared graph object per name, so the session plan cache is
    reused across every backend x pattern combination."""
    if name not in _GRAPH_CACHE:
        _GRAPH_CACHE[name] = GRAPH_BUILDERS[name]()
    return _GRAPH_CACHE[name]


def backend_spec(name: str):
    options = BACKEND_OPTIONS.get(name)
    return get_backend(name, **options) if options else name


# ---------------------------------------------------------------------------
# the suite
# ---------------------------------------------------------------------------
class TestGoldenCounts:
    """Every registered backend must reproduce every pinned count."""

    @pytest.mark.parametrize("backend", ALL_BACKENDS)
    @pytest.mark.parametrize("gname", sorted(GRAPH_BUILDERS))
    @pytest.mark.parametrize("pname", sorted(PATTERN_BUILDERS))
    def test_pinned_count(self, backend, gname, pname):
        caps = available_backends()[backend].capabilities
        if not caps.supports_mode("plain"):
            pytest.skip(f"backend {backend!r} does not cover plain matching")
        graph = conformance_graph(gname)
        pattern = PATTERN_BUILDERS[pname]()
        got = count_pattern(graph, pattern, backend=backend_spec(backend))
        assert got == GOLDEN[gname][pname], (
            f"backend {backend!r} returned {got} for {pname} on {gname}; "
            f"golden count is {GOLDEN[gname][pname]}"
        )

    def test_goldens_cover_the_full_matrix(self):
        assert set(GOLDEN) == set(GRAPH_BUILDERS)
        for gname, per_pattern in GOLDEN.items():
            assert set(per_pattern) == set(PATTERN_BUILDERS), gname


class TestEnumerationConformance:
    """Enumerating backends must yield the interpreter's embedding sets."""

    @pytest.mark.parametrize("backend", ENUMERATING_BACKENDS)
    @pytest.mark.parametrize("pname", ["triangle", "house"])
    def test_embedding_sets_match_interpreter(self, backend, pname):
        caps = available_backends()[backend].capabilities
        if not caps.supports_mode("plain"):
            pytest.skip(f"backend {backend!r} does not cover plain matching")
        graph = conformance_graph("er-40")
        pattern = PATTERN_BUILDERS[pname]()
        reference = {
            tuple(e) for e in match_pattern(graph, pattern, backend="interpreter")
        }
        got = {
            tuple(e)
            for e in match_pattern(graph, pattern, backend=backend_spec(backend))
        }
        assert got == reference
        assert len(reference) == GOLDEN["er-40"][pname]
