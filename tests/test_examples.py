"""The documentation surface stays true: examples and the cookbook.

Full example runs take minutes (they are demonstrations, not tests); the
suite guards the cheap invariants: every example parses, exposes a
``main`` callable, carries a run instruction, and imports only public
``repro`` API (no private ``_`` modules) — so refactors cannot silently
break the documentation surface.

``docs/cookbook.md`` makes a stronger promise — its recipes are
*runnable* — so every ``python`` code block there is **executed** here,
each in its own namespace named after the section it appears under.
Recipes are written to be independent and fast (small seeded proxies,
``repeats=1`` sweeps).
"""

from __future__ import annotations

import ast
import re
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).parent.parent / "examples"
EXAMPLES = sorted(EXAMPLES_DIR.glob("*.py"))
COOKBOOK = Path(__file__).parent.parent / "docs" / "cookbook.md"


def _tree(path: Path) -> ast.Module:
    return ast.parse(path.read_text(), filename=str(path))


@pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.stem)
def test_example_parses_and_has_main(path):
    tree = _tree(path)
    functions = {n.name for n in ast.walk(tree) if isinstance(n, ast.FunctionDef)}
    assert "main" in functions, f"{path.name} must define main()"


@pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.stem)
def test_example_has_run_instruction_and_docstring(path):
    tree = _tree(path)
    doc = ast.get_docstring(tree)
    assert doc, f"{path.name} needs a module docstring"
    assert "Run:" in doc, f"{path.name} docstring must include a Run: line"


@pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.stem)
def test_example_guards_main(path):
    text = path.read_text()
    assert 'if __name__ == "__main__"' in text


@pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.stem)
def test_example_imports_resolve(path):
    """Every repro import target in the example must exist."""
    import importlib

    tree = _tree(path)
    for node in ast.walk(tree):
        if isinstance(node, ast.ImportFrom) and node.module and node.module.startswith("repro"):
            mod = importlib.import_module(node.module)
            for alias in node.names:
                assert hasattr(mod, alias.name), (
                    f"{path.name}: {node.module}.{alias.name} does not exist"
                )
        elif isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name.startswith("repro"):
                    importlib.import_module(alias.name)


def test_at_least_the_required_examples_exist():
    names = {p.stem for p in EXAMPLES}
    assert "quickstart" in names
    assert len(names) >= 3  # the deliverable floor; we ship far more


# ---------------------------------------------------------------------------
# the cookbook executes
# ---------------------------------------------------------------------------
_HEADING_RE = re.compile(r"^#{1,6}\s+(.*)$")
_FENCE_OPEN_RE = re.compile(r"^```(\w*)\s*$")


def extract_python_blocks(path: Path) -> list[tuple[str, int, str]]:
    """(section, start line, source) for each ``python`` fence."""
    blocks: list[tuple[str, int, str]] = []
    section = "preamble"
    language: str | None = None
    start = 0
    lines: list[str] = []
    for lineno, line in enumerate(path.read_text().splitlines(), start=1):
        if language is None:
            heading = _HEADING_RE.match(line)
            if heading:
                section = heading.group(1).strip()
                continue
            fence = _FENCE_OPEN_RE.match(line)
            if fence:
                language = fence.group(1)
                start = lineno + 1
                lines = []
        elif line.strip() == "```":
            if language == "python":
                blocks.append((section, start, "\n".join(lines) + "\n"))
            language = None
        else:
            lines.append(line)
    assert language is None, f"{path}: unterminated code fence"
    return blocks


COOKBOOK_BLOCKS = extract_python_blocks(COOKBOOK)


def _slug(section: str) -> str:
    return re.sub(r"[^a-z0-9]+", "-", section.lower()).strip("-")


def test_cookbook_has_recipes():
    # the cookbook must stay a real, executable docs page
    assert len(COOKBOOK_BLOCKS) >= 5
    assert len({section for section, _, _ in COOKBOOK_BLOCKS}) >= 5


@pytest.mark.parametrize(
    "section,start,source",
    COOKBOOK_BLOCKS,
    ids=[_slug(section) for section, _, _ in COOKBOOK_BLOCKS],
)
def test_cookbook_block_executes(section, start, source):
    code = compile(source, f"{COOKBOOK}:{start} ({section})", "exec")
    namespace: dict = {"__name__": "__cookbook__"}
    exec(code, namespace)
