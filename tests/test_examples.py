"""Examples stay importable and structurally sound.

Full example runs take minutes (they are demonstrations, not tests); the
suite guards the cheap invariants: every example parses, exposes a
``main`` callable, carries a run instruction, and imports only public
``repro`` API (no private ``_`` modules) — so refactors cannot silently
break the documentation surface.
"""

from __future__ import annotations

import ast
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).parent.parent / "examples"
EXAMPLES = sorted(EXAMPLES_DIR.glob("*.py"))


def _tree(path: Path) -> ast.Module:
    return ast.parse(path.read_text(), filename=str(path))


@pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.stem)
def test_example_parses_and_has_main(path):
    tree = _tree(path)
    functions = {n.name for n in ast.walk(tree) if isinstance(n, ast.FunctionDef)}
    assert "main" in functions, f"{path.name} must define main()"


@pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.stem)
def test_example_has_run_instruction_and_docstring(path):
    tree = _tree(path)
    doc = ast.get_docstring(tree)
    assert doc, f"{path.name} needs a module docstring"
    assert "Run:" in doc, f"{path.name} docstring must include a Run: line"


@pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.stem)
def test_example_guards_main(path):
    text = path.read_text()
    assert 'if __name__ == "__main__"' in text


@pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.stem)
def test_example_imports_resolve(path):
    """Every repro import target in the example must exist."""
    import importlib

    tree = _tree(path)
    for node in ast.walk(tree):
        if isinstance(node, ast.ImportFrom) and node.module and node.module.startswith("repro"):
            mod = importlib.import_module(node.module)
            for alias in node.names:
                assert hasattr(mod, alias.name), (
                    f"{path.name}: {node.module}.{alias.name} does not exist"
                )
        elif isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name.startswith("repro"):
                    importlib.import_module(alias.name)


def test_at_least_the_required_examples_exist():
    names = {p.stem for p in EXAMPLES}
    assert "quickstart" in names
    assert len(names) >= 3  # the deliverable floor; we ship far more
