"""Shared fixtures: small deterministic graphs and the pattern zoo."""

from __future__ import annotations

import pytest

from repro.graph.builder import graph_from_edges
from repro.graph.generators import complete_graph, erdos_renyi, random_power_law
from repro.pattern.catalog import (
    clique,
    cycle_6_tri,
    hourglass,
    house,
    pentagon,
    rectangle,
    triangle,
)


@pytest.fixture(scope="session")
def er_small():
    """Erdős–Rényi graph small enough for brute-force oracles."""
    return erdos_renyi(40, 0.25, seed=101)


@pytest.fixture(scope="session")
def er_medium():
    """A bit larger; still brute-forceable for 3–4-vertex patterns."""
    return erdos_renyi(120, 0.08, seed=202)


@pytest.fixture(scope="session")
def powerlaw_small():
    """Skewed degrees — exercises the imbalance paths."""
    return random_power_law(150, avg_degree=8.0, exponent=2.2, seed=303)


@pytest.fixture(scope="session")
def k7():
    return complete_graph(7)


@pytest.fixture(scope="session")
def toy_graph():
    """The 8-vertex graph of the paper's Figure 1."""
    # Vertices 1..8 in the figure; we use 0-based ids 0..7.
    # Edges reconstructed from the figure's embeddings: the house
    # instances use vertices {3,4,5,6,7}; vertex 1,2,8 are periphery.
    return graph_from_edges(
        [
            (3, 4), (3, 5), (4, 5), (4, 6), (5, 7), (6, 7), (4, 7), (5, 6),
            (0, 3), (1, 4), (2, 7),
        ]
    )


@pytest.fixture(
    params=["triangle", "rectangle", "house", "pentagon", "hourglass"],
    scope="session",
)
def small_pattern(request):
    return {
        "triangle": triangle,
        "rectangle": rectangle,
        "house": house,
        "pentagon": pentagon,
        "hourglass": hourglass,
    }[request.param]()


@pytest.fixture(scope="session")
def all_small_patterns():
    return [triangle(), rectangle(), house(), pentagon(), hourglass(), clique(4)]


@pytest.fixture(scope="session")
def six_vertex_patterns():
    return [cycle_6_tri()]
