"""Code generation: the emitted source and its semantic equivalence."""

import pytest

from repro.core.codegen import compile_plan_function, generate_source
from repro.core.config import Configuration
from repro.core.engine import Engine
from repro.core.restrictions import generate_restriction_sets
from repro.core.schedule import generate_schedules
from repro.graph.generators import complete_graph, erdos_renyi
from repro.pattern.catalog import cycle_6_tri, house, pentagon, rectangle, triangle


def plans_for(pattern, max_schedules=3, max_sets=2, iep_k=0):
    out = []
    for s in generate_schedules(pattern, dedup_automorphic=True)[:max_schedules]:
        for rs in generate_restriction_sets(pattern)[:max_sets]:
            cfg = Configuration(pattern, s, rs)
            if iep_k:
                from repro.core.schedule import intersection_free_suffix_length

                k = min(iep_k, intersection_free_suffix_length(pattern, s))
                if k == 0:
                    continue
                try:
                    out.append(cfg.compile(iep_k=k))
                except ValueError:
                    continue
            else:
                out.append(cfg.compile())
    return out


class TestSource:
    def test_house_source_shape(self):
        """The generated code mirrors Fig. 5(b): nested loops, an
        intersection for the D loop, a bound check for the restriction."""
        cfg = Configuration(house(), (0, 1, 2, 3, 4), frozenset({(0, 1)}))
        src = generate_source(cfg.compile())
        assert "def generated_count(graph):" in src
        assert "for v0 in all_vertices.tolist():" in src
        assert "bounded_slice(nb0, None, v0)" in src  # id(A)>id(B) break
        assert "intersect_many([nb1, nb2])" in src  # N(vB) ∩ N(vC) for D
        assert src.count("for v") == 4  # last loop is counted, not iterated

    def test_iep_source_shape(self):
        rs = generate_restriction_sets(cycle_6_tri())[0]
        cfg = Configuration(cycle_6_tri(), (0, 1, 2, 3, 4, 5), rs)
        src = generate_source(cfg.compile(iep_k=3))
        assert "# IEP over 3 inner vertices" in src
        assert "B0" in src and "B1" in src

    def test_source_compiles_and_is_idempotent(self):
        cfg = Configuration(triangle(), (0, 1, 2), frozenset({(0, 1), (1, 2)}))
        a = generate_source(cfg.compile())
        b = generate_source(cfg.compile())
        assert a == b
        compile(a, "<test>", "exec")

    def test_docstring_carries_configuration(self):
        cfg = Configuration(triangle(), (0, 1, 2), frozenset({(0, 1)}))
        src = generate_source(cfg.compile())
        assert "id(0)>id(1)" in src


class TestEquivalence:
    @pytest.mark.parametrize(
        "pattern",
        [triangle(), rectangle(), house(), pentagon()],
        ids=lambda p: p.name,
    )
    def test_matches_engine_no_iep(self, pattern, er_small):
        for plan in plans_for(pattern):
            gen = compile_plan_function(plan)
            assert gen(er_small) == Engine(er_small, plan).count(), plan.config.describe()

    @pytest.mark.parametrize(
        "pattern",
        [house(), cycle_6_tri()],
        ids=lambda p: p.name,
    )
    def test_matches_engine_iep(self, pattern):
        g = erdos_renyi(35, 0.3, seed=31)
        for plan in plans_for(pattern, iep_k=3):
            gen = compile_plan_function(plan)
            assert gen(g) == Engine(g, plan).count(), plan.config.describe()

    def test_small_graph_guard(self):
        plan = plans_for(pentagon(), max_schedules=1, max_sets=1)[0]
        gen = compile_plan_function(plan)
        assert gen(complete_graph(3)) == 0

    def test_counter_is_callable_wrapper(self, er_small):
        plan = plans_for(triangle(), 1, 1)[0]
        gen = compile_plan_function(plan)
        assert gen(er_small) == gen.function(er_small)
        assert gen.plan is plan
        assert "def generated_count" in gen.source


class TestGeneratedPerformanceShape:
    def test_codegen_not_slower_than_engine(self, er_medium):
        """The whole point of generation: strip interpretation overhead.
        We assert 'not meaningfully slower' rather than a speedup factor
        to stay robust on loaded CI machines."""
        import time

        plan = plans_for(house(), 1, 1)[0]
        gen = compile_plan_function(plan)
        engine = Engine(er_medium, plan)

        t0 = time.perf_counter()
        a = engine.count()
        t_engine = time.perf_counter() - t0
        t0 = time.perf_counter()
        b = gen(er_medium)
        t_gen = time.perf_counter() - t0
        assert a == b
        assert t_gen <= t_engine * 1.5


class TestPrefixKernels:
    """generate_source(split_depth=s): the worker-side entry point."""

    def test_prefix_source_shape(self):
        cfg = Configuration(house(), (0, 1, 2, 3, 4), frozenset({(0, 1)}))
        from repro.core.codegen import generate_source as gen_src

        src = gen_src(cfg.compile(), func_name="generated_count_prefix",
                      split_depth=1)
        assert "def generated_count_prefix(graph, prefix):" in src
        assert "v0 = prefix[0]" in src
        assert "for v0" not in src  # the prefix loop is gone
        assert "for v1" in src  # the next loop is executed

    def test_split_depth_out_of_range(self):
        plan = plans_for(triangle(), 1, 1)[0]
        from repro.core.codegen import generate_source as gen_src

        with pytest.raises(ValueError):
            gen_src(plan, split_depth=plan.n_loops)
        with pytest.raises(ValueError):
            gen_src(plan, split_depth=-1)

    @pytest.mark.parametrize(
        "pattern", [triangle(), rectangle(), house(), pentagon()],
        ids=lambda p: p.name,
    )
    def test_prefix_sums_match_full_count(self, pattern):
        from repro.core.codegen import compile_prefix_function

        g = erdos_renyi(40, 0.25, seed=17)
        for plan in plans_for(pattern, max_schedules=2, max_sets=2):
            engine = Engine(g, plan)
            full = engine.count()
            for sd in range(1, plan.n_loops):
                kernel = compile_prefix_function(plan, sd)
                raw = sum(kernel(g, p) for p in engine.iter_prefixes(sd))
                assert engine.finalize_count(raw) == full, (plan.config.describe(), sd)

    def test_prefix_sums_match_with_iep(self):
        from repro.core.codegen import compile_prefix_function

        g = erdos_renyi(40, 0.25, seed=19)
        for plan in plans_for(cycle_6_tri(), max_schedules=1, max_sets=1, iep_k=3):
            engine = Engine(g, plan)
            full = engine.count()
            kernel = compile_prefix_function(plan, 1)
            raw = sum(kernel(g, p) for p in engine.iter_prefixes(1))
            assert engine.finalize_count(raw) == full

    def test_prefix_counter_wrapper_fields(self, er_small):
        from repro.core.codegen import compile_prefix_function

        plan = plans_for(house(), 1, 1)[0]
        kernel = compile_prefix_function(plan, 1)
        assert kernel.split_depth == 1
        assert kernel.plan is plan
        assert "Worker kernel" in kernel.source


class TestModeKernels:
    """The labeled and induced kernel variants."""

    def test_induced_source_uses_difference(self):
        from repro.core.codegen import compile_induced_function

        plan = plans_for(rectangle(), 1, 1)[0]
        gen = compile_induced_function(plan)
        assert gen.mode == "induced"
        assert "difference(" in gen.source
        assert "Vertex-induced kernel" in gen.source

    def test_labeled_source_filters_by_label(self):
        from repro.core.codegen import compile_labeled_function
        from repro.pattern.labeled import LabeledPattern

        plan = plans_for(triangle(), 1, 1)[0]
        lp = LabeledPattern(triangle(), (0, 0, 1))
        gen = compile_labeled_function(plan, lp)
        assert gen.mode == "labeled"
        assert "labels = graph.labels" in gen.source
        assert "labels[" in gen.source

    def test_plain_counter_mode_defaults_plain(self):
        plan = plans_for(triangle(), 1, 1)[0]
        assert compile_plan_function(plan).mode == "plain"

    @pytest.mark.parametrize(
        "pattern", [rectangle(), house()], ids=lambda p: p.name
    )
    def test_induced_kernel_matches_interpreter(self, pattern):
        from repro.baselines.bruteforce import bruteforce_induced_count
        from repro.core.codegen import compile_induced_function

        g = erdos_renyi(35, 0.25, seed=23)
        expected = bruteforce_induced_count(g, pattern)
        for plan in plans_for(pattern, max_schedules=2, max_sets=2):
            gen = compile_induced_function(plan)
            assert gen(g) == expected, plan.config.describe()

    @pytest.mark.parametrize(
        "pattern", [triangle(), house()], ids=lambda p: p.name
    )
    def test_labeled_kernel_matches_bruteforce(self, pattern):
        from repro.core.codegen import compile_labeled_function
        from repro.core.labeled import labeled_bruteforce_count
        from repro.graph.labeled import assign_random_labels
        from repro.pattern.labeled import LabeledPattern

        g = erdos_renyi(35, 0.25, seed=29)
        lg = assign_random_labels(g, 2, seed=7)
        lp = LabeledPattern(pattern, tuple(i % 2 for i in range(pattern.n_vertices)))
        expected = labeled_bruteforce_count(lg, lp)
        # restrictions must break only the label-preserving automorphisms,
        # so the plan comes from the labeled planner (as in the session)
        from repro.core.labeled import LabeledMatcher

        plan = LabeledMatcher(lp).plan(lg, use_iep=False).plan
        gen = compile_labeled_function(plan, lp)
        assert gen(lg) == expected, plan.config.describe()

    def test_variants_reject_iep_plans(self):
        from repro.core.codegen import (
            compile_induced_function,
            compile_labeled_function,
        )
        from repro.pattern.labeled import LabeledPattern

        plan = plans_for(house(), 1, 1, iep_k=2)[0]
        with pytest.raises(ValueError, match="IEP-free"):
            compile_induced_function(plan)
        lp = LabeledPattern(house(), (0, 1, 0, 1, 0))
        with pytest.raises(ValueError, match="IEP-free"):
            compile_labeled_function(plan, lp)

    def test_labeled_induced_combination_rejected(self):
        plan = plans_for(triangle(), 1, 1)[0]
        with pytest.raises(ValueError, match="not supported"):
            generate_source(plan, depth_labels=(0, 0, 1), antideps=((), (), ()))
