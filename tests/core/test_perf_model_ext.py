"""Extended performance model (4-cycle structural information, §V-C)."""

import pytest

from repro.core.config import Configuration, enumerate_configurations
from repro.core.perf_model import PerformanceModel
from repro.core.perf_model_ext import (
    ExtendedGraphStats,
    ExtendedPerformanceModel,
    estimate_cost_ext,
    four_cycle_count,
    four_cycle_count_sampled,
    loop_size_estimates_ext,
)
from repro.core.restrictions import generate_restriction_sets
from repro.core.schedule import generate_schedules
from repro.graph.builder import graph_from_edges
from repro.graph.generators import complete_graph, erdos_renyi, watts_strogatz
from repro.pattern.catalog import paper_patterns, rectangle, rectangle_house, triangle


class TestFourCycleCount:
    def test_single_square(self):
        g = graph_from_edges([(0, 1), (1, 2), (2, 3), (3, 0)])
        assert four_cycle_count(g) == 1

    def test_triangle_has_none(self):
        g = graph_from_edges([(0, 1), (1, 2), (0, 2)])
        assert four_cycle_count(g) == 0

    def test_complete_graphs(self):
        # K_n contains 3 * C(n,4) distinct 4-cycles.
        from math import comb

        for n in (4, 5, 6):
            assert four_cycle_count(complete_graph(n)) == 3 * comb(n, 4)

    def test_k23_bipartite(self):
        # K_{2,3}: choose both left vertices and any 2 right: C(3,2) = 3.
        g = graph_from_edges([(0, 2), (0, 3), (0, 4), (1, 2), (1, 3), (1, 4)])
        assert four_cycle_count(g) == 3

    def test_sampled_close_to_exact(self):
        g = erdos_renyi(120, 0.1, seed=3)
        exact = four_cycle_count(g)
        est = four_cycle_count_sampled(g, max_pairs=4000, seed=5)
        assert est == pytest.approx(exact, rel=0.5)

    def test_sampled_falls_back_to_exact_when_small(self):
        g = erdos_renyi(30, 0.2, seed=1)
        assert four_cycle_count_sampled(g, max_pairs=10**6) == four_cycle_count(g)


class TestExtendedStats:
    def test_of(self):
        s = ExtendedGraphStats.of(complete_graph(6))
        assert s.four_cycles == four_cycle_count(complete_graph(6))
        assert s.wedges > 0

    def test_rectangle_regime_estimator(self):
        # On a square-rich, triangle-poor graph the non-adjacent common-
        # neighbour estimate must exceed the triangle-based estimate.
        g = watts_strogatz(300, k=2, beta=0.0, seed=1)  # ring: no squares...
        s = ExtendedGraphStats.of(erdos_renyi(200, 0.08, seed=2))
        assert s.expected_common_nonadjacent >= 1.0


class TestExtendedCosts:
    def test_rectangle_dependency_uses_rect_estimator(self):
        """In the rectangle pattern scheduled (0,1,2,3), vertex 3's deps
        {0, 2} are non-adjacent — the extended model must treat it as the
        4-cycle regime, the base model as the triangle regime."""
        g = watts_strogatz(400, k=3, beta=0.05, seed=7)  # clustered
        ext = ExtendedGraphStats.of(g)
        cfg = Configuration(rectangle(), (0, 1, 2, 3), frozenset())
        plan = cfg.compile()
        ls_ext = loop_size_estimates_ext(plan, ext)
        from repro.core.perf_model import loop_size_estimates

        ls_base = loop_size_estimates(plan, ext.base)
        assert ls_ext[3] != ls_base[3]

    def test_triangle_pattern_unchanged(self):
        """Pure-triangle dependencies must reproduce the base model."""
        g = erdos_renyi(150, 0.1, seed=11)
        ext = ExtendedGraphStats.of(g)
        cfg = Configuration(triangle(), (0, 1, 2), frozenset({(0, 1)}))
        plan = cfg.compile()
        from repro.core.perf_model import estimate_cost

        assert estimate_cost_ext(plan, ext) == pytest.approx(
            estimate_cost(plan, ext.base), rel=1e-9
        )

    def test_ranking_works(self):
        g = erdos_renyi(150, 0.1, seed=13)
        ext = ExtendedGraphStats.of(g)
        pattern = rectangle_house()  # P4: the misprediction case
        configs = enumerate_configurations(
            pattern,
            generate_schedules(pattern, dedup_automorphic=True)[:6],
            generate_restriction_sets(pattern, max_sets=4),
        )
        model = ExtendedPerformanceModel(ext)
        ranked = model.rank(configs)
        costs = [r.predicted_cost for r in ranked]
        assert costs == sorted(costs)
        assert model.choose(configs).predicted_cost == costs[0]

    def test_choose_empty(self):
        ext = ExtendedGraphStats.of(complete_graph(5))
        with pytest.raises(ValueError):
            ExtendedPerformanceModel(ext).choose([])

    def test_p4_selection_quality(self):
        """The extended model's pick for P4 should be no worse than the
        base model's pick (measured), on a clustered graph — the exact
        failure §V-C reports for the base model."""
        import time

        from repro.core.codegen import compile_plan_function

        g = watts_strogatz(350, k=4, beta=0.15, seed=17)
        ext = ExtendedGraphStats.of(g)
        pattern = paper_patterns()["P4"]
        rs = generate_restriction_sets(pattern, max_sets=4)[0]
        configs = [
            Configuration(pattern, s, rs)
            for s in generate_schedules(pattern, dedup_automorphic=True)
        ]
        base_pick = PerformanceModel(ext.base).choose(configs)
        ext_pick = ExtendedPerformanceModel(ext).choose(configs)

        def measure(plan):
            fn = compile_plan_function(plan)
            t0 = time.perf_counter()
            fn(g)
            return time.perf_counter() - t0

        t_base = measure(base_pick.plan)
        t_ext = measure(ext_pick.plan)
        # Loose: the extended pick must not be dramatically worse.
        assert t_ext <= 3.0 * t_base
