"""Algorithm 1: 2-cycle based automorphism elimination."""

from math import factorial

import pytest

from repro.core.restrictions import (
    NonUniformOvercountError,
    RestrictionGenerator,
    check_restrictions_applicable,
    generate_restriction_sets,
    iep_overcount_multiplicity,
    no_conflict,
    restriction_overcount_factor,
    surviving_permutations,
    validate_restriction_set,
)
from repro.pattern.automorphism import automorphism_count, automorphisms
from repro.pattern.catalog import (
    clique,
    cycle_6_tri,
    house,
    pentagon,
    rectangle,
    triangle,
)
from repro.pattern.pattern import Pattern


class TestNoConflict:
    def test_paper_example_round1(self):
        """Figure 4(d): after {id(B)>id(D), id(A)>id(C)}, permutation ②
        (A,D,C,B) is eliminated."""
        # A=0, B=1, C=2, D=3; ② maps A→D, D→C, C→B, B→A i.e. p=(3,0,1,2).
        perm = (3, 0, 1, 2)
        res = {(1, 3), (0, 2)}  # id(B)>id(D), id(A)>id(C)
        assert not no_conflict(perm, res)

    def test_direct_contradiction(self):
        # Restriction (0,1) plus the swap (0 1) forces a 2-cycle in g.
        assert not no_conflict((1, 0), {(0, 1)})

    def test_identity_survives_acyclic_set(self):
        assert no_conflict((0, 1, 2), {(0, 1), (1, 2)})

    def test_identity_eliminated_by_cyclic_set(self):
        # A contradictory restriction set kills even the identity.
        assert not no_conflict((0, 1, 2), {(0, 1), (1, 2), (2, 0)})

    def test_unrelated_permutation_survives(self):
        assert no_conflict((0, 2, 1), {(0, 1)}) is True or True  # smoke
        # (1 2) with restriction id(0)>id(1): edges 0→1, 0→2: acyclic.
        assert no_conflict((0, 2, 1), {(0, 1)})

    def test_empty_set_eliminates_nothing(self):
        perms = automorphisms(rectangle())
        assert surviving_permutations(perms, frozenset()) == perms


class TestValidate:
    def test_valid_triangle_chain(self):
        assert validate_restriction_set(triangle(), frozenset({(0, 1), (1, 2)}))

    def test_insufficient_set_rejected(self):
        # One restriction cannot break S3 completely.
        assert not validate_restriction_set(triangle(), frozenset({(0, 1)}))

    def test_contradictory_set_rejected(self):
        assert not validate_restriction_set(
            triangle(), frozenset({(0, 1), (1, 2), (2, 0)})
        )

    def test_asymmetric_pattern_empty_set(self):
        # The smallest connected asymmetric graphs have 6 vertices; this
        # one has a trivial group, so the empty set validates.
        p = Pattern(6, [(0, 2), (0, 3), (0, 5), (1, 2), (1, 4), (2, 3)])
        assert automorphism_count(p) == 1
        assert validate_restriction_set(p, frozenset())


class TestGeneration:
    @pytest.mark.parametrize(
        "pattern",
        [triangle(), rectangle(), house(), pentagon(), cycle_6_tri(), clique(4)],
        ids=lambda p: p.name,
    )
    def test_every_generated_set_is_valid(self, pattern):
        sets = generate_restriction_sets(pattern)
        assert sets, "at least one set must be generated"
        for rs in sets:
            assert validate_restriction_set(pattern, rs), rs

    def test_validate_step_is_load_bearing(self):
        """Algorithm 1's lines 19-23 are not a mere safety net: for the
        rectangle, most 2-cycle branches eliminate every non-identity
        permutation *pairwise* yet over-restrict (both members of some
        orbit violate the set), losing embeddings.  validate() is what
        rejects them."""
        unvalidated = generate_restriction_sets(rectangle(), validate=False)
        validated = generate_restriction_sets(rectangle(), validate=True)
        assert len(validated) < len(unvalidated)
        bad = [rs for rs in unvalidated if not validate_restriction_set(rectangle(), rs)]
        assert bad, "expected some pairwise-eliminating but invalid sets"
        # Every bad set still reduces the surviving group to identity.
        perms = automorphisms(rectangle())
        for rs in bad[:5]:
            assert surviving_permutations(perms, rs) == [tuple(range(4))]

    @pytest.mark.parametrize(
        "pattern",
        [triangle(), rectangle(), house(), pentagon(), cycle_6_tri()],
        ids=lambda p: p.name,
    )
    def test_only_identity_survives(self, pattern):
        perms = automorphisms(pattern)
        for rs in generate_restriction_sets(pattern):
            survivors = surviving_permutations(perms, rs)
            assert survivors == [tuple(range(pattern.n_vertices))]

    def test_multiple_sets_generated(self):
        """The paper's headline: unlike GraphZero, many sets per pattern."""
        assert len(generate_restriction_sets(rectangle())) > 1
        assert len(generate_restriction_sets(house())) > 1
        assert len(generate_restriction_sets(triangle())) > 1

    def test_house_contains_paper_restriction(self):
        """Fig. 5 uses id(A) > id(B) for the house — one of our sets."""
        sets = generate_restriction_sets(house())
        assert frozenset({(0, 1)}) in sets or frozenset({(1, 0)}) in sets

    def test_both_orientations_appear(self):
        sets = generate_restriction_sets(house())
        flat = {r for rs in sets for r in rs}
        assert (0, 1) in flat and (1, 0) in flat

    def test_asymmetric_pattern_gets_empty_set(self):
        p = Pattern(6, [(0, 2), (0, 3), (0, 5), (1, 2), (1, 4), (2, 3)])
        assert generate_restriction_sets(p) == [frozenset()]

    def test_max_sets_cap(self):
        gen = RestrictionGenerator(clique(5), max_sets=3)
        assert len(gen.generate()) <= 3

    def test_deterministic_order(self):
        a = generate_restriction_sets(house())
        b = generate_restriction_sets(house())
        assert a == b

    def test_restrictions_use_two_cycle_vertices(self):
        """Every generated restriction pair is a 2-cycle of some
        automorphism — the defining property of Algorithm 1."""
        pattern = rectangle()
        from repro.pattern.permutation import two_cycles

        all_two_cycles = set()
        for perm in automorphisms(pattern):
            for a, b in two_cycles(perm):
                all_two_cycles.add((a, b))
                all_two_cycles.add((b, a))
        for rs in generate_restriction_sets(pattern):
            for pair in rs:
                assert pair in all_two_cycles


class TestOvercount:
    def test_complete_set_multiplicity_one(self):
        for rs in generate_restriction_sets(house()):
            assert iep_overcount_multiplicity(house(), rs) == 1

    def test_empty_set_multiplicity_is_group_order(self):
        assert iep_overcount_multiplicity(triangle(), frozenset()) == 6
        assert iep_overcount_multiplicity(rectangle(), frozenset()) == 8

    def test_triangle_partial_set(self):
        """id(0)>id(1) keeps 3 of each triangle's 6 labellings —
        the case where the paper's no_conflict count (5) is wrong."""
        kept = frozenset({(0, 1)})
        assert iep_overcount_multiplicity(triangle(), kept) == 3
        assert restriction_overcount_factor(triangle(), kept) == 5

    def test_non_uniform_raises(self):
        """Opposite-edge restrictions on the rectangle: multiplicity
        oscillates between 2 and 4 across orbits (see config docstring)."""
        kept = frozenset({(0, 1), (2, 3)})
        with pytest.raises(NonUniformOvercountError):
            iep_overcount_multiplicity(rectangle(), kept)

    def test_multiplicity_divides_group_order(self):
        kept = frozenset({(0, 1)})
        m = iep_overcount_multiplicity(pentagon(), kept)
        assert 1 <= m <= automorphism_count(pentagon())


class TestApplicability:
    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            check_restrictions_applicable(triangle(), {(0, 3)})

    def test_rejects_reflexive(self):
        with pytest.raises(ValueError):
            check_restrictions_applicable(triangle(), {(1, 1)})

    def test_accepts_valid(self):
        check_restrictions_applicable(triangle(), {(0, 1), (1, 2)})


class TestPaperNumbers:
    def test_seven_clique_automorphisms(self):
        """§II-B: 'For a 7-clique pattern, each embedding has 5,040
        automorphisms.'"""
        assert automorphism_count(clique(7)) == factorial(7) == 5040

    def test_clique_chain_restriction_exists(self):
        """For cliques the total order chain must be among the sets."""
        sets = generate_restriction_sets(clique(4), max_sets=500)
        chains = [
            frozenset({(a, b) for a, b in zip(order, order[1:])})
            for order in [(0, 1, 2, 3), (3, 2, 1, 0)]
        ]
        # At least one total-order chain (up to orientation) is found.
        assert any(any(chain <= rs for rs in sets) for chain in chains)


class TestOrbitAnchorFallback:
    """The 2-cycle scan alone cannot break 2-cycle-free groups (pure
    rotations); the orbit-anchor fallback must kick in."""

    def test_cyclic_group_c3(self):
        from repro.core.restrictions import RestrictionGenerator, surviving_permutations
        from repro.pattern.catalog import triangle

        c3 = [(0, 1, 2), (1, 2, 0), (2, 0, 1)]
        sets = RestrictionGenerator(triangle(), auts=c3).generate()
        assert sets, "fallback must produce at least one set"
        for rs in sets:
            assert len(surviving_permutations(c3, rs)) == 1

    def test_cyclic_group_c4(self):
        from repro.core.restrictions import RestrictionGenerator, surviving_permutations
        from repro.pattern.catalog import cycle

        c4 = [(0, 1, 2, 3), (1, 2, 3, 0), (2, 3, 0, 1), (3, 0, 1, 2)]
        sets = RestrictionGenerator(cycle(4), auts=c4).generate()
        assert len(sets) >= 2, "one anchor choice per orbit vertex"
        for rs in sets:
            assert len(surviving_permutations(c4, rs)) == 1

    def test_anchor_sets_validate_on_complete_graph(self):
        from repro.core.restrictions import (
            RestrictionGenerator,
            validate_restriction_set,
        )
        from repro.pattern.catalog import cycle

        c4 = [(0, 1, 2, 3), (1, 2, 3, 0), (2, 3, 0, 1), (3, 0, 1, 2)]
        for rs in RestrictionGenerator(cycle(4), auts=c4).generate():
            assert validate_restriction_set(cycle(4), rs, auts=c4)

    def test_fallback_not_triggered_for_full_groups(self):
        """Undirected pattern groups always expose 2-cycles at the first
        level; the paper's algorithm works unmodified — anchor sets
        (|orbit|-1 restrictions on one shared vertex) should not be the
        *only* output shape."""
        from repro.core.restrictions import generate_restriction_sets
        from repro.pattern.catalog import rectangle

        sets = generate_restriction_sets(rectangle())
        # paper Figure 4(d): valid rectangle sets carry 3 restrictions,
        # e.g. {id(A)>id(B), id(A)>id(C), id(B)>id(D)}
        assert min(len(rs) for rs in sets) == 3
        assert frozenset({(0, 1), (0, 2), (1, 3)}) in sets
