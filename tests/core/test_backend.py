"""The pluggable execution-backend layer.

Two halves: registry mechanics (registration, lookup, the
compiled-first selection policy) and the cross-backend equivalence
catalog — every registered backend must return counts identical to the
brute-force oracle for every pattern in the catalog, on plain,
induced, labeled and directed workloads where the backend supports
them.
"""

import pytest

from repro.baselines.bruteforce import (
    bruteforce_count,
    bruteforce_directed_count,
    bruteforce_induced_count,
)
from repro.core.api import PatternMatcher, count_pattern
from repro.core.backend import (
    BackendUnsupportedError,
    ExecutionBackend,
    MatchContext,
    available_backends,
    backend_names,
    get_backend,
    make_prefix_counter,
    plain_context,
    register_backend,
    select_backend,
)
from repro.core.config import Configuration
from repro.core.directed import DirectedMatcher
from repro.core.induced import induced_count
from repro.core.labeled import LabeledMatcher, labeled_bruteforce_count
from repro.core.restrictions import generate_restriction_sets
from repro.core.schedule import generate_schedules
from repro.graph.digraph import random_digraph
from repro.graph.generators import erdos_renyi
from repro.graph.labeled import assign_random_labels
from repro.pattern.catalog import clique, house, pentagon, rectangle, triangle
from repro.pattern.directed import directed_cycle, transitive_triangle
from repro.pattern.labeled import LabeledPattern

BUILTIN = ("interpreter", "preslice", "compiled", "parallel", "vectorised")

#: the equivalence catalog: every backend must agree with brute force
#: on each of these.
CATALOG = [triangle(), rectangle(), house(), pentagon(), clique(5)]


def make_plan(pattern, iep_k=0):
    s = generate_schedules(pattern)[0]
    rs = generate_restriction_sets(pattern)[0]
    return Configuration(pattern, s, rs).compile(iep_k=iep_k)


class TestRegistry:
    def test_builtins_registered(self):
        names = backend_names()
        for name in BUILTIN:
            assert name in names

    def test_available_backends_is_a_copy(self):
        snapshot = available_backends()
        snapshot["bogus"] = object
        assert "bogus" not in backend_names()

    def test_available_backends_report_capabilities(self):
        infos = available_backends()
        for name, info in infos.items():
            assert info.name == name
            assert info.capabilities.modes  # every backend covers something
        assert infos["interpreter"].capabilities.supports_mode("labeled")
        assert infos["compiled"].capabilities.supports_mode("directed")
        assert infos["vectorised"].capabilities.supports_mode("directed")
        assert infos["compiled"].capabilities.generated_kernels
        assert not infos["vectorised"].capabilities.iep

    def test_get_backend_unknown_name(self):
        with pytest.raises(ValueError, match="unknown backend"):
            get_backend("no-such-backend")

    def test_get_backend_forwards_options(self):
        b = get_backend("parallel", n_workers=3, worker_backend="interpreter")
        assert b.n_workers == 3
        assert b.worker_backend == "interpreter"

    def test_register_custom_backend(self, er_small):
        @register_backend
        class FortyTwoBackend(ExecutionBackend):
            name = "forty-two"

            def supports(self, ctx):
                return ctx.mode == "plain"

            def count(self, ctx):
                return 42

        from repro.core import backend as backend_mod

        try:
            assert "forty-two" in backend_names()
            assert count_pattern(er_small, triangle(), backend="forty-two") == 42
        finally:
            # deregister so other tests see only the real backends
            backend_mod._REGISTRY.pop("forty-two", None)

    def test_register_requires_name(self):
        with pytest.raises(ValueError, match="non-empty"):
            register_backend(type("Anon", (ExecutionBackend,), {}))

    def test_context_validates_mode(self, er_small):
        with pytest.raises(ValueError, match="unknown mode"):
            MatchContext(graph=er_small, plan=make_plan(triangle()), mode="quantum")

    def test_labeled_context_needs_lpattern(self, er_small):
        with pytest.raises(ValueError, match="labeled"):
            MatchContext(graph=er_small, plan=make_plan(triangle()), mode="labeled")

    def test_plain_context_rejects_garbage(self, er_small):
        with pytest.raises(TypeError):
            plain_context(er_small, 42)


class TestSelection:
    def test_default_is_compiled_for_plain_counts(self, er_small):
        ctx = plain_context(er_small, make_plan(house()))
        assert select_backend(ctx, None).name == "compiled"

    def test_enumeration_falls_back_to_interpreter(self, er_small):
        ctx = plain_context(er_small, make_plan(house()))
        chosen = select_backend(ctx, "compiled", for_enumeration=True)
        assert chosen.name == "interpreter"

    def test_directed_stays_on_compiled(self, er_small):
        # Directed kernels are first-class now: an IEP-free DirectedPlan
        # runs on the compiled backend, no interpreter fallback.
        dg = random_digraph(20, 0.2, seed=1)
        plan = DirectedMatcher(transitive_triangle()).plan(dg).plan
        ctx = MatchContext(graph=dg, plan=plan, mode="directed")
        assert select_backend(ctx, "compiled").name == "compiled"

    def test_directed_iep_plan_falls_back(self, er_small):
        # The directed kernels are innermost-count variants; an
        # IEP-suffix directed plan must drop to the interpreter.
        dg = random_digraph(20, 0.2, seed=1)
        plan = DirectedMatcher(transitive_triangle()).plan(dg, use_iep=True).plan
        if plan.iep_k == 0:
            pytest.skip("planner chose an IEP-free plan for this workload")
        ctx = MatchContext(graph=dg, plan=plan, mode="directed")
        assert select_backend(ctx, "compiled").name == "interpreter"

    def test_induced_and_labeled_stay_on_compiled(self, er_small):
        # The anti-edge and label-filter kernels serve these modes now:
        # no interpreter fallback for IEP-free plans.
        ctx = MatchContext(graph=er_small, plan=make_plan(house()), mode="induced")
        assert select_backend(ctx, "compiled").name == "compiled"
        lg = assign_random_labels(er_small, 2, seed=7)
        lp = LabeledPattern(triangle(), (0, 0, 1))
        lctx = MatchContext(
            graph=lg, plan=make_plan(triangle()), mode="labeled", lpattern=lp
        )
        assert select_backend(lctx, "compiled").name == "compiled"

    def test_explicit_instance_is_honoured(self, er_small):
        ctx = plain_context(er_small, make_plan(house()))
        inst = get_backend("preslice")
        assert select_backend(ctx, inst) is inst

    def test_counting_only_backend_refuses_enumeration(self, er_small):
        ctx = plain_context(er_small, make_plan(triangle()))
        with pytest.raises(BackendUnsupportedError):
            get_backend("compiled").enumerate_embeddings(ctx)

    def test_require_raises_for_wrong_mode(self, er_small):
        # A directed context must carry a DirectedPlan; an undirected
        # ExecutionPlan mislabeled as directed is refused, not executed.
        ctx = MatchContext(graph=er_small, plan=make_plan(triangle()), mode="directed")
        with pytest.raises(BackendUnsupportedError):
            get_backend("compiled").count(ctx)

    def test_require_raises_for_induced_iep_plan(self, er_small):
        # IEP arithmetic assumes edge semantics; an IEP-suffix plan in an
        # induced context must be refused, not silently miscounted.
        ctx = MatchContext(
            graph=er_small, plan=make_plan(house(), iep_k=2), mode="induced"
        )
        with pytest.raises(BackendUnsupportedError):
            get_backend("compiled").count(ctx)


class TestCrossBackendEquivalence:
    """Acceptance criterion: identical counts across every backend."""

    @pytest.mark.parametrize("backend", BUILTIN)
    def test_plain_catalog_matches_bruteforce(self, er_small, backend):
        spec = (
            get_backend("parallel", n_workers=2) if backend == "parallel" else backend
        )
        for pattern in CATALOG:
            expected = bruteforce_count(er_small, pattern)
            got = count_pattern(er_small, pattern, backend=spec)
            assert got == expected, (backend, pattern.name)

    @pytest.mark.parametrize("backend", BUILTIN)
    def test_plain_catalog_without_iep(self, er_small, backend):
        for pattern in [triangle(), house()]:
            expected = bruteforce_count(er_small, pattern)
            assert (
                count_pattern(er_small, pattern, use_iep=False, backend=backend)
                == expected
            ), (backend, pattern.name)

    @pytest.mark.parametrize("backend", ["interpreter", "parallel"])
    def test_induced(self, er_small, backend):
        for pattern in [house(), rectangle()]:
            expected = bruteforce_induced_count(er_small, pattern)
            assert induced_count(er_small, pattern, backend=backend) == expected

    @pytest.mark.parametrize("backend", ["interpreter", "parallel"])
    def test_directed(self, backend):
        dig = random_digraph(45, 0.12, seed=11)
        for dp in [directed_cycle(3), transitive_triangle()]:
            expected = bruteforce_directed_count(dig, dp)
            got = DirectedMatcher(dp).count(dig, backend=backend)
            assert got == expected, dp

    def test_match_directed_oneshot_accepts_backend(self):
        from repro.core.directed import match_directed

        dig = random_digraph(25, 0.15, seed=3)
        dp = transitive_triangle()
        embs = list(match_directed(dig, dp, limit=5, backend="interpreter"))
        assert all(len(e) == 3 for e in embs)

    @pytest.mark.parametrize("backend", ["interpreter", "parallel"])
    def test_labeled(self, backend):
        g = erdos_renyi(35, 0.25, seed=5)
        lg = assign_random_labels(g, 2, seed=7)
        lp = LabeledPattern(triangle(), (0, 0, 1))
        expected = labeled_bruteforce_count(lg, lp)
        got = LabeledMatcher(lp).count(lg, backend=backend)
        assert got == expected

    def test_match_results_identical_across_enumerating_backends(self, er_small):
        pattern = house()
        m = PatternMatcher(pattern)
        base = {frozenset(e) for e in m.match(er_small, backend="interpreter")}
        pre = {frozenset(e) for e in m.match(er_small, backend="preslice")}
        # compiled cannot enumerate -> automatic interpreter fallback
        fall = {frozenset(e) for e in m.match(er_small, backend="compiled")}
        assert base == pre == fall

    def test_use_codegen_false_defaults_to_interpreter(self, er_small):
        m = PatternMatcher(triangle(), use_codegen=False)
        assert m.count(er_small) == bruteforce_count(er_small, triangle())


class TestParallelWorkers:
    def test_compiled_worker_kernel_matches_interpreter(self, er_small):
        plan = make_plan(house(), iep_k=0)
        ctx = plain_context(er_small, plan)
        compiled, compiled_kind = make_prefix_counter(ctx, 1, "compiled")
        interp, interp_kind = make_prefix_counter(ctx, 1, "interpreter")
        assert (compiled_kind, interp_kind) == ("compiled", "interpreter")
        from repro.core.engine import Engine

        for prefix in Engine(er_small, plan).iter_prefixes(1):
            assert compiled(prefix) == interp(prefix), prefix

    def test_nonplain_context_falls_back_to_interpreter_workers(self, er_small):
        ctx = MatchContext(graph=er_small, plan=make_plan(house()), mode="induced")
        counter, effective = make_prefix_counter(ctx, 1, "compiled")
        assert effective == "interpreter"
        # bound method of an InducedEngine, not a compiled closure
        assert getattr(counter, "__self__", None) is not None

    def test_parallel_reports_worker_backend(self, er_small):
        from repro.runtime.parallel import parallel_count

        plan = make_plan(house())
        res = parallel_count(er_small, plan, n_workers=2)
        assert res.worker_backend == "compiled"
        res_i = parallel_count(
            er_small, plan, n_workers=2, worker_backend="interpreter"
        )
        assert res_i.worker_backend == "interpreter"
        assert res.count == res_i.count
