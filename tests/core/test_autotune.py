"""Self-tuning backend selection: profiles, signatures, the auto backend.

Covers the calibration sweep end to end plus the persistence edge cases
the harness must absorb without crashing: corrupt files, old schema
versions, a changed backend registry, and buckets the profile has never
seen (static fallback).
"""

from __future__ import annotations

import dataclasses
import json

import pytest

from repro.core import autotune
from repro.core.autotune import (
    PROFILE_VERSION,
    AutoBackend,
    CalibrationError,
    CalibrationProfile,
    CalibrationWorkload,
    ProfileChoice,
    ProfileWarning,
    build_profile,
    choice_applicable,
    context_signature,
    default_choice_grid,
    graph_signature,
    load_profile,
    measure_workload,
    plan_choice_for,
    query_signature,
    run_calibration,
    set_active_profile,
    signature_distance,
)
from repro.core.backend import backend_names, candidate_backends
from repro.core.query import MatchQuery
from repro.core.session import MatchSession
from repro.graph.digraph import digraph_from_edges
from repro.graph.generators import erdos_renyi
from repro.graph.labeled import assign_random_labels
from repro.pattern.catalog import get_pattern
from repro.pattern.directed import get_directed_pattern
from repro.pattern.labeled import LabeledPattern


@pytest.fixture(autouse=True)
def _no_profile_leaks():
    """Every test starts and ends with no active profile installed."""
    set_active_profile(None)
    yield
    set_active_profile(None)


@pytest.fixture(scope="module")
def g():
    return erdos_renyi(160, 0.06, seed=7)


@pytest.fixture(scope="module")
def swept(g):
    """One real (small) calibration sweep shared by the selection tests."""
    workloads = [
        CalibrationWorkload("tri", g, MatchQuery(get_pattern("triangle"))),
        CalibrationWorkload("rect", g, MatchQuery(get_pattern("rectangle"))),
    ]
    profile, measurements = run_calibration(workloads, repeats=1)
    return g, profile, measurements


# ---------------------------------------------------------------------------
# signatures
# ---------------------------------------------------------------------------
class TestSignatures:
    def test_query_and_context_signatures_agree_plain(self, g):
        query = MatchQuery(get_pattern("house"))
        ctx = MatchSession(g).plan_for(query).context(g)
        assert query_signature(query) == context_signature(ctx)
        assert query_signature(query) == ("plain", 5, 6)

    def test_query_and_context_signatures_agree_induced(self, g):
        query = MatchQuery(get_pattern("triangle"), semantics="induced")
        ctx = MatchSession(g).plan_for(query).context(g)
        assert query_signature(query) == context_signature(ctx)
        assert query_signature(query)[0] == "induced"

    def test_query_and_context_signatures_agree_labeled(self, g):
        lg = assign_random_labels(g, 2, seed=3)
        base = get_pattern("triangle")
        query = MatchQuery(LabeledPattern(base, (0, 1, 0)))
        ctx = MatchSession(lg).plan_for(query).context(lg)
        assert query_signature(query) == context_signature(ctx)
        assert query_signature(query) == ("labeled", 3, 3)

    def test_query_and_context_signatures_agree_directed(self, g):
        dg = digraph_from_edges(list(g.edges()), n_vertices=g.n_vertices)
        query = MatchQuery(get_directed_pattern("ffl"))
        ctx = MatchSession(dg).plan_for(query).context(dg)
        assert query_signature(query) == context_signature(ctx)
        assert query_signature(query) == ("directed", 3, 3)

    def test_graph_signature_unwraps_labeled(self, g):
        lg = assign_random_labels(g, 3, seed=5)
        assert graph_signature(lg) == graph_signature(g)

    def test_graph_signature_buckets_are_coarse(self, g):
        # a few extra edges must not move the log-scale buckets
        near = erdos_renyi(160, 0.061, seed=7)
        assert graph_signature(near) == graph_signature(g)
        assert signature_distance(graph_signature(g), graph_signature(g)) == 0

    def test_graph_signature_memoised_on_graph(self, g):
        sig = graph_signature(g)
        assert g._autotune_signature == sig
        assert graph_signature(g) is g._autotune_signature

    def test_digraph_signature(self, g):
        dg = digraph_from_edges(list(g.edges()), n_vertices=g.n_vertices)
        sig = graph_signature(dg)
        assert len(sig) == 3 and all(b >= 0 for b in sig)


# ---------------------------------------------------------------------------
# profile persistence
# ---------------------------------------------------------------------------
def _tiny_profile(**overrides) -> CalibrationProfile:
    entry_key = (("plain", 3, 3), (5, 3, 1))
    choice = ProfileChoice.make("interpreter", use_iep=True)
    profile = CalibrationProfile(
        entries={
            entry_key: autotune.BucketEntry(
                pattern_sig=entry_key[0],
                graph_sig=entry_key[1],
                timings=((choice, 0.01),),
            )
        },
        backends=tuple(sorted(backend_names())),
        n_workloads=1,
    )
    return dataclasses.replace(profile, **overrides) if overrides else profile


class TestPersistence:
    def test_round_trip(self, tmp_path):
        profile = _tiny_profile()
        path = profile.save(tmp_path / "p.json")
        loaded = load_profile(path)
        assert loaded is not None
        assert loaded.version == PROFILE_VERSION
        assert set(loaded.entries) == set(profile.entries)
        (choice, seconds), = loaded.entries[next(iter(loaded.entries))].ranked()
        assert choice == ProfileChoice.make("interpreter", use_iep=True)
        assert seconds == pytest.approx(0.01)

    def test_missing_file_warns_and_returns_none(self, tmp_path):
        with pytest.warns(ProfileWarning, match="unreadable"):
            assert load_profile(tmp_path / "nope.json") is None

    def test_corrupt_json_warns_and_returns_none(self, tmp_path):
        path = tmp_path / "corrupt.json"
        path.write_text("{not json at all")
        with pytest.warns(ProfileWarning, match="corrupt"):
            assert load_profile(path) is None

    def test_wrong_root_type_warns(self, tmp_path):
        path = tmp_path / "list.json"
        path.write_text("[1, 2, 3]")
        with pytest.warns(ProfileWarning, match="corrupt"):
            assert load_profile(path) is None

    def test_structurally_broken_entries_warn(self, tmp_path):
        payload = _tiny_profile().to_json()
        del payload["entries"][0]["timings"][0]["backend"]
        path = tmp_path / "broken.json"
        path.write_text(json.dumps(payload))
        with pytest.warns(ProfileWarning, match="corrupt"):
            assert load_profile(path) is None

    def test_old_version_warns_and_returns_none(self, tmp_path):
        payload = _tiny_profile().to_json()
        payload["version"] = PROFILE_VERSION - 1
        path = tmp_path / "old.json"
        path.write_text(json.dumps(payload))
        with pytest.warns(ProfileWarning, match="schema version"):
            assert load_profile(path) is None

    def test_registry_change_invalidates_profile(self, tmp_path):
        # calibrated against a registry that no longer matches: the
        # measurements are untrustworthy, so the whole file is ignored.
        payload = _tiny_profile().to_json()
        payload["backends"] = ["interpreter", "some-retired-backend"]
        path = tmp_path / "stale.json"
        path.write_text(json.dumps(payload))
        with pytest.warns(ProfileWarning, match="registry"):
            assert load_profile(path) is None

    def test_profile_warning_is_a_user_warning(self):
        assert issubclass(ProfileWarning, UserWarning)


class TestActiveProfile:
    def test_set_and_clear(self):
        profile = _tiny_profile()
        assert set_active_profile(profile) is profile
        assert autotune.get_active_profile() is profile
        set_active_profile(None)
        assert autotune.get_active_profile() is None

    def test_set_by_path(self, tmp_path):
        path = _tiny_profile().save(tmp_path / "p.json")
        loaded = set_active_profile(path)
        assert isinstance(loaded, CalibrationProfile)

    def test_set_by_bad_path_warns_and_clears(self, tmp_path):
        with pytest.warns(ProfileWarning):
            assert set_active_profile(tmp_path / "nope.json") is None
        assert autotune.get_active_profile() is None

    def test_env_variable_consulted_lazily(self, tmp_path, monkeypatch):
        path = _tiny_profile().save(tmp_path / "env.json")
        monkeypatch.setenv(autotune.PROFILE_ENV, str(path))
        monkeypatch.setattr(autotune, "_ACTIVE", None)
        monkeypatch.setattr(autotune, "_ACTIVE_RESOLVED", False)
        profile = autotune.get_active_profile()
        assert profile is not None and profile.n_workloads == 1


# ---------------------------------------------------------------------------
# bucket lookup
# ---------------------------------------------------------------------------
class TestLookup:
    def test_exact_bucket_wins(self):
        profile = _tiny_profile()
        found = profile.lookup(("plain", 3, 3), (5, 3, 1))
        assert found is not None and found[1] == 0

    def test_nearest_bucket_within_distance(self):
        profile = _tiny_profile()
        found = profile.lookup(("plain", 3, 3), (6, 3, 2))
        assert found is not None and found[1] == 2

    def test_distance_cap(self):
        profile = _tiny_profile()
        assert profile.lookup(("plain", 3, 3), (20, 9, 9)) is None

    def test_pattern_signature_never_crosses(self):
        # a 4-clique bucket must not serve a triangle query, however
        # close the graph buckets are.
        profile = _tiny_profile()
        assert profile.lookup(("plain", 4, 6), (5, 3, 1)) is None


# ---------------------------------------------------------------------------
# the sweep
# ---------------------------------------------------------------------------
class TestSweep:
    def test_measurements_cross_check_counts(self, swept):
        _, _, measurements = swept
        for m in measurements:
            assert m.count > 0
            assert len(m.seconds) >= 2  # several choices actually ran

    def test_profile_buckets_and_registry_snapshot(self, swept):
        _, profile, _ = swept
        assert profile.version == PROFILE_VERSION
        assert set(profile.backends) == set(backend_names())
        assert len(profile.entries) >= 1
        for entry in profile.entries.values():
            ranked = entry.ranked()
            assert ranked == sorted(ranked, key=lambda item: item[1])

    def test_no_applicable_choice_raises(self, g):
        workload = CalibrationWorkload(
            "w", g, MatchQuery(get_pattern("triangle"))
        )
        ghost = ProfileChoice.make("no-such-backend")
        with pytest.raises(CalibrationError, match="no swept choice"):
            measure_workload(workload, [ghost], repeats=1)

    def test_choice_applicability_filter(self):
        induced = MatchQuery(get_pattern("triangle"), semantics="induced")
        plain = MatchQuery(get_pattern("triangle"))
        iep_choice = ProfileChoice.make("compiled", use_iep=True)
        assert not choice_applicable(iep_choice, induced)
        assert choice_applicable(iep_choice, plain)
        assert not choice_applicable(ProfileChoice.make("ghost"), plain)
        vect_iep = ProfileChoice.make("vectorised", use_iep=True)
        assert not choice_applicable(vect_iep, plain)  # caps.iep is False

    def test_default_grid_heavy_superset(self):
        light = default_choice_grid()
        heavy = default_choice_grid(heavy=True)
        assert set(light) < set(heavy)
        assert any(c.backend == "distributed" for c in heavy)
        assert all(c.backend != "distributed" for c in light)

    def test_build_profile_aggregates_geomean(self):
        choice = ProfileChoice.make("interpreter")
        mk = lambda name, secs: autotune.WorkloadMeasurement(  # noqa: E731
            workload=name,
            pattern_sig=("plain", 3, 3),
            graph_sig=(5, 3, 1),
            count=1,
            seconds=((choice, secs),),
        )
        profile = build_profile([mk("a", 0.01), mk("b", 0.04)])
        (entry,) = profile.entries.values()
        ((_, seconds),) = entry.ranked()
        assert seconds == pytest.approx(0.02)  # geomean of 0.01 and 0.04
        assert profile.n_workloads == 2


# ---------------------------------------------------------------------------
# the auto backend
# ---------------------------------------------------------------------------
class TestAutoSelection:
    def test_registered_and_meta(self):
        assert "auto" in backend_names()
        assert AutoBackend.is_meta is True

    def test_meta_backend_excluded_from_candidates(self, g):
        ctx = MatchSession(g).plan_for(
            MatchQuery(get_pattern("triangle"))
        ).context(g)
        names = {info.name for info in candidate_backends(ctx)}
        assert "auto" not in names
        assert "interpreter" in names

    def test_no_profile_falls_back_to_static(self, g):
        session = MatchSession(g)
        query = MatchQuery(get_pattern("triangle"), backend="auto")
        result = session.count(query)
        report = result.autotune_report
        assert report is not None and report.source == "static"
        assert result.backend == f"auto:{report.chosen}"
        assert int(result) == int(session.count(MatchQuery(get_pattern("triangle"))))

    def test_profile_drives_selection(self, swept):
        g, profile, measurements = swept
        set_active_profile(profile)
        session = MatchSession(g)
        for pname, m in zip(("triangle", "rectangle"), measurements):
            query = MatchQuery(get_pattern(pname), backend="auto")
            result = session.count(query)
            report = result.autotune_report
            assert report.source == "profile"
            assert report.chosen == m.best[0].backend
            assert report.predicted_seconds == pytest.approx(
                dict(
                    profile.entries[(m.pattern_sig, m.graph_sig)].ranked()
                )[m.best[0]]
            )
            assert report.actual_seconds is not None
            assert int(result) == m.count

    def test_profile_folds_plan_knob(self, swept):
        g, profile, _ = swept
        set_active_profile(profile)
        session = MatchSession(g)
        query = MatchQuery(get_pattern("triangle"), backend="auto")
        entry = session.plan_for(query)
        winner = plan_choice_for(query, g, profile=profile)
        if winner.use_iep is False:
            assert entry.plan.iep_k == 0
        else:
            assert entry.plan.iep_k >= 0  # IEP winner keeps its suffix

    def test_empty_bucket_falls_back_to_static(self, swept):
        g, profile, _ = swept
        set_active_profile(profile)
        session = MatchSession(g)
        # house was never swept: no ("plain", 5, 6) bucket exists
        query = MatchQuery(get_pattern("house"), backend="auto")
        result = session.count(query)
        assert result.autotune_report.source == "static"
        assert int(result) == int(session.count(MatchQuery(get_pattern("house"))))

    def test_nearest_bucket_serves_unseen_graph(self, swept):
        _, profile, _ = swept
        set_active_profile(profile)
        other = erdos_renyi(300, 0.06, seed=11)
        assert graph_signature(other) != next(
            iter(profile.entries.values())
        ).graph_sig
        session = MatchSession(other)
        result = session.count(MatchQuery(get_pattern("triangle"), backend="auto"))
        assert result.autotune_report.source in ("profile", "profile-nearest")
        assert result.autotune_report.bucket_distance >= 0

    def test_instance_profile_beats_active(self, swept):
        g, profile, measurements = swept
        backend = AutoBackend(profile=profile)  # no active profile installed
        session = MatchSession(g)
        result = session.count(
            MatchQuery(get_pattern("triangle")), backend=backend
        )
        assert result.autotune_report.source == "profile"
        assert int(result) == measurements[0].count

    def test_instance_profile_from_path(self, swept, tmp_path):
        _, profile, _ = swept
        path = profile.save(tmp_path / "p.json")
        backend = AutoBackend(profile=path)
        assert backend.profile is not None

    def test_enumeration_delegates(self, swept):
        g, profile, _ = swept
        set_active_profile(profile)
        session = MatchSession(g)
        query = MatchQuery(get_pattern("triangle"), backend="auto")
        auto_embeddings = sorted(session.enumerate(query))
        plain = sorted(
            session.enumerate(MatchQuery(get_pattern("triangle")))
        )
        assert auto_embeddings == plain and auto_embeddings

    def test_unknown_profile_backend_skipped(self, g):
        # a profile naming a backend that no longer exists must not
        # crash the decision; the next ranked choice (or static) serves.
        psig = ("plain", 3, 3)
        gsig = graph_signature(g)
        key = (psig, gsig)
        profile = CalibrationProfile(
            entries={
                key: autotune.BucketEntry(
                    pattern_sig=psig,
                    graph_sig=gsig,
                    timings=(
                        (ProfileChoice.make("retired-backend"), 0.001),
                        (ProfileChoice.make("interpreter"), 0.002),
                    ),
                )
            },
            backends=tuple(sorted(backend_names())),
            n_workloads=1,
        )
        set_active_profile(profile)
        session = MatchSession(g)
        result = session.count(MatchQuery(get_pattern("triangle"), backend="auto"))
        assert result.autotune_report.chosen == "interpreter"
        assert result.autotune_report.source == "profile"

    def test_report_describe_mentions_choice(self, swept):
        g, profile, _ = swept
        set_active_profile(profile)
        result = MatchSession(g).count(
            MatchQuery(get_pattern("triangle"), backend="auto")
        )
        text = result.autotune_report.describe()
        assert "auto ->" in text and "predicted" in text and "actual" in text

    def test_decision_memo_reused(self, swept):
        g, profile, _ = swept
        set_active_profile(profile)
        session = MatchSession(g)
        query = MatchQuery(get_pattern("triangle"), backend="auto")
        session.count(query)
        assert profile._decisions  # the walk result was memoised
        first = session.count(query)
        second = session.count(query)
        assert first.backend == second.backend
        assert int(first) == int(second)


class TestReportPlumbing:
    def test_distributed_inner_report_surfaces(self, swept):
        g, profile, _ = swept
        # force a profile whose winner is the distributed backend so the
        # delegate's own side report must flow through to its slot.
        psig = ("plain", 3, 3)
        gsig = graph_signature(g)
        forced = CalibrationProfile(
            entries={
                (psig, gsig): autotune.BucketEntry(
                    pattern_sig=psig,
                    graph_sig=gsig,
                    timings=(
                        (
                            ProfileChoice.make(
                                "distributed",
                                {"simulate": False, "inner": "vectorised"},
                                use_iep=False,
                            ),
                            0.001,
                        ),
                    ),
                )
            },
            backends=tuple(sorted(backend_names())),
            n_workloads=1,
        )
        set_active_profile(forced)
        session = MatchSession(g)
        result = session.count(MatchQuery(get_pattern("triangle"), backend="auto"))
        assert result.backend == "auto:distributed"
        assert result.distributed_report is not None
        assert result.autotune_report.inner_report is result.distributed_report
