"""Calibrated cost model: host probing and absolute prediction bands."""

from __future__ import annotations

import time

import pytest

from repro.core.api import PatternMatcher
from repro.core.calibration import CalibratedModel, HostConstants, calibrate
from repro.core.config import Configuration
from repro.core.engine import Engine
from repro.core.restrictions import generate_restriction_sets
from repro.core.schedule import generate_schedules
from repro.graph.generators import erdos_renyi
from repro.graph.stats import GraphStats
from repro.pattern.catalog import house, rectangle, triangle


@pytest.fixture(scope="module")
def constants():
    return calibrate(seed=11)


@pytest.fixture(scope="module")
def g():
    return erdos_renyi(300, 0.04, seed=19)


class TestProbes:
    def test_constants_positive_and_sane(self, constants):
        assert 0 < constants.seconds_per_merge_element < 1e-5
        assert 0 < constants.seconds_per_iteration < 1e-2
        # interpreting a DFS node costs far more than merging one element
        assert constants.seconds_per_iteration > constants.seconds_per_merge_element

    def test_describe(self, constants):
        s = constants.describe()
        assert "µs" in s and "ns" in s


class TestPrediction:
    def test_within_order_of_magnitude(self, constants, g):
        """Calibrated predictions must land within ~10x of reality — the
        usable band for budget decisions."""
        stats = GraphStats.of(g)
        model = CalibratedModel(stats, constants)
        pattern = triangle()
        config = Configuration(pattern, (0, 1, 2), frozenset({(1, 0), (2, 1)}))
        plan = config.compile()
        predicted = model.predict_seconds(plan)
        t0 = time.perf_counter()
        Engine(g, plan).count()
        measured = time.perf_counter() - t0
        assert measured / 10 <= predicted <= measured * 10

    def test_ranking_preserved_within_pattern(self, constants, g):
        """Predicted-seconds ordering must agree with the abstract model's
        ordering on the best-vs-worst configuration of one pattern."""
        from repro.core.perf_model import estimate_cost

        stats = GraphStats.of(g)
        model = CalibratedModel(stats, constants)
        pattern = house()
        rs = generate_restriction_sets(pattern)[0]
        plans = [
            Configuration(pattern, s, rs).compile()
            for s in generate_schedules(pattern, dedup_automorphic=True)
        ]
        abstract = [estimate_cost(p, stats) for p in plans]
        seconds = [model.predict_seconds(p) for p in plans]
        best_abs, worst_abs = min(range(len(plans)), key=lambda i: abstract[i]), max(
            range(len(plans)), key=lambda i: abstract[i]
        )
        assert seconds[best_abs] <= seconds[worst_abs]

    def test_larger_pattern_costs_more(self, constants, g):
        stats = GraphStats.of(g)
        model = CalibratedModel(stats, constants)
        tri = Configuration(triangle(), (0, 1, 2), frozenset({(1, 0), (2, 1)}))
        rect_rs = generate_restriction_sets(rectangle())[0]
        rect = Configuration(rectangle(), generate_schedules(rectangle())[0], rect_rs)
        assert model.predict_config_seconds(rect) > model.predict_config_seconds(tri)

    def test_iep_plan_predictable(self, constants, g):
        stats = GraphStats.of(g)
        model = CalibratedModel(stats, constants)
        matcher = PatternMatcher(rectangle(), use_codegen=False)
        rep = matcher.plan(g, use_iep=True, codegen=False)
        assert model.predict_seconds(rep.plan) > 0

    def test_custom_constants_injectable(self, g):
        stats = GraphStats.of(g)
        fake = HostConstants(seconds_per_iteration=1.0, seconds_per_merge_element=0.0)
        model = CalibratedModel(stats, fake)
        config = Configuration(triangle(), (0, 1, 2), frozenset({(1, 0), (2, 1)}))
        plan = config.compile()
        # with unit iteration price, prediction equals the iteration count
        assert model.predict_seconds(plan) > 1.0
