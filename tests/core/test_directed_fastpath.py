"""The directed fast paths: frontier engine, generated kernels, reduction.

Three layers under test, all new in the directed-first-class change:

* :class:`~repro.core.vectorised.DirectedFrontierEngine` — per-depth
  candidate pools drawn from the digraph's out-/in-CSR rows (antiparallel
  dependencies intersect both), restriction windows unchanged;
* directed generated kernels (`generate_directed_source` /
  `compile_directed_function`) plus the backend capability flags and the
  session's kernel memoisation that route directed plans onto them;
* the XMiner skeleton-sharing reduction for batched directed queries
  (:func:`repro.core.reduction.reduce_directed_batch` and
  :meth:`MatchSession.count_many`).
"""

from __future__ import annotations

import pytest

from repro.baselines.bruteforce import bruteforce_directed_count
from repro.core.backend import MatchContext, get_backend
from repro.core.codegen import compile_directed_function, generate_directed_source
from repro.core.directed import DirectedMatcher, compile_directed_plan
from repro.core.query import MatchQuery
from repro.core.reduction import reduce_directed_batch, skeleton_key, undirected_view
from repro.core.session import MatchSession
from repro.core.vectorised import DirectedFrontierEngine, frontier_engine_for
from repro.graph.digraph import price_citation_graph, random_digraph
from repro.pattern.directed import (
    DiPattern,
    bi_fan,
    directed_clique,
    directed_cycle,
    directed_path,
    out_star,
    transitive_triangle,
)

DIPATTERNS = [
    directed_cycle(3),
    transitive_triangle(),
    directed_path(4),
    directed_cycle(4),
    out_star(3),
    bi_fan(),
    directed_clique(3),
    DiPattern(4, [(0, 1), (1, 2), (2, 3), (3, 0), (0, 2)], name="chorded-dicycle"),
]


@pytest.fixture(scope="module")
def dig():
    return random_digraph(40, 0.25, seed=404)


@pytest.fixture(scope="module")
def citation():
    return price_citation_graph(120, out_degree=4, seed=7)


def directed_ctx(graph, pattern, **plan_kwargs):
    plan = DirectedMatcher(pattern).plan(graph, **plan_kwargs).plan
    return MatchContext(graph=graph, plan=plan, mode="directed")


# ---------------------------------------------------------------------------
# DirectedFrontierEngine
# ---------------------------------------------------------------------------
class TestDirectedFrontierEngine:
    @pytest.mark.parametrize("pattern", DIPATTERNS, ids=lambda p: p.name)
    def test_count_equals_bruteforce(self, dig, pattern):
        ctx = directed_ctx(dig, pattern)
        engine = DirectedFrontierEngine(dig, ctx.plan)
        assert engine.count() == bruteforce_directed_count(dig, pattern)

    @pytest.mark.parametrize("pattern", DIPATTERNS[:4], ids=lambda p: p.name)
    def test_count_on_citation_graph(self, citation, pattern):
        ctx = directed_ctx(citation, pattern)
        engine = DirectedFrontierEngine(citation, ctx.plan)
        assert engine.count() == DirectedMatcher(pattern).count(
            citation, backend="interpreter"
        )

    def test_small_root_chunk_is_equivalent(self, dig):
        p = transitive_triangle()
        ctx = directed_ctx(dig, p)
        full = DirectedFrontierEngine(dig, ctx.plan).count()
        chunked = DirectedFrontierEngine(dig, ctx.plan, root_chunk=7).count()
        assert chunked == full

    def test_count_roots_partial_sums_compose(self, dig):
        p = directed_cycle(3)
        ctx = directed_ctx(dig, p)
        engine = DirectedFrontierEngine(dig, ctx.plan)
        roots = list(range(dig.n_vertices))
        split = engine.count_roots(roots[:13]) + engine.count_roots(roots[13:])
        assert split == engine.count()

    def test_enumeration_matches_interpreter(self, dig):
        p = bi_fan()
        m = DirectedMatcher(p)
        ctx = directed_ctx(dig, p)
        engine = DirectedFrontierEngine(dig, ctx.plan)
        got = set(engine.enumerate_embeddings())
        want = {tuple(e) for e in m.match(dig, backend="interpreter")}
        assert got == want

    def test_enumeration_limit(self, dig):
        ctx = directed_ctx(dig, directed_path(3))
        engine = DirectedFrontierEngine(dig, ctx.plan)
        assert len(list(engine.enumerate_embeddings(limit=5))) == 5

    def test_rejects_iep_plan(self, dig):
        rep = DirectedMatcher(bi_fan()).plan(dig, use_iep=True)
        if rep.plan.iep_k == 0:
            pytest.skip("no IEP suffix realised")
        with pytest.raises(ValueError, match="iep"):
            DirectedFrontierEngine(dig, rep.plan)

    def test_rejects_disconnected_prefix(self, dig):
        # Schedule bi-fan as (0, 1, 2, 3): vertices 0 and 1 are the two
        # sources, mutually non-adjacent, so depth 1 has no dependency.
        plan = compile_directed_plan(bi_fan(), (0, 1, 2, 3), frozenset())
        assert not plan.out_deps[1] and not plan.in_deps[1]
        with pytest.raises(ValueError, match="connected"):
            DirectedFrontierEngine(dig, plan)

    def test_factory_dispatches_on_mode(self, dig):
        ctx = directed_ctx(dig, transitive_triangle())
        engine = frontier_engine_for(ctx)
        assert isinstance(engine, DirectedFrontierEngine)


# ---------------------------------------------------------------------------
# directed generated kernels + backend routing
# ---------------------------------------------------------------------------
class TestDirectedKernels:
    @pytest.mark.parametrize("pattern", DIPATTERNS, ids=lambda p: p.name)
    def test_kernel_equals_interpreter(self, dig, pattern):
        ctx = directed_ctx(dig, pattern)
        counter = compile_directed_function(ctx.plan)
        assert counter.mode == "directed"
        assert counter.function(dig) == DirectedMatcher(pattern).count(
            dig, backend="interpreter"
        )

    def test_source_reads_both_csrs_for_antiparallel(self):
        # dcycle-2 (u<->v) needs the candidate in out(u) AND in(u).
        plan = compile_directed_plan(
            DiPattern(2, [(0, 1), (1, 0)], name="dcycle-2"), (0, 1), frozenset()
        )
        src = generate_directed_source(plan)
        assert "out_indptr" in src and "in_indptr" in src

    def test_source_rejects_iep(self, dig):
        rep = DirectedMatcher(bi_fan()).plan(dig, use_iep=True)
        if rep.plan.iep_k == 0:
            pytest.skip("no IEP suffix realised")
        with pytest.raises(ValueError):
            generate_directed_source(rep.plan)

    def test_compiled_backend_counts_directed(self, dig):
        p = transitive_triangle()
        ctx = directed_ctx(dig, p)
        assert get_backend("compiled").count(ctx) == bruteforce_directed_count(dig, p)

    def test_session_memoises_directed_kernel(self, dig):
        session = MatchSession(dig)
        query = MatchQuery(out_star(3))
        first = session.count(query, backend="compiled")
        second = session.count(query, backend="compiled")
        assert first.count == second.count
        assert first.backend == second.backend == "compiled"
        assert second.cache_hit


# ---------------------------------------------------------------------------
# skeleton-sharing reduction
# ---------------------------------------------------------------------------
class TestReduction:
    def triangle_batch(self):
        # four orientations of the same labeled triangle skeleton
        return [
            transitive_triangle(),
            directed_cycle(3),
            DiPattern(3, [(1, 0), (2, 1), (2, 0)], name="ffl-flipped"),
            DiPattern(3, [(0, 1), (0, 2), (1, 2), (2, 1)], name="tri-antiparallel"),
        ]

    def test_batch_counts_match_per_pattern(self, dig):
        batch = self.triangle_batch()
        counts, report = reduce_directed_batch(dig, batch)
        for p, c in zip(batch, counts):
            assert c == DirectedMatcher(p).count(dig), p.name
        assert report.n_patterns == len(batch)
        assert report.n_core_embeddings > 0
        assert "reduction" in report.describe()

    def test_rejects_empty_and_mixed_batches(self, dig):
        with pytest.raises(ValueError, match="at least one"):
            reduce_directed_batch(dig, [])
        with pytest.raises(ValueError, match="share one skeleton"):
            reduce_directed_batch(dig, [transitive_triangle(), bi_fan()])

    def test_skeleton_key_is_exact(self):
        assert skeleton_key(transitive_triangle()) == skeleton_key(directed_cycle(3))
        assert skeleton_key(transitive_triangle()) != skeleton_key(bi_fan())

    def test_undirected_view_is_cached(self, dig):
        assert undirected_view(dig) is undirected_view(dig)

    def test_count_many_groups_shared_skeletons(self, dig):
        session = MatchSession(dig)
        batch = self.triangle_batch()
        queries = [MatchQuery(p) for p in batch] + [MatchQuery(bi_fan())]
        results = session.count_many(queries)
        assert len(results) == len(queries)
        for q, r in zip(queries, results):
            assert r.count == DirectedMatcher(q.pattern).count(dig)
        # the triangle group went through the shared core...
        assert {r.backend for r in results[:4]} == {"reduction"}
        # ...the singleton bifan through a regular backend.
        assert results[4].backend != "reduction"

    def test_count_many_reduce_false(self, dig):
        session = MatchSession(dig)
        queries = [MatchQuery(p) for p in self.triangle_batch()]
        results = session.count_many(queries, reduce=False)
        assert all(r.backend != "reduction" for r in results)
        assert [r.count for r in results] == [
            DirectedMatcher(q.pattern).count(dig) for q in queries
        ]

    def test_count_many_auto_respects_backend_preference(self, dig):
        # an explicit backend preference disables auto-reduction (the
        # user asked for *that* backend, not the shared core).
        session = MatchSession(dig)
        queries = [MatchQuery(p) for p in self.triangle_batch()]
        results = session.count_many(queries, backend="interpreter")
        assert all(r.backend == "interpreter" for r in results)

    def test_count_many_rejects_bad_reduce(self, dig):
        session = MatchSession(dig)
        with pytest.raises(ValueError, match="reduce"):
            session.count_many([MatchQuery(directed_cycle(3))], reduce="sometimes")


# ---------------------------------------------------------------------------
# DiGraph identity plumbing (weak-keyed caches need eq/hash)
# ---------------------------------------------------------------------------
class TestDiGraphIdentity:
    def test_equal_digraphs_compare_equal(self):
        a = random_digraph(20, 0.2, seed=5)
        b = random_digraph(20, 0.2, seed=5)
        c = random_digraph(20, 0.2, seed=6)
        assert a == b and hash(a) == hash(b)
        assert a != c
        assert a != object()

    def test_digraph_usable_as_dict_key(self):
        a = random_digraph(10, 0.3, seed=1)
        assert {a: "x"}[a] == "x"
