"""Directed matching: restrictions, schedules, engine, matcher."""

from __future__ import annotations

import pytest

from repro.baselines.bruteforce import bruteforce_directed_count
from repro.core.directed import (
    DirectedEngine,
    DirectedMatcher,
    compile_directed_plan,
    count_directed,
    generate_directed_restriction_sets,
    generate_directed_schedules,
    match_directed,
)
from repro.core.restrictions import surviving_permutations
from repro.graph.digraph import DiGraph, digraph_from_edges, price_citation_graph, random_digraph
from repro.graph.generators import erdos_renyi
from repro.graph.stats import triangle_count
from repro.pattern.directed import (
    DiPattern,
    bi_fan,
    directed_automorphisms,
    directed_clique,
    directed_cycle,
    directed_path,
    out_star,
    transitive_triangle,
)

DIPATTERNS = [
    directed_cycle(3),
    transitive_triangle(),
    directed_path(3),
    directed_cycle(4),
    out_star(3),
    bi_fan(),
    DiPattern(4, [(0, 1), (1, 2), (2, 3), (3, 0), (0, 2)], name="chorded-dicycle"),
]


@pytest.fixture(scope="module")
def dig_small():
    return random_digraph(35, 0.15, seed=77)


@pytest.fixture(scope="module")
def citation():
    return price_citation_graph(80, out_degree=3, seed=21)


# ---------------------------------------------------------------------------
# restriction generation on the directed group
# ---------------------------------------------------------------------------
class TestDirectedRestrictions:
    def test_asymmetric_pattern_needs_no_restrictions(self):
        sets = generate_directed_restriction_sets(transitive_triangle())
        assert sets == [frozenset()]

    def test_dicycle_sets_eliminate_rotations(self):
        p = directed_cycle(4)
        auts = directed_automorphisms(p)
        assert len(auts) == 4
        for rs in generate_directed_restriction_sets(p):
            assert len(surviving_permutations(auts, rs)) == 1

    def test_multiple_sets_generated_for_symmetric_patterns(self):
        assert len(generate_directed_restriction_sets(bi_fan())) > 1

    def test_directed_sets_can_be_smaller_than_undirected(self):
        """The directed group of the 4-cycle (rotations, order 4) is a
        proper subgroup of the skeleton's dihedral group (order 8), so
        breaking it needs fewer restrictions."""
        from repro.core.restrictions import generate_restriction_sets

        di = generate_directed_restriction_sets(directed_cycle(4))
        und = generate_restriction_sets(directed_cycle(4).skeleton())
        assert min(len(s) for s in di) <= min(len(s) for s in und)

    def test_max_sets_cap(self):
        sets = generate_directed_restriction_sets(directed_clique(4), max_sets=5)
        assert 1 <= len(sets) <= 5


# ---------------------------------------------------------------------------
# schedules
# ---------------------------------------------------------------------------
class TestDirectedSchedules:
    def test_connected_prefix_holds(self):
        p = directed_cycle(4)
        sk = p.skeleton()
        for s in generate_directed_schedules(p):
            for i in range(1, len(s)):
                assert any(sk.has_edge(s[i], s[j]) for j in range(i))

    def test_directed_dedup_keeps_more_than_undirected(self):
        """Dedup by the smaller directed group must keep at least as many
        schedule representatives as dedup by the full skeleton group."""
        from repro.core.schedule import generate_schedules

        p = directed_cycle(4)
        di = generate_directed_schedules(p)
        und = generate_schedules(p.skeleton(), dedup_automorphic=True)
        assert len(di) >= len(und)

    def test_no_dedup_returns_all_phase_survivors(self):
        p = directed_cycle(3)
        assert len(generate_directed_schedules(p, dedup_automorphic=False)) >= len(
            generate_directed_schedules(p)
        )


# ---------------------------------------------------------------------------
# plan compilation
# ---------------------------------------------------------------------------
class TestCompile:
    def test_out_in_deps(self):
        # pattern 0 -> 1, schedule (0, 1): candidate for 1 comes from
        # out-neighbours of the value bound to 0.
        p = directed_path(2)
        plan = compile_directed_plan(p, (0, 1), frozenset())
        assert plan.out_deps == ((), (0,))
        assert plan.in_deps == ((), ())
        # reversed schedule: candidate for 0 comes from in-neighbours of 1's value
        plan = compile_directed_plan(p, (1, 0), frozenset())
        assert plan.out_deps == ((), ())
        assert plan.in_deps == ((), (0,))

    def test_antiparallel_pair_in_both(self):
        p = DiPattern(2, [(0, 1), (1, 0)])
        plan = compile_directed_plan(p, (0, 1), frozenset())
        assert plan.out_deps[1] == (0,)
        assert plan.in_deps[1] == (0,)

    def test_restriction_bounds(self):
        p = directed_cycle(3)
        plan = compile_directed_plan(p, (0, 1, 2), frozenset({(0, 1)}))
        # id(0) > id(1): vertex 1 at depth 1 must be < value at depth 0
        assert plan.upper[1] == (0,)
        assert plan.lower == ((), (), ())

    def test_bad_schedule_rejected(self):
        with pytest.raises(ValueError, match="permutation"):
            compile_directed_plan(directed_cycle(3), (0, 1, 1), frozenset())


# ---------------------------------------------------------------------------
# counting correctness
# ---------------------------------------------------------------------------
class TestCounting:
    @pytest.mark.parametrize("pattern", DIPATTERNS, ids=lambda p: p.name)
    def test_matches_bruteforce_on_random_digraph(self, pattern, dig_small):
        expected = bruteforce_directed_count(dig_small, pattern)
        assert count_directed(dig_small, pattern) == expected

    @pytest.mark.parametrize(
        "pattern",
        [directed_cycle(3), transitive_triangle(), directed_path(3)],
        ids=lambda p: p.name,
    )
    def test_matches_bruteforce_on_citation_graph(self, pattern, citation):
        expected = bruteforce_directed_count(citation, pattern)
        assert count_directed(citation, pattern) == expected

    def test_symmetrised_triangle_identity(self):
        """On DiGraph.from_undirected(g): each undirected triangle yields
        exactly 2 directed 3-cycles (the two rotation classes) and 6
        transitive triangles (all vertex orderings, |Aut| = 1)."""
        und = erdos_renyi(40, 0.25, seed=101)
        d = DiGraph.from_undirected(und)
        tri = triangle_count(und)
        assert count_directed(d, directed_cycle(3)) == 2 * tri
        assert count_directed(d, transitive_triangle()) == 6 * tri

    def test_dag_has_no_directed_cycles(self, citation):
        # Price graphs are DAGs: no directed cycle embeds.
        assert count_directed(citation, directed_cycle(3)) == 0
        assert count_directed(citation, directed_cycle(4)) == 0

    def test_all_configurations_agree(self, dig_small):
        """Every (schedule, restriction set) must produce the same count."""
        p = directed_cycle(4)
        expected = bruteforce_directed_count(dig_small, p)
        matcher = DirectedMatcher(p)
        for s in matcher.schedules():
            for rs in matcher.restriction_sets():
                plan = compile_directed_plan(p, s, rs)
                assert DirectedEngine(dig_small, plan).count() == expected

    def test_pattern_larger_than_graph(self):
        g = digraph_from_edges([(0, 1)])
        assert count_directed(g, directed_cycle(4)) == 0

    def test_empty_digraph(self):
        g = digraph_from_edges([(0, 1)], n_vertices=6)
        assert count_directed(g, directed_cycle(3)) == 0


# ---------------------------------------------------------------------------
# enumeration
# ---------------------------------------------------------------------------
class TestEnumeration:
    def test_embeddings_are_valid_and_distinct(self, dig_small):
        p = directed_cycle(3)
        embs = list(match_directed(dig_small, p))
        for emb in embs:
            for u, v in p.arcs:
                assert dig_small.has_arc(emb[u], emb[v])
        assert len({frozenset(e) for e in embs}) == len(embs)
        assert len(embs) == bruteforce_directed_count(dig_small, p)

    def test_asymmetric_embeddings_distinct_as_maps(self, dig_small):
        p = transitive_triangle()
        embs = list(match_directed(dig_small, p))
        assert len(set(embs)) == len(embs)
        assert len(embs) == bruteforce_directed_count(dig_small, p)

    def test_limit(self, dig_small):
        embs = list(match_directed(dig_small, directed_path(3), limit=4))
        assert len(embs) == 4


# ---------------------------------------------------------------------------
# matcher plumbing
# ---------------------------------------------------------------------------
class TestMatcher:
    def test_disconnected_rejected(self):
        with pytest.raises(ValueError, match="connected"):
            DirectedMatcher(DiPattern(4, [(0, 1), (2, 3)]))

    def test_plan_report_fields(self, dig_small):
        m = DirectedMatcher(directed_cycle(4))
        rep = m.plan(dig_small)
        assert rep.n_schedules >= 1
        assert len(rep.restriction_sets) >= 1
        assert rep.predicted_cost > 0
        assert rep.seconds_total >= 0
        assert sorted(rep.chosen_schedule) == [0, 1, 2, 3]

    def test_count_with_precomputed_report(self, dig_small):
        m = DirectedMatcher(directed_cycle(3))
        rep = m.plan(dig_small)
        assert m.count(dig_small, report=rep) == count_directed(
            dig_small, directed_cycle(3)
        )

    def test_reverse_pattern_same_count(self, dig_small):
        """Reversing every pattern arc maps embeddings bijectively onto
        embeddings in the arc-reversed data graph; on a fixed data graph
        the counts generally differ, but for the arc-reversal-symmetric
        ER model the *distribution* coincides — here we simply pin the
        exact identity count_G(P) == count_G_rev(P_rev)."""
        p = DiPattern(3, [(0, 1), (0, 2)], name="out-wedge")
        rev_graph = digraph_from_edges(
            [(v, u) for u, v in dig_small.arcs()], n_vertices=dig_small.n_vertices
        )
        assert count_directed(dig_small, p) == count_directed(rev_graph, p.reverse())


class TestPrefixTasks:
    """Directed master/worker split: prefixes partition the count."""

    def test_prefix_sum_equals_total(self, dig_small):
        p = directed_cycle(3)
        m = DirectedMatcher(p)
        rep = m.plan(dig_small)
        engine = DirectedEngine(dig_small, rep.plan)
        total = engine.count()
        for depth in (1, 2):
            raw = sum(engine.count_prefix(pre) for pre in engine.iter_prefixes(depth))
            assert engine.finalize_count(raw) == total

    def test_prefixes_respect_restrictions(self, dig_small):
        p = directed_cycle(4)
        m = DirectedMatcher(p)
        rep = m.plan(dig_small)
        engine = DirectedEngine(dig_small, rep.plan)
        for pre in engine.iter_prefixes(2):
            assert len(pre) == 2
            assert len(set(pre)) == 2

    def test_bad_split_depth(self, dig_small):
        p = directed_cycle(3)
        rep = DirectedMatcher(p).plan(dig_small)
        engine = DirectedEngine(dig_small, rep.plan)
        with pytest.raises(ValueError):
            list(engine.iter_prefixes(0))
        with pytest.raises(ValueError):
            list(engine.iter_prefixes(3))

    def test_single_loop_plan_cannot_split(self, dig_small):
        # out-star-2 with iep_k=2 leaves one executed loop: splitting is
        # meaningless and must raise a clean ValueError (the old
        # max(2, n_loops) guard let split_depth=1 through to an
        # IndexError inside the prefix walk).
        plan = compile_directed_plan(out_star(2), (0, 1, 2), frozenset(), iep_k=2)
        assert plan.n_loops == 1
        engine = DirectedEngine(dig_small, plan)
        with pytest.raises(ValueError, match="at least two executed loops"):
            list(engine.iter_prefixes(1))


class TestDirectedIEP:
    """§IV-D counting carried over to the directed extension."""

    @pytest.mark.parametrize("pattern", DIPATTERNS, ids=lambda p: p.name)
    def test_iep_equals_plain(self, pattern, dig_small):
        m = DirectedMatcher(pattern)
        assert m.count(dig_small, use_iep=True) == m.count(dig_small, use_iep=False)

    def test_iep_absorbs_suffix_for_bifan(self, dig_small):
        """bi-fan's sinks {2,3} are non-adjacent: IEP should fire."""
        m = DirectedMatcher(bi_fan())
        rep = m.plan(dig_small, use_iep=True)
        assert rep.plan.iep_k >= 1
        assert m.count(dig_small, report=rep) == bruteforce_directed_count(
            dig_small, bi_fan()
        )

    def test_iep_on_out_star(self, dig_small):
        """out-star leaves are pairwise non-adjacent (k = 3): the dropped
        inner restrictions must be compensated by the directed-group
        multiplicity."""
        m = DirectedMatcher(out_star(3))
        rep = m.plan(dig_small, use_iep=True)
        assert m.count(dig_small, report=rep) == bruteforce_directed_count(
            dig_small, out_star(3)
        )
        if rep.plan.iep_k >= 2 and rep.plan.dropped_restrictions:
            assert rep.plan.iep_overcount > 1

    def test_enumeration_rejects_iep_plan(self, dig_small):
        m = DirectedMatcher(bi_fan())
        rep = m.plan(dig_small, use_iep=True)
        if rep.plan.iep_k == 0:
            pytest.skip("no IEP suffix realised")
        with pytest.raises(ValueError, match="iep_k=0"):
            DirectedEngine(dig_small, rep.plan).enumerate_embeddings()

    def test_match_rejects_iep_report(self, dig_small):
        # match(report=...) used to silently re-plan and drop the passed
        # report when it carried an IEP suffix; it must refuse instead,
        # matching DirectedEngine.enumerate_embeddings.
        m = DirectedMatcher(bi_fan())
        rep = m.plan(dig_small, use_iep=True)
        if rep.plan.iep_k == 0:
            pytest.skip("no IEP suffix realised")
        with pytest.raises(ValueError, match="iep_k=0"):
            m.match(dig_small, report=rep)

    def test_match_honours_iep_free_report(self, dig_small):
        m = DirectedMatcher(transitive_triangle())
        rep = m.plan(dig_small)
        got = {tuple(e) for e in m.match(dig_small, report=rep)}
        want = {tuple(e) for e in m.match(dig_small)}
        assert got == want and len(got) == m.count(dig_small)

    def test_compile_rejects_bad_iep_k(self):
        p = directed_cycle(4)  # skeleton C4: max independent suffix = 2
        with pytest.raises(ValueError, match="independent suffix"):
            compile_directed_plan(p, (0, 1, 2, 3), frozenset(), iep_k=3)

    def test_prefix_tasks_with_iep(self, dig_small):
        m = DirectedMatcher(bi_fan())
        rep = m.plan(dig_small, use_iep=True)
        if rep.plan.iep_k == 0 or rep.plan.n_loops < 2:
            pytest.skip("no splittable IEP plan here")
        engine = DirectedEngine(dig_small, rep.plan)
        raw = sum(engine.count_prefix(pre) for pre in engine.iter_prefixes(1))
        assert engine.finalize_count(raw) == bruteforce_directed_count(
            dig_small, bi_fan()
        )
