"""Inclusion–Exclusion counting (§IV-D, Algorithm 2)."""

import numpy as np
import pytest

from repro.core.config import Configuration
from repro.core.engine import Engine
from repro.core.iep import (
    count_distinct_tuples,
    count_distinct_tuples_pairs,
    partition_coefficient,
    set_partitions,
)
from repro.core.restrictions import generate_restriction_sets
from repro.core.schedule import generate_schedules, independent_suffix_size
from repro.graph.generators import erdos_renyi
from repro.graph.intersection import VERTEX_DTYPE
from repro.pattern.catalog import cycle_6_tri, house, rectangle_house


def arr(*xs):
    return np.asarray(xs, dtype=VERTEX_DTYPE)


class TestSetPartitions:
    @pytest.mark.parametrize("k,bell", [(0, 1), (1, 1), (2, 2), (3, 5), (4, 15), (5, 52)])
    def test_bell_numbers(self, k, bell):
        assert len(set_partitions(k)) == bell

    def test_blocks_partition_the_ground_set(self):
        for partition in set_partitions(4):
            flat = sorted(x for block in partition for x in block)
            assert flat == [0, 1, 2, 3]

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            set_partitions(-1)


class TestPartitionCoefficient:
    def test_singletons(self):
        assert partition_coefficient([(0,), (1,)]) == 1

    def test_pair(self):
        assert partition_coefficient([(0, 1)]) == -1

    def test_triple(self):
        assert partition_coefficient([(0, 1, 2)]) == 2

    def test_mixed(self):
        # (-1)^1 1! * (-1)^2 2! = -2
        assert partition_coefficient([(0, 1), (2, 3, 4)]) == -2


class TestDistinctTuples:
    def test_k0(self):
        assert count_distinct_tuples([]) == 1

    def test_single_set(self):
        assert count_distinct_tuples([arr(1, 2, 3)]) == 3

    def test_two_disjoint(self):
        assert count_distinct_tuples([arr(1, 2), arr(3, 4)]) == 4

    def test_two_identical(self):
        s = arr(1, 2, 3)
        assert count_distinct_tuples([s, s]) == 6  # 3*3 - 3

    def test_paper_identity_k2(self):
        a, b = arr(1, 2, 3, 4), arr(3, 4, 5)
        assert count_distinct_tuples([a, b]) == 4 * 3 - 2

    def test_three_identical(self):
        s = arr(1, 2, 3, 4)
        # Injective maps [3] -> S: 4*3*2.
        assert count_distinct_tuples([s, s, s]) == 24

    def test_brute_force_cross_check(self):
        rng = np.random.default_rng(17)
        for _ in range(30):
            k = int(rng.integers(1, 4))
            sets = [
                np.unique(rng.integers(0, 8, size=rng.integers(0, 7))).astype(VERTEX_DTYPE)
                for _ in range(k)
            ]
            from itertools import product

            expected = sum(
                1
                for combo in product(*[s.tolist() for s in sets])
                if len(set(combo)) == k
            )
            assert count_distinct_tuples(sets) == expected, sets

    def test_partition_equals_pairs_formulation(self):
        """The partition-lattice collapse must agree with the paper's
        literal sum over pair subsets (Algorithm 2 applied to every term)."""
        rng = np.random.default_rng(23)
        for _ in range(20):
            k = int(rng.integers(1, 5))
            sets = [
                np.unique(rng.integers(0, 12, size=rng.integers(0, 9))).astype(VERTEX_DTYPE)
                for _ in range(k)
            ]
            assert count_distinct_tuples(sets) == count_distinct_tuples_pairs(sets)

    def test_empty_set_among_inputs(self):
        assert count_distinct_tuples([arr(1, 2), arr()]) == 0


class TestEngineIEPEquivalence:
    """IEP counting must equal plain counting for every configuration."""

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_house_all_k(self, seed):
        g = erdos_renyi(45, 0.25, seed=seed)
        pattern = house()
        sets = generate_restriction_sets(pattern)
        for schedule in generate_schedules(pattern, dedup_automorphic=True)[:3]:
            for rs in sets[:3]:
                cfg = Configuration(pattern, schedule, rs)
                baseline = Engine(g, cfg.compile()).count()
                for k in (1, 2):
                    try:
                        plan = cfg.compile(iep_k=k)
                    except ValueError:
                        continue
                    assert Engine(g, plan).count() == baseline, (schedule, sorted(rs), k)

    def test_cycle6tri_k3(self):
        g = erdos_renyi(30, 0.3, seed=5)
        pattern = cycle_6_tri()
        rs = generate_restriction_sets(pattern)[0]
        cfg = Configuration(pattern, (0, 1, 2, 3, 4, 5), rs)
        baseline = Engine(g, cfg.compile()).count()
        plan = cfg.compile(iep_k=3)
        assert plan.iep_k == 3
        assert Engine(g, plan).count() == baseline

    def test_rectangle_house_iep(self):
        g = erdos_renyi(32, 0.28, seed=9)
        pattern = rectangle_house()
        rs = generate_restriction_sets(pattern)[0]
        k = independent_suffix_size(pattern)
        for schedule in generate_schedules(pattern, dedup_automorphic=True)[:2]:
            cfg = Configuration(pattern, schedule, rs)
            baseline = Engine(g, cfg.compile()).count()
            from repro.core.schedule import intersection_free_suffix_length

            kk = min(k, intersection_free_suffix_length(pattern, schedule))
            if kk > 0:
                from repro.core.restrictions import NonUniformOvercountError

                try:
                    plan = cfg.compile(iep_k=kk)
                except NonUniformOvercountError:
                    continue
                assert Engine(g, plan).count() == baseline
