"""The public PatternMatcher API."""

import pytest

from repro.baselines.bruteforce import bruteforce_count, bruteforce_enumerate
from repro.core.api import PatternMatcher, count_pattern, match_pattern
from repro.graph.stats import GraphStats
from repro.pattern.catalog import cycle_6_tri, house, triangle
from repro.pattern.pattern import Pattern


class TestPlan:
    def test_report_contents(self, er_small):
        m = PatternMatcher(house())
        rep = m.plan(er_small)
        assert rep.pattern == house()
        assert len(rep.restriction_sets) >= 1
        assert rep.n_schedules >= 1
        assert rep.ranking[0] is rep.chosen
        assert rep.chosen.predicted_cost <= rep.ranking[-1].predicted_cost
        assert rep.generated is not None
        assert rep.seconds_total >= 0
        assert "configurations" in rep.describe()

    def test_plan_with_precomputed_stats(self, er_small):
        stats = GraphStats.of(er_small)
        rep = PatternMatcher(triangle()).plan(stats=stats)
        assert rep.stats is stats

    def test_plan_requires_graph_or_stats(self):
        with pytest.raises(ValueError):
            PatternMatcher(triangle()).plan()

    def test_use_iep_selects_iep_plan(self, er_small):
        rep = PatternMatcher(cycle_6_tri()).plan(er_small, use_iep=True)
        assert rep.plan.iep_k > 0

    def test_codegen_toggle(self, er_small):
        rep = PatternMatcher(triangle(), use_codegen=False).plan(er_small)
        assert rep.generated is None
        rep2 = PatternMatcher(triangle(), use_codegen=False).plan(er_small, codegen=True)
        assert rep2.generated is not None


class TestCount:
    def test_matches_bruteforce(self, er_small, all_small_patterns):
        for pattern in all_small_patterns:
            expected = bruteforce_count(er_small, pattern)
            assert PatternMatcher(pattern).count(er_small) == expected, pattern.name
            assert count_pattern(er_small, pattern) == expected

    def test_iep_and_plain_agree(self, er_small, small_pattern):
        m = PatternMatcher(small_pattern)
        assert m.count(er_small, use_iep=True) == m.count(er_small, use_iep=False)

    def test_count_with_cached_report(self, er_small):
        m = PatternMatcher(house())
        rep = m.plan(er_small, use_iep=True)
        assert m.count(er_small, report=rep) == m.count(er_small)

    def test_disconnected_pattern_rejected(self):
        with pytest.raises(ValueError):
            PatternMatcher(Pattern(4, [(0, 1), (2, 3)]))


class TestMatch:
    def test_embeddings_valid(self, er_small):
        pattern = house()
        for emb in PatternMatcher(pattern).match(er_small, limit=25):
            assert len(set(emb)) == pattern.n_vertices
            for u, v in pattern.edges:
                assert er_small.has_edge(emb[u], emb[v])

    def test_match_pattern_oneshot(self, er_small):
        embs = {frozenset(e) for e in match_pattern(er_small, triangle())}
        brute = {frozenset(e) for e in bruteforce_enumerate(er_small, triangle())}
        assert embs == brute

    def test_match_never_uses_iep(self, er_small):
        # Even with an IEP-selected report, match() recompiles without IEP.
        m = PatternMatcher(cycle_6_tri())
        rep = m.plan(er_small, use_iep=True)
        embs = list(m.match(er_small, limit=2, report=rep))
        assert all(len(e) == 6 for e in embs)


class TestCaches:
    def test_restriction_and_schedule_caches(self, er_small):
        m = PatternMatcher(house())
        assert m.restriction_sets() is m.restriction_sets()
        assert m.schedules() is m.schedules()

    def test_max_restriction_sets(self):
        from repro.pattern.catalog import clique

        m = PatternMatcher(clique(4), max_restriction_sets=2)
        assert len(m.restriction_sets()) <= 2
