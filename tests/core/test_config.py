"""Configuration compilation: dependency and restriction placement."""

import pytest

from repro.core.config import Configuration, compile_plan, enumerate_configurations
from repro.core.restrictions import generate_restriction_sets
from repro.pattern.catalog import cycle_6_tri, house, rectangle, triangle


class TestConfiguration:
    def test_rejects_bad_schedule(self):
        with pytest.raises(ValueError):
            Configuration(triangle(), (0, 1), frozenset())
        with pytest.raises(ValueError):
            Configuration(triangle(), (0, 1, 1), frozenset())

    def test_rejects_bad_restrictions(self):
        with pytest.raises(ValueError):
            Configuration(triangle(), (0, 1, 2), frozenset({(0, 9)}))

    def test_describe(self):
        c = Configuration(triangle(), (0, 1, 2), frozenset({(0, 1)}))
        assert "id(0)>id(1)" in c.describe()


class TestCompile:
    def test_house_plan_matches_fig5(self):
        """Schedule A..E with id(A)>id(B): the break sits in loop B."""
        cfg = Configuration(house(), (0, 1, 2, 3, 4), frozenset({(0, 1)}))
        plan = cfg.compile()
        assert plan.deps == ((), (0,), (0,), (1, 2), (0, 1))
        # id(0)>id(1): vertex 1 is bound later (depth 1), so its loop gets
        # an upper bound from depth 0.
        assert plan.upper[1] == (0,)
        assert all(not plan.lower[d] for d in range(5))

    def test_restriction_direction_lower(self):
        # id(1)>id(0) with 1 bound later → lower bound at depth 1.
        cfg = Configuration(triangle(), (0, 1, 2), frozenset({(1, 0)}))
        plan = cfg.compile()
        assert plan.lower[1] == (0,)
        assert plan.upper[1] == ()

    def test_restriction_checked_at_later_depth(self):
        # Restriction between schedule positions 0 and 2.
        cfg = Configuration(triangle(), (2, 1, 0), frozenset({(2, 0)}))
        plan = cfg.compile()
        # vertex 2 at depth 0, vertex 0 at depth 2: checked at depth 2,
        # id(2)>id(0) → candidates at depth 2 must be < value at depth 0.
        assert plan.upper[2] == (0,)

    def test_n_loops_without_iep(self):
        plan = Configuration(house(), (0, 1, 2, 3, 4), frozenset()).compile()
        assert plan.n == 5 and plan.n_loops == 5 and plan.iep_k == 0

    def test_restriction_depth_rows(self):
        cfg = Configuration(house(), (0, 1, 2, 3, 4), frozenset({(0, 1)}))
        rows = cfg.compile().restriction_depths()
        assert rows == [(1, 0, False)]


class TestCompileIEP:
    def test_iep_k_out_of_range(self):
        cfg = Configuration(triangle(), (0, 1, 2), frozenset())
        with pytest.raises(ValueError):
            cfg.compile(iep_k=3)

    def test_iep_needs_independent_suffix(self):
        # K3's suffix of 2 is never independent.
        cfg = Configuration(triangle(), (0, 1, 2), frozenset())
        with pytest.raises(ValueError, match="independent suffix"):
            cfg.compile(iep_k=2)

    def test_house_iep2(self):
        sets = generate_restriction_sets(house())
        cfg = Configuration(house(), (0, 1, 2, 3, 4), sets[0])
        plan = cfg.compile(iep_k=2)
        assert plan.n_loops == 3
        assert plan.iep_k == 2

    def test_outer_inner_restriction_kept_as_bound(self):
        """id(0)>id(4) with 4 inner: kept as an upper bound at depth 4."""
        cfg = Configuration(house(), (0, 1, 2, 3, 4), frozenset({(0, 4), (0, 1)}))
        plan = cfg.compile(iep_k=2)
        assert (0, 4) not in plan.dropped_restrictions
        assert plan.upper[4] == (0,)

    def test_inner_inner_restriction_dropped(self):
        """id(3)>id(4) with both inner: dropped, divisor compensates."""
        cfg = Configuration(house(), (0, 1, 2, 3, 4), frozenset({(3, 4), (0, 1)}))
        plan = cfg.compile(iep_k=2)
        assert (3, 4) in plan.dropped_restrictions
        assert plan.iep_overcount >= 1

    def test_no_drop_means_divisor_one(self):
        cfg = Configuration(house(), (0, 1, 2, 3, 4), frozenset({(0, 1)}))
        plan = cfg.compile(iep_k=2)
        assert plan.dropped_restrictions == frozenset()
        assert plan.iep_overcount == 1

    def test_cycle6tri_iep3(self):
        p = cycle_6_tri()
        sets = generate_restriction_sets(p)
        cfg = Configuration(p, (0, 1, 2, 3, 4, 5), sets[0])
        plan = cfg.compile(iep_k=3)
        assert plan.n_loops == 3


class TestEnumerate:
    def test_cartesian_product(self):
        scheds = [(0, 1, 2), (1, 0, 2)]
        sets = [frozenset(), frozenset({(0, 1)})]
        configs = enumerate_configurations(triangle(), scheds, sets)
        assert len(configs) == 4

    def test_compile_plan_function(self):
        cfg = Configuration(rectangle(), (0, 1, 2, 3), frozenset())
        assert compile_plan(cfg).n == 4
