"""The unified MatchQuery/MatchSession facade and its plan cache."""

import dataclasses

import pytest

from repro.baselines.bruteforce import (
    bruteforce_count,
    bruteforce_directed_count,
    bruteforce_induced_count,
)
from repro.core.api import PatternMatcher, count_pattern, match_pattern, match_query
from repro.core.directed import DirectedMatcher, count_directed
from repro.core.induced import induced_count
from repro.core.labeled import LabeledMatcher, labeled_bruteforce_count, labeled_count
from repro.core.query import MatchQuery, MatchResult, as_query
from repro.core.session import (
    MatchSession,
    clear_sessions,
    get_session,
    stats_signature,
)
from repro.graph.digraph import DiGraph, random_digraph
from repro.graph.generators import erdos_renyi
from repro.graph.labeled import assign_random_labels
from repro.pattern.catalog import clique, house, rectangle, triangle
from repro.pattern.directed import directed_cycle, transitive_triangle
from repro.pattern.labeled import LabeledPattern


@pytest.fixture
def lgraph():
    return assign_random_labels(erdos_renyi(35, 0.25, seed=5), 2, seed=7)


@pytest.fixture
def digraph():
    return random_digraph(40, 0.12, seed=11)


class TestMatchQuery:
    def test_mode_inferred_from_pattern_type(self):
        assert MatchQuery(house()).mode == "plain"
        assert MatchQuery(LabeledPattern(triangle(), (0, 0, 1))).mode == "labeled"
        assert MatchQuery(directed_cycle(3)).mode == "directed"

    def test_mode_mismatch_rejected(self):
        with pytest.raises(ValueError, match="does not match"):
            MatchQuery(house(), mode="directed")

    def test_unknown_mode_and_semantics_rejected(self):
        with pytest.raises(ValueError, match="unknown mode"):
            MatchQuery(house(), mode="quantum")
        with pytest.raises(ValueError, match="unknown semantics"):
            MatchQuery(house(), semantics="telepathic")

    def test_induced_semantics_only_plain(self):
        with pytest.raises(ValueError, match="only defined for plain"):
            MatchQuery(directed_cycle(3), semantics="induced")

    def test_induced_semantics_rejects_iep(self):
        with pytest.raises(ValueError, match="IEP"):
            MatchQuery(house(), semantics="induced", use_iep=True)

    def test_disconnected_pattern_rejected(self):
        from repro.pattern.pattern import Pattern

        with pytest.raises(ValueError, match="connected"):
            MatchQuery(Pattern(4, [(0, 1), (2, 3)]))

    def test_use_iep_defaults(self):
        assert MatchQuery(house()).resolved_use_iep is True
        assert MatchQuery(house(), semantics="induced").resolved_use_iep is False
        assert MatchQuery(directed_cycle(3)).resolved_use_iep is False
        assert MatchQuery(house(), use_iep=False).resolved_use_iep is False

    def test_fingerprint_excludes_backend(self):
        q = MatchQuery(house())
        assert q.with_backend("interpreter").fingerprint == q.fingerprint

    def test_fingerprint_covers_plan_knobs(self):
        q = MatchQuery(house())
        assert q.fingerprint != MatchQuery(house(), use_iep=False).fingerprint
        assert q.fingerprint != MatchQuery(triangle()).fingerprint
        assert (
            q.fingerprint
            != MatchQuery(house(), max_restriction_sets=8).fingerprint
        )
        assert q.fingerprint != MatchQuery(house(), semantics="induced").fingerprint

    def test_for_enumeration_disables_iep(self):
        q = MatchQuery(house())
        assert q.for_enumeration().resolved_use_iep is False
        q2 = MatchQuery(house(), use_iep=False)
        assert q2.for_enumeration() is q2

    def test_as_query_wraps_patterns_and_rejects_mixed_options(self):
        assert as_query(triangle()).mode == "plain"
        q = MatchQuery(triangle())
        assert as_query(q) is q
        with pytest.raises(TypeError, match="ready MatchQuery"):
            as_query(q, use_iep=False)


class TestMatchResult:
    def test_int_like(self, er_small):
        res = MatchSession(er_small).count(MatchQuery(triangle()))
        assert isinstance(res, MatchResult)
        expected = bruteforce_count(er_small, triangle())
        assert res == expected
        assert int(res) == expected
        assert [0] * 3 == [0] * MatchResult(
            count=3, backend="interpreter", mode="plain", semantics="edge",
            cache_hit=False, seconds_plan=0.0, seconds_execute=0.0,
            provenance="", fingerprint=(),
        )  # __index__

    def test_numeric_comparisons(self, er_small):
        res = MatchSession(er_small).count(MatchQuery(triangle()))
        n = res.count
        assert res == float(n)
        assert res < n + 1 and res <= n and res > n - 1 and res >= n
        assert sorted([n + 1, res, n - 1]) == [n - 1, res, n + 1]
        with pytest.raises(TypeError):
            res < "not-a-number"

    def test_records_provenance_and_backend(self, er_small):
        res = MatchSession(er_small).count(MatchQuery(house()))
        assert res.backend == "compiled"
        assert res.mode == "plain" and res.semantics == "edge"
        assert "schedule" in res.provenance
        assert res.seconds_total >= res.seconds_execute >= 0


class TestPlanCache:
    def test_second_count_is_cache_hit_and_skips_planning(self, er_small):
        """Satellite regression: the old PatternMatcher re-ranked and
        re-codegenned on every count(); the session must not."""
        session = MatchSession(er_small)
        q = MatchQuery(house())
        r1 = session.count(q)
        assert not r1.cache_hit and r1.seconds_plan > 0
        # Any further planning would go through _plan — make it explode.
        session._plan = lambda *a, **k: pytest.fail("planned twice")
        r2 = session.count(MatchQuery(house()))  # equal query, fresh object
        assert r2.cache_hit
        assert r2.seconds_plan == 0.0
        assert r2.count == r1.count
        assert session.cache_info() == (1, 1, 1)

    def test_patternmatcher_shim_reuses_session_plans(self, er_small):
        m = PatternMatcher(rectangle())
        first = m.count(er_small)
        info_before = get_session(er_small).cache_info()
        assert m.count(er_small) == first
        info_after = get_session(er_small).cache_info()
        assert info_after.hits == info_before.hits + 1
        assert info_after.misses == info_before.misses

    def test_distinct_fingerprints_get_distinct_entries(self, er_small):
        session = MatchSession(er_small)
        session.count(MatchQuery(triangle()))
        session.count(MatchQuery(triangle(), use_iep=False))
        assert session.cache_info().size == 2

    def test_plan_cache_is_lru_bounded(self, er_small):
        session = MatchSession(er_small, max_plans=2)
        for p in (triangle(), rectangle(), house()):
            session.count(MatchQuery(p, use_iep=False))
        assert session.cache_info().size == 2
        # triangle (least recently used) was evicted -> re-plans
        assert not session.count(MatchQuery(triangle(), use_iep=False)).cache_hit
        with pytest.raises(ValueError, match="capacity"):
            MatchSession(er_small, max_plans=0)

    def test_fingerprint_memoised_on_query(self):
        q = MatchQuery(house())
        assert q.fingerprint is q.fingerprint

    def test_clear_cache(self, er_small):
        session = MatchSession(er_small)
        session.count(MatchQuery(triangle()))
        session.clear_cache()
        assert session.cache_info() == (0, 0, 0)
        assert not session.count(MatchQuery(triangle())).cache_hit

    def test_signature_differs_across_graphs(self, er_small, er_medium):
        assert MatchSession(er_small).signature != MatchSession(er_medium).signature

    def test_signature_tracks_labels(self, er_small):
        lg1 = assign_random_labels(er_small, 2, seed=1)
        lg2 = assign_random_labels(er_small, 2, seed=2)
        s1 = stats_signature(lg1, MatchSession(lg1).stats)
        s2 = stats_signature(lg2, MatchSession(lg2).stats)
        assert s1 != s2

    def test_get_session_identity_and_lru_bound(self):
        from repro.core import session as session_mod

        clear_sessions()
        g = erdos_renyi(12, 0.4, seed=9)
        first = get_session(g)
        assert get_session(g) is first
        assert len(session_mod._SESSIONS) == 1
        # Flood the registry past its LRU capacity; the oldest session
        # (g's) must be evicted and a later lookup gets a fresh one.
        others = [erdos_renyi(10, 0.4, seed=s) for s in range(
            session_mod.session_cache_size()
        )]
        for other in others:
            get_session(other)
        assert len(session_mod._SESSIONS) == session_mod.session_cache_size()
        assert get_session(g) is not first
        clear_sessions()
        assert len(session_mod._SESSIONS) == 0


class TestOldApiEqualsNewApi:
    """Satellite: the historical entry points are thin wrappers — results
    must be pinned equal to the session layer (and the oracle)."""

    def test_count_parity(self, er_small, all_small_patterns):
        session = MatchSession(er_small)
        for pattern in all_small_patterns:
            expected = bruteforce_count(er_small, pattern)
            new = session.count(MatchQuery(pattern))
            assert new == expected, pattern.name
            assert count_pattern(er_small, pattern) == new.count
            assert PatternMatcher(pattern).count(er_small) == new.count

    def test_match_parity(self, er_small):
        session = MatchSession(er_small)
        new = {frozenset(e) for e in session.enumerate(MatchQuery(house()))}
        old = {frozenset(e) for e in match_pattern(er_small, house())}
        assert new == old

    def test_enumerate_limit(self, er_small):
        session = MatchSession(er_small)
        embs = list(session.enumerate(MatchQuery(house()), limit=3))
        assert len(embs) == 3

    def test_match_query_oneshot(self, er_small):
        res = match_query(er_small, MatchQuery(triangle()))
        assert res == bruteforce_count(er_small, triangle())
        assert match_query(er_small, triangle(), backend="interpreter").backend == (
            "interpreter"
        )


class TestCrossModeParity:
    """Satellite: labeled/induced/directed counts through MatchSession
    equal the module-level functions and the brute-force oracles."""

    def test_induced(self, er_small):
        for pattern in [house(), rectangle()]:
            expected = bruteforce_induced_count(er_small, pattern)
            q = MatchQuery(pattern, semantics="induced")
            assert MatchSession(er_small).count(q) == expected
            assert induced_count(er_small, pattern, method="engine") == expected

    def test_labeled(self, lgraph):
        lp = LabeledPattern(triangle(), (0, 0, 1))
        expected = labeled_bruteforce_count(lgraph, lp)
        assert MatchSession(lgraph).count(MatchQuery(lp)) == expected
        assert labeled_count(lgraph, lp) == expected
        assert LabeledMatcher(lp).count(lgraph) == expected

    def test_directed(self, digraph):
        for dp in [directed_cycle(3), transitive_triangle()]:
            expected = bruteforce_directed_count(digraph, dp)
            assert MatchSession(digraph).count(MatchQuery(dp)) == expected
            assert count_directed(digraph, dp) == expected
            assert DirectedMatcher(dp).count(digraph) == expected

    def test_plain_queries_on_labeled_graph_use_structure(self, lgraph):
        expected = bruteforce_count(lgraph.graph, triangle())
        assert MatchSession(lgraph).count(MatchQuery(triangle())) == expected

    def test_mode_graph_mismatch_rejected(self, er_small, digraph):
        with pytest.raises(TypeError, match="labeled queries"):
            MatchSession(er_small).count(MatchQuery(LabeledPattern(triangle(), (0, 0, 0))))
        with pytest.raises(TypeError, match="directed queries"):
            MatchSession(er_small).count(MatchQuery(directed_cycle(3)))
        with pytest.raises(TypeError, match="plain queries"):
            MatchSession(digraph).count(MatchQuery(triangle()))


class TestUniformBackendSelection:
    """Acceptance: all three non-plain modes accept backend= through the
    unified facade, with counts identical across backends."""

    BACKENDS = ("interpreter", "preslice", "compiled", "parallel")

    def test_induced_backends_agree(self, er_small):
        session = MatchSession(er_small)
        q = MatchQuery(rectangle(), semantics="induced")
        base = session.count(q, backend="interpreter")
        for backend in self.BACKENDS:
            res = session.count(q, backend=backend)
            assert res == base, backend

    def test_labeled_backends_agree(self, lgraph):
        session = MatchSession(lgraph)
        q = MatchQuery(LabeledPattern(triangle(), (0, 0, 1)))
        base = session.count(q, backend="interpreter")
        for backend in self.BACKENDS:
            assert session.count(q, backend=backend) == base, backend

    def test_directed_backends_agree(self, digraph):
        session = MatchSession(digraph)
        q = MatchQuery(transitive_triangle())
        base = session.count(q, backend="interpreter")
        for backend in self.BACKENDS:
            assert session.count(q, backend=backend) == base, backend

    def test_backend_precedence_call_over_query_over_session(self, er_small):
        session = MatchSession(er_small, backend="preslice")
        q = MatchQuery(triangle())
        assert session.count(q).backend == "preslice"
        assert session.count(q.with_backend("interpreter")).backend == "interpreter"
        assert (
            session.count(q.with_backend("interpreter"), backend="compiled").backend
            == "compiled"
        )

    def test_use_codegen_false_defaults_to_interpreter(self, er_small):
        session = MatchSession(er_small)
        res = session.count(MatchQuery(triangle(), use_codegen=False))
        assert res.backend == "interpreter"
        assert res == bruteforce_count(er_small, triangle())

    def test_execution_time_kernel_memoised_on_entry(self, er_small, monkeypatch):
        # A codegen-less entry executed with backend="compiled" compiles
        # the kernel once and stores it back on the cached entry.
        session = MatchSession(er_small)
        q = MatchQuery(triangle(), use_codegen=False)
        expected = session.count(q, backend="compiled")
        entry = session.plan_for(q)
        assert entry.generated is not None

        from repro.core import session as session_mod

        monkeypatch.setattr(
            session_mod, "compile_plan_function",
            lambda plan: pytest.fail("kernel compiled twice"),
        )
        assert session.count(q, backend="compiled") == expected


class TestCountMany:
    def test_batch_counts_and_cache_sharing(self, er_small):
        session = MatchSession(er_small)
        queries = [MatchQuery(p) for p in (triangle(), rectangle(), triangle())]
        results = session.count_many(queries)
        assert [r.count for r in results] == [
            bruteforce_count(er_small, triangle()),
            bruteforce_count(er_small, rectangle()),
            bruteforce_count(er_small, triangle()),
        ]
        # third query repeats the first fingerprint -> cache hit
        assert [r.cache_hit for r in results] == [False, False, True]

    def test_mixed_semantics_batch(self, er_small):
        session = MatchSession(er_small)
        results = session.count_many(
            [MatchQuery(house()), MatchQuery(house(), semantics="induced")]
        )
        assert results[0].count == bruteforce_count(er_small, house())
        assert results[1].count == bruteforce_induced_count(er_small, house())


class TestPlanReportCompat:
    def test_plan_for_exposes_plain_report(self, er_small):
        session = MatchSession(er_small)
        entry = session.plan_for(MatchQuery(house(), use_iep=False))
        assert entry.report.pattern == house()
        assert entry.plan is entry.report.plan
        assert entry.seconds_plan > 0

    def test_matcher_plan_goes_through_session_cache(self, er_small):
        m = PatternMatcher(clique(4))
        rep1 = m.plan(er_small, use_iep=True)
        rep2 = m.plan(er_small, use_iep=True)
        assert rep1 is rep2  # same cached PlanEntry.report object

    def test_replaced_query_dataclass(self, er_small):
        # MatchQuery supports dataclasses.replace round-trips (frozen).
        q = MatchQuery(triangle())
        q2 = dataclasses.replace(q, use_iep=False)
        assert q2.resolved_use_iep is False
        session = MatchSession(er_small)
        assert session.count(q) == session.count(q2)
