"""Vertex-induced matching: engine filtering vs Möbius inversion vs oracle."""

from __future__ import annotations

import pytest

from repro.baselines.bruteforce import bruteforce_count, bruteforce_induced_count
from repro.core.api import PatternMatcher, count_pattern
from repro.core.config import Configuration
from repro.core.induced import (
    InducedEngine,
    induced_count,
    induced_count_engine,
    induced_count_via_moebius,
    induced_enumerate,
    noninduced_from_induced,
    supergraph_decomposition,
)
from repro.graph.generators import complete_graph, erdos_renyi
from repro.pattern.catalog import (
    clique,
    cycle,
    get_pattern,
    house,
    path,
    rectangle,
    star,
    triangle,
)
from repro.pattern.isomorphism import canonical_form
from repro.pattern.pattern import Pattern


PATTERNS = {
    "triangle": triangle(),
    "rectangle": rectangle(),
    "path3": path(3),
    "star3": star(3),
    "house": house(),
    "c4": cycle(4),
    "k4": clique(4),
}


# ---------------------------------------------------------------------------
# supergraph decomposition structure
# ---------------------------------------------------------------------------
def test_decomposition_of_clique_is_singleton():
    terms = supergraph_decomposition(clique(4))
    assert len(terms) == 1
    assert terms[0].coefficient == 1
    assert terms[0].pattern == clique(4)


def test_decomposition_first_term_is_pattern_itself():
    for p in PATTERNS.values():
        terms = supergraph_decomposition(p)
        assert canonical_form(terms[0].pattern) == canonical_form(p)
        assert terms[0].coefficient == 1


def test_decomposition_rectangle_terms():
    # C4's proper supergraphs on 4 vertices: the diamond (one diagonal,
    # 2 labeled ways) and K4 (both diagonals, 1 way).
    terms = supergraph_decomposition(rectangle())
    assert len(terms) == 3
    by_edges = {t.pattern.n_edges: t for t in terms}
    assert by_edges[4].coefficient == 1  # C4 itself
    # diamond: a = 2 labeled supersets, |Aut(diamond)| = 4, |Aut(C4)| = 8
    assert by_edges[5].coefficient == 1
    # K4: a = 1, |Aut(K4)| = 24, |Aut(C4)| = 8 -> coefficient 3
    assert by_edges[6].coefficient == 3


def test_decomposition_path3_terms():
    # P3 (path on 3 vertices) ⊂ triangle: a = 1, |Aut(K3)|=6, |Aut(P3)|=2
    terms = supergraph_decomposition(path(3))
    assert len(terms) == 2
    assert terms[1].pattern == clique(3)
    assert terms[1].coefficient == 3


def test_decomposition_coefficients_positive():
    for p in PATTERNS.values():
        for t in supergraph_decomposition(p):
            assert t.coefficient >= 1
            assert t.pattern.n_vertices == p.n_vertices
            assert t.pattern.n_edges >= p.n_edges


# ---------------------------------------------------------------------------
# counts: engine vs Möbius vs brute force
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("name", list(PATTERNS))
def test_induced_engine_matches_bruteforce(name, er_small):
    p = PATTERNS[name]
    expected = bruteforce_induced_count(er_small, p)
    assert induced_count(er_small, p, method="engine") == expected


@pytest.mark.parametrize("name", ["triangle", "rectangle", "path3", "star3", "c4"])
def test_induced_moebius_matches_bruteforce(name, er_small):
    p = PATTERNS[name]
    expected = bruteforce_induced_count(er_small, p)
    assert induced_count(er_small, p, method="moebius") == expected


def test_engine_and_moebius_agree_on_house(er_small):
    a = induced_count(er_small, house(), method="engine")
    b = induced_count(er_small, house(), method="moebius")
    assert a == b


def test_induced_le_noninduced(er_small):
    for p in PATTERNS.values():
        ind = induced_count(er_small, p, method="engine")
        non = count_pattern(er_small, p, use_iep=False)
        assert ind <= non


def test_clique_counts_coincide(er_small):
    # A clique has no anti-edges: both semantics agree.
    k4 = clique(4)
    assert induced_count(er_small, k4, method="engine") == count_pattern(
        er_small, k4, use_iep=False
    )


def test_triangle_free_pattern_on_complete_graph():
    # Induced C4s in K6: none (every 4 vertices induce K4).
    g = complete_graph(6)
    assert induced_count(g, rectangle(), method="engine") == 0
    assert induced_count(g, rectangle(), method="moebius") == 0
    # But non-induced C4s abound.
    assert count_pattern(g, rectangle(), use_iep=False) > 0


def test_forward_direction_reconstructs_noninduced(er_small):
    # noninduced(P) = Σ m(P,Q)·induced(Q) with induced counts from the engine.
    p = rectangle()
    table = {}
    for term in supergraph_decomposition(p):
        table[canonical_form(term.pattern)] = induced_count(
            er_small, term.pattern, method="engine"
        )
    assert noninduced_from_induced(p, table) == count_pattern(
        er_small, p, use_iep=False
    )


# ---------------------------------------------------------------------------
# engine mechanics
# ---------------------------------------------------------------------------
def test_induced_engine_rejects_iep_plan(er_small):
    matcher = PatternMatcher(house(), use_codegen=False)
    rep = matcher.plan(er_small, use_iep=True, codegen=False)
    if rep.plan.iep_k == 0:
        pytest.skip("model did not choose IEP here")
    with pytest.raises(ValueError, match="iep_k=0"):
        InducedEngine(er_small, rep.plan)


def test_induced_enumerate_yields_distinct_induced_embeddings(er_small):
    p = rectangle()
    matcher = PatternMatcher(p, use_codegen=False)
    rep = matcher.plan(er_small, use_iep=False, codegen=False)
    embs = list(induced_enumerate(er_small, rep.chosen.config))
    # Every embedding is induced: no diagonal edges.
    for emb in embs:
        for u in range(4):
            for v in range(u + 1, 4):
                assert p.has_edge(u, v) == er_small.has_edge(emb[u], emb[v])
    # Distinct as vertex sets (restrictions kill automorphic duplicates).
    assert len({frozenset(e) for e in embs}) == len(embs)
    assert len(embs) == bruteforce_induced_count(er_small, p)


def test_induced_enumerate_limit(er_small):
    matcher = PatternMatcher(triangle(), use_codegen=False)
    rep = matcher.plan(er_small, use_iep=False, codegen=False)
    embs = list(induced_enumerate(er_small, rep.chosen.config, limit=3))
    assert len(embs) == 3


def test_all_configurations_give_same_induced_count(er_small):
    """Induced counts are configuration-invariant (restrictions break
    induced automorphisms exactly as they break non-induced ones)."""
    p = path(3)
    matcher = PatternMatcher(p, use_codegen=False)
    expected = bruteforce_induced_count(er_small, p)
    schedules = matcher.schedules()
    res_sets = matcher.restriction_sets()
    for s in schedules:
        for r in res_sets:
            cfg = Configuration(p, s, frozenset(r))
            assert induced_count_engine(er_small, cfg) == expected


def test_disconnected_pattern_rejected(er_small):
    p = Pattern(4, [(0, 1), (2, 3)])
    with pytest.raises(ValueError, match="connected"):
        induced_count(er_small, p)


def test_unknown_method_rejected(er_small):
    with pytest.raises(ValueError, match="unknown method"):
        induced_count(er_small, triangle(), method="magic")


def test_moebius_with_custom_counter(er_small):
    calls = []

    def counter(graph, pattern):
        calls.append(pattern.n_edges)
        return count_pattern(graph, pattern, use_iep=False)

    got = induced_count_via_moebius(er_small, path(3), noninduced_counter=counter)
    assert got == bruteforce_induced_count(er_small, path(3))
    # P3 lattice: {P3, K3}; the recursion counts each class once per
    # level of back-substitution.
    assert 3 in calls and 2 in calls


def test_pattern_larger_than_graph():
    g = complete_graph(3)
    assert induced_count(g, clique(4), method="engine") == 0
