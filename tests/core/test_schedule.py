"""2-phase computation-avoid schedule generation (§IV-B)."""

from math import factorial

import pytest

from repro.core.schedule import (
    all_schedules,
    dedup_schedules,
    generate_schedules,
    has_independent_suffix,
    independent_suffix_size,
    intersection_free_suffix_length,
    is_connected_prefix,
    schedule_dependencies,
)
from repro.pattern.catalog import (
    clique,
    cycle_6_tri,
    house,
    pentagon,
    rectangle,
    star,
    triangle,
)
from repro.pattern.pattern import Pattern


class TestPhase1:
    def test_paper_example(self):
        """§IV-B phase 1: for the house, starting C, D, E is inefficient
        because E is adjacent to neither C nor D."""
        h = house()
        # C=2, D=3, E=4.
        assert not is_connected_prefix(h, (2, 3, 4, 0, 1))

    def test_valid_prefix(self):
        assert is_connected_prefix(house(), (0, 1, 2, 3, 4))

    def test_every_clique_schedule_connected(self):
        k4 = clique(4)
        assert all(is_connected_prefix(k4, s) for s in all_schedules(k4))

    def test_star_centre_late_fails(self):
        # Leaves are pairwise non-adjacent: any schedule starting with two
        # leaves has a disconnected prefix.
        s = star(3)
        assert not is_connected_prefix(s, (1, 2, 3, 0))
        assert is_connected_prefix(s, (0, 1, 2, 3))


class TestPhase2:
    def test_k_values(self):
        assert independent_suffix_size(clique(5)) == 1
        assert independent_suffix_size(house()) == 2
        assert independent_suffix_size(cycle_6_tri()) == 3

    def test_house_suffix(self):
        """Fig. 5: D and E are searched in the innermost two loops."""
        h = house()
        assert has_independent_suffix(h, (0, 1, 2, 3, 4), 2)  # ...D,E
        assert not has_independent_suffix(h, (0, 2, 3, 1, 4), 2)  # ...B,E adj

    def test_k1_trivially_true(self):
        assert has_independent_suffix(clique(4), (0, 1, 2, 3), 1)


class TestGeneration:
    def test_phase1_reduces_space(self):
        h = house()
        phase1 = generate_schedules(h, phase1=True, phase2=False)
        assert 0 < len(phase1) < factorial(5)

    def test_phase2_reduces_further(self):
        h = house()
        phase1 = generate_schedules(h, phase1=True, phase2=False)
        both = generate_schedules(h, phase1=True, phase2=True)
        assert 0 < len(both) < len(phase1)

    def test_generated_schedules_satisfy_both_phases(self):
        p = cycle_6_tri()
        k = independent_suffix_size(p)
        for s in generate_schedules(p):
            assert is_connected_prefix(p, s)
            assert has_independent_suffix(p, s, k)

    def test_all_schedules_are_permutations(self):
        for s in generate_schedules(house()):
            assert sorted(s) == [0, 1, 2, 3, 4]

    def test_paper_fig5_schedule_survives(self):
        """The paper's chosen house schedule A,B,C,D,E must be generated."""
        assert (0, 1, 2, 3, 4) in generate_schedules(house())

    def test_phase2_fallback_when_conflicting(self):
        """For the rectangle, phase 1 (connected prefix) and phase 2
        (independent last-2) are mutually exclusive — the generator must
        fall back rather than return nothing."""
        scheds = generate_schedules(rectangle())
        assert len(scheds) > 0
        assert all(is_connected_prefix(rectangle(), s) for s in scheds)

    def test_disconnected_pattern_rejected(self):
        with pytest.raises(ValueError):
            generate_schedules(Pattern(4, [(0, 1), (2, 3)]))

    def test_dedup_reduces_by_group_order(self):
        p = pentagon()  # |Aut| = 10, acts freely on schedules
        full = generate_schedules(p, dedup_automorphic=False)
        deduped = generate_schedules(p, dedup_automorphic=True)
        assert len(full) == 10 * len(deduped)

    def test_dedup_keeps_valid_schedules(self):
        p = house()
        for s in generate_schedules(p, dedup_automorphic=True):
            assert is_connected_prefix(p, s)


class TestDependencies:
    def test_house_paper_dependencies(self):
        """Fig. 5(b): candidate sets of the schedule A,B,C,D,E."""
        deps = schedule_dependencies(house(), (0, 1, 2, 3, 4))
        assert deps[0] == ()        # vA: all vertices
        assert deps[1] == (0,)      # vB ∈ N(vA)
        assert deps[2] == (0,)      # vC ∈ N(vA)
        assert deps[3] == (1, 2)    # vD ∈ N(vB) ∩ N(vC)
        assert deps[4] == (0, 1)    # vE ∈ N(vA) ∩ N(vB)

    def test_cycle6tri_paper_dependencies(self):
        """Fig. 6(b): S1 = N(A)∩N(B), S2 = N(A)∩N(C), S3 = N(B)∩N(C)."""
        deps = schedule_dependencies(cycle_6_tri(), (0, 1, 2, 3, 4, 5))
        assert deps[3] == (0, 1)
        assert deps[4] == (0, 2)
        assert deps[5] == (1, 2)


class TestSuffixLength:
    def test_house(self):
        assert intersection_free_suffix_length(house(), (0, 1, 2, 3, 4)) == 2

    def test_cycle6tri(self):
        assert intersection_free_suffix_length(cycle_6_tri(), (0, 1, 2, 3, 4, 5)) == 3

    def test_clique(self):
        assert intersection_free_suffix_length(clique(4), (0, 1, 2, 3)) == 1

    def test_capped_below_n(self):
        # Even a fully independent... patterns are connected, so suffix < n.
        assert intersection_free_suffix_length(triangle(), (0, 1, 2)) == 1
