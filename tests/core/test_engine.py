"""The nested-loop execution engine against oracles and known counts."""

import pytest

from repro.baselines.bruteforce import bruteforce_count, bruteforce_enumerate
from repro.core.config import Configuration
from repro.core.engine import Engine, count_embeddings, enumerate_embeddings
from repro.core.restrictions import generate_restriction_sets
from repro.core.schedule import generate_schedules
from repro.graph.generators import complete_graph, empty_graph, erdos_renyi
from repro.pattern.automorphism import automorphism_count
from repro.pattern.catalog import clique, house, rectangle, triangle


def make_plan(pattern, schedule=None, restrictions=None, iep_k=0):
    schedule = schedule or generate_schedules(pattern)[0]
    if restrictions is None:
        restrictions = generate_restriction_sets(pattern)[0]
    return Configuration(pattern, tuple(schedule), frozenset(restrictions)).compile(iep_k=iep_k)


class TestKnownCounts:
    @pytest.mark.parametrize("n,expected", [(3, 1), (4, 4), (5, 10), (6, 20)])
    def test_triangles_in_complete_graphs(self, n, expected):
        g = complete_graph(n)
        assert Engine(g, make_plan(triangle())).count() == expected

    def test_k4s_in_k6(self):
        assert Engine(complete_graph(6), make_plan(clique(4))).count() == 15

    def test_rectangles_in_k5(self):
        # C(5,4) * 3 distinct 4-cycles per vertex set = 15.
        assert Engine(complete_graph(5), make_plan(rectangle())).count() == 15

    def test_pattern_larger_than_graph(self):
        assert Engine(complete_graph(3), make_plan(clique(4))).count() == 0

    def test_empty_graph(self):
        assert Engine(empty_graph(10), make_plan(triangle())).count() == 0


class TestNoRestrictions:
    def test_counts_all_automorphic_images(self, er_small):
        """Without restrictions every embedding is found |Aut| times —
        the redundancy the paper eliminates."""
        pattern = triangle()
        plan = make_plan(pattern, restrictions=frozenset())
        distinct = bruteforce_count(er_small, pattern)
        assert Engine(er_small, plan).count() == distinct * automorphism_count(pattern)


class TestAgainstBruteForce:
    def test_all_patterns_all_schedules(self, er_small, all_small_patterns):
        for pattern in all_small_patterns:
            expected = bruteforce_count(er_small, pattern)
            schedules = generate_schedules(pattern, dedup_automorphic=True)[:4]
            rsets = generate_restriction_sets(pattern)[:3]
            for schedule in schedules:
                for rs in rsets:
                    plan = Configuration(pattern, schedule, rs).compile()
                    assert Engine(er_small, plan).count() == expected, (
                        pattern.name,
                        schedule,
                        sorted(rs),
                    )

    def test_inefficient_schedule_still_correct(self, er_small):
        """Phase-1-violating schedules are slower but not wrong."""
        pattern = house()
        bad = (2, 3, 4, 0, 1)  # E not adjacent to C or D
        plan = Configuration(pattern, bad, generate_restriction_sets(pattern)[0]).compile()
        assert Engine(er_small, plan).count() == bruteforce_count(er_small, pattern)


class TestEnumeration:
    def test_yields_pattern_indexed_tuples(self, er_small):
        pattern = triangle()
        plan = make_plan(pattern)
        for emb in Engine(er_small, plan).enumerate_embeddings(limit=20):
            a, b, c = emb
            assert er_small.has_edge(a, b)
            assert er_small.has_edge(a, c)
            assert er_small.has_edge(b, c)
            assert len({a, b, c}) == 3

    def test_matches_bruteforce_as_sets(self, er_small):
        pattern = house()
        plan = make_plan(pattern)
        ours = {frozenset(e) for e in Engine(er_small, plan).enumerate_embeddings()}
        brute = {frozenset(e) for e in bruteforce_enumerate(er_small, pattern)}
        assert ours == brute

    def test_no_duplicates(self, er_small):
        pattern = rectangle()
        plan = make_plan(pattern)
        embs = list(Engine(er_small, plan).enumerate_embeddings())
        assert len(embs) == len(set(embs))
        assert len(embs) == Engine(er_small, plan).count()

    def test_limit(self, er_small):
        plan = make_plan(triangle())
        assert len(list(Engine(er_small, plan).enumerate_embeddings(limit=5))) == 5

    def test_iep_plan_cannot_enumerate(self, er_small):
        plan = make_plan(house(), schedule=(0, 1, 2, 3, 4), iep_k=2)
        with pytest.raises(ValueError):
            next(Engine(er_small, plan).enumerate_embeddings())

    def test_enumerate_on_too_small_graph(self):
        plan = make_plan(clique(4))
        assert list(Engine(complete_graph(3), plan).enumerate_embeddings()) == []


class TestPrefixes:
    def test_prefix_counts_sum_to_total(self, er_small):
        pattern = house()
        plan = make_plan(pattern)
        engine = Engine(er_small, plan)
        total = engine.count()
        for depth in (1, 2, 3):
            parts = [engine.count_prefix(p) for p in engine.iter_prefixes(depth)]
            assert engine.finalize_count(sum(parts)) == total

    def test_prefixes_respect_restrictions(self, er_small):
        pattern = triangle()
        plan = make_plan(pattern, schedule=(0, 1, 2), restrictions={(0, 1), (1, 2)})
        engine = Engine(er_small, plan)
        for prefix in engine.iter_prefixes(2):
            assert prefix[0] > prefix[1]  # id(0)>id(1) already enforced

    def test_invalid_split_depth(self, er_small):
        engine = Engine(er_small, make_plan(triangle()))
        with pytest.raises(ValueError):
            list(engine.iter_prefixes(0))
        with pytest.raises(ValueError):
            list(engine.iter_prefixes(3))

    def test_single_loop_plan_cannot_split(self, er_small):
        # star-2 with iep_k=2 leaves exactly one executed loop: splitting
        # is meaningless and must raise a clean ValueError (not an
        # IndexError from the old max(2, n_loops) guard).
        from repro.pattern.catalog import star

        plan = make_plan(star(2), schedule=(0, 1, 2), restrictions=set(), iep_k=2)
        assert plan.n_loops == 1
        engine = Engine(er_small, plan)
        with pytest.raises(ValueError, match="at least two executed loops"):
            list(engine.iter_prefixes(1))

    def test_iep_prefix_sum(self, er_small):
        plan = make_plan(house(), schedule=(0, 1, 2, 3, 4), iep_k=2)
        engine = Engine(er_small, plan)
        parts = [engine.count_prefix(p) for p in engine.iter_prefixes(1)]
        assert engine.finalize_count(sum(parts)) == engine.count()


class TestConvenienceWrappers:
    def test_count_from_configuration(self, er_small):
        cfg = Configuration(triangle(), (0, 1, 2), generate_restriction_sets(triangle())[0])
        assert count_embeddings(er_small, cfg) == bruteforce_count(er_small, triangle())

    def test_enumerate_from_configuration(self, er_small):
        cfg = Configuration(triangle(), (0, 1, 2), generate_restriction_sets(triangle())[0])
        embs = list(enumerate_embeddings(er_small, cfg, limit=3))
        assert len(embs) == 3

    def test_type_error(self, er_small):
        with pytest.raises(TypeError):
            count_embeddings(er_small, "not a plan")
