"""Engine edge cases and internal behaviours not covered elsewhere."""

import numpy as np
import pytest

from repro.core.config import Configuration
from repro.core.engine import Engine
from repro.core.restrictions import generate_restriction_sets
from repro.graph.builder import graph_from_edges
from repro.graph.generators import complete_graph, empty_graph, erdos_renyi
from repro.pattern.catalog import clique, house, path, star, triangle
from repro.pattern.pattern import Pattern


class TestDegenerateGraphs:
    def test_empty_graph(self):
        plan = Configuration(triangle(), (0, 1, 2), frozenset()).compile()
        assert Engine(empty_graph(8), plan).count() == 0

    def test_single_edge_graph(self):
        g = graph_from_edges([(0, 1)])
        plan = Configuration(triangle(), (0, 1, 2), frozenset()).compile()
        assert Engine(g, plan).count() == 0

    def test_exact_size_match(self):
        g = complete_graph(4)
        rs = generate_restriction_sets(clique(4))[0]
        plan = Configuration(clique(4), (0, 1, 2, 3), rs).compile()
        assert Engine(g, plan).count() == 1

    def test_star_graph_stars(self):
        # Star data graph: hub 0 with 5 leaves; star-3 pattern counts
        # C(5,3) = 10 hub-anchored embeddings.
        g = graph_from_edges([(0, i) for i in range(1, 6)])
        pattern = star(3)
        rs = generate_restriction_sets(pattern)[0]
        plan = Configuration(pattern, (0, 1, 2, 3), rs).compile()
        assert Engine(g, plan).count() == 10

    def test_path_in_path(self):
        g = graph_from_edges([(0, 1), (1, 2), (2, 3)])
        pattern = path(4)
        rs = generate_restriction_sets(pattern)[0]
        plan = Configuration(pattern, (0, 1, 2, 3), rs).compile()
        assert Engine(g, plan).count() == 1


class TestCandidates:
    def test_depth0_is_all_vertices(self):
        g = erdos_renyi(20, 0.3, seed=1)
        plan = Configuration(triangle(), (0, 1, 2), frozenset()).compile()
        engine = Engine(g, plan)
        assert engine.candidates(0, []).tolist() == list(range(20))

    def test_single_dependency_is_neighbor_view(self):
        g = erdos_renyi(20, 0.3, seed=1)
        plan = Configuration(triangle(), (0, 1, 2), frozenset()).compile()
        engine = Engine(g, plan)
        cand = engine.candidates(1, [5])
        assert cand.tolist() == g.neighbors(5).tolist()

    def test_bounds_applied(self):
        g = complete_graph(10)
        plan = Configuration(
            triangle(), (0, 1, 2), frozenset({(0, 1), (1, 2)})
        ).compile()
        engine = Engine(g, plan)
        # id(0) > id(1): candidates at depth 1 must all be < assigned[0].
        cand = engine.candidates(1, [4])
        assert cand.tolist() == [0, 1, 2, 3]
        # id(1) > id(2): depth 2 candidates below assigned[1].
        cand2 = engine.candidates(2, [4, 2])
        assert all(v < 2 for v in cand2)

    def test_raw_cache_hits_consistent(self):
        """The single-slot hoisting cache must never change results."""
        g = erdos_renyi(25, 0.4, seed=3)
        rs = generate_restriction_sets(house())[0]
        plan = Configuration(house(), (0, 1, 2, 3, 4), rs).compile()
        a = Engine(g, plan).count()
        b = Engine(g, plan).count()  # fresh engine, fresh cache
        engine = Engine(g, plan)
        c = engine.count()
        d = engine.count()  # same engine, reused cache
        assert a == b == c == d


class TestMultipleBoundsPerDepth:
    def test_two_upper_bounds(self):
        # Restrictions id(0)>id(2) and id(1)>id(2): depth of 2 takes the
        # min of both bounds.
        g = complete_graph(8)
        plan = Configuration(
            triangle(), (0, 1, 2), frozenset({(0, 2), (1, 2)})
        ).compile()
        engine = Engine(g, plan)
        cand = engine.candidates(2, [5, 3])
        assert all(v < 3 for v in cand)

    def test_lower_and_upper_window(self):
        pattern = path(3)  # 0-1-2
        g = complete_graph(9)
        # id(0) > id(2) and id(2) > id(1) — window around depth-2 values.
        plan = Configuration(
            pattern, (0, 1, 2), frozenset({(0, 2), (2, 1)})
        ).compile()
        engine = Engine(g, plan)
        cand = engine.candidates(2, [6, 2])
        assert all(2 < v < 6 for v in cand)


class TestAsymmetricPatterns:
    def test_no_restrictions_needed(self):
        p = Pattern(6, [(0, 2), (0, 3), (0, 5), (1, 2), (1, 4), (2, 3)])
        g = erdos_renyi(20, 0.4, seed=5)
        from repro.baselines.bruteforce import bruteforce_count
        from repro.core.schedule import generate_schedules

        plan = Configuration(p, generate_schedules(p)[0], frozenset()).compile()
        assert Engine(g, plan).count() == bruteforce_count(g, p)


class TestLargePatternSmallGraph:
    @pytest.mark.parametrize("n_graph", [1, 2, 3, 4])
    def test_never_negative_or_crash(self, n_graph):
        g = complete_graph(n_graph)
        rs = generate_restriction_sets(house())[0]
        plan = Configuration(house(), (0, 1, 2, 3, 4), rs).compile()
        count = Engine(g, plan).count()
        assert count == 0
