"""The performance prediction model (§IV-C)."""

import pytest

from repro.core.config import Configuration, enumerate_configurations
from repro.core.perf_model import (
    PerformanceModel,
    cost_breakdown,
    estimate_cost,
    filter_probabilities,
    intersection_cost_estimates,
    loop_size_estimates,
)
from repro.core.restrictions import generate_restriction_sets
from repro.core.schedule import generate_schedules
from repro.graph.generators import erdos_renyi
from repro.graph.stats import GraphStats
from repro.pattern.catalog import clique, house, pentagon, triangle


@pytest.fixture(scope="module")
def stats():
    return GraphStats.of(erdos_renyi(300, 0.05, seed=77))


class TestFilterProbabilities:
    def test_paper_house_example(self):
        """Fig. 5(b): id(A)>id(B) in loop 2 → f = 1/2 there, 0 elsewhere."""
        cfg = Configuration(house(), (0, 1, 2, 3, 4), frozenset({(0, 1)}))
        fs = filter_probabilities(cfg.compile())
        assert fs == [0.0, 0.5, 0.0, 0.0, 0.0]

    def test_chain_restrictions_sequential_filtering(self):
        """id(0)>id(1) filters half; id(1)>id(2) filters 2/3 of the rest."""
        cfg = Configuration(
            triangle(), (0, 1, 2), frozenset({(0, 1), (1, 2)})
        )
        fs = filter_probabilities(cfg.compile())
        assert fs[0] == 0.0
        assert fs[1] == pytest.approx(0.5)
        assert fs[2] == pytest.approx(2.0 / 3.0)

    def test_no_restrictions_all_zero(self):
        cfg = Configuration(house(), (0, 1, 2, 3, 4), frozenset())
        assert filter_probabilities(cfg.compile()) == [0.0] * 5

    def test_survivor_fraction_is_one_over_aut(self):
        """A complete restriction set keeps exactly n!/|Aut| orderings,
        so the product of (1 - f_i) must equal 1/|Aut|."""
        import math

        from repro.pattern.automorphism import automorphism_count

        for pattern in (triangle(), house(), pentagon()):
            rs = generate_restriction_sets(pattern)[0]
            schedule = generate_schedules(pattern)[0]
            plan = Configuration(pattern, schedule, rs).compile()
            fs = filter_probabilities(plan)
            surviving = math.prod(1.0 - f for f in fs)
            assert surviving == pytest.approx(1.0 / automorphism_count(pattern))


class TestCardinalities:
    def test_loop_sizes_match_estimator(self, stats):
        cfg = Configuration(house(), (0, 1, 2, 3, 4), frozenset())
        ls = loop_size_estimates(cfg.compile(), stats)
        assert ls[0] == stats.n_vertices
        assert ls[1] == pytest.approx(stats.avg_degree)
        assert ls[3] == pytest.approx(stats.expected_candidate_size(2))

    def test_intersection_costs_zero_for_single_dep(self, stats):
        cfg = Configuration(house(), (0, 1, 2, 3, 4), frozenset())
        cs = intersection_cost_estimates(cfg.compile(), stats)
        assert cs[0] == 0.0 and cs[1] == 0.0 and cs[2] == 0.0
        assert cs[3] > 0.0 and cs[4] > 0.0


class TestCostModel:
    def test_restrictions_reduce_cost(self, stats):
        base = Configuration(house(), (0, 1, 2, 3, 4), frozenset())
        restricted = Configuration(house(), (0, 1, 2, 3, 4), frozenset({(0, 1)}))
        assert estimate_cost(restricted.compile(), stats) < estimate_cost(
            base.compile(), stats
        )

    def test_connected_prefix_cheaper_than_disconnected(self, stats):
        """Phase 1's rationale: |V|-sized middle loops are catastrophic."""
        good = Configuration(house(), (0, 1, 2, 3, 4), frozenset())
        bad = Configuration(house(), (2, 3, 4, 0, 1), frozenset())
        assert estimate_cost(good.compile(), stats) < estimate_cost(bad.compile(), stats)

    def test_iep_plan_cheaper_than_plain_when_loops_are_large(self):
        """IEP wins when the absorbed inner loops iterate more than once
        on average (l_i > 1) — i.e. on dense/clustered graphs.  On very
        sparse graphs the model may legitimately prefer plain loops."""
        dense = GraphStats.of(erdos_renyi(150, 0.3, seed=3))
        rs = generate_restriction_sets(house())[0]
        cfg = Configuration(house(), (0, 1, 2, 3, 4), rs)
        plain = estimate_cost(cfg.compile(), dense)
        iep = estimate_cost(cfg.compile(iep_k=2), dense)
        assert iep < plain

    def test_breakdown_fields(self, stats):
        cfg = Configuration(triangle(), (0, 1, 2), frozenset({(0, 1)}))
        bd = cost_breakdown(cfg.compile(), stats)
        assert len(bd.loop_sizes) == 3
        assert len(bd.filter_probs) == 3
        assert len(bd.intersection_costs) == 3
        assert bd.total > 0


class TestModelRanking:
    def test_rank_sorted(self, stats):
        pattern = house()
        configs = enumerate_configurations(
            pattern,
            generate_schedules(pattern, dedup_automorphic=True),
            generate_restriction_sets(pattern),
        )
        model = PerformanceModel(stats)
        ranked = model.rank(configs)
        costs = [r.predicted_cost for r in ranked]
        assert costs == sorted(costs)
        assert len(ranked) == len(configs)

    def test_choose_returns_cheapest(self, stats):
        pattern = triangle()
        configs = enumerate_configurations(
            pattern, generate_schedules(pattern), generate_restriction_sets(pattern)
        )
        model = PerformanceModel(stats)
        chosen = model.choose(configs)
        assert chosen.predicted_cost == min(r.predicted_cost for r in model.rank(configs))

    def test_choose_empty_raises(self, stats):
        with pytest.raises(ValueError):
            PerformanceModel(stats).choose([])

    def test_iep_mode_compiles_iep_plans(self, stats):
        pattern = house()
        configs = enumerate_configurations(
            pattern,
            generate_schedules(pattern, dedup_automorphic=True)[:4],
            generate_restriction_sets(pattern)[:2],
        )
        ranked = PerformanceModel(stats).rank(configs, iep_k=2)
        assert any(r.plan.iep_k > 0 for r in ranked)

    def test_model_prefers_selective_schedule_on_clustered_graph(self):
        """The model must use triangle information: on a triangle-free
        graph the intersection-of-2 estimate collapses to ~0."""
        from repro.graph.builder import graph_from_edges

        # Bipartite-ish (triangle-free): K_{20,20} minus nothing.
        edges = [(i, 20 + j) for i in range(20) for j in range(20)]
        g = graph_from_edges(edges)
        s = GraphStats.of(g)
        assert s.p2 == 0.0
        cfg = Configuration(triangle(), (0, 1, 2), frozenset())
        ls = loop_size_estimates(cfg.compile(), s)
        assert ls[2] == 0.0  # model knows there are no triangles


class TestModelAccuracy:
    """Figure 11's property at miniature scale: the model's pick is close
    to the oracle's best over all generated schedules."""

    def test_within_small_factor_of_oracle(self):
        import time

        from repro.core.engine import Engine

        g = erdos_renyi(120, 0.1, seed=13)
        stats = GraphStats.of(g)
        pattern = house()
        rs = generate_restriction_sets(pattern)[0]
        schedules = generate_schedules(pattern, dedup_automorphic=True)
        configs = [Configuration(pattern, s, rs) for s in schedules]
        ranked = PerformanceModel(stats).rank(configs)

        def measure(plan):
            t0 = time.perf_counter()
            Engine(g, plan).count()
            return time.perf_counter() - t0

        times = {r.config.schedule: measure(r.plan) for r in ranked}
        oracle = min(times.values())
        chosen_time = times[ranked[0].config.schedule]
        # The paper reports 32% from oracle on average; leave slack for
        # timing noise at this tiny scale.
        assert chosen_time <= max(4.0 * oracle, oracle + 0.05)
