"""The vectorised frontier backend and its bulk primitives.

Four layers of coverage:

* bulk primitives (`gather_csr_rows`, `sorted_edge_keys`,
  `bulk_contains_sorted`) pinned against their scalar counterparts;
* a property test that :func:`repro.core.vectorised.restriction_mask`
  agrees with the scalar GraphPi restriction predicate ``id(g) > id(s)``
  on random frontiers;
* cross-backend equivalence: every registered backend — vectorised
  included — over the fig2/catalog pattern set on generated *and*
  dataset graphs;
* the fallback rules: IEP-suffix and directed contexts bounce to the
  interpreter (labeled and induced are first-class now — anti-edge and
  label masks run on the frontier), and capability-aware planning gives
  the vectorised preference an IEP-free plan it can execute;
* auxiliary-graph pruning: forced-on/off/auto engines agree with brute
  force across the catalog, the scratch-CSR primitives match their
  per-row reference intersections, and the weak-keyed edge-key cache
  releases dropped graphs.
"""

import numpy as np
import pytest

from repro.baselines.bruteforce import bruteforce_count, bruteforce_induced_count
from repro.core.api import count_pattern, match_pattern, match_query
from repro.core.backend import (
    BackendUnsupportedError,
    MatchContext,
    available_backends,
    backend_names,
    capabilities_of,
    get_backend,
    plain_context,
    select_backend,
)
from repro.core.config import Configuration
from repro.core.induced import induced_count
from repro.core.query import MatchQuery
from repro.core.restrictions import generate_restriction_sets
from repro.core.schedule import generate_schedules
from repro.core.session import MatchSession
from repro.core.vectorised import FrontierEngine, restriction_mask
from repro.graph.datasets import load_dataset
from repro.graph.generators import erdos_renyi
from repro.graph.intersection import (
    bulk_contains_sorted,
    contains,
    gather_csr_rows,
    sorted_edge_keys,
)
from repro.pattern.catalog import clique, house, pentagon, rectangle, triangle

#: the fig2/equivalence pattern set every backend must agree on.
FIG2_PATTERNS = [triangle(), rectangle(), house(), pentagon(), clique(5)]


@pytest.fixture(scope="module")
def dataset_graph():
    """A small real-shaped dataset proxy (power-law, unlike er_small)."""
    return load_dataset("wiki-vote", scale=0.12, seed=7)


def make_plan(pattern, iep_k=0):
    s = generate_schedules(pattern)[0]
    rs = generate_restriction_sets(pattern)[0]
    return Configuration(pattern, s, rs).compile(iep_k=iep_k)


# ---------------------------------------------------------------------------
# bulk primitives
# ---------------------------------------------------------------------------
class TestBulkPrimitives:
    def test_gather_csr_rows_matches_neighbors(self, er_small):
        rng = np.random.default_rng(11)
        vertices = rng.integers(0, er_small.n_vertices, size=60)
        owner, values = gather_csr_rows(
            er_small.indptr, er_small.indices, vertices
        )
        expected_values = np.concatenate(
            [er_small.neighbors(int(v)) for v in vertices]
        )
        expected_owner = np.concatenate(
            [np.full(er_small.degree(int(v)), i) for i, v in enumerate(vertices)]
        )
        assert np.array_equal(values, expected_values)
        assert np.array_equal(owner, expected_owner)

    def test_gather_csr_rows_empty_inputs(self, er_small):
        owner, values = gather_csr_rows(
            er_small.indptr, er_small.indices, np.empty(0, dtype=np.int64)
        )
        assert len(owner) == 0 and len(values) == 0

    def test_sorted_edge_keys_are_strictly_increasing(self, er_small):
        keys = sorted_edge_keys(er_small.indptr, er_small.indices)
        assert len(keys) == len(er_small.indices)
        assert np.all(np.diff(keys) > 0)

    def test_bulk_contains_matches_scalar_contains(self, er_small):
        keys = sorted_edge_keys(er_small.indptr, er_small.indices)
        n = er_small.n_vertices
        rng = np.random.default_rng(13)
        u = rng.integers(0, n, size=500)
        v = rng.integers(0, n, size=500)
        got = bulk_contains_sorted(keys, u * n + v)
        expected = np.array(
            [contains(keys, int(a) * n + int(b)) for a, b in zip(u, v)]
        )
        assert np.array_equal(got, expected)
        # and the keys encode exactly the edge relation
        assert all(
            bool(g) == er_small.has_edge(int(a), int(b))
            for g, a, b in zip(got, u, v)
        )

    def test_bulk_contains_empty_haystack(self):
        assert not bulk_contains_sorted(
            np.empty(0, dtype=np.int64), np.array([1, 2])
        ).any()


# ---------------------------------------------------------------------------
# restriction masks: vectorised == scalar predicate (property test)
# ---------------------------------------------------------------------------
class TestRestrictionMaskProperty:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3, 4])
    def test_mask_matches_scalar_predicates(self, seed):
        """On random frontiers the vectorised mask equals the scalar
        GraphPi predicate: ``lower`` columns j mean id(new) > id(bound_j),
        ``upper`` columns id(bound_j) > id(new) — the exact semantics of
        ``repro.core.restrictions``'s ``(g, s)`` pairs."""
        rng = np.random.default_rng(seed)
        depth = int(rng.integers(1, 5))
        n_rows = int(rng.integers(1, 40))
        n_pairs = int(rng.integers(1, 200))
        front = rng.integers(0, 50, size=(n_rows, depth))
        owner = rng.integers(0, n_rows, size=n_pairs)
        cand = rng.integers(0, 50, size=n_pairs)
        cols = list(range(depth))
        rng.shuffle(cols)
        cut = int(rng.integers(0, depth + 1))
        lower, upper = cols[:cut], cols[cut:]

        got = restriction_mask(front, owner, cand, lower, upper)
        for i in range(n_pairs):
            row = front[owner[i]]
            ok = all(cand[i] > row[j] for j in lower) and all(
                row[j] > cand[i] for j in upper
            )
            assert bool(got[i]) == ok, (i, row, cand[i], lower, upper)

    def test_mask_no_restrictions_is_all_true(self):
        front = np.arange(6).reshape(3, 2)
        mask = restriction_mask(front, np.array([0, 1, 2]), np.array([9, 9, 9]), (), ())
        assert mask.all()


# ---------------------------------------------------------------------------
# cross-backend equivalence (generated + dataset graphs)
# ---------------------------------------------------------------------------
class TestCrossBackendEquivalence:
    def test_vectorised_is_registered(self):
        assert "vectorised" in backend_names()
        caps = available_backends()["vectorised"].capabilities
        assert caps.supports_mode("plain")
        assert caps.supports_mode("labeled")
        assert caps.supports_mode("induced")
        assert caps.supports_mode("directed")
        assert not caps.iep
        assert caps.enumeration

    @pytest.mark.parametrize("pattern", FIG2_PATTERNS, ids=lambda p: p.name)
    def test_generated_graph_all_backends_agree(self, er_small, pattern):
        expected = bruteforce_count(er_small, pattern)
        for name in backend_names():
            spec = (
                get_backend("parallel", n_workers=2) if name == "parallel" else name
            )
            got = count_pattern(er_small, pattern, use_iep=False, backend=spec)
            assert got == expected, (name, pattern.name)

    @pytest.mark.parametrize("pattern", FIG2_PATTERNS, ids=lambda p: p.name)
    def test_dataset_graph_vectorised_matches_interpreter(
        self, dataset_graph, pattern
    ):
        expected = count_pattern(
            dataset_graph, pattern, use_iep=False, backend="interpreter"
        )
        got = count_pattern(
            dataset_graph, pattern, use_iep=False, backend="vectorised"
        )
        assert got == expected, pattern.name

    def test_vectorised_actually_executes(self, er_small):
        """The capability-aware default plans IEP-free, so the preference
        is honoured — the result reports vectorised, not a fallback."""
        result = match_query(er_small, MatchQuery(house(), backend="vectorised"))
        assert result.backend == "vectorised"
        assert result.count == bruteforce_count(er_small, house())

    def test_all_preference_channels_reach_vectorised(self, er_small):
        """Call-level, query-level and session-default preferences all
        fold into planning — none silently falls back to the
        interpreter on an IEP plan it never asked for."""
        expected = bruteforce_count(er_small, house())
        by_call = MatchSession(er_small).count(
            MatchQuery(house()), backend="vectorised"
        )
        by_query = MatchSession(er_small).count(
            MatchQuery(house(), backend="vectorised")
        )
        by_session = MatchSession(er_small, backend="vectorised").count(
            MatchQuery(house())
        )
        for result in (by_call, by_query, by_session):
            assert result.backend == "vectorised"
            assert result.count == expected

    def test_root_chunking_preserves_counts(self, er_small):
        plan = make_plan(house())
        whole = FrontierEngine(er_small, plan).count()
        chunked = FrontierEngine(er_small, plan, root_chunk=7).count()
        assert whole == chunked == bruteforce_count(er_small, house())

    def test_enumeration_matches_interpreter(self, er_small):
        base = list(match_pattern(er_small, rectangle(), backend="interpreter"))
        vect = list(match_pattern(er_small, rectangle(), backend="vectorised"))
        assert base == vect  # same embeddings, same DFS order

    def test_enumeration_respects_limit(self, er_small):
        embs = list(match_pattern(er_small, triangle(), limit=5, backend="vectorised"))
        assert len(embs) == 5


# ---------------------------------------------------------------------------
# fallback rules
# ---------------------------------------------------------------------------
class TestFallbacks:
    def test_iep_plan_falls_back_to_interpreter(self, er_small):
        session = MatchSession(er_small)
        result = session.count(
            MatchQuery(house(), use_iep=True, backend="vectorised")
        )
        assert result.backend == "interpreter"
        assert result.count == bruteforce_count(er_small, house())

    def test_iep_context_not_supported(self, er_small):
        ctx = plain_context(er_small, make_plan(pentagon(), iep_k=1))
        backend = get_backend("vectorised")
        assert not backend.supports(ctx)
        with pytest.raises(BackendUnsupportedError):
            backend.count(ctx)
        assert select_backend(ctx, "vectorised").name == "interpreter"

    def test_induced_counts_match_bruteforce(self, er_small):
        expected = bruteforce_induced_count(er_small, rectangle())
        assert induced_count(er_small, rectangle(), backend="vectorised") == expected

    def test_induced_context_runs_on_the_frontier(self, er_small):
        # The anti-edge masks made induced contexts first-class: no
        # interpreter fallback for an IEP-free plan.
        ctx = MatchContext(
            graph=er_small, plan=make_plan(rectangle()), mode="induced"
        )
        backend = get_backend("vectorised")
        assert backend.supports(ctx)
        assert select_backend(ctx, "vectorised").name == "vectorised"
        assert backend.count(ctx) == bruteforce_induced_count(er_small, rectangle())

    def test_frontier_engine_rejects_iep_plans(self, er_small):
        with pytest.raises(ValueError, match="IEP-free"):
            FrontierEngine(er_small, make_plan(pentagon(), iep_k=1))

    def test_pattern_larger_than_graph_counts_zero(self):
        tiny = erdos_renyi(4, 0.9, seed=1)
        assert FrontierEngine(tiny, make_plan(clique(5))).count() == 0

    def test_capability_gated_iep_resolution(self):
        q = MatchQuery(house(), backend="vectorised")
        assert q.resolved_use_iep is False
        assert MatchQuery(house()).resolved_use_iep is True
        assert MatchQuery(house(), backend="compiled").resolved_use_iep is True
        # explicit use_iep always wins over the capability default
        assert MatchQuery(house(), use_iep=True, backend="vectorised").resolved_use_iep

    def test_capabilities_of_specs(self):
        assert capabilities_of(None) is None
        assert capabilities_of("no-such-backend") is None
        inst = get_backend("vectorised")
        assert capabilities_of(inst) is inst.capabilities
        assert capabilities_of("vectorised").iep is False


# ---------------------------------------------------------------------------
# auxiliary-graph pruning
# ---------------------------------------------------------------------------
class TestAuxiliaryPruning:
    """Forced-on, forced-off and cost-gated engines must agree exactly.

    ``aux=True`` skips the cost gate *and* the minimum-frontier-size
    guard, so the scratch-CSR paths (group dedup and pool chaining) are
    genuinely exercised even on the small fixtures here.
    """

    AUX_PATTERNS = [triangle(), rectangle(), house(), pentagon(), clique(4), clique(5)]

    @pytest.mark.parametrize("pattern", AUX_PATTERNS, ids=lambda p: p.name)
    def test_aux_modes_agree_generated_graph(self, er_small, pattern):
        expected = bruteforce_count(er_small, pattern)
        plan = make_plan(pattern)
        for aux in (False, True, "auto"):
            got = FrontierEngine(er_small, plan, aux=aux).count()
            assert got == expected, (aux, pattern.name)

    @pytest.mark.parametrize("pattern", AUX_PATTERNS, ids=lambda p: p.name)
    def test_aux_modes_agree_dataset_graph(self, dataset_graph, pattern):
        plan = make_plan(pattern)
        baseline = FrontierEngine(dataset_graph, plan, aux=False).count()
        for aux in (True, "auto"):
            got = FrontierEngine(dataset_graph, plan, aux=aux).count()
            assert got == baseline, (aux, pattern.name)

    def test_aux_respects_root_chunking(self, er_small):
        plan = make_plan(clique(4))
        expected = bruteforce_count(er_small, clique(4))
        assert FrontierEngine(er_small, plan, aux=True, root_chunk=5).count() == expected

    def test_aux_enumeration_order_unchanged(self, er_small):
        plan = make_plan(house())
        direct = list(FrontierEngine(er_small, plan, aux=False).enumerate_embeddings())
        pooled = list(FrontierEngine(er_small, plan, aux=True).enumerate_embeddings())
        assert direct == pooled  # same embeddings, same DFS order

    def test_aux_backend_option_plumbs_through(self, er_small):
        expected = bruteforce_count(er_small, clique(4))
        for aux in (False, True, "auto"):
            backend = get_backend("vectorised", aux=aux)
            got = count_pattern(er_small, clique(4), backend=backend)
            assert got == expected, aux

    def test_invalid_aux_rejected(self, er_small):
        with pytest.raises(ValueError, match="aux"):
            FrontierEngine(er_small, make_plan(triangle()), aux="always")


# ---------------------------------------------------------------------------
# labeled and induced frontier execution
# ---------------------------------------------------------------------------
class TestLabeledInducedFrontier:
    @pytest.fixture(scope="class")
    def labeled_graph(self, er_small):
        from repro.graph.labeled import assign_random_labels

        return assign_random_labels(er_small, 2, seed=7)

    @pytest.mark.parametrize(
        "pattern", [triangle(), rectangle(), house()], ids=lambda p: p.name
    )
    def test_labeled_counts_match_interpreter(self, labeled_graph, pattern):
        from repro.pattern.labeled import LabeledPattern

        lp = LabeledPattern(
            pattern, tuple(i % 2 for i in range(pattern.n_vertices))
        )
        query = MatchQuery(lp)
        expected = int(match_query(labeled_graph, query, backend="interpreter"))
        for aux in (False, True, "auto"):
            got = int(
                match_query(labeled_graph, query, backend=get_backend("vectorised", aux=aux))
            )
            assert got == expected, (aux, pattern.name)

    def test_labeled_query_executes_on_vectorised(self, labeled_graph):
        from repro.pattern.labeled import LabeledPattern

        lp = LabeledPattern(triangle(), (0, 0, 1))
        result = match_query(labeled_graph, MatchQuery(lp), backend="vectorised")
        assert result.backend == "vectorised"

    @pytest.mark.parametrize(
        "pattern", [rectangle(), house()], ids=lambda p: p.name
    )
    def test_induced_counts_match_bruteforce(self, er_small, pattern):
        expected = bruteforce_induced_count(er_small, pattern)
        for aux in (False, True, "auto"):
            got = induced_count(
                er_small, pattern, backend=get_backend("vectorised", aux=aux)
            )
            assert got == expected, (aux, pattern.name)

    def test_labeled_engine_requires_labeled_graph(self, er_small):
        from repro.pattern.labeled import LabeledPattern

        lp = LabeledPattern(triangle(), (0, 0, 1))
        plan = make_plan(triangle())
        with pytest.raises(TypeError, match="LabeledGraph"):
            FrontierEngine(er_small, plan, lpattern=lp)

    def test_labeled_induced_combination_rejected(self, labeled_graph):
        from repro.pattern.labeled import LabeledPattern

        lp = LabeledPattern(triangle(), (0, 0, 1))
        plan = make_plan(triangle())
        with pytest.raises(ValueError, match="not supported"):
            FrontierEngine(labeled_graph, plan, lpattern=lp, induced=True)


# ---------------------------------------------------------------------------
# enumeration limit semantics at chunk boundaries
# ---------------------------------------------------------------------------
class TestEnumerationLimits:
    def all_embeddings(self, er_small, plan):
        return list(FrontierEngine(er_small, plan).enumerate_embeddings())

    def test_limit_zero_yields_nothing(self, er_small):
        engine = FrontierEngine(er_small, make_plan(triangle()))
        assert list(engine.enumerate_embeddings(limit=0)) == []

    def test_limit_exactly_on_chunk_edge(self, er_small):
        """Pin root_chunk low so the limit lands exactly where the first
        chunk's yields end — no extra chunk may leak into the output."""
        plan = make_plan(triangle())
        full = self.all_embeddings(er_small, plan)
        engine = FrontierEngine(er_small, plan, root_chunk=4)
        # yields up to each 4-root chunk edge; pick an interior edge
        # (restrictions can leave early root chunks empty)
        edges = [
            engine.count_roots(np.arange(k))
            for k in range(4, er_small.n_vertices, 4)
        ]
        boundary = next(c for c in edges if 0 < c < len(full))
        got = list(engine.enumerate_embeddings(limit=boundary))
        assert got == full[:boundary]

    def test_limit_spanning_chunks(self, er_small):
        plan = make_plan(triangle())
        full = self.all_embeddings(er_small, plan)
        want = min(len(full), 17)
        got = list(
            FrontierEngine(er_small, plan, root_chunk=3).enumerate_embeddings(
                limit=want
            )
        )
        assert got == full[:want]

    def test_limit_beyond_total_is_everything(self, er_small):
        plan = make_plan(rectangle())
        full = self.all_embeddings(er_small, plan)
        got = list(
            FrontierEngine(er_small, plan).enumerate_embeddings(
                limit=len(full) + 1000
            )
        )
        assert got == full

    def test_mask_empty_lower_only(self):
        front = np.array([[5, 2], [1, 8]])
        owner = np.array([0, 0, 1])
        cand = np.array([3, 9, 4])
        got = restriction_mask(front, owner, cand, (), (0, 1))
        assert got.tolist() == [
            bool(3 < 5 and 3 < 2),
            bool(9 < 5 and 9 < 2),
            bool(4 < 1 and 4 < 8),
        ]

    def test_mask_empty_upper_only(self):
        front = np.array([[5, 2], [1, 8]])
        owner = np.array([0, 1, 1])
        cand = np.array([6, 0, 9])
        got = restriction_mask(front, owner, cand, (0,), ())
        assert got.tolist() == [True, False, True]


# ---------------------------------------------------------------------------
# the weak-keyed edge-key cache
# ---------------------------------------------------------------------------
class TestEdgeKeyCache:
    def test_cache_hits_for_live_graph(self):
        from repro.core.vectorised import _graph_edge_keys

        g = erdos_renyi(30, 0.2, seed=9)
        first = _graph_edge_keys(g)
        assert _graph_edge_keys(g) is first

    def test_dropped_graph_is_released(self):
        import gc
        import weakref

        from repro.core.vectorised import _EDGE_KEY_CACHE, _graph_edge_keys

        g = erdos_renyi(30, 0.2, seed=10)
        _graph_edge_keys(g)
        ref = weakref.ref(g)
        assert any(k is g for k in _EDGE_KEY_CACHE.keys())
        del g
        gc.collect()
        # the cache held only a weak reference: the graph (and with it
        # the O(E) key array entry) is gone, not pinned like lru_cache(8)
        assert ref() is None
