"""The vectorised frontier backend and its bulk primitives.

Four layers of coverage:

* bulk primitives (`gather_csr_rows`, `sorted_edge_keys`,
  `bulk_contains_sorted`) pinned against their scalar counterparts;
* a property test that :func:`repro.core.vectorised.restriction_mask`
  agrees with the scalar GraphPi restriction predicate ``id(g) > id(s)``
  on random frontiers;
* cross-backend equivalence: every registered backend — vectorised
  included — over the fig2/catalog pattern set on generated *and*
  dataset graphs;
* the fallback rules: IEP-suffix / labeled / induced / directed
  contexts bounce to the interpreter, and capability-aware planning
  gives the vectorised preference an IEP-free plan it can execute.
"""

import numpy as np
import pytest

from repro.baselines.bruteforce import bruteforce_count, bruteforce_induced_count
from repro.core.api import count_pattern, match_pattern, match_query
from repro.core.backend import (
    BackendUnsupportedError,
    MatchContext,
    available_backends,
    backend_names,
    capabilities_of,
    get_backend,
    plain_context,
    select_backend,
)
from repro.core.config import Configuration
from repro.core.induced import induced_count
from repro.core.query import MatchQuery
from repro.core.restrictions import generate_restriction_sets
from repro.core.schedule import generate_schedules
from repro.core.session import MatchSession
from repro.core.vectorised import FrontierEngine, restriction_mask
from repro.graph.datasets import load_dataset
from repro.graph.generators import erdos_renyi
from repro.graph.intersection import (
    bulk_contains_sorted,
    contains,
    gather_csr_rows,
    sorted_edge_keys,
)
from repro.pattern.catalog import clique, house, pentagon, rectangle, triangle

#: the fig2/equivalence pattern set every backend must agree on.
FIG2_PATTERNS = [triangle(), rectangle(), house(), pentagon(), clique(5)]


@pytest.fixture(scope="module")
def dataset_graph():
    """A small real-shaped dataset proxy (power-law, unlike er_small)."""
    return load_dataset("wiki-vote", scale=0.12, seed=7)


def make_plan(pattern, iep_k=0):
    s = generate_schedules(pattern)[0]
    rs = generate_restriction_sets(pattern)[0]
    return Configuration(pattern, s, rs).compile(iep_k=iep_k)


# ---------------------------------------------------------------------------
# bulk primitives
# ---------------------------------------------------------------------------
class TestBulkPrimitives:
    def test_gather_csr_rows_matches_neighbors(self, er_small):
        rng = np.random.default_rng(11)
        vertices = rng.integers(0, er_small.n_vertices, size=60)
        owner, values = gather_csr_rows(
            er_small.indptr, er_small.indices, vertices
        )
        expected_values = np.concatenate(
            [er_small.neighbors(int(v)) for v in vertices]
        )
        expected_owner = np.concatenate(
            [np.full(er_small.degree(int(v)), i) for i, v in enumerate(vertices)]
        )
        assert np.array_equal(values, expected_values)
        assert np.array_equal(owner, expected_owner)

    def test_gather_csr_rows_empty_inputs(self, er_small):
        owner, values = gather_csr_rows(
            er_small.indptr, er_small.indices, np.empty(0, dtype=np.int64)
        )
        assert len(owner) == 0 and len(values) == 0

    def test_sorted_edge_keys_are_strictly_increasing(self, er_small):
        keys = sorted_edge_keys(er_small.indptr, er_small.indices)
        assert len(keys) == len(er_small.indices)
        assert np.all(np.diff(keys) > 0)

    def test_bulk_contains_matches_scalar_contains(self, er_small):
        keys = sorted_edge_keys(er_small.indptr, er_small.indices)
        n = er_small.n_vertices
        rng = np.random.default_rng(13)
        u = rng.integers(0, n, size=500)
        v = rng.integers(0, n, size=500)
        got = bulk_contains_sorted(keys, u * n + v)
        expected = np.array(
            [contains(keys, int(a) * n + int(b)) for a, b in zip(u, v)]
        )
        assert np.array_equal(got, expected)
        # and the keys encode exactly the edge relation
        assert all(
            bool(g) == er_small.has_edge(int(a), int(b))
            for g, a, b in zip(got, u, v)
        )

    def test_bulk_contains_empty_haystack(self):
        assert not bulk_contains_sorted(
            np.empty(0, dtype=np.int64), np.array([1, 2])
        ).any()


# ---------------------------------------------------------------------------
# restriction masks: vectorised == scalar predicate (property test)
# ---------------------------------------------------------------------------
class TestRestrictionMaskProperty:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3, 4])
    def test_mask_matches_scalar_predicates(self, seed):
        """On random frontiers the vectorised mask equals the scalar
        GraphPi predicate: ``lower`` columns j mean id(new) > id(bound_j),
        ``upper`` columns id(bound_j) > id(new) — the exact semantics of
        ``repro.core.restrictions``'s ``(g, s)`` pairs."""
        rng = np.random.default_rng(seed)
        depth = int(rng.integers(1, 5))
        n_rows = int(rng.integers(1, 40))
        n_pairs = int(rng.integers(1, 200))
        front = rng.integers(0, 50, size=(n_rows, depth))
        owner = rng.integers(0, n_rows, size=n_pairs)
        cand = rng.integers(0, 50, size=n_pairs)
        cols = list(range(depth))
        rng.shuffle(cols)
        cut = int(rng.integers(0, depth + 1))
        lower, upper = cols[:cut], cols[cut:]

        got = restriction_mask(front, owner, cand, lower, upper)
        for i in range(n_pairs):
            row = front[owner[i]]
            ok = all(cand[i] > row[j] for j in lower) and all(
                row[j] > cand[i] for j in upper
            )
            assert bool(got[i]) == ok, (i, row, cand[i], lower, upper)

    def test_mask_no_restrictions_is_all_true(self):
        front = np.arange(6).reshape(3, 2)
        mask = restriction_mask(front, np.array([0, 1, 2]), np.array([9, 9, 9]), (), ())
        assert mask.all()


# ---------------------------------------------------------------------------
# cross-backend equivalence (generated + dataset graphs)
# ---------------------------------------------------------------------------
class TestCrossBackendEquivalence:
    def test_vectorised_is_registered(self):
        assert "vectorised" in backend_names()
        caps = available_backends()["vectorised"].capabilities
        assert caps.supports_mode("plain")
        assert not caps.iep
        assert caps.enumeration

    @pytest.mark.parametrize("pattern", FIG2_PATTERNS, ids=lambda p: p.name)
    def test_generated_graph_all_backends_agree(self, er_small, pattern):
        expected = bruteforce_count(er_small, pattern)
        for name in backend_names():
            spec = (
                get_backend("parallel", n_workers=2) if name == "parallel" else name
            )
            got = count_pattern(er_small, pattern, use_iep=False, backend=spec)
            assert got == expected, (name, pattern.name)

    @pytest.mark.parametrize("pattern", FIG2_PATTERNS, ids=lambda p: p.name)
    def test_dataset_graph_vectorised_matches_interpreter(
        self, dataset_graph, pattern
    ):
        expected = count_pattern(
            dataset_graph, pattern, use_iep=False, backend="interpreter"
        )
        got = count_pattern(
            dataset_graph, pattern, use_iep=False, backend="vectorised"
        )
        assert got == expected, pattern.name

    def test_vectorised_actually_executes(self, er_small):
        """The capability-aware default plans IEP-free, so the preference
        is honoured — the result reports vectorised, not a fallback."""
        result = match_query(er_small, MatchQuery(house(), backend="vectorised"))
        assert result.backend == "vectorised"
        assert result.count == bruteforce_count(er_small, house())

    def test_all_preference_channels_reach_vectorised(self, er_small):
        """Call-level, query-level and session-default preferences all
        fold into planning — none silently falls back to the
        interpreter on an IEP plan it never asked for."""
        expected = bruteforce_count(er_small, house())
        by_call = MatchSession(er_small).count(
            MatchQuery(house()), backend="vectorised"
        )
        by_query = MatchSession(er_small).count(
            MatchQuery(house(), backend="vectorised")
        )
        by_session = MatchSession(er_small, backend="vectorised").count(
            MatchQuery(house())
        )
        for result in (by_call, by_query, by_session):
            assert result.backend == "vectorised"
            assert result.count == expected

    def test_root_chunking_preserves_counts(self, er_small):
        plan = make_plan(house())
        whole = FrontierEngine(er_small, plan).count()
        chunked = FrontierEngine(er_small, plan, root_chunk=7).count()
        assert whole == chunked == bruteforce_count(er_small, house())

    def test_enumeration_matches_interpreter(self, er_small):
        base = list(match_pattern(er_small, rectangle(), backend="interpreter"))
        vect = list(match_pattern(er_small, rectangle(), backend="vectorised"))
        assert base == vect  # same embeddings, same DFS order

    def test_enumeration_respects_limit(self, er_small):
        embs = list(match_pattern(er_small, triangle(), limit=5, backend="vectorised"))
        assert len(embs) == 5


# ---------------------------------------------------------------------------
# fallback rules
# ---------------------------------------------------------------------------
class TestFallbacks:
    def test_iep_plan_falls_back_to_interpreter(self, er_small):
        session = MatchSession(er_small)
        result = session.count(
            MatchQuery(house(), use_iep=True, backend="vectorised")
        )
        assert result.backend == "interpreter"
        assert result.count == bruteforce_count(er_small, house())

    def test_iep_context_not_supported(self, er_small):
        ctx = plain_context(er_small, make_plan(pentagon(), iep_k=1))
        backend = get_backend("vectorised")
        assert not backend.supports(ctx)
        with pytest.raises(BackendUnsupportedError):
            backend.count(ctx)
        assert select_backend(ctx, "vectorised").name == "interpreter"

    def test_induced_falls_back_but_counts_match(self, er_small):
        expected = bruteforce_induced_count(er_small, rectangle())
        assert induced_count(er_small, rectangle(), backend="vectorised") == expected

    def test_induced_context_not_supported(self, er_small):
        ctx = MatchContext(
            graph=er_small, plan=make_plan(rectangle()), mode="induced"
        )
        assert not get_backend("vectorised").supports(ctx)
        assert select_backend(ctx, "vectorised").name == "interpreter"

    def test_frontier_engine_rejects_iep_plans(self, er_small):
        with pytest.raises(ValueError, match="IEP-free"):
            FrontierEngine(er_small, make_plan(pentagon(), iep_k=1))

    def test_pattern_larger_than_graph_counts_zero(self):
        tiny = erdos_renyi(4, 0.9, seed=1)
        assert FrontierEngine(tiny, make_plan(clique(5))).count() == 0

    def test_capability_gated_iep_resolution(self):
        q = MatchQuery(house(), backend="vectorised")
        assert q.resolved_use_iep is False
        assert MatchQuery(house()).resolved_use_iep is True
        assert MatchQuery(house(), backend="compiled").resolved_use_iep is True
        # explicit use_iep always wins over the capability default
        assert MatchQuery(house(), use_iep=True, backend="vectorised").resolved_use_iep

    def test_capabilities_of_specs(self):
        assert capabilities_of(None) is None
        assert capabilities_of("no-such-backend") is None
        inst = get_backend("vectorised")
        assert capabilities_of(inst) is inst.capabilities
        assert capabilities_of("vectorised").iep is False
