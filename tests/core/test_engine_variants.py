"""PreSliceEngine: identical counts, different evaluation order."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.bruteforce import bruteforce_count
from repro.core.config import Configuration
from repro.core.engine import Engine
from repro.core.engine_variants import PreSliceEngine
from repro.core.restrictions import generate_restriction_sets
from repro.core.schedule import generate_schedules
from repro.graph.generators import complete_graph, erdos_renyi
from repro.pattern.catalog import clique, house, pentagon, rectangle, triangle

PATTERNS = [triangle(), rectangle(), house(), pentagon(), clique(4)]


@pytest.fixture(scope="module")
def g():
    return erdos_renyi(45, 0.22, seed=71)


@pytest.mark.parametrize("pattern", PATTERNS, ids=lambda p: p.name)
def test_counts_match_stock_engine(pattern, g):
    rs = generate_restriction_sets(pattern)[0]
    schedule = generate_schedules(pattern)[0]
    plan = Configuration(pattern, schedule, rs).compile()
    assert PreSliceEngine(g, plan).count() == Engine(g, plan).count()


@pytest.mark.parametrize("pattern", [triangle(), rectangle(), house()],
                         ids=lambda p: p.name)
def test_counts_match_bruteforce(pattern, g):
    rs = generate_restriction_sets(pattern)[0]
    schedule = generate_schedules(pattern)[0]
    plan = Configuration(pattern, schedule, rs).compile()
    assert PreSliceEngine(g, plan).count() == bruteforce_count(g, pattern)


def test_all_restriction_sets_agree(g):
    pattern = rectangle()
    schedule = generate_schedules(pattern)[0]
    expected = bruteforce_count(g, pattern)
    for rs in generate_restriction_sets(pattern):
        plan = Configuration(pattern, schedule, rs).compile()
        assert PreSliceEngine(g, plan).count() == expected


def test_enumeration_matches(g):
    pattern = house()
    rs = generate_restriction_sets(pattern)[0]
    schedule = generate_schedules(pattern)[0]
    plan = Configuration(pattern, schedule, rs).compile()
    a = sorted(Engine(g, plan).enumerate_embeddings())
    b = sorted(PreSliceEngine(g, plan).enumerate_embeddings())
    assert a == b


def test_no_restrictions_identical(g):
    pattern = triangle()
    schedule = generate_schedules(pattern)[0]
    plan = Configuration(pattern, schedule, frozenset()).compile()
    assert PreSliceEngine(g, plan).count() == Engine(g, plan).count()


def test_complete_graph_chain():
    g = complete_graph(9)
    pattern = clique(4)
    chain = frozenset((i + 1, i) for i in range(3))
    plan = Configuration(pattern, tuple(range(4)), chain).compile()
    # C(9,4) distinct 4-cliques
    assert PreSliceEngine(g, plan).count() == 126


@settings(max_examples=15, deadline=None)
@given(st.integers(8, 30), st.integers(0, 500))
def test_property_equivalence_random(n, seed):
    g = erdos_renyi(n, 0.3, seed=seed)
    for pattern in (triangle(), rectangle()):
        rs = generate_restriction_sets(pattern)[0]
        schedule = generate_schedules(pattern)[0]
        plan = Configuration(pattern, schedule, rs).compile()
        assert PreSliceEngine(g, plan).count() == Engine(g, plan).count()
