"""Thread-safety regressions for the session registry and plan cache.

The serving worker pool hits ``get_session`` and one shared
``MatchSession`` from many threads at once; before the registry and the
session grew locks, concurrent callers could receive *different*
sessions for one graph (splitting the plan cache) or double-plan the
same query.  These tests hammer both paths with a barrier so every
thread arrives at the critical section together.
"""

from __future__ import annotations

import threading

import pytest

from repro.core.session import (
    MatchSession,
    clear_sessions,
    get_session,
    session_cache_size,
    set_session_cache_size,
)
from repro.graph.builder import graph_from_edges
from repro.pattern.catalog import get_pattern

N_THREADS = 8


@pytest.fixture(autouse=True)
def _fresh_registry():
    clear_sessions()
    yield
    clear_sessions()
    set_session_cache_size(8)


def hammer(n_threads, fn):
    """Run ``fn(i)`` on n threads released simultaneously by a barrier."""
    barrier = threading.Barrier(n_threads)
    results = [None] * n_threads
    errors = []

    def run(i):
        try:
            barrier.wait(timeout=10)
            results[i] = fn(i)
        except BaseException as exc:  # pragma: no cover - failure path
            errors.append(exc)

    threads = [threading.Thread(target=run, args=(i,)) for i in range(n_threads)]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=30)
    assert not errors, errors
    return results


class TestRegistryThreadSafety:
    def test_concurrent_get_session_yields_one_session(self):
        graph = graph_from_edges([(0, 1), (1, 2), (0, 2)])
        sessions = hammer(N_THREADS, lambda i: get_session(graph))
        assert len({id(s) for s in sessions}) == 1

    def test_concurrent_distinct_graphs_respect_lru_cap(self):
        set_session_cache_size(4)
        graphs = [
            graph_from_edges([(0, 1), (1, 2 + i)]) for i in range(N_THREADS)
        ]
        hammer(N_THREADS, lambda i: get_session(graphs[i]))
        # the registry never exceeds its cap, even under a thundering herd
        assert session_cache_size() == 4
        from repro.core.session import _SESSIONS

        assert len(_SESSIONS) <= 4

    def test_concurrent_resize_and_lookup(self):
        graphs = [graph_from_edges([(0, 1), (1, 2 + i)]) for i in range(16)]

        def work(i):
            if i % 4 == 0:
                set_session_cache_size(2 + i % 3)
            for g in graphs:
                get_session(g)

        hammer(N_THREADS, work)  # must not raise (KeyError under races)


class TestPlanCacheThreadSafety:
    def test_shared_session_plans_once(self):
        """N threads, one query: exactly one plan-cache miss."""
        graph = graph_from_edges([(0, 1), (1, 2), (0, 2), (2, 3)])
        session = MatchSession(graph)
        triangle = get_pattern("triangle")

        counts = hammer(N_THREADS, lambda i: int(session.count(triangle)))
        assert counts == [1] * N_THREADS
        info = session.cache_info()
        assert info.misses == 1
        assert info.hits == N_THREADS - 1
        assert info.size == 1

    def test_concurrent_distinct_queries(self):
        graph = graph_from_edges(
            [(0, 1), (1, 2), (0, 2), (2, 3), (3, 4), (2, 4)]
        )
        session = MatchSession(graph)
        patterns = ["triangle", "rectangle", "house", "pentagon"]

        def work(i):
            return int(session.count(get_pattern(patterns[i % len(patterns)])))

        results = hammer(N_THREADS, work)
        assert all(isinstance(r, int) for r in results)
        info = session.cache_info()
        # one miss per distinct pattern, no duplicated planning
        assert info.misses == len(patterns)
        assert info.hits == N_THREADS - len(patterns)

    def test_cache_info_snapshot_is_consistent(self):
        """Counters and size are read under one lock acquisition."""
        graph = graph_from_edges([(0, 1), (1, 2), (0, 2)])
        session = MatchSession(graph)
        triangle = get_pattern("triangle")
        stop = threading.Event()
        bad = []

        def reader():
            while not stop.is_set():
                info = session.cache_info()
                # hits+misses can never trail the cache's size
                if info.hits + info.misses < info.size:
                    bad.append(info)  # pragma: no cover - failure path

        t = threading.Thread(target=reader)
        t.start()
        try:
            hammer(4, lambda i: int(session.count(triangle)))
        finally:
            stop.set()
            t.join(timeout=10)
        assert not bad
        assert session.cache_info().misses == 1
