"""Labeled matching: the §II-A extension."""

import numpy as np
import pytest

from repro.core.labeled import (
    LabeledEngine,
    LabeledMatcher,
    labeled_bruteforce_count,
    labeled_count,
    labeled_restriction_sets,
)
from repro.graph.generators import erdos_renyi
from repro.graph.labeled import LabeledGraph, assign_random_labels
from repro.pattern.catalog import house, rectangle, star, triangle
from repro.pattern.labeled import (
    LabeledPattern,
    is_labeled_automorphism,
    labeled_automorphism_count,
    labeled_automorphisms,
)
from repro.pattern.pattern import Pattern


@pytest.fixture(scope="module")
def lgraph():
    return assign_random_labels(erdos_renyi(45, 0.3, seed=9), 3, seed=10)


class TestLabeledPattern:
    def test_label_count_must_match(self):
        with pytest.raises(ValueError):
            LabeledPattern(triangle(), (0, 1))

    def test_negative_labels_rejected(self):
        with pytest.raises(ValueError):
            LabeledPattern(triangle(), (0, -1, 0))

    def test_accessors(self):
        lp = LabeledPattern(triangle(), (0, 1, 1))
        assert lp.label_of(0) == 0
        assert lp.distinct_labels() == {0, 1}
        assert lp.n_vertices == 3


class TestLabeledAutomorphisms:
    def test_uniform_labels_full_group(self):
        lp = LabeledPattern(triangle(), (5, 5, 5))
        assert labeled_automorphism_count(lp) == 6

    def test_distinct_labels_trivial_group(self):
        lp = LabeledPattern(triangle(), (0, 1, 2))
        assert labeled_automorphism_count(lp) == 1

    def test_partial_labels(self):
        lp = LabeledPattern(triangle(), (0, 0, 1))
        assert labeled_automorphism_count(lp) == 2

    def test_rectangle_alternating(self):
        # Alternating labels keep rotations by 2 and both diagonal flips.
        lp = LabeledPattern(rectangle(), (0, 1, 0, 1))
        assert labeled_automorphism_count(lp) == 4

    def test_subgroup_of_structural(self):
        from repro.pattern.automorphism import automorphisms

        lp = LabeledPattern(house(), (0, 0, 1, 1, 2))
        labeled = set(labeled_automorphisms(lp))
        assert labeled <= set(automorphisms(house()))

    def test_is_labeled_automorphism(self):
        lp = LabeledPattern(rectangle(), (0, 1, 0, 1))
        assert is_labeled_automorphism(lp, (2, 3, 0, 1))
        assert not is_labeled_automorphism(lp, (1, 2, 3, 0))  # breaks labels


class TestLabeledGraph:
    def test_label_length_checked(self):
        g = erdos_renyi(10, 0.3, seed=1)
        with pytest.raises(ValueError):
            LabeledGraph(g, np.zeros(5, dtype=np.int64))

    def test_negative_labels_rejected(self):
        g = erdos_renyi(4, 0.9, seed=1)
        with pytest.raises(ValueError):
            LabeledGraph(g, np.array([0, 1, -1, 0]))

    def test_filter_by_label_sorted(self, lgraph):
        cand = lgraph.vertices()
        sub = lgraph.filter_by_label(cand, 1)
        assert np.all(np.diff(sub) > 0)
        assert all(lgraph.label_of(int(v)) == 1 for v in sub)

    def test_vertices_with_label_partition(self, lgraph):
        total = sum(len(lgraph.vertices_with_label(l)) for l in range(3))
        assert total == lgraph.n_vertices

    def test_histogram(self, lgraph):
        hist = lgraph.label_histogram()
        assert sum(hist.values()) == lgraph.n_vertices

    def test_weighted_assignment(self):
        g = erdos_renyi(500, 0.02, seed=3)
        lg = assign_random_labels(g, 2, seed=4, weights=[0.9, 0.1])
        hist = lg.label_histogram()
        assert hist[0] > 3 * hist.get(1, 0)

    def test_weight_validation(self):
        g = erdos_renyi(10, 0.3, seed=1)
        with pytest.raises(ValueError):
            assign_random_labels(g, 2, weights=[1.0])
        with pytest.raises(ValueError):
            assign_random_labels(g, 0)


class TestLabeledRestrictionSets:
    def test_trivial_group_empty_set(self):
        lp = LabeledPattern(triangle(), (0, 1, 2))
        assert labeled_restriction_sets(lp) == [frozenset()]

    def test_uniform_labels_match_unlabeled(self):
        from repro.core.restrictions import generate_restriction_sets

        lp = LabeledPattern(triangle(), (0, 0, 0))
        assert set(labeled_restriction_sets(lp)) == set(
            generate_restriction_sets(triangle())
        )

    def test_partial_group_sets_are_smaller(self):
        lp = LabeledPattern(triangle(), (0, 0, 1))
        sets = labeled_restriction_sets(lp)
        assert all(len(rs) == 1 for rs in sets)
        flat = {r for rs in sets for r in rs}
        assert flat == {(0, 1), (1, 0)}


class TestLabeledCounting:
    CASES = [
        (triangle(), (0, 0, 0)),
        (triangle(), (0, 0, 1)),
        (triangle(), (0, 1, 2)),
        (rectangle(), (0, 1, 0, 1)),
        (rectangle(), (0, 0, 1, 1)),
        (house(), (0, 0, 1, 1, 2)),
        (star(3), (1, 0, 0, 0)),
    ]

    @pytest.mark.parametrize("pattern,labels", CASES,
                             ids=[f"{p.name}-{l}" for p, l in CASES])
    def test_matches_labeled_bruteforce(self, lgraph, pattern, labels):
        lp = LabeledPattern(pattern, labels)
        assert labeled_count(lgraph, lp) == labeled_bruteforce_count(lgraph, lp)

    def test_labeled_counts_sum_to_unlabeled(self, lgraph):
        """Summing triangle counts over all label assignments (up to
        labeled symmetry) must equal the unlabeled triangle count."""
        from itertools import combinations_with_replacement, permutations

        from repro.baselines.bruteforce import bruteforce_count

        total = 0
        seen = set()
        for labels in combinations_with_replacement(range(3), 3):
            for perm in set(permutations(labels)):
                if perm in seen:
                    continue
                seen.add(perm)
            # count each distinct multiset-assignment once per orbit of
            # label layouts under the triangle's symmetric group: for a
            # triangle, distinct multisets are enough.
            lp = LabeledPattern(triangle(), labels)
            total += labeled_count(lgraph, lp)
        assert total == bruteforce_count(lgraph.graph, triangle())

    def test_match_yields_correctly_labeled(self, lgraph):
        lp = LabeledPattern(triangle(), (0, 0, 1))
        for emb in LabeledMatcher(lp).match(lgraph, limit=10):
            assert lgraph.label_of(emb[0]) == 0
            assert lgraph.label_of(emb[1]) == 0
            assert lgraph.label_of(emb[2]) == 1
            assert lgraph.graph.has_edge(emb[0], emb[1])

    def test_plan_report(self, lgraph):
        lp = LabeledPattern(house(), (0, 0, 1, 1, 2))
        report = LabeledMatcher(lp).plan(lgraph)
        assert report.predicted_cost > 0
        assert report.n_restriction_sets >= 1
        assert report.n_schedules >= 1

    def test_disconnected_rejected(self):
        lp = LabeledPattern(Pattern(4, [(0, 1), (2, 3)]), (0, 0, 0, 0))
        with pytest.raises(ValueError):
            LabeledMatcher(lp)

    def test_missing_label_counts_zero(self, lgraph):
        lp = LabeledPattern(triangle(), (7, 7, 7))  # label absent from graph
        assert labeled_count(lgraph, lp) == 0


class TestLabeledIEP:
    """§IV-D composed with labels: filtered inner sets + labeled-group divisor."""

    def _lg(self, n=50, p=0.18, n_labels=2, seed=61):
        from repro.graph.generators import erdos_renyi
        from repro.graph.labeled import assign_random_labels

        return assign_random_labels(erdos_renyi(n, p, seed=seed), n_labels,
                                    seed=seed + 1)

    @pytest.mark.parametrize(
        "pattern,labels",
        [
            (rectangle(), (0, 0, 0, 0)),
            (rectangle(), (0, 1, 0, 1)),
            (star(3), (0, 1, 1, 1)),
            (house(), (0, 0, 1, 1, 0)),
        ],
    )
    def test_iep_equals_plain(self, pattern, labels):
        lg = self._lg()
        lp = LabeledPattern(pattern, labels)
        m = LabeledMatcher(lp)
        assert m.count(lg, use_iep=True) == m.count(lg, use_iep=False)

    def test_iep_equals_bruteforce(self):
        lg = self._lg(n=35)
        lp = LabeledPattern(star(3), (0, 1, 1, 1))
        got = LabeledMatcher(lp).count(lg, use_iep=True)
        assert got == labeled_bruteforce_count(lg, lp)

    def test_iep_plan_actually_fires(self):
        """star leaves are pairwise non-adjacent: with uniform leaf labels
        the plan must realise k >= 2 and carry a labeled-group divisor
        when inner restrictions get dropped."""
        lg = self._lg()
        lp = LabeledPattern(star(3), (0, 1, 1, 1))
        rep = LabeledMatcher(lp).plan(lg, use_iep=True)
        assert rep.plan.iep_k >= 2
        if rep.plan.dropped_restrictions:
            assert rep.plan.iep_overcount > 1

    def test_distinct_labels_make_overcount_trivial(self):
        """With all-distinct leaf labels the labeled group is trivial, so
        no restrictions exist to drop and the divisor stays 1."""
        lg = self._lg(n_labels=4)
        lp = LabeledPattern(star(3), (0, 1, 2, 3))
        rep = LabeledMatcher(lp).plan(lg, use_iep=True)
        assert rep.plan.iep_overcount == 1
        assert LabeledMatcher(lp).count(lg, use_iep=True) == \
            labeled_bruteforce_count(lg, lp)
