"""Motif census correctness."""

import pytest

from repro.baselines.bruteforce import bruteforce_count
from repro.graph.generators import complete_graph, erdos_renyi
from repro.mining.motifs import classify_motif, motif_census, motif_frequencies
from repro.pattern.catalog import clique, cycle, path, star, triangle
from repro.pattern.isomorphism import are_isomorphic, connected_patterns


class TestCensus:
    def test_rejects_session_for_other_graph(self, er_small, er_medium):
        from repro.core.session import get_session

        with pytest.raises(ValueError, match="different graph"):
            motif_census(er_small, 3, session=get_session(er_medium))

    def test_3motifs_on_k4(self):
        census = motif_census(complete_graph(4), 3)
        # Wedges (path-3): 12; triangles: 4.
        by_shape = {m.pattern.n_edges: m.count for m in census}
        assert by_shape[2] == 12
        assert by_shape[3] == 4

    def test_matches_bruteforce(self, er_small):
        for m in motif_census(er_small, 3):
            assert m.count == bruteforce_count(er_small, m.pattern)

    def test_4motif_matches_bruteforce(self):
        g = erdos_renyi(25, 0.3, seed=12)
        for m in motif_census(g, 4):
            assert m.count == bruteforce_count(g, m.pattern), m.pattern.name

    def test_iep_and_plain_agree(self):
        g = erdos_renyi(30, 0.25, seed=8)
        with_iep = [m.count for m in motif_census(g, 4, use_iep=True)]
        without = [m.count for m in motif_census(g, 4, use_iep=False)]
        assert with_iep == without

    def test_rejects_small_k(self, er_small):
        with pytest.raises(ValueError):
            motif_census(er_small, 2)

    def test_stable_ordering(self, er_small):
        a = [m.pattern.name for m in motif_census(er_small, 3)]
        b = [m.pattern.name for m in motif_census(er_small, 3)]
        assert a == b


class TestFrequencies:
    def test_sum_to_one(self, er_small):
        freqs = motif_frequencies(er_small, 3)
        assert sum(freqs.values()) == pytest.approx(1.0)

    def test_empty_graph(self):
        from repro.graph.generators import empty_graph

        # No embeddings at all: all frequencies zero.  Note the census
        # itself still runs (counts are 0).
        freqs = motif_frequencies(empty_graph(5), 3)
        assert all(v == 0.0 for v in freqs.values())


class TestClassify:
    def test_roundtrip(self):
        for k in (3, 4):
            for idx, pattern in enumerate(connected_patterns(k)):
                assert classify_motif(pattern, k) == idx

    def test_classifies_relabelled(self):
        p = cycle(4).relabel([2, 0, 3, 1])
        idx = classify_motif(p, 4)
        assert are_isomorphic(connected_patterns(4)[idx], cycle(4))

    def test_wrong_size(self):
        with pytest.raises(ValueError):
            classify_motif(triangle(), 4)

    def test_disconnected_rejected(self):
        from repro.pattern.pattern import Pattern

        with pytest.raises(ValueError):
            classify_motif(Pattern(4, [(0, 1), (2, 3)]), 4)


class TestInducedCensus:
    def test_matches_bruteforce_oracle(self, er_small):
        from repro.baselines.bruteforce import bruteforce_induced_count
        from repro.mining.motifs import induced_motif_census

        for m in induced_motif_census(er_small, 3):
            assert m.count == bruteforce_induced_count(er_small, m.pattern)

    def test_k4_census_sums(self, er_small):
        """Induced counts of all 4-motifs partition the set of connected
        4-vertex subgraphs, so they sum to the non-induced count of...
        nothing simple — but each induced count is <= its non-induced
        counterpart and the clique rows agree exactly."""
        from repro.mining.motifs import induced_motif_census, motif_census

        ind = {m.pattern.name: m.count for m in induced_motif_census(er_small, 4)}
        non = {m.pattern.name: m.count for m in motif_census(er_small, 4)}
        for name in ind:
            assert ind[name] <= non[name]
        # the densest motif is K4: identical under both semantics
        densest = max(
            induced_motif_census(er_small, 4), key=lambda m: m.pattern.n_edges
        )
        assert densest.count == non[densest.pattern.name]
