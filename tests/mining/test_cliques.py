"""Clique counting: general pipeline vs hand-specialised enumeration."""

from math import comb

import pytest

from repro.graph.generators import complete_graph, erdos_renyi
from repro.mining.cliques import clique_count, clique_count_ordered, max_clique_lower_bound


class TestKnownValues:
    @pytest.mark.parametrize("n,k", [(6, 3), (6, 4), (7, 5), (8, 3)])
    def test_cliques_in_complete_graph(self, n, k):
        expected = comb(n, k)
        g = complete_graph(n)
        assert clique_count(g, k) == expected
        assert clique_count_ordered(g, k) == expected

    def test_k2_is_edge_count(self, er_small):
        assert clique_count(er_small, 2) == er_small.n_edges
        assert clique_count_ordered(er_small, 2) == er_small.n_edges

    def test_k_too_small(self, er_small):
        with pytest.raises(ValueError):
            clique_count(er_small, 1)
        with pytest.raises(ValueError):
            clique_count_ordered(er_small, 1)


class TestGeneralVsSpecialised:
    @pytest.mark.parametrize("k", [3, 4, 5])
    def test_agreement_on_random_graphs(self, k):
        for seed in range(3):
            g = erdos_renyi(40, 0.3, seed=seed)
            assert clique_count(g, k) == clique_count_ordered(g, k), (k, seed)

    def test_iep_toggle(self, er_small):
        assert clique_count(er_small, 4, use_iep=True) == clique_count(
            er_small, 4, use_iep=False
        )


class TestMaxClique:
    def test_complete_graph(self):
        assert max_clique_lower_bound(complete_graph(5), limit=6) == 5

    def test_triangle_free(self):
        from repro.graph.builder import graph_from_edges

        g = graph_from_edges([(0, 1), (1, 2), (2, 3), (3, 0)])
        assert max_clique_lower_bound(g) == 2
