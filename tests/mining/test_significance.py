"""Motif significance: swap invariants and z-score behaviour."""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph.builder import graph_from_edges
from repro.graph.digraph import price_citation_graph, random_digraph
from repro.graph.generators import erdos_renyi, watts_strogatz
from repro.mining.significance import (
    MotifZScore,
    directed_edge_swap,
    double_edge_swap,
    motif_significance,
)
from repro.pattern.catalog import triangle
from repro.pattern.directed import feedforward_loop, out_star
from repro.pattern.pattern import Pattern


class TestDoubleEdgeSwap:
    def test_preserves_degree_sequence(self):
        g = erdos_renyi(60, 0.12, seed=5)
        r = double_edge_swap(g, seed=7)
        assert np.array_equal(np.sort(g.degrees), np.sort(r.degrees))
        assert r.n_edges == g.n_edges

    def test_preserves_each_vertex_degree(self):
        g = erdos_renyi(40, 0.15, seed=9)
        r = double_edge_swap(g, seed=11)
        assert np.array_equal(g.degrees, r.degrees)

    def test_actually_rewires(self):
        g = erdos_renyi(60, 0.12, seed=5)
        r = double_edge_swap(g, seed=7)
        assert set(map(tuple, g.edges())) != set(map(tuple, r.edges()))

    def test_seeded_determinism(self):
        g = erdos_renyi(40, 0.15, seed=1)
        a = double_edge_swap(g, seed=3)
        b = double_edge_swap(g, seed=3)
        assert np.array_equal(a.indices, b.indices)

    def test_tiny_graph_passthrough(self):
        g = graph_from_edges([(0, 1)])
        assert double_edge_swap(g, seed=1) is g

    def test_negative_swaps_rejected(self):
        g = erdos_renyi(10, 0.3, seed=1)
        with pytest.raises(ValueError):
            double_edge_swap(g, n_swaps=-1)


class TestDirectedEdgeSwap:
    def test_preserves_in_and_out_degrees(self):
        g = random_digraph(50, 0.1, seed=3)
        r = directed_edge_swap(g, seed=5)
        for v in range(g.n_vertices):
            assert g.out_degree(v) == r.out_degree(v)
            assert g.in_degree(v) == r.in_degree(v)
        assert r.n_arcs == g.n_arcs

    def test_actually_rewires(self):
        g = random_digraph(50, 0.1, seed=3)
        r = directed_edge_swap(g, seed=5)
        assert set(g.arcs()) != set(r.arcs())

    def test_seeded_determinism(self):
        g = random_digraph(30, 0.15, seed=1)
        a = directed_edge_swap(g, seed=9)
        b = directed_edge_swap(g, seed=9)
        assert sorted(a.arcs()) == sorted(b.arcs())


class TestZScores:
    def test_clustered_graph_has_positive_triangle_z(self):
        """Watts–Strogatz at low rewiring is strongly clustered: its
        triangle count must sit far above the degree-preserving null."""
        g = watts_strogatz(120, 4, 0.05, seed=13)
        [z] = motif_significance(
            g, [triangle()], n_random=6, swaps_per_edge=5, seed=17
        )
        assert z.observed > z.null_mean
        assert z.zscore > 2.0

    def test_er_graph_triangle_z_is_modest(self):
        """ER is its own null up to degree constraints: |z| stays small
        compared to the clustered case."""
        g = erdos_renyi(120, 4 / 119, seed=19)
        [z] = motif_significance(
            g, [triangle()], n_random=6, swaps_per_edge=5, seed=23
        )
        assert abs(z.zscore) < 3.0 or math.isinf(z.zscore) is False

    def test_citation_ffl_significant(self):
        """Feed-forward loops in a citation DAG exceed the randomised
        null (rewiring breaks the transitivity correlation)."""
        g = price_citation_graph(150, out_degree=3, seed=29)
        [z] = motif_significance(
            g, [feedforward_loop()], n_random=6, swaps_per_edge=5, seed=31
        )
        assert z.observed >= 0
        assert len(z.null_counts) == 6
        assert z.null_std >= 0
        assert z.zscore > 0  # rewiring destroys transitive closure

    def test_multiple_patterns_ordered(self):
        g = random_digraph(40, 0.12, seed=37)
        res = motif_significance(
            g, [feedforward_loop(), out_star(2)], n_random=4, swaps_per_edge=4,
            seed=41,
        )
        assert [r.pattern.name for r in res] == ["feedforward-loop", "out-star-2"]

    def test_kind_mismatch_rejected(self):
        g = erdos_renyi(20, 0.2, seed=1)
        with pytest.raises(TypeError, match="pattern kind"):
            motif_significance(g, [feedforward_loop()], n_random=2)

    def test_n_random_floor(self):
        g = erdos_renyi(20, 0.2, seed=1)
        with pytest.raises(ValueError, match="n_random"):
            motif_significance(g, [triangle()], n_random=1)

    def test_constant_null_zscore(self):
        z0 = MotifZScore(triangle(), observed=5, null_mean=5.0, null_std=0.0,
                         null_counts=(5, 5))
        assert z0.zscore == 0.0
        zpos = MotifZScore(triangle(), observed=9, null_mean=5.0, null_std=0.0,
                           null_counts=(5, 5))
        assert math.isinf(zpos.zscore) and zpos.zscore > 0


@settings(max_examples=15, deadline=None)
@given(n=st.integers(10, 35), p=st.floats(0.1, 0.3), seed=st.integers(0, 1000))
def test_property_swap_preserves_degrees(n, p, seed):
    g = erdos_renyi(n, p, seed=seed)
    r = double_edge_swap(g, n_swaps=3 * max(g.n_edges, 1), seed=seed + 1)
    assert np.array_equal(g.degrees, r.degrees)
    # still a simple graph: constructor invariants hold (no exception),
    # and the edge count is unchanged
    assert r.n_edges == g.n_edges


def test_wedge_count_exactly_preserved_by_null():
    """Wedges (path-3) are a pure function of the degree sequence, so the
    degree-preserving null must reproduce them exactly — the invariant
    the example showcases."""
    from repro.pattern.catalog import path

    g = watts_strogatz(80, 4, 0.1, seed=3)
    [z] = motif_significance(g, [path(3)], n_random=4, swaps_per_edge=4, seed=5)
    assert z.null_std == 0.0
    assert z.null_mean == z.observed
    assert z.zscore == 0.0
