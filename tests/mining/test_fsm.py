"""FSM-lite: MNI support, canonical forms, level-wise mining."""

from __future__ import annotations

import numpy as np
import pytest

from repro.graph.builder import graph_from_edges
from repro.graph.labeled import LabeledGraph, assign_random_labels
from repro.graph.generators import erdos_renyi
from repro.mining.fsm import (
    FrequentPattern,
    frequent_subgraphs,
    labeled_canonical_form,
    mni_support,
)
from repro.pattern.labeled import LabeledPattern
from repro.pattern.pattern import Pattern


def lg(edges, labels):
    return LabeledGraph(graph_from_edges(edges), np.array(labels))


@pytest.fixture(scope="module")
def toy():
    """Two A-B-C paths sharing nothing + one isolated-ish A-B edge.

    Labels: 0=A, 1=B, 2=C.
    Vertices: 0A-1B-2C, 3A-4B-5C, 6A-7B.
    """
    return lg(
        [(0, 1), (1, 2), (3, 4), (4, 5), (6, 7)],
        [0, 1, 2, 0, 1, 2, 0, 1],
    )


class TestCanonicalForm:
    def test_invariant_under_relabelling(self):
        p = LabeledPattern(Pattern(3, [(0, 1), (1, 2)]), (0, 1, 0))
        # same labeled path with the centre renamed to vertex 2
        q = LabeledPattern(Pattern(3, [(1, 2), (0, 2)]), (0, 0, 1))
        assert labeled_canonical_form(p) == labeled_canonical_form(q)

    def test_distinguishes_labels(self):
        a = LabeledPattern(Pattern(2, [(0, 1)]), (0, 0))
        b = LabeledPattern(Pattern(2, [(0, 1)]), (0, 1))
        assert labeled_canonical_form(a) != labeled_canonical_form(b)

    def test_distinguishes_structure(self):
        tri = LabeledPattern(Pattern(3, [(0, 1), (1, 2), (0, 2)]), (0, 0, 0))
        path = LabeledPattern(Pattern(3, [(0, 1), (1, 2)]), (0, 0, 0))
        assert labeled_canonical_form(tri) != labeled_canonical_form(path)


class TestMNISupport:
    def test_single_vertex(self, toy):
        assert mni_support(toy, LabeledPattern(Pattern(1, []), (0,))) == 3
        assert mni_support(toy, LabeledPattern(Pattern(1, []), (2,))) == 2

    def test_edge_pattern(self, toy):
        ab = LabeledPattern(Pattern(2, [(0, 1)]), (0, 1))
        assert mni_support(toy, ab) == 3  # three A-B edges
        bc = LabeledPattern(Pattern(2, [(0, 1)]), (1, 2))
        assert mni_support(toy, bc) == 2

    def test_path_pattern(self, toy):
        abc = LabeledPattern(Pattern(3, [(0, 1), (1, 2)]), (0, 1, 2))
        assert mni_support(toy, abc) == 2

    def test_absent_pattern(self, toy):
        cc = LabeledPattern(Pattern(2, [(0, 1)]), (2, 2))
        assert mni_support(toy, cc) == 0

    def test_mni_counts_images_not_embeddings(self):
        """A star with one hub and 4 leaves: 4 hub-leaf embeddings but
        the hub role has only 1 image — MNI = min(1, 4) = 1."""
        g = lg([(0, 1), (0, 2), (0, 3), (0, 4)], [0, 1, 1, 1, 1])
        edge = LabeledPattern(Pattern(2, [(0, 1)]), (0, 1))
        assert mni_support(g, edge) == 1

    def test_symmetric_pattern_orbit_closure(self):
        """B-B edge on a labeled triangle of Bs: the matcher yields one
        representative per unordered pair, but both endpoints must enter
        both role domains (orbit closure)."""
        g = lg([(0, 1), (1, 2), (0, 2)], [1, 1, 1])
        bb = LabeledPattern(Pattern(2, [(0, 1)]), (1, 1))
        assert mni_support(g, bb) == 3

    def test_anti_monotone(self, toy):
        """Extending a pattern never raises MNI support."""
        ab = LabeledPattern(Pattern(2, [(0, 1)]), (0, 1))
        abc = LabeledPattern(Pattern(3, [(0, 1), (1, 2)]), (0, 1, 2))
        assert mni_support(toy, abc) <= mni_support(toy, ab)


class TestMining:
    def test_toy_mining(self, toy):
        res = frequent_subgraphs(toy, min_support=2, max_vertices=3)
        by_key = {labeled_canonical_form(fp.pattern): fp.support for fp in res}
        # frequent singles: A(3), B(3), C(2)
        for lab, sup in ((0, 3), (1, 3), (2, 2)):
            assert by_key[labeled_canonical_form(
                LabeledPattern(Pattern(1, []), (lab,)))] == sup
        # frequent edges: A-B (3), B-C (2); no A-C edges exist
        assert by_key[labeled_canonical_form(
            LabeledPattern(Pattern(2, [(0, 1)]), (0, 1)))] == 3
        assert by_key[labeled_canonical_form(
            LabeledPattern(Pattern(2, [(0, 1)]), (1, 2)))] == 2
        # the A-B-C path survives at support 2
        assert by_key[labeled_canonical_form(
            LabeledPattern(Pattern(3, [(0, 1), (1, 2)]), (0, 1, 2)))] == 2

    def test_threshold_prunes(self, toy):
        res3 = frequent_subgraphs(toy, min_support=3, max_vertices=3)
        keys = {labeled_canonical_form(fp.pattern) for fp in res3}
        # C appears only twice -> gone, and so is everything containing C
        assert labeled_canonical_form(
            LabeledPattern(Pattern(1, []), (2,))) not in keys
        assert all(2 not in fp.pattern.labels for fp in res3)

    def test_results_unique_and_sorted(self, toy):
        res = frequent_subgraphs(toy, min_support=2, max_vertices=3)
        keys = [labeled_canonical_form(fp.pattern) for fp in res]
        assert len(keys) == len(set(keys))
        sizes = [(fp.pattern.n_vertices, fp.pattern.pattern.n_edges) for fp in res]
        assert sizes == sorted(sizes)

    def test_max_vertices_respected(self, toy):
        res = frequent_subgraphs(toy, min_support=1, max_vertices=2)
        assert max(fp.pattern.n_vertices for fp in res) <= 2

    def test_triangle_found_via_backward_extension(self):
        """Backward (cycle-closing) extensions must fire: mine a graph of
        three overlapping labeled triangles."""
        g = lg(
            [(0, 1), (1, 2), (0, 2), (2, 3), (3, 4), (2, 4), (4, 5), (5, 0), (4, 0)],
            [0, 0, 0, 0, 0, 0],
        )
        res = frequent_subgraphs(g, min_support=3, max_vertices=3)
        tri_key = labeled_canonical_form(
            LabeledPattern(Pattern(3, [(0, 1), (1, 2), (0, 2)]), (0, 0, 0))
        )
        assert tri_key in {labeled_canonical_form(fp.pattern) for fp in res}

    def test_support_values_anti_monotone_along_results(self, toy):
        res = frequent_subgraphs(toy, min_support=2, max_vertices=3)
        best_by_size: dict[int, int] = {}
        for fp in res:
            n = fp.pattern.n_vertices
            best_by_size[n] = max(best_by_size.get(n, 0), fp.support)
        sizes = sorted(best_by_size)
        for a, b in zip(sizes, sizes[1:]):
            assert best_by_size[b] <= best_by_size[a]

    def test_bad_args(self, toy):
        with pytest.raises(ValueError):
            frequent_subgraphs(toy, 0)
        with pytest.raises(ValueError):
            frequent_subgraphs(toy, 1, max_vertices=0)

    def test_random_graph_smoke(self):
        g = assign_random_labels(erdos_renyi(30, 0.15, seed=3), 2, seed=4)
        res = frequent_subgraphs(g, min_support=5, max_vertices=3)
        assert all(fp.support >= 5 for fp in res)
        assert all(
            fp.pattern.n_vertices == 1 or fp.pattern.pattern.is_connected()
            for fp in res
        )
