"""DiPattern and directed automorphism groups."""

from __future__ import annotations

from itertools import permutations

import pytest

from repro.pattern.catalog import cycle, triangle
from repro.pattern.directed import (
    DiPattern,
    bi_fan,
    directed_automorphism_count,
    directed_automorphisms,
    directed_clique,
    directed_cycle,
    directed_path,
    feedforward_loop,
    is_directed_automorphism,
    out_star,
    transitive_triangle,
)


class TestDiPattern:
    def test_arcs_and_degrees(self):
        p = DiPattern(3, [(0, 1), (1, 2), (2, 0)])
        assert p.n_arcs == 3
        assert p.successors(0) == [1]
        assert p.predecessors(0) == [2]
        assert p.out_degree(0) == 1 and p.in_degree(0) == 1

    def test_antiparallel_pairs_distinct(self):
        p = DiPattern(2, [(0, 1), (1, 0)])
        assert p.n_arcs == 2
        assert p.skeleton().n_edges == 1

    def test_self_loop_rejected(self):
        with pytest.raises(ValueError, match="self-loop"):
            DiPattern(2, [(0, 0)])

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError, match="out of range"):
            DiPattern(2, [(0, 5)])

    def test_skeleton_of_dicycle_is_cycle(self):
        assert directed_cycle(5).skeleton() == cycle(5)

    def test_relabel_roundtrip(self):
        p = transitive_triangle()
        q = p.relabel([2, 0, 1]).relabel([1, 2, 0])
        assert q == p

    def test_relabel_bad_perm(self):
        with pytest.raises(ValueError):
            transitive_triangle().relabel([0, 0, 1])

    def test_reverse_involution(self):
        p = feedforward_loop()
        assert p.reverse().reverse() == p
        assert p.reverse() != p  # FFL is not arc-reversal symmetric as labeled object

    def test_connectivity(self):
        assert directed_path(4).is_connected()
        assert not DiPattern(4, [(0, 1), (2, 3)]).is_connected()

    def test_equality_ignores_name(self):
        a = DiPattern(3, [(0, 1)], name="x")
        b = DiPattern(3, [(0, 1)], name="y")
        assert a == b and hash(a) == hash(b)

    def test_dipattern_not_equal_to_pattern(self):
        assert (DiPattern(3, [(0, 1)]) == triangle()) is False


class TestDirectedAutomorphisms:
    def _bruteforce_auts(self, p: DiPattern):
        arcs = set(p.arcs)
        out = []
        for perm in permutations(range(p.n_vertices)):
            if {(perm[u], perm[v]) for u, v in arcs} == arcs:
                out.append(tuple(perm))
        return sorted(out)

    @pytest.mark.parametrize(
        "pattern",
        [
            directed_cycle(3),
            directed_cycle(4),
            directed_cycle(5),
            transitive_triangle(),
            directed_path(4),
            out_star(3),
            bi_fan(),
            directed_clique(3),
            DiPattern(4, [(0, 1), (1, 2), (2, 3), (3, 0), (0, 2)]),
        ],
    )
    def test_matches_bruteforce(self, pattern):
        got = sorted(tuple(a) for a in directed_automorphisms(pattern))
        assert got == self._bruteforce_auts(pattern)

    def test_dicycle_group_is_rotations(self):
        # reflections reverse arc direction, so only n rotations survive
        assert directed_automorphism_count(directed_cycle(4)) == 4
        assert directed_automorphism_count(directed_cycle(6)) == 6

    def test_transitive_triangle_asymmetric(self):
        assert directed_automorphism_count(transitive_triangle()) == 1

    def test_out_star_full_leaf_symmetry(self):
        assert directed_automorphism_count(out_star(4)) == 24

    def test_bi_fan_group(self):
        # swap sources × swap sinks = 4
        assert directed_automorphism_count(bi_fan()) == 4

    def test_directed_clique_full_group(self):
        assert directed_automorphism_count(directed_clique(4)) == 24

    def test_subgroup_of_skeleton_group(self):
        from repro.pattern.automorphism import automorphisms

        for p in (directed_cycle(5), bi_fan(), feedforward_loop()):
            sk = {tuple(a) for a in automorphisms(p.skeleton())}
            di = {tuple(a) for a in directed_automorphisms(p)}
            assert di <= sk

    def test_is_directed_automorphism(self):
        p = directed_cycle(3)
        assert is_directed_automorphism(p, (1, 2, 0))
        assert not is_directed_automorphism(p, (1, 0, 2))
        assert not is_directed_automorphism(p, (0, 0, 1))

    def test_identity_always_present(self):
        for p in (directed_path(3), bi_fan(), directed_cycle(4)):
            assert tuple(range(p.n_vertices)) in {
                tuple(a) for a in directed_automorphisms(p)
            }


class TestCatalog:
    def test_directed_cycle_too_small(self):
        with pytest.raises(ValueError):
            directed_cycle(1)

    def test_directed_path_too_small(self):
        with pytest.raises(ValueError):
            directed_path(1)

    def test_out_star_needs_leaf(self):
        with pytest.raises(ValueError):
            out_star(0)

    def test_feedforward_is_transitive_triangle(self):
        assert feedforward_loop() == transitive_triangle()

    def test_directed_clique_arc_count(self):
        assert directed_clique(4).n_arcs == 12


class TestDirectedPatternResolver:
    def test_named_and_parametric_forms(self):
        from repro.pattern.directed import (
            bi_fan,
            directed_cycle,
            feedforward_loop,
            get_directed_pattern,
        )

        assert get_directed_pattern("ffl") == feedforward_loop()
        assert get_directed_pattern("bifan") == bi_fan()
        assert get_directed_pattern("dcycle-4") == directed_cycle(4)

    def test_unknown_name_raises(self):
        import pytest

        from repro.pattern.directed import get_directed_pattern

        with pytest.raises(ValueError, match="unknown directed pattern"):
            get_directed_pattern("house")
