"""Canonical forms and motif enumeration."""

import pytest

from repro.pattern.catalog import clique, cycle, house, path, rectangle, star, triangle
from repro.pattern.isomorphism import (
    are_isomorphic,
    canonical_form,
    connected_patterns,
    find_isomorphism,
    upper_triangle_bits,
)
from repro.pattern.pattern import Pattern


class TestCanonicalForm:
    def test_relabelled_patterns_share_form(self):
        p = house()
        for perm in [(4, 3, 2, 1, 0), (1, 0, 3, 2, 4), (2, 3, 4, 0, 1)]:
            assert canonical_form(p.relabel(list(perm))) == canonical_form(p)

    def test_different_patterns_differ(self):
        assert canonical_form(path(4)) != canonical_form(star(3))
        assert canonical_form(cycle(4)) != canonical_form(clique(4))

    def test_bits_depend_on_labelling(self):
        p = path(3)
        q = p.relabel([1, 0, 2])
        assert upper_triangle_bits(p) != upper_triangle_bits(q)
        assert canonical_form(p) == canonical_form(q)


class TestAreIsomorphic:
    def test_same_shape(self):
        assert are_isomorphic(cycle(4), rectangle())

    def test_shortcut_vertex_count(self):
        assert not are_isomorphic(triangle(), rectangle())

    def test_shortcut_degree_sequence(self):
        assert not are_isomorphic(path(4), star(3))

    def test_same_degree_sequence_non_isomorphic(self):
        # C6 vs two triangles: both 2-regular on 6 vertices.
        two_tris = Pattern(6, [(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5)])
        assert not are_isomorphic(cycle(6), two_tris)


class TestFindIsomorphism:
    def test_found_mapping_is_valid(self):
        a = house()
        b = a.relabel([3, 1, 4, 0, 2])
        mapping = find_isomorphism(a, b)
        assert mapping is not None
        for u, v in a.edges:
            assert b.has_edge(mapping[u], mapping[v])

    def test_none_when_not_isomorphic(self):
        assert find_isomorphism(cycle(4), clique(4)) is None


class TestConnectedPatterns:
    """Known counts of connected graphs on k nodes: 1, 1, 2, 6, 21."""

    @pytest.mark.parametrize("k,count", [(1, 1), (2, 1), (3, 2), (4, 6), (5, 21)])
    def test_counts(self, k, count):
        assert len(connected_patterns(k)) == count

    def test_all_connected_and_distinct(self):
        pats = connected_patterns(4)
        forms = {canonical_form(p) for p in pats}
        assert len(forms) == len(pats)
        assert all(p.is_connected() for p in pats)

    def test_includes_extremes(self):
        pats = connected_patterns(4)
        assert any(are_isomorphic(p, path(4)) for p in pats)
        assert any(are_isomorphic(p, clique(4)) for p in pats)
        assert any(are_isomorphic(p, cycle(4)) for p in pats)
        assert any(are_isomorphic(p, star(3)) for p in pats)

    def test_sorted_by_edges(self):
        pats = connected_patterns(4)
        edge_counts = [p.n_edges for p in pats]
        assert edge_counts == sorted(edge_counts)
        assert edge_counts[0] == 3 and edge_counts[-1] == 6

    def test_rejects_large_k(self):
        with pytest.raises(ValueError):
            connected_patterns(7)

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            connected_patterns(0)
