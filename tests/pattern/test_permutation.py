"""Permutation algebra: cycles, 2-cycles, composition."""

import pytest

from repro.pattern.permutation import (
    all_permutations,
    apply_perm,
    compose,
    cycle_decomposition,
    cycles_to_string,
    identity,
    inverse,
    is_identity,
    perm_from_cycles,
    perm_order,
    transposition_product,
    two_cycles,
    validate_perm,
)


class TestBasics:
    def test_identity(self):
        assert identity(4) == (0, 1, 2, 3)
        assert is_identity(identity(5))
        assert not is_identity((1, 0))

    def test_validate_accepts(self):
        assert validate_perm([2, 0, 1]) == (2, 0, 1)

    def test_validate_rejects_repeats(self):
        with pytest.raises(ValueError):
            validate_perm([0, 0, 1])

    def test_validate_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            validate_perm([0, 3])

    def test_compose(self):
        # outer ∘ inner: apply inner first.
        inner = (1, 2, 0)
        outer = (2, 0, 1)
        assert compose(outer, inner) == (0, 1, 2)

    def test_compose_size_mismatch(self):
        with pytest.raises(ValueError):
            compose((0, 1), (0, 1, 2))

    def test_inverse(self):
        p = (2, 0, 3, 1)
        assert compose(p, inverse(p)) == identity(4)
        assert compose(inverse(p), p) == identity(4)

    def test_apply_perm(self):
        # result[perm[i]] = items[i]
        assert apply_perm((1, 2, 0), ("a", "b", "c")) == ("c", "a", "b")


class TestCycles:
    def test_decomposition_canonical(self):
        assert cycle_decomposition((0, 3, 2, 1)) == [(0,), (1, 3), (2,)]

    def test_decomposition_full_cycle(self):
        assert cycle_decomposition((1, 2, 3, 0)) == [(0, 1, 2, 3)]

    def test_identity_decomposition(self):
        assert cycle_decomposition((0, 1, 2)) == [(0,), (1,), (2,)]

    def test_two_cycles_simple(self):
        assert two_cycles((1, 0, 3, 2)) == [(0, 1), (2, 3)]

    def test_two_cycles_excludes_fixed_points(self):
        assert two_cycles((0, 1, 2)) == []

    def test_two_cycles_excludes_longer_cycles(self):
        # 4-cycle: no element satisfies p[p[x]] == x except via 2-cycles.
        assert two_cycles((1, 2, 3, 0)) == []

    def test_two_cycles_mixed(self):
        # (0)(1 2)(3 4 5) → only (1,2).
        p = perm_from_cycles(6, [(1, 2), (3, 4, 5)])
        assert two_cycles(p) == [(1, 2)]

    def test_transposition_product_reconstructs(self):
        for p in all_permutations(5):
            factors = transposition_product(p)
            acc = identity(5)
            # Compose right-to-left as the paper's example prescribes.
            for a, b in reversed(factors):
                swap = list(identity(5))
                swap[a], swap[b] = b, a
                acc = compose(tuple(swap), acc)
            assert acc == p

    def test_perm_from_cycles(self):
        p = perm_from_cycles(4, [(0, 1), (2, 3)])
        assert p == (1, 0, 3, 2)

    def test_perm_from_cycles_rejects_overlap(self):
        with pytest.raises(ValueError):
            perm_from_cycles(4, [(0, 1), (1, 2)])

    def test_paper_4cycle_decomposition(self):
        """The paper's §IV-A example: (A,B,C,D) = (A,D)(A,C)(A,B)."""
        p = perm_from_cycles(4, [(0, 1, 2, 3)])
        assert transposition_product(p) == [(0, 3), (0, 2), (0, 1)]

    def test_perm_order(self):
        assert perm_order((0, 1, 2)) == 1
        assert perm_order((1, 0, 2)) == 2
        assert perm_order((1, 2, 0)) == 3
        assert perm_order(perm_from_cycles(5, [(0, 1), (2, 3, 4)])) == 6

    def test_cycles_to_string(self):
        assert cycles_to_string((0, 3, 2, 1)) == "(0)(1 3)(2)"


def test_all_permutations_count():
    assert sum(1 for _ in all_permutations(4)) == 24
