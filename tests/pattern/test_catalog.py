"""Named pattern catalog, including the paper-pinned shapes."""

import pytest

from repro.pattern.catalog import (
    NAMED_PATTERNS,
    clique,
    cycle,
    cycle_6_tri,
    get_pattern,
    house,
    paper_patterns,
    path,
    pentagon,
    rectangle,
    star,
    triangle,
)


class TestBasicShapes:
    def test_triangle(self):
        assert triangle().n_vertices == 3 and triangle().n_edges == 3

    def test_rectangle_is_4_cycle(self):
        r = rectangle()
        assert r.n_edges == 4
        assert all(r.degree(v) == 2 for v in range(4))

    def test_clique_edges(self):
        assert clique(5).n_edges == 10

    def test_clique_requires_2(self):
        with pytest.raises(ValueError):
            clique(1)

    def test_cycle_path_star_sizes(self):
        assert cycle(6).n_edges == 6
        assert path(5).n_edges == 4
        assert star(4).n_edges == 4

    def test_cycle_minimum(self):
        with pytest.raises(ValueError):
            cycle(2)


class TestPaperPinnedShapes:
    def test_house_matches_fig5_pseudocode(self):
        """Fig. 5(b): B∈N(A); C∈N(A); D∈N(B)∩N(C); E∈N(A)∩N(B)."""
        h = house()
        # A=0 B=1 C=2 D=3 E=4
        assert h.has_edge(0, 1)          # B ∈ N(A)
        assert h.has_edge(0, 2)          # C ∈ N(A)
        assert h.has_edge(1, 3) and h.has_edge(2, 3)  # D ∈ N(B)∩N(C)
        assert h.has_edge(0, 4) and h.has_edge(1, 4)  # E ∈ N(A)∩N(B)
        assert h.n_edges == 6
        # D and E are not adjacent (k = 2, the paper's phase-2 example).
        assert not h.has_edge(3, 4)

    def test_cycle_6_tri_matches_fig6_pseudocode(self):
        """Fig. 6(b): S1(D)=N(A)∩N(B); S2(E)=N(A)∩N(C); S3(F)=N(B)∩N(C)."""
        p = cycle_6_tri()
        # A=0 B=1 C=2 D=3 E=4 F=5
        assert p.has_edge(0, 1) and p.has_edge(0, 2)
        assert p.has_edge(3, 0) and p.has_edge(3, 1)
        assert p.has_edge(4, 0) and p.has_edge(4, 2)
        assert p.has_edge(5, 1) and p.has_edge(5, 2)
        # D, E, F pairwise non-adjacent → k = 3 (§IV-D).
        assert p.is_independent_set([3, 4, 5])
        assert p.max_independent_set_size() == 3

    def test_rectangle_house_top_is_rectangle(self):
        """§V-C: the subpattern formed by the top 4 vertices of P4 is a
        rectangle."""
        from repro.pattern.catalog import rectangle_house
        from repro.pattern.isomorphism import are_isomorphic
        from repro.pattern.pattern import Pattern

        p4 = rectangle_house()
        top = [(u, v) for u, v in p4.edges if u < 4 and v < 4]
        assert are_isomorphic(Pattern(4, top), rectangle())


class TestPaperEvaluationSet:
    def test_p1_to_p6_present(self):
        pats = paper_patterns()
        assert sorted(pats) == ["P1", "P2", "P3", "P4", "P5", "P6"]

    def test_all_connected(self):
        for p in paper_patterns().values():
            assert p.is_connected()

    def test_sizes_in_paper_range(self):
        """5-7 vertices: 'patterns with a size of 6' regime from the intro."""
        for p in paper_patterns().values():
            assert 5 <= p.n_vertices <= 7

    def test_p1_p2_simple_p5_p6_complex(self):
        """§V-A: P1, P2 are GraphZero's (simple); P5, P6 added (complex)."""
        pats = paper_patterns()
        assert pats["P1"].n_vertices == 5 and pats["P2"].n_vertices == 5
        assert pats["P5"].n_vertices >= 6 and pats["P6"].n_vertices >= 6

    def test_p6_has_rich_symmetry(self):
        """Table III shows P5/P6 preprocessing in the seconds range —
        driven by automorphism-group size."""
        from repro.pattern.automorphism import automorphism_count

        pats = paper_patterns()
        assert automorphism_count(pats["P6"]) >= 24


class TestLookup:
    def test_named(self):
        for name in NAMED_PATTERNS:
            assert get_pattern(name).n_vertices >= 3

    def test_paper_names(self):
        assert get_pattern("P3").n_vertices == 6
        assert get_pattern("p1") == paper_patterns()["P1"]

    def test_parametric(self):
        assert get_pattern("clique-4") == clique(4)
        assert get_pattern("cycle-7").n_edges == 7
        assert get_pattern("path-3").n_edges == 2
        assert get_pattern("star-5").n_edges == 5

    def test_unknown(self):
        with pytest.raises(KeyError):
            get_pattern("dodecahedron")

    def test_pentagon_alias(self):
        assert pentagon().n_edges == 5
        assert get_pattern("pentagon") == pentagon()
