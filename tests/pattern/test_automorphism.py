"""Automorphism groups: sizes, group axioms, orbits, stabilisers."""

from math import factorial

import pytest

from repro.pattern.automorphism import (
    automorphism_count,
    automorphisms,
    is_automorphism,
    orbits,
    pointwise_stabilizer,
    stabilizer,
    verify_group,
)
from repro.pattern.catalog import (
    clique,
    cycle,
    cycle_6_tri,
    house,
    path,
    pentagon,
    rectangle,
    star,
    triangle,
)
from repro.pattern.pattern import Pattern


KNOWN_GROUP_SIZES = [
    (triangle(), 6),
    (rectangle(), 8),  # dihedral D4
    (pentagon(), 10),  # dihedral D5
    (house(), 2),
    (cycle_6_tri(), 2),
    (clique(4), 24),
    (clique(5), 120),
    (path(4), 2),
    (star(4), 24),  # leaves permute freely
    (cycle(6), 12),
]


@pytest.mark.parametrize("pattern,size", KNOWN_GROUP_SIZES, ids=lambda x: getattr(x, "name", x))
def test_known_group_sizes(pattern, size):
    assert automorphism_count(pattern) == size


@pytest.mark.parametrize("pattern,_", KNOWN_GROUP_SIZES, ids=lambda x: getattr(x, "name", x))
def test_groups_satisfy_axioms(pattern, _):
    assert verify_group(automorphisms(pattern))


def test_clique_group_is_symmetric_group():
    auts = automorphisms(clique(4))
    assert len(auts) == factorial(4)
    assert len(set(auts)) == factorial(4)


def test_identity_always_first():
    for pattern, _ in KNOWN_GROUP_SIZES:
        assert automorphisms(pattern)[0] == tuple(range(pattern.n_vertices))


def test_every_listed_perm_is_automorphism():
    p = house()
    for perm in automorphisms(p):
        assert is_automorphism(p, perm)


def test_non_automorphism_detected():
    assert not is_automorphism(house(), (1, 2, 3, 4, 0))
    assert not is_automorphism(house(), (0, 0, 1, 2, 3))


def test_paper_rectangle_group():
    """Figure 4(c): the rectangle's 8 automorphisms, as listed."""
    from repro.pattern.permutation import perm_from_cycles as pc

    expected = {
        (0, 1, 2, 3),                      # ① identity
        pc(4, [(0, 3, 2, 1)]),             # ② (A,D,C,B)
        pc(4, [(0, 1, 2, 3)]),             # ③ (A,B,C,D)
        pc(4, [(1, 3)]),                   # ④ (B,D)
        pc(4, [(0, 2)]),                   # ⑤ (A,C)
        pc(4, [(0, 2), (1, 3)]),           # ⑥ (A,C)(B,D)
        pc(4, [(0, 1), (2, 3)]),           # ⑦ (A,B)(C,D)
        pc(4, [(0, 3), (1, 2)]),           # ⑧ (A,D)(B,C)
    }
    assert set(automorphisms(rectangle())) == expected


class TestOrbits:
    def test_rectangle_single_orbit(self):
        assert orbits(automorphisms(rectangle())) == [[0, 1, 2, 3]]

    def test_house_orbits(self):
        # House automorphism swaps (0,1) and (2,4)... per our labelling:
        auts = automorphisms(house())
        orbs = orbits(auts)
        flat = sorted(v for orb in orbs for v in orb)
        assert flat == [0, 1, 2, 3, 4]
        sizes = sorted(len(o) for o in orbs)
        assert sizes == [1, 2, 2]  # one fixed vertex, two swapped pairs

    def test_star_leaf_orbit(self):
        orbs = orbits(automorphisms(star(3)))
        assert [0] in orbs
        assert [1, 2, 3] in orbs


class TestStabilizers:
    def test_stabilizer_subgroup(self):
        auts = automorphisms(rectangle())
        stab = stabilizer(auts, 0)
        assert len(stab) == 2  # id and the reflection fixing 0 (and 2)
        assert verify_group(stab)

    def test_pointwise_stabilizer(self):
        auts = automorphisms(clique(4))
        stab = pointwise_stabilizer(auts, [0, 1])
        assert len(stab) == 2  # S2 on remaining two vertices

    def test_full_stabilizer_chain_trivial(self):
        auts = automorphisms(clique(4))
        stab = pointwise_stabilizer(auts, [0, 1, 2])
        assert stab == [tuple(range(4))]


def test_disconnected_pattern_automorphisms():
    # Two disjoint edges: swap within each edge and swap the edges: |Aut|=8.
    p = Pattern(4, [(0, 1), (2, 3)])
    assert automorphism_count(p) == 8
