"""Pattern type: construction, queries, structure predicates."""

import numpy as np
import pytest

from repro.pattern.catalog import clique, house, rectangle, triangle
from repro.pattern.pattern import Pattern


class TestConstruction:
    def test_basic(self):
        p = Pattern(3, [(0, 1), (1, 2)])
        assert p.n_vertices == 3
        assert p.n_edges == 2

    def test_rejects_zero_vertices(self):
        with pytest.raises(ValueError):
            Pattern(0, [])

    def test_rejects_self_loop(self):
        with pytest.raises(ValueError):
            Pattern(2, [(0, 0)])

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            Pattern(2, [(0, 2)])

    def test_duplicate_edges_collapse(self):
        p = Pattern(2, [(0, 1), (1, 0), (0, 1)])
        assert p.n_edges == 1

    def test_from_adjacency_string(self):
        p = Pattern.from_adjacency_string(3, "011101110")
        assert p.n_edges == 3
        assert p == triangle()

    def test_adjacency_string_asymmetric_rejected(self):
        with pytest.raises(ValueError, match="symmetric"):
            Pattern.from_adjacency_string(2, "0100")

    def test_adjacency_string_wrong_length(self):
        with pytest.raises(ValueError, match="chars"):
            Pattern.from_adjacency_string(2, "010")

    def test_adjacency_string_bad_char(self):
        with pytest.raises(ValueError):
            Pattern.from_adjacency_string(2, "0x10")

    def test_from_adjacency_matrix(self):
        m = np.array([[0, 1], [1, 0]])
        assert Pattern.from_adjacency_matrix(m).n_edges == 1

    def test_matrix_round_trip(self):
        p = house()
        assert Pattern.from_adjacency_matrix(p.adjacency_matrix()) == p


class TestQueries:
    def test_has_edge(self):
        p = triangle()
        assert p.has_edge(0, 1) and p.has_edge(1, 0)

    def test_neighbors(self):
        p = Pattern(4, [(0, 1), (0, 3)])
        assert p.neighbors(0) == [1, 3]
        assert p.neighbors(2) == []

    def test_degrees(self):
        assert house().degrees == [3, 3, 2, 2, 2]

    def test_edges_sorted_pairs(self):
        for u, v in house().edges:
            assert u < v


class TestStructure:
    def test_connected(self):
        assert triangle().is_connected()
        assert not Pattern(4, [(0, 1), (2, 3)]).is_connected()
        assert Pattern(1, []).is_connected()

    def test_independent_set(self):
        p = rectangle()
        assert p.is_independent_set([0, 2])
        assert p.is_independent_set([1, 3])
        assert not p.is_independent_set([0, 1])

    def test_max_independent_set_sizes(self):
        assert clique(5).max_independent_set_size() == 1
        assert rectangle().max_independent_set_size() == 2
        assert house().max_independent_set_size() == 2
        # Paper Fig. 6: Cycle-6-Tri has k = 3 (D, E, F).
        from repro.pattern.catalog import cycle_6_tri

        assert cycle_6_tri().max_independent_set_size() == 3

    def test_independent_sets_of_size(self):
        sets = rectangle().independent_sets_of_size(2)
        assert sorted(sets) == [(0, 2), (1, 3)]

    def test_relabel_preserves_structure(self):
        p = house()
        q = p.relabel([4, 3, 2, 1, 0])
        assert q.n_edges == p.n_edges
        assert sorted(q.degrees) == sorted(p.degrees)

    def test_relabel_rejects_non_permutation(self):
        with pytest.raises(ValueError):
            house().relabel([0, 0, 1, 2, 3])

    def test_to_graph(self):
        g = house().to_graph()
        assert g.n_vertices == 5
        assert g.n_edges == 6

    def test_to_graph_isolated_vertex(self):
        p = Pattern(3, [(0, 1)])
        g = p.to_graph()
        assert g.n_vertices == 3
        assert g.degree(2) == 0


class TestDunder:
    def test_equality_and_hash(self):
        assert triangle() == Pattern(3, [(0, 1), (0, 2), (1, 2)])
        assert hash(triangle()) == hash(Pattern(3, [(1, 2), (0, 2), (0, 1)]))
        assert triangle() != rectangle()

    def test_eq_other_type(self):
        assert triangle() != 42
