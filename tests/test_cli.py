"""Command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_count_defaults(self):
        args = build_parser().parse_args(["count"])
        assert args.pattern == "house"
        assert args.dataset == "wiki-vote"
        assert not args.no_iep


class TestCommands:
    def test_datasets(self, capsys):
        assert main(["datasets"]) == 0
        out = capsys.readouterr().out
        assert "wiki-vote" in out and "twitter" in out

    def test_patterns(self, capsys):
        assert main(["patterns"]) == 0
        out = capsys.readouterr().out
        assert "house" in out and "P6" in out

    def test_count_small(self, capsys):
        rc = main(["count", "--pattern", "triangle", "--dataset", "wiki-vote",
                   "--scale", "0.05", "--seed", "3"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "count:" in out and "config:" in out

    def test_count_matches_api(self, capsys):
        main(["count", "--pattern", "triangle", "--dataset", "wiki-vote",
              "--scale", "0.05", "--seed", "3"])
        out = capsys.readouterr().out
        shown = int(out.split("count:")[1].split()[0])

        from repro import PatternMatcher, get_pattern, load_dataset

        graph = load_dataset("wiki-vote", scale=0.05, seed=3)
        assert shown == PatternMatcher(get_pattern("triangle")).count(graph)

    def test_plan(self, capsys):
        rc = main(["plan", "--pattern", "rectangle", "--dataset", "wiki-vote",
                   "--scale", "0.05", "--show-code"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "restriction sets" in out
        assert "generated_count" in out

    def test_motifs(self, capsys):
        rc = main(["motifs", "--k", "3", "--dataset", "wiki-vote",
                   "--scale", "0.05"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "motif3.0" in out and "motif3.1" in out

    def test_edge_list_input(self, tmp_path, capsys):
        f = tmp_path / "g.txt"
        f.write_text("0 1\n1 2\n0 2\n2 3\n")
        rc = main(["count", "--pattern", "triangle", "--edge-list", str(f)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "count:   1" in out


class TestNewFlags:
    def test_count_induced(self, capsys):
        rc = main(["count", "--pattern", "triangle", "--dataset", "wiki-vote",
                   "--scale", "0.05", "--seed", "3", "--induced"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "vertex-induced" in out and "count:" in out

    def test_count_induced_matches_api(self, capsys):
        from repro.core.induced import induced_count
        from repro.graph.datasets import load_dataset
        from repro.pattern.catalog import triangle

        main(["count", "--pattern", "triangle", "--dataset", "wiki-vote",
              "--scale", "0.05", "--seed", "3", "--induced"])
        out = capsys.readouterr().out
        shown = int(out.split("count:")[1].split()[0])
        g = load_dataset("wiki-vote", scale=0.05, seed=3)
        assert shown == induced_count(g, triangle(), method="engine")

    def test_count_approx(self, capsys):
        rc = main(["count", "--pattern", "triangle", "--dataset", "wiki-vote",
                   "--scale", "0.05", "--seed", "3", "--approx", "500"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "estimate:" in out and "hits" in out

    def test_motifs_induced(self, capsys):
        rc = main(["motifs", "--k", "3", "--dataset", "wiki-vote",
                   "--scale", "0.05", "--seed", "3", "--induced"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "vertex-induced" in out


class TestModeFlags:
    ARGS = ["--dataset", "wiki-vote", "--scale", "0.05", "--seed", "3"]

    def test_semantics_induced_spelling(self, capsys):
        rc = main(["count", "--pattern", "triangle", "--semantics", "induced",
                   *self.ARGS])
        assert rc == 0
        out = capsys.readouterr().out
        assert "vertex-induced" in out and "count:" in out

    def test_mode_labeled_matches_api(self, capsys):
        rc = main(["count", "--pattern", "triangle", "--mode", "labeled",
                   "--labels", "2", *self.ARGS])
        assert rc == 0
        out = capsys.readouterr().out
        shown = int(out.split("count:")[1].split()[0])

        from repro.core.labeled import labeled_count
        from repro.graph.datasets import load_dataset
        from repro.graph.labeled import assign_random_labels
        from repro.pattern.catalog import triangle
        from repro.pattern.labeled import LabeledPattern

        g = load_dataset("wiki-vote", scale=0.05, seed=3)
        lg = assign_random_labels(g, 2, seed=3)
        lp = LabeledPattern(triangle(), (0, 1, 0))
        assert shown == labeled_count(lg, lp)

    def test_mode_directed_matches_api(self, capsys):
        rc = main(["count", "--pattern", "ffl", "--mode", "directed", *self.ARGS])
        assert rc == 0
        out = capsys.readouterr().out
        shown = int(out.split("count:")[1].split()[0])

        from repro.core.directed import count_directed
        from repro.graph.datasets import load_dataset
        from repro.graph.digraph import digraph_from_edges
        from repro.pattern.directed import feedforward_loop

        g = load_dataset("wiki-vote", scale=0.05, seed=3)
        dig = digraph_from_edges(list(g.edges()), n_vertices=g.n_vertices)
        assert shown == count_directed(dig, feedforward_loop())

    def test_mode_directed_parametric_pattern(self, capsys):
        rc = main(["count", "--pattern", "dcycle-3", "--mode", "directed",
                   *self.ARGS])
        assert rc == 0
        assert "count:" in capsys.readouterr().out

    def test_directed_rejects_undirected_pattern_name(self, capsys):
        rc = main(["count", "--pattern", "house", "--mode", "directed",
                   *self.ARGS])
        assert rc == 2
        assert "unknown directed pattern" in capsys.readouterr().err

    def test_directed_batch_matches_api(self, capsys):
        rc = main(["count", "--pattern", "ffl,transitive-triangle,dcycle-3",
                   "--mode", "directed", *self.ARGS])
        assert rc == 0
        out = capsys.readouterr().out
        assert "batch:" in out and "backend=reduction" in out

        from repro.core.directed import count_directed
        from repro.graph.datasets import load_dataset
        from repro.graph.digraph import digraph_from_edges
        from repro.pattern.directed import get_directed_pattern

        g = load_dataset("wiki-vote", scale=0.05, seed=3)
        dig = digraph_from_edges(list(g.edges()), n_vertices=g.n_vertices)
        for name in ("ffl", "transitive-triangle", "dcycle-3"):
            line = next(ln for ln in out.splitlines() if name + " " in ln)
            shown = int(line.split("count=")[1].split()[0])
            assert shown == count_directed(dig, get_directed_pattern(name))

    def test_directed_batch_rejects_bad_member(self, capsys):
        rc = main(["count", "--pattern", "ffl,house", "--mode", "directed",
                   *self.ARGS])
        assert rc == 2
        assert "unknown directed pattern" in capsys.readouterr().err

    def test_labeled_rejects_nonpositive_labels(self, capsys):
        rc = main(["count", "--pattern", "triangle", "--mode", "labeled",
                   "--labels", "0", *self.ARGS])
        assert rc == 2
        assert "--labels" in capsys.readouterr().err

    def test_induced_semantics_rejected_for_directed(self, capsys):
        rc = main(["count", "--pattern", "ffl", "--mode", "directed",
                   "--semantics", "induced", *self.ARGS])
        assert rc == 2

    def test_approx_rejects_induced_semantics(self, capsys):
        rc = main(["count", "--pattern", "triangle", "--semantics", "induced",
                   "--approx", "50", *self.ARGS])
        assert rc == 2

    def test_motifs_reports_plan_cache(self, capsys):
        rc = main(["motifs", "--k", "3", *self.ARGS])
        assert rc == 0
        assert "plan cache:" in capsys.readouterr().out


class TestBackendFlags:
    def test_backends_command(self, capsys):
        assert main(["backends"]) == 0
        out = capsys.readouterr().out
        for name in ("interpreter", "preslice", "compiled", "parallel",
                     "vectorised", "distributed"):
            assert name in out
        # the full capability rows, including kernel consumption
        for column in ("modes", "iep", "enumerates", "kernels"):
            assert column in out

    def test_count_distributed_prints_scaling_table(self, capsys):
        rc = main(["count", "--pattern", "triangle", "--dataset", "wiki-vote",
                   "--scale", "0.05", "--seed", "3", "--backend", "distributed",
                   "--nodes", "1,2,4", "--tasks", "16"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "backend: distributed" in out
        assert "simulated scaling" in out
        assert "speedup" in out
        assert "16 tasks" in out

    def test_count_distributed_rejects_bad_nodes(self, capsys):
        rc = main(["count", "--pattern", "triangle", "--dataset", "wiki-vote",
                   "--scale", "0.05", "--backend", "distributed",
                   "--nodes", "zero"])
        assert rc == 2
        assert "error:" in capsys.readouterr().err

    def test_count_distributed_rejects_bad_tasks(self, capsys):
        rc = main(["count", "--pattern", "triangle", "--dataset", "wiki-vote",
                   "--scale", "0.05", "--backend", "distributed",
                   "--tasks", "0"])
        assert rc == 2
        assert "n_tasks" in capsys.readouterr().err

    def test_distributed_flags_require_distributed_backend(self, capsys):
        rc = main(["count", "--pattern", "triangle", "--dataset", "wiki-vote",
                   "--scale", "0.05", "--backend", "vectorised",
                   "--nodes", "1,4"])
        assert rc == 2
        assert "--backend distributed" in capsys.readouterr().err

    def test_motifs_distributed_counts_without_scaling_report(self, capsys):
        rc = main(["motifs", "--k", "3", "--dataset", "wiki-vote",
                   "--scale", "0.05", "--backend", "distributed"])
        assert rc == 0
        assert "motif" in capsys.readouterr().out
        # --nodes configures a report the census never prints: reject it
        rc = main(["motifs", "--k", "3", "--dataset", "wiki-vote",
                   "--scale", "0.05", "--backend", "distributed",
                   "--nodes", "1,4"])
        assert rc == 2
        assert "count --backend distributed" in capsys.readouterr().err

    def test_backends_profile_renders_bucket_table(self, capsys, tmp_path):
        from repro.core.autotune import (
            CalibrationWorkload, run_calibration,
        )
        from repro.core.query import MatchQuery
        from repro.graph.generators import erdos_renyi
        from repro.pattern.catalog import get_pattern

        graph = erdos_renyi(120, 0.06, seed=5)
        profile, _ = run_calibration(
            [CalibrationWorkload("t", graph, MatchQuery(get_pattern("triangle")))],
            repeats=1,
        )
        path = profile.save(tmp_path / "cal.json")
        assert main(["backends", "--profile", str(path)]) == 0
        out = capsys.readouterr().out
        assert "calibrated buckets" in out
        assert "plain 3v3e" in out

    def test_backends_profile_unusable_is_an_error(self, capsys, tmp_path):
        import pytest

        from repro.core.autotune import ProfileWarning

        bad = tmp_path / "bad.json"
        bad.write_text("{broken")
        with pytest.warns(ProfileWarning):
            rc = main(["backends", "--profile", str(bad)])
        assert rc == 1
        assert "not usable" in capsys.readouterr().err

    def test_count_auto_backend_prints_report(self, capsys):
        rc = main(["count", "--pattern", "triangle", "--dataset", "wiki-vote",
                   "--scale", "0.05", "--seed", "3", "--backend", "auto"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "backend: auto:" in out
        assert "autotune: auto ->" in out

    def test_workers_require_parallel_backend(self, capsys):
        rc = main(["count", "--pattern", "triangle", "--dataset", "wiki-vote",
                   "--scale", "0.05", "--backend", "compiled",
                   "--workers", "4"])
        assert rc == 2
        assert "--backend parallel" in capsys.readouterr().err

    def test_approx_refuses_explicit_backend(self, capsys):
        for backend_args in (["--backend", "distributed", "--nodes", "1,4"],
                             ["--backend", "vectorised"]):
            rc = main(["count", "--pattern", "triangle", "--dataset",
                       "wiki-vote", "--scale", "0.05", "--approx", "50",
                       *backend_args])
            assert rc == 2
            assert "sampling estimator" in capsys.readouterr().err

    def test_count_backend_flag_matches_default(self, capsys):
        args = ["count", "--pattern", "triangle", "--dataset", "wiki-vote",
                "--scale", "0.05", "--seed", "3"]
        main(args)
        base = int(capsys.readouterr().out.split("count:")[1].split()[0])
        for backend in ("interpreter", "preslice", "compiled"):
            main(args + ["--backend", backend])
            out = capsys.readouterr().out
            assert f"backend: {backend}" in out
            assert int(out.split("count:")[1].split()[0]) == base

    def test_count_parallel_backend_with_workers(self, capsys):
        args = ["count", "--pattern", "triangle", "--dataset", "wiki-vote",
                "--scale", "0.05", "--seed", "3"]
        main(args)
        base = int(capsys.readouterr().out.split("count:")[1].split()[0])
        main(args + ["--backend", "parallel", "--workers", "2"])
        out = capsys.readouterr().out
        assert int(out.split("count:")[1].split()[0]) == base

    def test_backend_rejects_unknown(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["count", "--backend", "warp-drive"])


class TestStreamCommand:
    @staticmethod
    def _churn_file(tmp_path, lines):
        f = tmp_path / "churn.txt"
        f.write_text("\n".join(lines) + "\n")
        return str(f)

    @staticmethod
    def _free_edges(scale=0.05, seed=3, k=6):
        from repro import load_dataset

        g = load_dataset("wiki-vote", scale=scale, seed=seed)
        free = []
        for u in range(g.n_vertices):
            for v in range(u + 1, g.n_vertices):
                if not g.has_edge(u, v):
                    free.append((u, v))
                    if len(free) == k:
                        return free
        return free

    def test_stream_replay_verifies(self, tmp_path, capsys):
        free = self._free_edges()
        lines = [f"+ {u} {v}" for u, v in free[:4]]
        lines += [f"- {u} {v}" for u, v in free[:2]]
        churn = self._churn_file(tmp_path, ["# churn"] + lines)
        rc = main(["stream", "--file", churn, "--pattern", "triangle,house",
                   "--dataset", "wiki-vote", "--scale", "0.05", "--seed", "3",
                   "--batch", "3"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "incremental maintenance replay" in out
        assert "triangle" in out and "house" in out
        assert "verify:  all 2 maintained counts" in out

    def test_stream_counts_match_count_command(self, tmp_path, capsys):
        (u, v), *_ = self._free_edges(k=1)
        churn = self._churn_file(tmp_path, [f"+ {u} {v}", f"- {u} {v}"])
        rc = main(["stream", "--file", churn, "--pattern", "triangle",
                   "--dataset", "wiki-vote", "--scale", "0.05", "--seed", "3"])
        assert rc == 0
        out = capsys.readouterr().out
        # the built-in verification already asserts maintained == recount;
        # here we pin the initial count against the count command (the
        # insert-then-delete churn is net zero).
        initial = int(out.split("initial count")[1].split()[0])
        assert "verify:" in out

        main(["count", "--pattern", "triangle", "--dataset", "wiki-vote",
              "--scale", "0.05", "--seed", "3"])
        shown = int(capsys.readouterr().out.split("count:")[1].split()[0])
        assert initial == shown

    def test_stream_rejects_invalid_update(self, tmp_path, capsys):
        churn = self._churn_file(tmp_path, ["- 0 0"])
        rc = main(["stream", "--file", churn, "--dataset", "wiki-vote",
                   "--scale", "0.05"])
        assert rc == 2
        assert "error:" in capsys.readouterr().err

    def test_stream_rejects_malformed_file(self, tmp_path, capsys):
        churn = self._churn_file(tmp_path, ["+ 1"])
        rc = main(["stream", "--file", churn, "--dataset", "wiki-vote",
                   "--scale", "0.05"])
        assert rc == 2
        assert "expected 'OP U V'" in capsys.readouterr().err

    def test_stream_rejects_unknown_pattern(self, tmp_path, capsys):
        churn = self._churn_file(tmp_path, ["+ 0 1"])
        rc = main(["stream", "--file", churn, "--pattern", "warp-drive",
                   "--dataset", "wiki-vote", "--scale", "0.05"])
        assert rc == 2
        assert "error:" in capsys.readouterr().err

    def test_stream_rejects_bad_batch(self, tmp_path, capsys):
        churn = self._churn_file(tmp_path, ["+ 0 1"])
        rc = main(["stream", "--file", churn, "--dataset", "wiki-vote",
                   "--scale", "0.05", "--batch", "0"])
        assert rc == 2
        assert "--batch" in capsys.readouterr().err


class TestServeCommand:
    def test_serve_synthetic_verifies(self, capsys):
        rc = main(["serve", "--synthetic", "20", "--pattern", "triangle,house",
                   "--dataset", "wiki-vote", "--scale", "0.05", "--seed", "3",
                   "--workers", "2"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "serving replay summary" in out
        assert "memo:" in out and "hit ratio" in out
        assert "verify:  all" in out

    def test_serve_trace_file_with_churn_and_watch(self, tmp_path, capsys):
        free = TestStreamCommand._free_edges(k=2)
        lines = ["# mixed workload", "count triangle", "count triangle"]
        lines += [f"churn + {u} {v}" for u, v in free]
        lines += ["count triangle", "enumerate triangle 5 prio=2"]
        trace = tmp_path / "ops.trace"
        trace.write_text("\n".join(lines) + "\n")
        rc = main(["serve", "--trace", str(trace), "--watch", "triangle",
                   "--dataset", "wiki-vote", "--scale", "0.05", "--seed", "3"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "maintained count" in out
        assert "2 churn" in out
        assert "verify:  all" in out

    def test_serve_memo_hits_on_repeat_queries(self, capsys):
        # a quiescent trace repeating one query: everything after the
        # first execution is a memo hit or a single-flight collapse
        rc = main(["serve", "--synthetic", "12", "--pattern", "triangle",
                   "--dataset", "wiki-vote", "--scale", "0.05", "--seed", "3",
                   "--workers", "1"])
        assert rc == 0
        out = capsys.readouterr().out
        memo_line = out.split("memo:")[1].splitlines()[0]
        hits = int(memo_line.split(" hits")[0].strip())
        collapsed = int(memo_line.split("collapsed")[0].split("/")[-1].strip())
        misses = int(memo_line.split("misses")[0].split("/")[-1].strip())
        counts = sum(1 for ln in out.splitlines() if "count" in ln)
        assert counts  # the trace exercised count jobs at all
        assert misses >= 1 and hits + collapsed >= 1

    def test_serve_requires_exactly_one_source(self, tmp_path, capsys):
        rc = main(["serve", "--dataset", "wiki-vote", "--scale", "0.05"])
        assert rc == 2
        assert "exactly one of" in capsys.readouterr().err
        trace = tmp_path / "t.trace"
        trace.write_text("count triangle\n")
        rc = main(["serve", "--trace", str(trace), "--synthetic", "5",
                   "--dataset", "wiki-vote", "--scale", "0.05"])
        assert rc == 2

    def test_serve_rejects_malformed_trace(self, tmp_path, capsys):
        trace = tmp_path / "bad.trace"
        trace.write_text("count triangle\nfrobnicate x\n")
        rc = main(["serve", "--trace", str(trace),
                   "--dataset", "wiki-vote", "--scale", "0.05"])
        assert rc == 2
        assert "bad.trace:2" in capsys.readouterr().err

    def test_serve_rejects_unknown_pattern(self, capsys):
        rc = main(["serve", "--synthetic", "5", "--pattern", "warp-drive",
                   "--dataset", "wiki-vote", "--scale", "0.05"])
        assert rc == 2
        assert "error:" in capsys.readouterr().err

    def test_serve_rejects_bad_worker_count(self, capsys):
        rc = main(["serve", "--synthetic", "5", "--workers", "0",
                   "--dataset", "wiki-vote", "--scale", "0.05"])
        assert rc == 2
        assert "--workers" in capsys.readouterr().err


class TestObservabilityFlags:
    COUNT = ["count", "--pattern", "house", "--dataset", "wiki-vote",
             "--scale", "0.05", "--seed", "3", "--backend", "vectorised"]

    def test_explain_prints_the_span_tree(self, capsys):
        from repro.obs import trace as obs_trace

        assert main(self.COUNT + ["--explain"]) == 0
        out = capsys.readouterr().out
        assert "where the time went:" in out
        assert "match [" in out and "execute [" in out and "depth [" in out
        assert "total" in out and "self" in out
        # the flag is scoped to the command: tracing is off again
        assert not obs_trace.enabled()

    def test_explain_count_matches_untraced_count(self, capsys):
        assert main(list(self.COUNT)) == 0
        plain = capsys.readouterr().out
        assert main(self.COUNT + ["--explain"]) == 0
        traced = capsys.readouterr().out
        shown = lambda out: int(out.split("count:")[1].split()[0])  # noqa: E731
        assert shown(plain) == shown(traced)

    def test_trace_out_writes_valid_chrome_json(self, tmp_path, capsys):
        import json

        path = tmp_path / "count.trace.json"
        assert main(self.COUNT + ["--trace-out", str(path)]) == 0
        out = capsys.readouterr().out
        assert "wrote Chrome trace_event JSON" in out
        payload = json.loads(path.read_text())
        assert payload["displayTimeUnit"] == "ms"
        events = payload["traceEvents"]
        names = {e["name"] for e in events}
        assert {"match", "plan", "execute", "depth"} <= names
        assert all(e["ph"] == "X" and e["dur"] >= 0 for e in events)

    def test_explain_rejected_with_approx(self, capsys):
        rc = main(["count", "--pattern", "triangle", "--dataset", "wiki-vote",
                   "--scale", "0.05", "--approx", "100", "--explain"])
        assert rc == 2
        assert "not traced" in capsys.readouterr().err

    def test_trace_out_rejected_with_directed_batch(self, capsys, tmp_path):
        rc = main(["count", "--mode", "directed", "--pattern", "ffl,dcycle-3",
                   "--dataset", "wiki-vote", "--scale", "0.05",
                   "--trace-out", str(tmp_path / "t.json")])
        assert rc == 2
        assert "one count at a time" in capsys.readouterr().err

    def test_metrics_command_dumps_the_registry(self, capsys):
        assert main(["metrics"]) == 0
        out = capsys.readouterr().out
        assert "# HELP repro_plan_cache_hits_total" in out
        assert "# TYPE repro_service_job_seconds histogram" in out

    def test_metrics_exercise_shows_live_values(self, capsys):
        assert main(["metrics", "--exercise", "--seed", "3"]) == 0
        out = capsys.readouterr().out
        line = next(
            ln for ln in out.splitlines()
            if ln.startswith('repro_backend_counts_total{backend="vectorised"}')
        )
        assert float(line.split()[-1]) >= 2

    def test_backends_table_shows_traced_column(self, capsys):
        from repro.core.backend import available_backends

        assert main(["backends"]) == 0
        out = capsys.readouterr().out
        header = next(ln for ln in out.splitlines() if "traced" in ln)
        assert "kernels" in header
        for name, info in available_backends().items():
            row = next(ln for ln in out.splitlines() if ln.startswith(name))
            assert ("yes" if info.capabilities.traced else "no") in row
