"""Hypothesis property tests for the directed fast paths.

Two invariants pin the new directed machinery:

1. **Reduction correctness** — for any batch of random orientations of
   one shared skeleton, the XMiner-style shared-core evaluation
   (:func:`repro.core.reduction.reduce_directed_batch`) returns exactly
   the per-pattern :meth:`DirectedMatcher.count` values;
2. **Cross-backend equivalence** — interpreter, vectorised frontier and
   compiled kernels agree on random digraphs for every catalog
   orientation pattern.
"""

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core.directed import DirectedMatcher
from repro.core.query import MatchQuery
from repro.core.reduction import reduce_directed_batch
from repro.core.session import MatchSession
from repro.graph.digraph import digraph_from_edges
from repro.pattern.directed import (
    DiPattern,
    bi_fan,
    directed_cycle,
    directed_path,
    out_star,
    transitive_triangle,
)

SETTINGS = settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@st.composite
def random_digraphs(draw, min_vertices=4, max_vertices=14):
    n = draw(st.integers(min_value=min_vertices, max_value=max_vertices))
    possible = [(u, v) for u in range(n) for v in range(n) if u != v]
    arcs = draw(
        st.lists(st.sampled_from(possible), min_size=1, max_size=len(possible), unique=True)
    )
    return digraph_from_edges(arcs, n_vertices=n)


@st.composite
def orientation_batches(draw):
    """A connected skeleton plus 2-4 random orientations of it.

    Each skeleton edge becomes ``u->v``, ``v->u`` or both (antiparallel)
    independently per pattern, so every batch member shares the exact
    :func:`skeleton_key` while diverging in arc constraints.
    """
    n = draw(st.integers(min_value=3, max_value=4))
    # random spanning tree keeps every orientation weakly connected
    edges = {(draw(st.integers(min_value=0, max_value=v - 1)), v) for v in range(1, n)}
    extra = [(u, v) for u in range(n) for v in range(u + 1, n) if (u, v) not in edges]
    if extra:
        edges |= set(
            draw(st.lists(st.sampled_from(extra), max_size=len(extra), unique=True))
        )
    edges = sorted(edges)
    n_patterns = draw(st.integers(min_value=2, max_value=4))
    patterns = []
    for i in range(n_patterns):
        arcs = []
        for u, v in edges:
            kind = draw(st.sampled_from(["fwd", "rev", "both"]))
            if kind in ("fwd", "both"):
                arcs.append((u, v))
            if kind in ("rev", "both"):
                arcs.append((v, u))
        patterns.append(DiPattern(n, arcs, name=f"orient-{i}"))
    return patterns


CATALOG = [
    directed_cycle(3),
    transitive_triangle(),
    directed_path(3),
    out_star(3),
    bi_fan(),
]


@given(graph=random_digraphs(), patterns=orientation_batches())
@SETTINGS
def test_reduction_equals_per_pattern_counts(graph, patterns):
    counts, report = reduce_directed_batch(graph, patterns)
    assert report.n_patterns == len(patterns)
    for p, c in zip(patterns, counts):
        assert c == DirectedMatcher(p).count(graph), p.name


@given(graph=random_digraphs(), patterns=orientation_batches())
@SETTINGS
def test_count_many_equals_per_pattern_counts(graph, patterns):
    session = MatchSession(graph)
    results = session.count_many([MatchQuery(p) for p in patterns])
    for p, r in zip(patterns, results):
        assert r.count == DirectedMatcher(p).count(graph, backend="interpreter"), p.name


@given(graph=random_digraphs())
@SETTINGS
def test_directed_backends_agree(graph):
    for pattern in CATALOG:
        m = DirectedMatcher(pattern)
        reference = m.count(graph, backend="interpreter")
        for backend in ("vectorised", "compiled"):
            assert m.count(graph, backend=backend) == reference, (
                pattern.name,
                backend,
            )
