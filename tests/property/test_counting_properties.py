"""Hypothesis property tests on the core counting invariants.

These are the deep invariants the paper's correctness rests on:

1. every (schedule, restriction-set) configuration counts the same;
2. IEP counting equals plain counting;
3. generated code equals the interpreter;
4. counts are invariant under graph relabelling;
5. restriction-free counts are exactly |Aut| times the distinct count.
"""

import numpy as np
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.baselines.bruteforce import bruteforce_count
from repro.core.codegen import compile_plan_function
from repro.core.config import Configuration
from repro.core.engine import Engine
from repro.core.restrictions import generate_restriction_sets
from repro.core.schedule import generate_schedules, intersection_free_suffix_length
from repro.graph.builder import graph_from_edges
from repro.graph.generators import empty_graph
from repro.pattern.automorphism import automorphism_count
from repro.pattern.catalog import house, rectangle, triangle

SETTINGS = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@st.composite
def random_graphs(draw, max_vertices=18):
    n = draw(st.integers(min_value=4, max_value=max_vertices))
    possible = [(u, v) for u in range(n) for v in range(u + 1, n)]
    edges = draw(
        st.lists(st.sampled_from(possible), min_size=0, max_size=len(possible), unique=True)
    )
    if not edges:
        return empty_graph(n)
    g = graph_from_edges(edges)
    return g


PATTERNS = [triangle(), rectangle(), house()]


@given(graph=random_graphs())
@SETTINGS
def test_all_configurations_agree(graph):
    for pattern in PATTERNS[:2]:
        counts = set()
        rsets = generate_restriction_sets(pattern)[:3]
        for schedule in generate_schedules(pattern, dedup_automorphic=True)[:3]:
            for rs in rsets:
                plan = Configuration(pattern, schedule, rs).compile()
                counts.add(Engine(graph, plan).count())
        assert len(counts) == 1


@given(graph=random_graphs())
@SETTINGS
def test_iep_equals_plain(graph):
    pattern = house()
    rs = generate_restriction_sets(pattern)[0]
    schedule = generate_schedules(pattern)[0]
    cfg = Configuration(pattern, schedule, rs)
    plain = Engine(graph, cfg.compile()).count()
    k = intersection_free_suffix_length(pattern, schedule)
    if k > 0:
        from repro.core.restrictions import NonUniformOvercountError

        try:
            plan = cfg.compile(iep_k=k)
        except NonUniformOvercountError:
            return
        assert Engine(graph, plan).count() == plain


@given(graph=random_graphs(max_vertices=14))
@SETTINGS
def test_codegen_equals_engine(graph):
    for pattern in PATTERNS:
        rs = generate_restriction_sets(pattern)[0]
        schedule = generate_schedules(pattern)[0]
        plan = Configuration(pattern, schedule, rs).compile()
        assert compile_plan_function(plan)(graph) == Engine(graph, plan).count()


@given(graph=random_graphs(max_vertices=12), data=st.data())
@SETTINGS
def test_count_invariant_under_relabelling(graph, data):
    if graph.n_vertices < 3:
        return
    perm = data.draw(st.permutations(range(graph.n_vertices)))
    relabelled_edges = [(perm[u], perm[v]) for u, v in graph.edges()]
    relabelled = (
        graph_from_edges(relabelled_edges) if relabelled_edges else empty_graph(graph.n_vertices)
    )
    pattern = triangle()
    rs = generate_restriction_sets(pattern)[0]
    plan = Configuration(pattern, (0, 1, 2), rs).compile()
    assert Engine(graph, plan).count() == Engine(relabelled, plan).count()


@given(graph=random_graphs(max_vertices=12))
@SETTINGS
def test_no_restrictions_counts_aut_multiples(graph):
    for pattern in PATTERNS[:2]:
        schedule = generate_schedules(pattern)[0]
        plan = Configuration(pattern, schedule, frozenset()).compile()
        raw = Engine(graph, plan).count()
        distinct = bruteforce_count(graph, pattern)
        assert raw == distinct * automorphism_count(pattern)


@given(graph=random_graphs(max_vertices=14))
@SETTINGS
def test_engine_matches_bruteforce(graph):
    pattern = triangle()
    rs = generate_restriction_sets(pattern)[0]
    plan = Configuration(pattern, (0, 1, 2), rs).compile()
    assert Engine(graph, plan).count() == bruteforce_count(graph, pattern)
