"""Hypothesis property tests for streaming delta maintenance.

The acceptance invariant of the streaming subsystem: after *any*
sequence of edge insertions and deletions, applied in *any* batching,
every watched count equals a fresh full recount on the corresponding
snapshot.  Random churn (interleaved inserts/deletes over generated
er/powerlaw graphs, catalog patterns, both executor strategies) drives
it here; the rejection paths (duplicate insert, self-loop, missing
delete) are property-checked for atomicity — a rejected batch never
perturbs the graph or any maintained count.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.graph.dynamic import DynamicGraph
from repro.graph.generators import erdos_renyi, random_power_law
from repro.pattern.catalog import clique, house, path, rectangle, star, triangle
from repro.streaming import StreamSession, random_churn

SETTINGS = settings(
    max_examples=12,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

#: catalog patterns under maintenance in every churn run.
WATCHED = {
    "triangle": triangle,
    "rectangle": rectangle,
    "house": house,
    "clique-4": lambda: clique(4),
    "path-4": lambda: path(4),
    "star-3": lambda: star(3),
}

GENERATORS = {
    "er": lambda n, seed: erdos_renyi(n, 0.22, seed=seed),
    "powerlaw": lambda n, seed: random_power_law(
        n, avg_degree=4.0, exponent=2.3, seed=seed
    ),
}


def churn_batches(dyn: DynamicGraph, seed: int, n_updates: int, batching: int):
    """The shared churn generator, sliced into apply()-sized batches."""
    updates = random_churn(dyn, n_updates, seed=seed)
    for i in range(0, len(updates), batching):
        yield updates[i : i + batching]


@given(
    gname=st.sampled_from(sorted(GENERATORS)),
    seed=st.integers(0, 10_000),
    n=st.integers(16, 32),
    n_updates=st.integers(1, 40),
    batching=st.integers(1, 12),
)
@SETTINGS
def test_counts_equal_recount_after_every_batch(gname, seed, n, n_updates, batching):
    base = GENERATORS[gname](n, seed)
    stream = StreamSession(DynamicGraph.from_graph(base), bulk_threshold=6)
    for builder in WATCHED.values():
        stream.watch(builder())
    for batch in churn_batches(stream.graph, seed ^ 0x5EED, n_updates, batching):
        stream.apply(batch)
        assert stream.counts() == stream.expected_counts()


@given(
    seed=st.integers(0, 10_000),
    strategy=st.sampled_from(["single", "bulk"]),
)
@SETTINGS
def test_strategies_agree_on_identical_churn(seed, strategy):
    """Both executor strategies replay the same churn to the same counts."""
    base = erdos_renyi(24, 0.2, seed=seed)
    final = {}
    for strat in ("single", strategy):
        stream = StreamSession(DynamicGraph.from_graph(base))
        stream.watch(house())
        stream.watch(clique(4))
        for batch in churn_batches(stream.graph, seed + 1, 20, 5):
            stream.apply(batch, strategy=strat)
        final[strat] = stream.counts()
    assert final["single"] == final[strategy]


@given(
    seed=st.integers(0, 10_000),
    n_updates=st.integers(2, 30),
)
@SETTINGS
def test_churn_then_inverse_churn_restores_counts(seed, n_updates):
    """Applying a churn sequence and then its reverse is the identity."""
    base = erdos_renyi(20, 0.25, seed=seed)
    stream = StreamSession(DynamicGraph.from_graph(base))
    handles = [stream.watch(b()) for b in (triangle, house)]
    before = stream.counts()
    forward = [
        up
        for batch in churn_batches(stream.graph, seed, n_updates, n_updates)
        for up in batch
    ]
    stream.apply(forward)
    inverse = [
        ("-" if up.is_insert else "+", up.u, up.v) for up in reversed(forward)
    ]
    stream.apply(inverse)
    assert stream.counts() == before
    assert stream.counts() == stream.expected_counts()


@given(
    seed=st.integers(0, 10_000),
    bad=st.sampled_from(["self-loop", "duplicate", "missing", "negative"]),
    prefix=st.integers(0, 5),
)
@SETTINGS
def test_rejected_batches_are_atomic(seed, bad, prefix):
    """A batch with one bad update (even after a valid prefix) changes nothing."""
    base = erdos_renyi(18, 0.25, seed=seed)
    stream = StreamSession(DynamicGraph.from_graph(base))
    stream.watch(triangle())
    batch = [
        up
        for chunk in churn_batches(stream.graph, seed + 7, prefix, max(prefix, 1))
        for up in chunk
    ]
    present = {tuple(sorted(e)) for e in stream.graph.edges()}
    for up in batch:
        (present.add if up.is_insert else present.discard)(
            tuple(sorted((up.u, up.v)))
        )
    if bad == "self-loop":
        batch.append(("+", 3, 3))
        exc = ValueError
    elif bad == "duplicate":
        edge = sorted(present)[0] if present else (0, 1)
        if not present:
            batch.append(("+", 0, 1))
        batch.append(("+", *edge))
        exc = KeyError
    elif bad == "missing":
        absent = next(
            (a, b)
            for a in range(18)
            for b in range(a + 1, 18)
            if (a, b) not in present
        )
        batch.append(("-", *absent))
        exc = KeyError
    else:
        batch.append(("+", -2, 4))
        exc = ValueError
    version = stream.graph.version
    counts = stream.counts()
    edges = sorted(stream.graph.edges())
    with pytest.raises(exc):
        stream.apply(batch)
    assert stream.graph.version == version
    assert sorted(stream.graph.edges()) == edges
    assert stream.counts() == counts
