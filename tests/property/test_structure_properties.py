"""Hypothesis properties of the substrate data structures."""

import numpy as np
from hypothesis import HealthCheck, given, settings, strategies as st
from hypothesis.extra import numpy as hnp

from repro.core.iep import count_distinct_tuples, count_distinct_tuples_pairs
from repro.core.restrictions import generate_restriction_sets, validate_restriction_set
from repro.graph.builder import graph_from_edges
from repro.graph.intersection import (
    VERTEX_DTYPE,
    bounded_slice,
    intersect,
    intersect_galloping,
    intersect_merge,
)
from repro.pattern.automorphism import automorphisms, verify_group
from repro.pattern.pattern import Pattern
from repro.pattern.permutation import cycle_decomposition, two_cycles

SETTINGS = settings(max_examples=60, deadline=None,
                    suppress_health_check=[HealthCheck.too_slow])

sorted_arrays = st.lists(
    st.integers(min_value=0, max_value=120), min_size=0, max_size=40
).map(lambda xs: np.array(sorted(set(xs)), dtype=VERTEX_DTYPE))


@given(a=sorted_arrays, b=sorted_arrays)
@SETTINGS
def test_intersection_kernels_agree(a, b):
    expected = intersect_merge(a, b).tolist()
    assert intersect(a, b).tolist() == expected
    assert intersect_galloping(a, b).tolist() == expected


@given(a=sorted_arrays, b=sorted_arrays)
@SETTINGS
def test_intersection_commutative(a, b):
    assert intersect(a, b).tolist() == intersect(b, a).tolist()


@given(a=sorted_arrays)
@SETTINGS
def test_intersection_idempotent(a):
    assert intersect(a, a).tolist() == a.tolist()


@given(
    a=sorted_arrays,
    lo=st.one_of(st.none(), st.integers(-5, 130)),
    hi=st.one_of(st.none(), st.integers(-5, 130)),
)
@SETTINGS
def test_bounded_slice_matches_filter(a, lo, hi):
    got = bounded_slice(a, lo, hi).tolist()
    expected = [
        int(x) for x in a if (lo is None or x > lo) and (hi is None or x < hi)
    ]
    assert got == expected


@given(sets=st.lists(sorted_arrays, min_size=1, max_size=3))
@SETTINGS
def test_iep_formulations_agree(sets):
    assert count_distinct_tuples(sets) == count_distinct_tuples_pairs(sets)


@st.composite
def random_patterns(draw, max_vertices=5):
    n = draw(st.integers(min_value=2, max_value=max_vertices))
    possible = [(u, v) for u in range(n) for v in range(u + 1, n)]
    edges = draw(st.lists(st.sampled_from(possible), min_size=1, unique=True))
    return Pattern(n, edges)


@given(pattern=random_patterns())
@SETTINGS
def test_automorphisms_form_group(pattern):
    assert verify_group(automorphisms(pattern))


@given(pattern=random_patterns())
@SETTINGS
def test_generated_restriction_sets_always_validate(pattern):
    for rs in generate_restriction_sets(pattern, max_sets=10):
        assert validate_restriction_set(pattern, rs)


@given(pattern=random_patterns(max_vertices=5))
@SETTINGS
def test_two_cycles_are_involutive_pairs(pattern):
    for perm in automorphisms(pattern):
        for a, b in two_cycles(perm):
            assert perm[a] == b and perm[b] == a and a < b


@given(perm=st.permutations(range(6)))
@SETTINGS
def test_cycle_decomposition_partitions(perm):
    cycles = cycle_decomposition(tuple(perm))
    flat = sorted(x for c in cycles for x in c)
    assert flat == list(range(6))
    # Applying the permutation along each cycle is consistent.
    for cycle in cycles:
        for i, x in enumerate(cycle):
            assert perm[x] == cycle[(i + 1) % len(cycle)]


@given(
    edges=st.lists(
        st.tuples(st.integers(0, 15), st.integers(0, 15)),
        min_size=0,
        max_size=60,
    )
)
@SETTINGS
def test_builder_invariants(edges):
    g = graph_from_edges(edges)
    # No self loops, no duplicates, strictly sorted rows.
    for v in range(g.n_vertices):
        row = g.neighbors(v)
        assert np.all(np.diff(row) > 0)
        assert v not in set(row.tolist())
    # Symmetry.
    for u, v in g.edges():
        assert g.has_edge(v, u)
