"""Property tests for trace structure under concurrency.

The invariant the tracing substrate promises: every collected trace is
a *well-nested* tree — a child's interval lies inside its parent's, and
same-thread siblings never overlap — no matter how many service worker
threads or parallel-backend pools are tracing at once, because span
stacks are thread-local and a job's tree is built wholly on its worker
thread.

One deliberate exception: intervals attached with
:func:`repro.obs.trace.record_span` (``serve.queue_wait``) describe
time *before* their parent span opened — they are annotations of the
past, exempt from the containment check by construction.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro import MatchQuery, MatchSession, get_backend, obs
from repro.graph.generators import erdos_renyi
from repro.pattern.catalog import get_pattern
from repro.serving import MatchService

SETTINGS = settings(
    max_examples=10,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

PATTERNS = ("triangle", "rectangle", "house")

#: intervals recorded after the fact (record_span) — exempt from the
#: child-inside-parent check, see the module docstring.
RECORDED = {"serve.queue_wait"}

_GRAPH = None


def property_graph():
    global _GRAPH
    if _GRAPH is None:
        _GRAPH = erdos_renyi(40, 0.25, seed=101)
    return _GRAPH


def assert_well_nested(trace) -> None:
    assert trace.root is not None
    for sp in trace.spans():
        assert sp.t1 >= sp.t0, f"span {sp.name!r} closed before it opened"
        nested = [c for c in sp.children if c.name not in RECORDED]
        for child in sp.children:
            assert child.t1 <= sp.t1, (
                f"child {child.name!r} outlives parent {sp.name!r}"
            )
        for child in nested:
            assert child.t0 >= sp.t0, (
                f"child {child.name!r} started before parent {sp.name!r}"
            )
        # same-thread siblings attach in completion order and, under
        # stack discipline, never overlap
        by_tid: dict[int, list] = {}
        for child in nested:
            by_tid.setdefault(child.tid, []).append(child)
        for siblings in by_tid.values():
            for a, b in zip(siblings, siblings[1:]):
                assert a.t1 <= b.t0, (
                    f"siblings {a.name!r} and {b.name!r} overlap"
                )


@pytest.fixture(autouse=True)
def _tracing():
    obs.enable()
    yield
    obs.disable()


class TestConcurrentServiceTraces:
    @given(
        jobs=st.lists(
            st.tuples(
                st.sampled_from(PATTERNS),
                st.integers(min_value=0, max_value=5),  # priority
            ),
            min_size=2,
            max_size=6,
        ),
        n_workers=st.integers(min_value=1, max_value=3),
    )
    @SETTINGS
    def test_every_job_trace_is_well_nested(self, jobs, n_workers):
        service = MatchService(
            n_workers=n_workers, queue_limit=32, memoise=False
        )
        service.add_graph("default", property_graph())
        try:
            handles = [
                service.count(get_pattern(pname), priority=priority)
                for pname, priority in jobs
            ]
            for handle in handles:
                handle.result(timeout=60)
        finally:
            service.close()
        for handle in handles:
            trace = handle.trace
            assert trace is not None and trace.root.name == "serve.job"
            assert_well_nested(trace)
            # a job runs wholly inside one worker thread: its tree is
            # single-threaded even when n_workers traces run at once
            assert {sp.tid for sp in trace.spans()} == {trace.root.tid}
            assert trace.find("match"), "the session subtree must nest inside"


class TestParallelBackendTraces:
    @given(
        pname=st.sampled_from(PATTERNS),
        n_workers=st.integers(min_value=1, max_value=2),
    )
    @settings(max_examples=4, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_parallel_pool_trace_is_well_nested(self, pname, n_workers):
        session = MatchSession(property_graph())
        result = session.count(
            MatchQuery(get_pattern(pname)),
            backend=get_backend("parallel", n_workers=n_workers),
        )
        trace = result.trace
        assert trace is not None
        assert_well_nested(trace)
        [pool] = trace.find("pool")
        assert pool.attrs["workers"] == n_workers
        assert pool.attrs["tasks"] >= 1
