"""Property tests for the directed / induced / dynamic extensions.

Same methodology as the core property suite: hypothesis generates small
random structures, and independent implementations must agree exactly.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.bruteforce import (
    bruteforce_count,
    bruteforce_directed_count,
    bruteforce_induced_count,
)
from repro.core.directed import count_directed
from repro.core.induced import induced_count, supergraph_decomposition
from repro.graph.digraph import digraph_from_edges
from repro.graph.generators import erdos_renyi
from repro.pattern.automorphism import automorphism_count
from repro.pattern.directed import DiPattern, directed_automorphisms
from repro.pattern.pattern import Pattern


# ---------------------------------------------------------------------------
# strategies
# ---------------------------------------------------------------------------
@st.composite
def random_dipatterns(draw, min_vertices=2, max_vertices=4):
    """Weakly-connected random directed patterns."""
    n = draw(st.integers(min_vertices, max_vertices))
    pairs = [(u, v) for u in range(n) for v in range(n) if u != v]
    chosen = draw(
        st.lists(st.sampled_from(pairs), min_size=n - 1, max_size=len(pairs), unique=True)
    )
    p = DiPattern(n, chosen)
    if not p.is_connected():
        # make it connected with a directed path over all vertices
        arcs = set(chosen) | {(i, i + 1) for i in range(n - 1)}
        p = DiPattern(n, sorted(arcs))
    return p


@st.composite
def random_digraphs(draw, max_vertices=14):
    n = draw(st.integers(4, max_vertices))
    p = draw(st.floats(0.1, 0.4))
    seed = draw(st.integers(0, 10_000))
    import numpy as np

    rng = np.random.default_rng(seed)
    mask = rng.random((n, n)) < p
    np.fill_diagonal(mask, False)
    src, dst = np.nonzero(mask)
    if len(src) == 0:
        return digraph_from_edges([(0, 1)], n_vertices=n)
    return digraph_from_edges(zip(src.tolist(), dst.tolist()), n_vertices=n)


@st.composite
def random_connected_patterns(draw, min_vertices=3, max_vertices=4):
    n = draw(st.integers(min_vertices, max_vertices))
    pairs = [(u, v) for u in range(n) for v in range(u + 1, n)]
    chosen = draw(
        st.lists(st.sampled_from(pairs), min_size=n - 1, max_size=len(pairs), unique=True)
    )
    p = Pattern(n, chosen)
    if not p.is_connected():
        edges = set(chosen) | {(i, i + 1) for i in range(n - 1)}
        p = Pattern(n, sorted(edges))
    return p


# ---------------------------------------------------------------------------
# directed
# ---------------------------------------------------------------------------
@settings(max_examples=25, deadline=None)
@given(pattern=random_dipatterns(), graph=random_digraphs())
def test_directed_count_matches_bruteforce(pattern, graph):
    assert count_directed(graph, pattern) == bruteforce_directed_count(graph, pattern)


@settings(max_examples=40, deadline=None)
@given(pattern=random_dipatterns(max_vertices=5))
def test_directed_automorphisms_form_group(pattern):
    auts = [tuple(a) for a in directed_automorphisms(pattern)]
    n = pattern.n_vertices
    assert tuple(range(n)) in auts
    aut_set = set(auts)
    for a in auts:
        for b in auts:
            assert tuple(a[b[i]] for i in range(n)) in aut_set
    # subgroup order divides the skeleton group's order (Lagrange)
    skeleton_order = automorphism_count(pattern.skeleton())
    assert skeleton_order % len(auts) == 0


@settings(max_examples=25, deadline=None)
@given(pattern=random_dipatterns(max_vertices=4), graph=random_digraphs(max_vertices=10))
def test_directed_reversal_bijection(pattern, graph):
    """count_G(P) == count_rev(G)(rev(P)): reversing all arcs on both
    sides is a bijection on embeddings."""
    rev_graph = digraph_from_edges(
        [(v, u) for u, v in graph.arcs()], n_vertices=graph.n_vertices
    )
    assert count_directed(graph, pattern) == count_directed(
        rev_graph, pattern.reverse()
    )


# ---------------------------------------------------------------------------
# induced
# ---------------------------------------------------------------------------
@settings(max_examples=20, deadline=None)
@given(
    pattern=random_connected_patterns(),
    n=st.integers(8, 18),
    p=st.floats(0.15, 0.45),
    seed=st.integers(0, 5_000),
)
def test_induced_engine_matches_bruteforce(pattern, n, p, seed):
    g = erdos_renyi(n, p, seed=seed)
    assert induced_count(g, pattern, method="engine") == bruteforce_induced_count(
        g, pattern
    )


@settings(max_examples=15, deadline=None)
@given(
    pattern=random_connected_patterns(max_vertices=4),
    n=st.integers(8, 14),
    seed=st.integers(0, 5_000),
)
def test_induced_methods_agree(pattern, n, seed):
    g = erdos_renyi(n, 0.3, seed=seed)
    assert induced_count(g, pattern, method="engine") == induced_count(
        g, pattern, method="moebius"
    )


@settings(max_examples=30, deadline=None)
@given(pattern=random_connected_patterns(max_vertices=4))
def test_supergraph_decomposition_invariants(pattern):
    terms = supergraph_decomposition(pattern)
    # the identity term leads; coefficients are positive integers;
    # edge counts never decrease
    assert terms[0].coefficient == 1
    assert terms[0].pattern.n_edges == pattern.n_edges
    last_edges = -1
    for t in terms:
        assert t.coefficient >= 1
        assert t.pattern.n_edges >= last_edges
        last_edges = max(last_edges, t.pattern.n_edges)
    # total labeled supersets = 2^(#anti-edges), grouped by class:
    # Σ a(P,Q) = 2^k with a = m(P,Q)·|Aut(P)|/|Aut(Q)|
    n_anti = pattern.n_vertices * (pattern.n_vertices - 1) // 2 - pattern.n_edges
    aut_p = automorphism_count(pattern)
    total = sum(
        t.coefficient * aut_p // automorphism_count(t.pattern) for t in terms
    )
    assert total == 2**n_anti


@settings(max_examples=15, deadline=None)
@given(
    pattern=random_connected_patterns(max_vertices=4),
    n=st.integers(8, 14),
    seed=st.integers(0, 5_000),
)
def test_induced_bounded_by_noninduced(pattern, n, seed):
    from repro.core.api import count_pattern

    g = erdos_renyi(n, 0.3, seed=seed)
    assert 0 <= induced_count(g, pattern, method="engine") <= count_pattern(
        g, pattern, use_iep=False
    )
