"""Integration: the instrumented layers produce the promised trees.

`MatchSession.count` is the root surface — it must attach a >=3-level
span tree to `MatchResult.trace` when tracing is on, attach nothing
when it is off, and never change a count either way.  The streaming
session's per-watch delta spans compose under any ambient collection.
"""

from __future__ import annotations

import json

import pytest

from repro import MatchQuery, MatchSession, get_pattern, obs
from repro.graph.dynamic import DynamicGraph
from repro.graph.generators import erdos_renyi
from repro.obs import metrics as obs_metrics
from repro.obs.trace import collect
from repro.streaming import StreamSession


@pytest.fixture
def tracing():
    obs.enable()
    yield
    obs.disable()


@pytest.fixture
def graph():
    return erdos_renyi(60, 0.2, seed=11)


class TestSessionTracing:
    def test_count_attaches_a_three_level_tree(self, tracing, graph):
        session = MatchSession(graph)
        result = session.count(
            MatchQuery(get_pattern("house"), backend="vectorised")
        )
        trace = result.trace
        assert trace is not None and trace.depth() >= 3
        [plan] = trace.find("plan")
        assert plan.attrs["cache_hit"] is False
        assert trace.find("model"), "cold planning must expose its stages"
        [execute] = trace.find("execute")
        assert execute.attrs["backend"] == "vectorised"
        assert execute.attrs["count"] == int(result)
        assert trace.find("depth")

    def test_warm_plan_marks_the_cache_hit(self, tracing, graph):
        session = MatchSession(graph)
        query = MatchQuery(get_pattern("triangle"))
        session.count(query)
        [plan] = session.count(query).trace.find("plan")
        assert plan.attrs["cache_hit"] is True

    def test_disabled_tracing_attaches_nothing(self, graph):
        assert not obs.enabled()
        result = MatchSession(graph).count(MatchQuery(get_pattern("triangle")))
        assert result.trace is None

    def test_counts_identical_tracing_on_and_off(self, graph):
        session = MatchSession(graph)
        query = MatchQuery(get_pattern("house"), backend="vectorised")
        off = int(session.count(query))
        obs.enable()
        try:
            on = int(session.count(query))
        finally:
            obs.disable()
        assert on == off

    def test_chrome_export_from_a_real_count(self, tracing, graph):
        result = MatchSession(graph).count(
            MatchQuery(get_pattern("house"), backend="vectorised")
        )
        payload = json.loads(result.trace.to_chrome_json())
        names = {e["name"] for e in payload["traceEvents"]}
        assert {"match", "plan", "execute", "depth"} <= names

    def test_metrics_move_with_the_count(self, tracing, graph):
        before = obs_metrics.REGISTRY.snapshot()
        MatchSession(graph).count(
            MatchQuery(get_pattern("triangle"), backend="vectorised")
        )
        moved = obs_metrics.REGISTRY.delta(before)
        assert moved.get("repro_plan_cache_misses_total", 0) >= 1
        assert moved.get('repro_backend_counts_total{backend="vectorised"}', 0) >= 1
        assert moved.get("repro_traces_collected_total", 0) >= 1
        assert moved.get("repro_frontier_rows_total", 0) > 0


class TestStreamingTracing:
    def test_delta_spans_compose_under_an_ambient_collection(self, tracing):
        stream = StreamSession(
            DynamicGraph.from_graph(erdos_renyi(30, 0.2, seed=5))
        )
        stream.watch(get_pattern("triangle"))
        before = obs_metrics.REGISTRY.snapshot()
        with collect("test") as trace:
            stream.apply([("+", 0, 1), ("-", 0, 1)])
        [apply_span] = trace.find("stream.apply")
        assert apply_span.attrs["updates"] == 2
        deltas = trace.find("stream.delta")
        assert deltas and all("watch" in s.attrs for s in deltas)
        moved = obs_metrics.REGISTRY.delta(before)
        assert moved.get("repro_stream_deltas_total", 0) >= len(deltas)
