"""Unit tests for the tracing core (`repro.obs.trace`).

Everything here runs with tracing explicitly enabled/disabled around
each test (the `tracing` fixture restores the disabled default), so the
suite never leaks an enabled sampler into unrelated tests.
"""

from __future__ import annotations

import json
import threading

import pytest

from repro.obs import trace as obs_trace
from repro.obs.trace import (
    NOOP_SPAN,
    Span,
    annotate,
    collect,
    current,
    record_span,
    span,
    under,
)


@pytest.fixture
def tracing():
    """Tracing on for the test, restored to disabled afterwards."""
    obs_trace.enable()
    yield
    obs_trace.disable()


class TestDisabled:
    def test_span_is_the_shared_noop(self):
        assert obs_trace.enabled() is False
        assert span("anything", depth=3) is NOOP_SPAN

    def test_noop_supports_the_span_surface(self):
        with span("x") as sp:
            assert sp.set(a=1) is sp
            assert sp.add("rows", 10) is sp

    def test_collect_yields_none(self):
        with collect("match") as trace:
            assert trace is None

    def test_record_span_and_annotate_are_noops(self):
        assert record_span("wait", 0.0, 1.0) is NOOP_SPAN
        annotate(ignored=True)  # must not raise with no open span


class TestSpanTree:
    def test_nesting_parent_child(self, tracing):
        with collect("root") as trace:
            with span("a"):
                with span("b"):
                    pass
            with span("c"):
                pass
        [a] = trace.find("a")
        assert [c.name for c in a.children] == ["b"]
        assert [c.name for c in trace.root.children] == ["a", "c"]
        assert trace.depth() == 3

    def test_timings_are_well_nested(self, tracing):
        with collect("root") as trace:
            with span("child"):
                pass
        [child] = trace.find("child")
        root = trace.root
        assert root.t0 <= child.t0 <= child.t1 <= root.t1
        assert root.seconds >= child.seconds
        assert root.self_seconds <= root.seconds

    def test_set_add_and_attrs(self, tracing):
        with collect("root") as trace:
            with span("work", mode="plain") as sp:
                sp.set(rows=10)
                sp.add("rows", 5)
                sp.add("calls")
        [work] = trace.find("work")
        assert work.attrs == {"mode": "plain", "rows": 15, "calls": 1}

    def test_exception_sets_error_attr_and_propagates(self, tracing):
        with collect("root") as trace:
            with pytest.raises(ValueError):
                with span("doomed"):
                    raise ValueError("boom")
        [doomed] = trace.find("doomed")
        assert doomed.attrs["error"] == "ValueError"

    def test_record_span_attaches_completed_interval(self, tracing):
        with collect("root") as trace:
            t = obs_trace.perf_counter()
            record_span("wait", t - 0.5, t, kind="queue")
        [wait] = trace.find("wait")
        assert wait.seconds == pytest.approx(0.5)
        assert wait.attrs == {"kind": "queue"}

    def test_annotate_enriches_the_innermost_span(self, tracing):
        with collect("root") as trace:
            with span("outer"):
                with span("inner"):
                    annotate(deep=True)
        [inner] = trace.find("inner")
        assert inner.attrs == {"deep": True}
        [outer] = trace.find("outer")
        assert "deep" not in outer.attrs

    def test_current_tracks_the_stack(self, tracing):
        with collect("root"):
            with span("a") as a:
                assert current() is a
        assert current() is None

    def test_under_adopts_a_foreign_parent(self, tracing):
        parent = Span("adopted")
        with parent:
            pass
        parent.children.clear()  # reuse as a bare container

        done = threading.Event()

        def worker():
            with under(parent):
                with span("from-thread"):
                    pass
            done.set()

        threading.Thread(target=worker).start()
        assert done.wait(5)
        assert [c.name for c in parent.children] == ["from-thread"]

    def test_root_without_collector_is_discarded(self, tracing):
        # a worker tracing into the void must not raise or leak state
        with span("orphan"):
            pass
        assert current() is None

    def test_nested_collects_share_the_tree(self, tracing):
        with collect("outer") as outer:
            with collect("inner") as inner:
                with span("leaf"):
                    pass
        assert inner is not None and inner.root is not None
        # the inner root nests under the outer root as a subtree
        assert [c.name for c in outer.root.children] == ["inner"]
        assert outer.find("leaf") and inner.find("leaf")


class TestSampler:
    def test_every_n_is_deterministic(self):
        obs_trace.enable(every=3)
        try:
            got = []
            for _ in range(6):
                with collect("t") as trace:
                    got.append(trace is not None)
        finally:
            obs_trace.disable()
        # the Nth collection is admitted (not the first): a huge period
        # behaves like disabled tracing, which the overhead bench uses.
        assert got == [False, False, True, False, False, True]

    def test_unsampled_collection_still_yields_counts(self):
        obs_trace.enable(every=10**9)
        try:
            with collect("t") as trace:
                value = 41 + 1
        finally:
            obs_trace.disable()
        assert trace is None and value == 42

    def test_enable_resets_the_sampler(self):
        obs_trace.enable(every=2)
        try:
            with collect("t") as first:
                pass
            with collect("t") as second:
                pass
            obs_trace.enable(every=2)  # re-enabling restarts the count
            with collect("t") as after_reset:
                pass
        finally:
            obs_trace.disable()
        assert first is None and second is not None
        assert after_reset is None


class TestExport:
    def _trace(self):
        obs_trace.enable()
        try:
            with collect("match", mode="plain") as trace:
                with span("plan"):
                    with span("model", n_configs=4):
                        pass
                with span("execute", backend="vectorised") as sp:
                    sp.set(count=7)
        finally:
            obs_trace.disable()
        return trace

    def test_chrome_export_is_valid_and_well_formed(self):
        trace = self._trace()
        payload = json.loads(trace.to_chrome_json())
        assert payload["displayTimeUnit"] == "ms"
        events = payload["traceEvents"]
        assert {e["name"] for e in events} == {"match", "plan", "model", "execute"}
        for event in events:
            assert event["ph"] == "X"
            assert event["cat"] == "repro"
            assert event["ts"] >= 0 and event["dur"] >= 0
            assert isinstance(event["pid"], int) and isinstance(event["tid"], int)
        [execute] = [e for e in events if e["name"] == "execute"]
        assert execute["args"] == {"backend": "vectorised", "count": 7}

    def test_chrome_args_are_json_safe(self):
        obs_trace.enable()
        try:
            with collect("t") as trace:
                with span("x", obj=object(), ok=1):
                    pass
        finally:
            obs_trace.disable()
        args = json.loads(trace.to_chrome_json())["traceEvents"][-1]["args"]
        assert args["ok"] == 1 and args["obj"].startswith("<object")

    def test_render_shows_totals_and_attrs(self):
        text = self._trace().render()
        assert "match [mode=plain]" in text
        assert "execute [backend=vectorised count=7]" in text
        assert "total" in text and "self" in text
        # tree drawing: children are connected
        assert "├─" in text or "└─" in text

    def test_render_hides_cheap_spans(self):
        text = self._trace().render(min_seconds=10.0)
        assert "spans under 10000.00ms hidden" in text
        assert "plan" not in text

    def test_empty_trace_renders_and_exports(self):
        trace = obs_trace.Trace("empty")
        assert "empty" in trace.render()
        assert json.loads(trace.to_chrome_json())["traceEvents"] == []
        assert trace.depth() == 0 and trace.seconds == 0.0

    def test_to_dict_round_trips_structure(self):
        payload = self._trace().to_dict()
        assert payload["name"] == "match"
        root = payload["root"]
        assert [c["name"] for c in root["children"]] == ["plan", "execute"]
        assert json.dumps(payload)  # JSON-serialisable throughout
