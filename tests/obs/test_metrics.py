"""Unit tests for the metrics registry (`repro.obs.metrics`).

The instrument mechanics run against fresh private registries; the
process-global :data:`repro.obs.metrics.REGISTRY` is only read (its
catalog and exposition), never reset — resetting it would race the
rest of the suite.
"""

from __future__ import annotations

import pytest

from repro.obs import metrics as obs_metrics
from repro.obs.metrics import SECONDS_BUCKETS, MetricsRegistry


@pytest.fixture
def registry():
    return MetricsRegistry()


class TestCounter:
    def test_inc_and_value(self, registry):
        c = registry.counter("jobs_total", "jobs")
        c.inc()
        c.inc(4)
        assert c.value == 5
        assert dict(c.samples()) == {"jobs_total": 5}

    def test_labeled_counter_samples_per_combination(self, registry):
        c = registry.counter("runs_total", "runs", labels=("backend",))
        c.labels(backend="vectorised").inc(2)
        c.labels(backend="compiled").inc()
        assert dict(c.samples()) == {
            'runs_total{backend="compiled"}': 1,
            'runs_total{backend="vectorised"}': 2,
        }

    def test_labeled_counter_rejects_bare_inc(self, registry):
        c = registry.counter("runs_total", "runs", labels=("backend",))
        with pytest.raises(ValueError, match="labeled"):
            c.inc()

    def test_labels_validates_names(self, registry):
        c = registry.counter("runs_total", "runs", labels=("backend",))
        with pytest.raises(ValueError, match="expected labels"):
            c.labels(nope="x")

    def test_reset(self, registry):
        c = registry.counter("runs_total", "runs", labels=("backend",))
        c.labels(backend="x").inc()
        c.reset()
        assert dict(c.samples()) == {}


class TestGauge:
    def test_set_inc_dec(self, registry):
        g = registry.gauge("depth", "queue depth")
        g.set(3)
        g.inc()
        g.dec(2)
        assert g.value == 2
        assert dict(g.samples()) == {"depth": 2}

    def test_reset(self, registry):
        g = registry.gauge("depth", "queue depth")
        g.set(9)
        g.reset()
        assert g.value == 0


class TestHistogram:
    def test_cumulative_buckets_sum_and_count(self, registry):
        h = registry.histogram("lat_seconds", "latency", bounds=(0.1, 1.0))
        for v in (0.05, 0.5, 5.0):
            h.observe(v)
        assert dict(h.samples()) == {
            'lat_seconds_bucket{le="0.1"}': 1,
            'lat_seconds_bucket{le="1"}': 2,
            'lat_seconds_bucket{le="+Inf"}': 3,
            "lat_seconds_sum": pytest.approx(5.55),
            "lat_seconds_count": 3,
        }
        assert h.count == 3 and h.sum == pytest.approx(5.55)

    def test_default_bounds_are_sorted_seconds(self):
        assert list(SECONDS_BUCKETS) == sorted(SECONDS_BUCKETS)

    def test_unsorted_bounds_rejected(self, registry):
        with pytest.raises(ValueError, match="sorted"):
            registry.histogram("bad", "x", bounds=(1.0, 0.1))

    def test_reset(self, registry):
        h = registry.histogram("lat_seconds", "latency", bounds=(1.0,))
        h.observe(0.5)
        h.reset()
        assert h.count == 0 and h.sum == 0.0


class TestRegistry:
    def test_duplicate_name_rejected(self, registry):
        registry.counter("x_total", "x")
        with pytest.raises(ValueError, match="already registered"):
            registry.gauge("x_total", "x again")

    def test_get_and_names_preserve_order(self, registry):
        a = registry.counter("a_total", "a")
        b = registry.gauge("b", "b")
        assert registry.names() == ["a_total", "b"]
        assert registry.get("a_total") is a and registry.get("b") is b

    def test_snapshot_and_delta_track_movement(self, registry):
        c = registry.counter("x_total", "x")
        g = registry.gauge("y", "y")
        before = registry.snapshot()
        c.inc(3)
        g.set(2)
        moved = registry.delta(before)
        assert moved == {"x_total": 3, "y": 2}
        # unchanged samples are omitted entirely
        assert registry.delta(registry.snapshot()) == {}

    def test_reset_zeroes_every_instrument(self, registry):
        c = registry.counter("x_total", "x")
        h = registry.histogram("h_seconds", "h", bounds=(1.0,))
        c.inc()
        h.observe(0.5)
        registry.reset()
        snap = registry.snapshot()
        assert snap["x_total"] == 0 and snap["h_seconds_count"] == 0

    def test_describe_yields_catalog_rows(self, registry):
        registry.counter("x_total", "help x", labels=("k",))
        [spec] = registry.describe()
        assert spec == ("x_total", "counter", ("k",), "help x")

    def test_render_prometheus_exposition(self, registry):
        c = registry.counter("x_total", "things done", labels=("kind",))
        c.labels(kind="a").inc(2)
        text = registry.render_prometheus()
        assert "# HELP x_total things done" in text
        assert "# TYPE x_total counter" in text
        assert 'x_total{kind="a"} 2' in text
        assert text.endswith("\n")


class TestGlobalCatalog:
    """The process-global registry is the documented catalog."""

    def test_every_declared_instrument_is_registered(self):
        names = set(obs_metrics.REGISTRY.names())
        for attr in dir(obs_metrics):
            instrument = getattr(obs_metrics, attr)
            if isinstance(
                instrument,
                (obs_metrics.Counter, obs_metrics.Gauge, obs_metrics.Histogram),
            ):
                assert instrument.name in names

    def test_catalog_naming_conventions(self):
        for spec in obs_metrics.REGISTRY.describe():
            assert spec.name.startswith("repro_"), spec.name
            if spec.kind == "counter":
                assert spec.name.endswith("_total"), spec.name
            if spec.kind == "histogram":
                assert spec.name.endswith("_seconds"), spec.name
            assert spec.help.strip(), f"{spec.name} has no help text"

    def test_generated_doc_catalog_is_fresh(self):
        """The committed docs table matches the live registry (CI gate)."""
        import sys
        from pathlib import Path

        tools = Path(__file__).resolve().parents[2] / "tools"
        sys.path.insert(0, str(tools))
        try:
            import gen_metric_catalog

            target = Path(gen_metric_catalog.DEFAULT_TARGET)
            current = target.read_text()
            assert gen_metric_catalog.splice(
                current, gen_metric_catalog.render_table()
            ) == current
        finally:
            sys.path.remove(str(tools))
