"""StreamSession and DeltaExecutor: maintained counts stay exact."""

from __future__ import annotations

import pytest

from repro.core.api import count_pattern
from repro.core.query import MatchQuery
from repro.graph.dynamic import DynamicGraph
from repro.graph.generators import erdos_renyi
from repro.pattern.catalog import clique, house, rectangle, triangle
from repro.streaming import (
    DeltaExecutor,
    EdgeUpdate,
    StreamSession,
    delta_plan_for,
    read_churn_file,
)


def fresh_session(n=30, p=0.2, seed=7, **kwargs) -> StreamSession:
    return StreamSession(DynamicGraph.from_graph(erdos_renyi(n, p, seed=seed)), **kwargs)


class TestEdgeUpdate:
    def test_coerce_aliases(self):
        assert EdgeUpdate.coerce(("add", 1, 2)) == EdgeUpdate("+", 1, 2)
        assert EdgeUpdate.coerce(("REMOVE", 1, 2)) == EdgeUpdate("-", 1, 2)
        assert EdgeUpdate.coerce(("i", "3", "4")) == EdgeUpdate("+", 3, 4)
        assert EdgeUpdate.coerce(EdgeUpdate("-", 0, 1)) == EdgeUpdate("-", 0, 1)

    def test_coerce_rejects_bad_shapes(self):
        with pytest.raises(TypeError):
            EdgeUpdate.coerce((1, 2))
        with pytest.raises(ValueError):
            EdgeUpdate.coerce(("swap", 1, 2))
        with pytest.raises(ValueError):
            EdgeUpdate("x", 0, 1)

    def test_churn_file_roundtrip(self, tmp_path):
        path = tmp_path / "churn.txt"
        path.write_text("# a comment\n+ 0 1\n\n- 2 3  # trailing\nadd 4 5\n")
        assert read_churn_file(path) == [
            EdgeUpdate("+", 0, 1),
            EdgeUpdate("-", 2, 3),
            EdgeUpdate("+", 4, 5),
        ]

    def test_churn_file_rejects_malformed(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("+ 0 1\n+ 0\n")
        with pytest.raises(ValueError, match="bad.txt:2"):
            read_churn_file(path)


class TestWatch:
    def test_initial_count_matches_full_count(self):
        stream = fresh_session()
        snap = stream.snapshot()
        h = stream.watch(triangle())
        assert h.count == count_pattern(snap, triangle())

    def test_watch_names_unique_and_customisable(self):
        stream = fresh_session()
        a = stream.watch(triangle())
        b = stream.watch(triangle())
        c = stream.watch(house(), name="roofs")
        assert a.name == "triangle"
        assert b.name == "triangle-2"
        assert c.name == "roofs"
        with pytest.raises(ValueError, match="already in use"):
            stream.watch(rectangle(), name="roofs")

    def test_unwatch(self):
        stream = fresh_session()
        h = stream.watch(triangle())
        stream.unwatch(h)
        assert stream.counts() == {}
        with pytest.raises(KeyError):
            stream.unwatch("triangle")

    def test_rejects_non_plain_or_induced(self):
        stream = fresh_session()
        with pytest.raises(ValueError, match="edge-semantics"):
            stream.watch(MatchQuery(triangle(), semantics="induced"))

    def test_accepts_immutable_graph(self):
        base = erdos_renyi(20, 0.2, seed=1)
        stream = StreamSession(base)
        h = stream.watch(triangle())
        assert h.count == count_pattern(base, triangle())
        with pytest.raises(TypeError):
            StreamSession([1, 2, 3])


class TestApply:
    def test_insert_delta_matches_recount(self):
        stream = fresh_session()
        stream.watch(triangle())
        stream.watch(house())
        stream.apply([("+", 0, 1)]) if not stream.graph.has_edge(0, 1) else None
        report = stream.apply(
            [("+", u, v) for u, v in [(0, 14), (3, 22)]
             if not stream.graph.has_edge(u, v)]
        )
        assert stream.counts() == stream.expected_counts()
        assert report.n_deletes == 0

    def test_triangle_insert_delta_equals_closed_triangles(self):
        stream = fresh_session(seed=3)
        h = stream.watch(triangle())
        u, v = next(
            (a, b) for a in range(30) for b in range(a + 1, 30)
            if not stream.graph.has_edge(a, b)
        )
        expected = len(
            stream.graph.neighbors(u) & stream.graph.neighbors(v)
        )
        report = stream.apply([("+", u, v)])
        assert report.deltas[h.name] == expected

    def test_insert_then_delete_restores_count(self):
        stream = fresh_session()
        h = stream.watch(house())
        before = h.count
        u, v = next(
            (a, b) for a in range(30) for b in range(a + 1, 30)
            if not stream.graph.has_edge(a, b)
        )
        up = stream.apply([("+", u, v)])
        down = stream.apply([("-", u, v)])
        assert h.count == before
        assert up.deltas[h.name] == -down.deltas[h.name]

    def test_mixed_batch_sequential_semantics(self):
        """Insert and delete of the *same* edge inside one batch."""
        stream = fresh_session()
        h = stream.watch(triangle())
        before = h.count
        u, v = next(
            (a, b) for a in range(30) for b in range(a + 1, 30)
            if not stream.graph.has_edge(a, b)
        )
        report = stream.apply([("+", u, v), ("-", u, v)])
        assert h.count == before
        assert report.deltas[h.name] == 0
        assert not stream.graph.has_edge(u, v)

    def test_strategies_agree(self):
        setup = fresh_session(seed=11).graph
        free = [
            (a, b) for a in range(30) for b in range(a + 1, 30)
            if not setup.has_edge(a, b)
        ]
        present = sorted(setup.edges())
        batch = [
            ("-", *present[0]),
            ("+", *free[0]),
            ("+", *free[1]),
            ("-", *free[0]),
        ]
        counts = {}
        for strategy in ("single", "bulk"):
            stream = fresh_session(seed=11)
            stream.watch(house())
            stream.watch(clique(4))
            report = stream.apply(batch, strategy=strategy)
            assert report.strategy == strategy
            counts[strategy] = stream.counts()
            assert counts[strategy] == stream.expected_counts()
        assert counts["single"] == counts["bulk"]

    def test_default_strategy_threshold(self):
        stream = fresh_session(bulk_threshold=3)
        stream.watch(triangle())
        free = iter(
            (a, b) for a in range(30) for b in range(a + 1, 30)
            if not stream.graph.has_edge(a, b)
        )
        small = stream.apply([("+", *next(free))])
        big = stream.apply([("+", *next(free)) for _ in range(3)])
        assert small.strategy == "single"
        assert big.strategy == "bulk"

    def test_vertex_growth(self):
        stream = fresh_session(n=10)
        h = stream.watch(triangle())
        stream.apply([("+", 2, 12), ("+", 5, 12)])
        assert stream.graph.n_vertices == 13
        assert stream.counts() == stream.expected_counts()
        strict = fresh_session(n=10, allow_vertex_growth=False)
        strict.watch(triangle())
        with pytest.raises(IndexError):
            strict.apply([("+", 2, 12)])

    def test_vertex_growth_capped(self):
        """A typo'd huge id is rejected atomically, not allocated."""
        stream = fresh_session(n=10, max_vertex_growth=5)
        h = stream.watch(triangle())
        count, version = h.count, stream.graph.version
        with pytest.raises(ValueError, match="max_vertex_growth"):
            stream.apply([("+", 0, 999_999_999)])
        assert stream.graph.n_vertices == 10
        assert stream.graph.version == version
        assert h.count == count
        stream.apply([("+", 0, 14)])  # within the cap: grows fine
        assert stream.graph.n_vertices == 15
        with pytest.raises(ValueError):
            StreamSession(stream.graph, max_vertex_growth=-1)

    def test_report_fields(self):
        stream = fresh_session()
        h = stream.watch(triangle())
        u, v = next(
            (a, b) for a in range(30) for b in range(a + 1, 30)
            if not stream.graph.has_edge(a, b)
        )
        report = stream.apply([("+", u, v)])
        (w,) = report.watches
        assert w.name == h.name
        assert w.count_before + w.delta == w.count == h.count
        assert report.n_updates == report.n_inserts == 1
        assert report.seconds >= w.seconds >= 0
        assert h.name in report.describe()

    def test_empty_batch(self):
        stream = fresh_session()
        h = stream.watch(triangle())
        before = h.count
        report = stream.apply([])
        assert report.n_updates == 0
        assert h.count == before


class TestAtomicRejection:
    """A bad batch raises before any mutation or count change."""

    @pytest.mark.parametrize(
        "batch, exc",
        [
            ([("+", 0, 0)], ValueError),  # self-loop
            ([("+", -1, 2)], ValueError),  # negative id
            ([("+", 0, 1), ("+", 1, 0)], KeyError),  # duplicate insert
            ([("-", 0, 1), ("-", 0, 1)], KeyError),  # double delete
            ([("-", 27, 28)], KeyError),  # missing delete (absent edge)
            ([("+", 5, 6), ("+", 0, 0)], ValueError),  # bad tail poisons all
        ],
    )
    def test_rejection_leaves_state_untouched(self, batch, exc):
        stream = fresh_session(seed=13)
        g = stream.graph
        if not g.has_edge(0, 1):  # the double-delete case needs it present
            g.add_edge(0, 1)
        for u, v in [(27, 28), (5, 6)]:  # missing-delete / valid-head cases
            if g.has_edge(u, v):
                g.remove_edge(u, v)
        h = stream.watch(triangle())
        version = g.version
        count = h.count
        with pytest.raises(exc):
            stream.apply(batch)
        assert g.version == version
        assert h.count == count
        assert stream.counts() == stream.expected_counts()

    def test_duplicate_insert_of_existing_edge(self):
        stream = fresh_session()
        if not stream.graph.has_edge(0, 1):
            stream.graph.add_edge(0, 1)
        stream.watch(triangle())
        with pytest.raises(KeyError, match="already present"):
            stream.apply([("+", 1, 0)])

    def test_delete_then_insert_same_edge_is_valid(self):
        stream = fresh_session()
        if not stream.graph.has_edge(0, 1):
            stream.graph.add_edge(0, 1)
        h = stream.watch(triangle())
        stream.apply([("-", 0, 1), ("+", 0, 1)])
        assert stream.graph.has_edge(0, 1)
        assert stream.counts() == stream.expected_counts()

    def test_unknown_strategy_rejected(self):
        stream = fresh_session()
        with pytest.raises(ValueError, match="strategy"):
            stream.apply([], strategy="quantum")


class TestDeltaExecutor:
    def test_bulk_row_cache_invalidated_per_endpoint(self):
        dyn = DynamicGraph.from_graph(erdos_renyi(20, 0.3, seed=5))
        ex = DeltaExecutor(dyn)
        plan = delta_plan_for(triangle())
        u, v = next(
            (a, b) for a in range(20) for b in range(a + 1, 20)
            if not dyn.has_edge(a, b)
        )
        dyn.add_edge(u, v)
        first = ex.count_edge(plan, u, v, strategy="bulk")
        assert ex.cached_rows > 0
        rows_before = ex.cached_rows
        ex.invalidate(u, v)
        assert ex.cached_rows <= rows_before
        assert ex.count_edge(plan, u, v, strategy="bulk") == first
        ex.invalidate_all()
        assert ex.cached_rows == 0

    def test_stale_rows_would_miscount_without_invalidation(self):
        """The session must invalidate endpoints; prove the cache is live."""
        dyn = DynamicGraph(4, [(0, 1), (1, 2), (0, 2)])
        ex = DeltaExecutor(dyn)
        plan = delta_plan_for(triangle())
        assert ex.count_edge(plan, 0, 1, strategy="bulk") == 1
        dyn.add_edge(0, 3)
        dyn.add_edge(1, 3)
        # without invalidation the cached rows of 0 and 1 are stale
        ex.invalidate(0, 3)
        ex.invalidate(1, 3)
        assert ex.count_edge(plan, 0, 1, strategy="bulk") == 2

    def test_rejects_unknown_strategy(self):
        dyn = DynamicGraph(3, [(0, 1)])
        ex = DeltaExecutor(dyn)
        with pytest.raises(ValueError, match="strategy"):
            ex.count_edge(delta_plan_for(triangle()), 0, 1, strategy="weird")


class TestRandomChurn:
    def test_sequence_is_valid_and_deterministic(self):
        from repro.streaming import random_churn

        base = erdos_renyi(15, 0.3, seed=2)
        a = random_churn(base, 50, seed=9)
        b = random_churn(base, 50, seed=9)
        assert a == b
        assert len(a) == 50
        # valid for sequential application (both ops exercised)
        stream = StreamSession(DynamicGraph.from_graph(base))
        stream.watch(triangle())
        stream.apply(a)
        assert stream.counts() == stream.expected_counts()
        assert any(up.is_insert for up in a)
        assert any(not up.is_insert for up in a)

    def test_accepts_dynamic_graph_and_rejects_tiny(self):
        from repro.streaming import random_churn

        dyn = DynamicGraph(5, [(0, 1)])
        churn = random_churn(dyn, 10, seed=1)
        assert len(churn) == 10
        with pytest.raises(ValueError, match="two vertices"):
            random_churn(DynamicGraph(1), 3, seed=1)

    def test_insert_bias_extremes(self):
        from repro.streaming import random_churn

        base = erdos_renyi(12, 0.3, seed=4)
        all_inserts = random_churn(base, 20, seed=5, insert_bias=1.0)
        assert all(up.is_insert for up in all_inserts)
        all_deletes = random_churn(base, base.n_edges, seed=5, insert_bias=0.0)
        assert not any(up.is_insert for up in all_deletes)
