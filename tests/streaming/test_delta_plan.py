"""Delta planner: dart orbits, stabiliser restrictions, anchored shapes."""

from __future__ import annotations

import pytest

from repro.core.restrictions import surviving_permutations
from repro.pattern.automorphism import automorphisms, pointwise_stabilizer
from repro.pattern.catalog import (
    clique,
    cycle_6_tri,
    hourglass,
    house,
    path,
    pentagon,
    rectangle,
    star,
    triangle,
)
from repro.pattern.pattern import Pattern
from repro.streaming.delta_plan import (
    build_delta_plan,
    clear_delta_plans,
    dart_orbits,
    delta_plan_for,
)

CATALOG = {
    "triangle": triangle,
    "rectangle": rectangle,
    "house": house,
    "pentagon": pentagon,
    "clique-4": lambda: clique(4),
    "path-4": lambda: path(4),
    "star-3": lambda: star(3),
    "hourglass": hourglass,
    "cycle-6-tri": cycle_6_tri,
}


@pytest.mark.parametrize("name", sorted(CATALOG))
class TestDartOrbits:
    def test_orbits_partition_all_darts(self, name):
        pattern = CATALOG[name]()
        orbits = dart_orbits(pattern)
        darts = [d for orbit in orbits for d in orbit]
        assert len(darts) == 2 * pattern.n_edges
        assert len(set(darts)) == len(darts)
        for u, v in darts:
            assert pattern.has_edge(u, v)

    def test_orbit_sizes_divide_group_order(self, name):
        pattern = CATALOG[name]()
        n_aut = len(automorphisms(pattern))
        for orbit in dart_orbits(pattern):
            assert n_aut % len(orbit) == 0

    def test_orbit_stabilizer_identity(self, name):
        """|orbit| * |pointwise stabiliser of the representative| = |Aut|."""
        pattern = CATALOG[name]()
        auts = automorphisms(pattern)
        for orbit in dart_orbits(pattern):
            u0, v0 = orbit[0]
            stab = pointwise_stabilizer(auts, [u0, v0])
            assert len(orbit) * len(stab) == len(auts)


@pytest.mark.parametrize("name", sorted(CATALOG))
class TestAnchoredPlans:
    def test_one_sub_plan_per_orbit(self, name):
        pattern = CATALOG[name]()
        plan = build_delta_plan(pattern)
        orbits = dart_orbits(pattern)
        assert len(plan.anchored) == len(orbits)
        assert [ap.dart for ap in plan.anchored] == [o[0] for o in orbits]
        assert [ap.orbit_size for ap in plan.anchored] == [len(o) for o in orbits]

    def test_order_covers_free_vertices_connectedly(self, name):
        pattern = CATALOG[name]()
        for ap in build_delta_plan(pattern).anchored:
            u0, v0 = ap.dart
            assert sorted((u0, v0, *ap.order)) == list(range(pattern.n_vertices))
            # every depth depends on at least one already-bound vertex,
            # so no anchored loop scans the whole vertex set
            for depth in range(ap.n_free):
                assert any(ap.anchor_deps[depth]) or ap.free_deps[depth]

    def test_deps_mirror_pattern_adjacency(self, name):
        pattern = CATALOG[name]()
        for ap in build_delta_plan(pattern).anchored:
            u0, v0 = ap.dart
            for depth, vertex in enumerate(ap.order):
                use_a, use_b = ap.anchor_deps[depth]
                assert use_a == pattern.has_edge(vertex, u0)
                assert use_b == pattern.has_edge(vertex, v0)
                expected = tuple(
                    j for j in range(depth)
                    if pattern.has_edge(vertex, ap.order[j])
                )
                assert ap.free_deps[depth] == expected

    def test_restrictions_break_the_stabiliser(self, name):
        """Only the identity survives each plan's restriction set, and no
        restriction ever touches an anchor — the exactly-once argument."""
        pattern = CATALOG[name]()
        auts = automorphisms(pattern)
        for ap in build_delta_plan(pattern).anchored:
            u0, v0 = ap.dart
            stab = pointwise_stabilizer(auts, [u0, v0])
            assert len(surviving_permutations(stab, ap.restrictions)) == 1
            for g, s in ap.restrictions:
                assert g not in (u0, v0)
                assert s not in (u0, v0)

    def test_restriction_bounds_resolved_to_depths(self, name):
        pattern = CATALOG[name]()
        for ap in build_delta_plan(pattern).anchored:
            position = {v: i for i, v in enumerate(ap.order)}
            resolved = set()
            for g, s in ap.restrictions:
                pg, ps = position[g], position[s]
                if pg > ps:
                    assert ps in ap.lower[pg]
                else:
                    assert pg in ap.upper[ps]
                resolved.add((g, s))
            n_bounds = sum(len(x) for x in ap.lower) + sum(len(x) for x in ap.upper)
            assert n_bounds == len(resolved)


class TestPlanCache:
    def test_same_structure_shares_one_plan(self):
        clear_delta_plans()
        a = delta_plan_for(triangle())
        b = delta_plan_for(Pattern(3, [(0, 1), (0, 2), (1, 2)], name="other"))
        assert a is b
        clear_delta_plans()
        assert delta_plan_for(triangle()) is not a

    def test_rejects_disconnected(self):
        with pytest.raises(ValueError, match="connected"):
            build_delta_plan(Pattern(4, [(0, 1), (2, 3)]))

    def test_single_edge_pattern(self):
        """The 2-vertex pattern: one orbit, no free vertices, delta 1."""
        plan = build_delta_plan(Pattern(2, [(0, 1)], name="edge"))
        assert len(plan.anchored) == 1
        assert plan.anchored[0].n_free == 0

    def test_describe_mentions_every_dart(self):
        plan = build_delta_plan(house())
        text = plan.describe()
        assert "house" in text
        for ap in plan.anchored:
            assert str(ap.dart) in text
