"""Result memoisation: versioned keys, single-flight, invalidation."""

from __future__ import annotations

import pytest

from repro.graph.builder import graph_from_edges
from repro.graph.dynamic import DynamicGraph
from repro.pattern.catalog import get_pattern
from repro.serving import MatchRequest, MatchService, ResultMemo

from .conftest import job


class TestResultMemoUnit:
    def key(self, i, version=0, graph="g"):
        return ("count", ("fp", i), None, graph, version)

    def test_lookup_miss_then_hit(self):
        memo = ResultMemo(4)
        k = self.key(1)
        assert memo.lookup(k) == (False, None, None)
        memo.resolve(k, job_stub := object(), 42, store=True)  # noqa: F841
        cached, value, primary = memo.lookup(k)
        assert cached and value == 42 and primary is None
        stats = memo.stats()
        assert stats.hits == 1 and stats.misses == 1

    def test_inflight_collapses(self):
        memo = ResultMemo(4)
        k = self.key(1)
        sentinel = object()
        memo.lookup(k)
        memo.register_inflight(k, sentinel)
        cached, _, primary = memo.lookup(k)
        assert not cached and primary is sentinel
        assert memo.stats().collapsed == 1
        # failure clears the slot without storing
        memo.resolve(k, sentinel, None, store=False)
        assert memo.lookup(k) == (False, None, None)

    def test_lru_eviction(self):
        memo = ResultMemo(2)
        for i in range(3):
            memo.resolve(self.key(i), object(), i, store=True)
        assert memo.lookup(self.key(0))[0] is False  # evicted
        assert memo.lookup(self.key(2))[0] is True
        assert memo.stats().evictions == 1

    def test_invalidate_by_graph_and_version(self):
        memo = ResultMemo(8)
        memo.resolve(self.key(1, version=0, graph="a"), object(), 1, store=True)
        memo.resolve(self.key(2, version=1, graph="a"), object(), 2, store=True)
        memo.resolve(self.key(3, version=0, graph="b"), object(), 3, store=True)
        assert memo.invalidate("a", below_version=1) == 1
        assert memo.lookup(self.key(2, version=1, graph="a"))[0] is True
        assert memo.lookup(self.key(3, version=0, graph="b"))[0] is True
        assert memo.invalidate("b") == 1

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            ResultMemo(0)


class TestServiceMemoisation:
    def test_repeat_count_is_a_memo_hit(self, triangle_graph, triangle):
        with MatchService(n_workers=1) as svc:
            svc.add_graph("default", triangle_graph)
            first = svc.count(triangle)
            assert first.result(timeout=30) == 1
            second = svc.count(triangle)
            assert second.result(timeout=30) == 1
            assert second.state == "done"
            stats = svc.stats()
            assert stats.memo.hits == 1
            assert stats.memo.misses == 1
            # the memo hit consumed no execution: one plan-cache miss,
            # zero further executions
            assert stats.completed == 2

    def test_memo_keys_distinguish_kind_and_limit(self, triangle_graph, triangle):
        with MatchService(n_workers=1) as svc:
            svc.add_graph("default", triangle_graph)
            svc.count(triangle).result(timeout=30)
            e1 = svc.enumerate(triangle, limit=1).result(timeout=30)
            e2 = svc.enumerate(triangle, limit=5).result(timeout=30)
            assert len(e1) == 1 and len(e2) == 1
            assert svc.stats().memo.misses == 3  # three distinct keys

    def test_single_flight_collapses_inflight_duplicates(
        self, fake_backend, triangle_graph
    ):
        svc = MatchService(n_workers=1, executor=fake_backend)
        svc.add_graph("default", triangle_graph)
        try:
            first = svc.submit(job(1))
            fake_backend.wait_started(1)
            second = svc.submit(job(1))  # identical, in flight -> follower
            third = svc.submit(job(1))
            fake_backend.gate.set()
            assert first.result(timeout=10) == 7
            assert second.result(timeout=10) == 7
            assert third.result(timeout=10) == 7
        finally:
            fake_backend.gate.set()
            svc.close()
        assert fake_backend.started == [1]  # exactly one execution
        stats = svc.stats()
        assert stats.memo.collapsed == 2
        assert stats.completed == 3

    def test_follower_of_failed_primary_fails_too(
        self, fake_backend, triangle_graph
    ):
        fake_backend.fail_on.add(1)
        svc = MatchService(n_workers=1, executor=fake_backend)
        svc.add_graph("default", triangle_graph)
        try:
            first = svc.submit(job(1))
            fake_backend.wait_started(1)
            second = svc.submit(job(1))
            fake_backend.gate.set()
            with pytest.raises(RuntimeError, match="injected failure"):
                first.result(timeout=10)
            with pytest.raises(RuntimeError, match="injected failure"):
                second.result(timeout=10)
            # a failure is not memoised: the next submission re-executes
            fake_backend.fail_on.clear()
            assert svc.submit(job(1)).result(timeout=10) == 7
        finally:
            fake_backend.gate.set()
            svc.close()
        assert fake_backend.started == [1, 1]

    def test_churn_invalidates_by_version(self):
        graph = graph_from_edges([(0, 1), (1, 2), (0, 2), (2, 3)])
        triangle = get_pattern("triangle")
        with MatchService(n_workers=1) as svc:
            svc.add_graph("default", DynamicGraph.from_graph(graph))
            assert svc.count(triangle).result(timeout=30) == 1
            svc.apply_churn([("+", 0, 3)])  # closes a second triangle
            post = svc.count(triangle)
            assert post.result(timeout=30) == 2
            stats = svc.stats()
            # both counts executed (different versions), nothing stale
            assert stats.memo.misses == 2 and stats.memo.hits == 0
            assert stats.churn_batches == 1
            # and the post-churn result is itself memoised
            assert svc.count(triangle).result(timeout=30) == 2
            assert svc.stats().memo.hits == 1

    def test_memoise_false_disables_reuse(self, triangle_graph, triangle):
        with MatchService(n_workers=1, memoise=False) as svc:
            svc.add_graph("default", triangle_graph)
            svc.count(triangle).result(timeout=30)
            svc.count(triangle).result(timeout=30)
            stats = svc.stats()
            assert stats.memo.hits == 0 and stats.memo.misses == 0

    def test_memo_hit_bypasses_a_full_queue(self, fake_backend, triangle_graph):
        svc = MatchService(n_workers=1, queue_limit=1, executor=fake_backend)
        svc.add_graph("default", triangle_graph)
        try:
            # memoise one result while the system is idle
            fake_backend.gate.set()
            svc.submit(job(42)).result(timeout=10)
            fake_backend.gate.clear()
            # pin the worker and fill the single queue slot
            svc.submit(job(0))
            fake_backend.wait_started(2)
            svc.submit(job(1))
            from repro.serving import ServiceOverloaded

            with pytest.raises(ServiceOverloaded):
                svc.submit(job(2))
            # identical to the memoised job: served despite the full queue
            hit = svc.submit(job(42))
            assert hit.result(timeout=10) == 7
        finally:
            fake_backend.gate.set()
            svc.close()


class TestRequestFingerprint:
    def test_fingerprint_covers_kind_query_and_limit(self, triangle):
        a = MatchRequest("count", triangle)
        b = MatchRequest("count", get_pattern("triangle"))
        assert a.memo_fingerprint() == b.memo_fingerprint()
        c = MatchRequest("enumerate", triangle, limit=5)
        d = MatchRequest("enumerate", triangle, limit=6)
        assert c.memo_fingerprint() != d.memo_fingerprint()
        assert a.memo_fingerprint() != c.memo_fingerprint()
