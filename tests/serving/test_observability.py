"""Serving-side observability: job traces, metrics export, and the two
regression tests this layer owed — the stats()/remove() registry race
and the cancelled-primary single-flight follower.
"""

from __future__ import annotations

import threading

import pytest

from repro import obs
from repro.graph.builder import graph_from_edges
from repro.obs import metrics as obs_metrics
from repro.pattern.catalog import get_pattern
from repro.serving import (
    CANCELLED,
    JobCancelled,
    MatchRequest,
    MatchService,
    ReplicaRegistry,
)

from .conftest import job


@pytest.fixture
def tracing():
    obs.enable()
    yield
    obs.disable()


class TestRegistrySnapshot:
    def test_snapshot_is_sorted_and_consistent(self, triangle_graph):
        registry = ReplicaRegistry()
        registry.add("b", triangle_graph)
        registry.add("a", triangle_graph)
        snap = registry.snapshot()
        assert [name for name, _ in snap] == ["a", "b"]
        assert all(replica is registry.get(name) for name, replica in snap)

    def test_snapshot_is_detached_from_mutation(self, triangle_graph):
        registry = ReplicaRegistry()
        registry.add("a", triangle_graph)
        snap = registry.snapshot()
        registry.remove("a")
        # the captured pairs stay usable after the removal
        assert snap[0][0] == "a" and snap[0][1].freeze() is not None

    def test_stats_survives_concurrent_replica_churn(
        self, fake_backend, triangle_graph
    ):
        """Regression: stats() iterated names() then re-resolved each with
        get(), so a replica removed between the two calls raised KeyError
        out of a monitoring poll.  snapshot() captures one consistent set.
        """
        service = MatchService(
            n_workers=1, queue_limit=8, executor=fake_backend
        )
        service.add_graph("default", triangle_graph)
        fake_backend.gate.set()
        stop = threading.Event()
        errors: list[BaseException] = []

        def churn(worker: int):
            i = 0
            while not stop.is_set():
                name = f"replica-{worker}-{i % 7}"
                try:
                    service.add_graph(name, triangle_graph)
                    service.registry.remove(name)
                except BaseException as exc:  # noqa: BLE001 - fail the test
                    errors.append(exc)
                    return
                i += 1

        def poll():
            while not stop.is_set():
                try:
                    stats = service.stats()
                    assert "default" in stats.plan_caches
                except BaseException as exc:  # noqa: BLE001 - fail the test
                    errors.append(exc)
                    return

        threads = [threading.Thread(target=churn, args=(w,)) for w in range(2)]
        threads += [threading.Thread(target=poll) for _ in range(2)]
        for t in threads:
            t.start()
        stop_timer = threading.Timer(1.0, stop.set)
        stop_timer.start()
        for t in threads:
            t.join(10)
        stop.set()
        stop_timer.cancel()
        service.close()
        assert not errors, f"stats/churn race resurfaced: {errors[:1]!r}"


class TestCancelledPrimaryFollowers:
    def test_followers_of_a_cancelled_primary_unblock(
        self, fake_backend, triangle_graph
    ):
        """A job cancelled while single-flight followers wait must resolve
        those followers immediately (same outcome), not strand them until
        their own timeouts — and the next identical submission must
        re-execute rather than follow a ghost.
        """
        service = MatchService(
            n_workers=1, queue_limit=8, memoise=True, executor=fake_backend
        )
        service.add_graph("default", triangle_graph)
        try:
            fake_backend.cancel_waiters.add(0)
            primary = service.submit(job(0))
            fake_backend.wait_started(1)
            followers = [service.submit(job(0)) for _ in range(3)]
            assert service.stats().memo.collapsed == 3

            assert primary.cancel() is True
            # bounded wait: a stranded follower fails here, not forever
            for follower in followers:
                with pytest.raises(JobCancelled):
                    follower.result(timeout=5)
                assert follower.state == CANCELLED

            # the in-flight slot is cleared: a re-submission re-executes
            fake_backend.cancel_waiters.clear()
            fake_backend.gate.set()
            retry = service.submit(job(0))
            assert retry.result(timeout=5) == 7
            assert fake_backend.started == [0, 0]
        finally:
            fake_backend.gate.set()
            service.close()


class TestJobTraces:
    def test_job_handle_carries_the_serve_trace(self, tracing, triangle_graph):
        service = MatchService(n_workers=1, queue_limit=8, memoise=False)
        service.add_graph("default", triangle_graph)
        try:
            handle = service.count(get_pattern("triangle"))
            count = handle.result(timeout=30)
            trace = handle.trace
            assert trace is not None and trace.root.name == "serve.job"
            assert trace.root.attrs["kind"] == "count"
            assert trace.find("serve.queue_wait")
            # the session's match subtree nests inside the job trace
            [match] = trace.find("match")
            [execute] = trace.find("execute")
            assert execute.attrs["count"] == count
            assert trace.depth() >= 3
        finally:
            service.close()

    def test_followers_share_the_primary_trace(
        self, tracing, fake_backend, triangle_graph
    ):
        service = MatchService(
            n_workers=1, queue_limit=8, memoise=True, executor=fake_backend
        )
        service.add_graph("default", triangle_graph)
        try:
            primary = service.submit(job(0))
            fake_backend.wait_started(1)
            follower = service.submit(job(0))
            fake_backend.gate.set()
            assert primary.result(timeout=5) == follower.result(timeout=5)
            assert primary.trace is not None
            assert follower.trace is primary.trace
        finally:
            fake_backend.gate.set()
            service.close()

    def test_untraced_service_attaches_nothing(self, fake_backend, triangle_graph):
        assert not obs.enabled()
        service = MatchService(
            n_workers=1, queue_limit=8, memoise=False, executor=fake_backend
        )
        service.add_graph("default", triangle_graph)
        try:
            fake_backend.gate.set()
            handle = service.submit(job(0))
            handle.result(timeout=5)
            assert handle.trace is None
        finally:
            service.close()


class TestMetricsExport:
    def test_export_metrics_is_the_prometheus_exposition(
        self, fake_backend, triangle_graph
    ):
        service = MatchService(
            n_workers=1, queue_limit=8, memoise=False, executor=fake_backend
        )
        service.add_graph("default", triangle_graph)
        try:
            before = obs_metrics.REGISTRY.snapshot()
            fake_backend.gate.set()
            service.submit(job(0)).result(timeout=5)
            moved = obs_metrics.REGISTRY.delta(before)
            assert moved.get('repro_service_jobs_total{state="done"}', 0) >= 1
            assert moved.get("repro_service_job_seconds_count", 0) >= 1
            assert moved.get("repro_service_queue_wait_seconds_count", 0) >= 1
            text = service.export_metrics()
            assert "# TYPE repro_service_jobs_total counter" in text
            assert "repro_service_queue_depth" in text
        finally:
            service.close()

    def test_queue_depth_gauge_returns_to_rest(self, fake_backend, triangle_graph):
        service = MatchService(
            n_workers=1, queue_limit=8, memoise=False, executor=fake_backend
        )
        service.add_graph("default", triangle_graph)
        try:
            rest = obs_metrics.SERVICE_QUEUE_DEPTH.value
            service.submit(job(0))
            fake_backend.wait_started(1)
            queued = [service.submit(job(i)) for i in range(1, 4)]
            assert obs_metrics.SERVICE_QUEUE_DEPTH.value == rest + 3
            queued[0].cancel()  # dequeue via cancel
            fake_backend.gate.set()
            assert service.drain(timeout=10)
            assert obs_metrics.SERVICE_QUEUE_DEPTH.value == rest
        finally:
            fake_backend.gate.set()
            service.close()


def test_request_kind_validation_unchanged(triangle_graph):
    """The instrumented submit path still validates before counting."""
    service = MatchService(n_workers=1, queue_limit=2)
    service.add_graph("default", triangle_graph)
    try:
        before = obs_metrics.REGISTRY.snapshot()
        with pytest.raises(ValueError):
            MatchRequest("explode", get_pattern("triangle"))
        assert obs_metrics.REGISTRY.delta(before) == {}
    finally:
        service.close()
