"""Trace parsing, the synthetic generator, and open-loop replay."""

from __future__ import annotations

import pytest

from repro.graph.builder import graph_from_edges
from repro.graph.dynamic import DynamicGraph
from repro.pattern.catalog import get_pattern
from repro.serving import (
    MatchService,
    TraceOp,
    parse_trace_line,
    read_trace_file,
    replay_trace,
    synthetic_trace,
)
from repro.serving.trace import latency_percentiles


class TestParsing:
    def test_count_line(self):
        op = parse_trace_line("count house")
        assert op == TraceOp("count", pattern="house")

    def test_options(self):
        op = parse_trace_line("count house prio=5 timeout=2.5")
        assert op.priority == 5 and op.timeout == 2.5

    def test_enumerate_line(self):
        op = parse_trace_line("enumerate triangle 10 prio=1")
        assert op.op == "enumerate" and op.limit == 10 and op.priority == 1

    def test_churn_line(self):
        op = parse_trace_line("churn + 3 17")
        assert op.update == ("+", 3, 17)

    def test_comments_and_blanks(self):
        assert parse_trace_line("# a comment") is None
        assert parse_trace_line("   ") is None
        assert parse_trace_line("count house  # trailing").pattern == "house"

    @pytest.mark.parametrize(
        "line",
        [
            "count",  # missing pattern
            "enumerate triangle",  # missing limit
            "enumerate triangle many",  # bad limit
            "churn * 1 2",  # bad sign
            "churn + 1",  # missing vertex
            "churn + a b",  # bad ids
            "count house prio=high",  # bad option value
            "count house nope=1",  # unknown option
            "frobnicate house",  # unknown op
            "count house timeout=0",  # non-positive timeout
        ],
    )
    def test_bad_lines_raise_with_location(self, line):
        with pytest.raises(ValueError, match="trace"):
            parse_trace_line(line)

    def test_read_trace_file(self, tmp_path):
        f = tmp_path / "ops.trace"
        f.write_text(
            "# mixed workload\n"
            "count triangle\n"
            "enumerate house 5\n"
            "churn + 0 9\n"
            "\n"
            "count triangle prio=2\n"
        )
        ops = read_trace_file(f)
        assert [op.op for op in ops] == ["count", "enumerate", "churn", "count"]

    def test_read_trace_file_error_names_line(self, tmp_path):
        f = tmp_path / "bad.trace"
        f.write_text("count triangle\nchurn + nope 2\n")
        with pytest.raises(ValueError, match=r"bad\.trace:2"):
            read_trace_file(f)


class TestSyntheticTrace:
    def test_deterministic_and_zipf_weighted(self):
        a = synthetic_trace(["triangle", "house"], 50, seed=1)
        b = synthetic_trace(["triangle", "house"], 50, seed=1)
        assert a == b
        counts = {}
        for op in a:
            counts[op.pattern] = counts.get(op.pattern, 0) + 1
        assert counts["triangle"] > counts["house"]  # head of the Zipf

    def test_churn_toggles_are_consistent(self):
        ops = synthetic_trace(
            ["triangle"], 100, churn_every=5, n_vertices=20,
            avoid_edges={(0, 1)}, seed=3,
        )
        live = set()
        for op in ops:
            if op.op != "churn":
                continue
            sign, u, v = op.update
            assert (u, v) != (0, 1)
            if sign == "+":
                assert (u, v) not in live
                live.add((u, v))
            else:
                assert (u, v) in live
                live.remove((u, v))

    def test_validation(self):
        with pytest.raises(ValueError, match="at least one pattern"):
            synthetic_trace([], 10)
        with pytest.raises(ValueError, match="n_vertices"):
            synthetic_trace(["triangle"], 10, churn_every=2)


class TestReplay:
    def test_replay_counts_rejections(self, fake_backend, triangle_graph):
        svc = MatchService(
            n_workers=1, queue_limit=1, memoise=False, executor=fake_backend
        )
        svc.add_graph("default", triangle_graph)
        try:
            ops = [TraceOp("enumerate", pattern="triangle", limit=i)
                   for i in range(6)]
            outcome = replay_trace(svc, ops)
            # worker holds one, queue holds one; the rest were shed
            assert len(outcome.handles) + outcome.rejected == 6
            assert outcome.rejected >= 3
        finally:
            fake_backend.gate.set()
            svc.close()

    def test_replay_end_to_end_with_churn(self):
        graph = graph_from_edges([(0, 1), (1, 2), (0, 2), (2, 3)])
        ops = [
            TraceOp("count", pattern="triangle"),
            TraceOp("churn", update=("+", 0, 3)),
            TraceOp("count", pattern="triangle"),
        ]
        with MatchService(n_workers=1) as svc:
            svc.add_graph("default", DynamicGraph.from_graph(graph))
            outcome = replay_trace(svc, ops)
            outcome.wait(timeout=30)
            values = [h.result(timeout=1) for h in outcome.handles]
        assert outcome.churn_applied == 1
        # replay is in submission order: pre-churn then post-churn count
        assert values == [1, 2]

    def test_resolver_override(self, triangle_graph):
        with MatchService(n_workers=1) as svc:
            svc.add_graph("default", triangle_graph)
            seen = []

            def resolver(name):
                seen.append(name)
                return get_pattern(name)

            outcome = replay_trace(
                svc, [TraceOp("count", pattern="triangle")],
                resolve_pattern=resolver,
            )
            outcome.wait(timeout=30)
        assert seen == ["triangle"]


class TestLatencyPercentiles:
    def test_empty_sample(self):
        assert latency_percentiles([]) == (0.0, 0.0)

    def test_nearest_rank(self):
        sample = [float(i) for i in range(1, 101)]
        p50, p99 = latency_percentiles(sample)
        assert p50 == 50.0 and p99 == 99.0
        (p100,) = latency_percentiles(sample, fractions=(1.0,))
        assert p100 == 100.0
