"""Serving fixtures: tiny graphs and the event-gated fake backend.

The queue-semantics tests never sleep: every ordering is forced by
events — a job blocks on the fake backend's gate (or on its own
cancel event) until the test releases it, so QUEUED/RUNNING states are
held exactly as long as an assertion needs them.
"""

from __future__ import annotations

import threading

import pytest

from repro.graph.builder import graph_from_edges
from repro.pattern.catalog import get_pattern
from repro.serving import MatchRequest


class FakeBackend:
    """An event-gated executor: starts are observable, finishes are gated.

    Jobs are labelled by their request's ``limit`` (the tests submit
    enumerate requests with distinct limits so identical queries don't
    interact through memoisation when it is on).  A job waits on
    :attr:`gate` — or on its *own* cancel event when its label is in
    :attr:`cancel_waiters`, which is how mid-run timeout/cancellation
    is exercised deterministically.
    """

    def __init__(self, result=7):
        self.result = result
        self.cond = threading.Condition()
        self.started: list = []
        self.finished: list = []
        self.gate = threading.Event()
        self.cancel_waiters: set = set()
        self.fail_on: set = set()

    def __call__(self, graph, request: MatchRequest, cancel_event):
        label = request.limit
        with self.cond:
            self.started.append(label)
            self.cond.notify_all()
        if label in self.cancel_waiters:
            assert cancel_event.wait(10), "cancel event never fired"
        else:
            assert self.gate.wait(10), "gate never opened"
        if label in self.fail_on:
            raise RuntimeError(f"injected failure for job {label}")
        with self.cond:
            self.finished.append(label)
        return self.result

    def wait_started(self, n: int, timeout: float = 10.0) -> None:
        with self.cond:
            assert self.cond.wait_for(lambda: len(self.started) >= n, timeout), (
                f"only {len(self.started)} of {n} jobs started"
            )


@pytest.fixture
def fake_backend():
    return FakeBackend()


@pytest.fixture
def triangle_graph():
    """One triangle plus a pendant edge — tiny, known counts."""
    return graph_from_edges([(0, 1), (1, 2), (0, 2), (2, 3)])


@pytest.fixture
def triangle():
    return get_pattern("triangle")


def job(limit: int, graph: str = "default") -> MatchRequest:
    """An enumerate request labelled by its limit (see FakeBackend)."""
    return MatchRequest("enumerate", get_pattern("triangle"), graph=graph,
                        limit=limit)
