"""Queue semantics, lifecycle, callbacks and the asyncio front door.

Everything here runs against the event-gated :class:`FakeBackend`
(tests/serving/conftest.py) so states are held deterministically — no
sleeps, no timing races.
"""

from __future__ import annotations

import asyncio
import threading

import pytest

from repro.serving import (
    CANCELLED,
    DONE,
    FAILED,
    QUEUED,
    RUNNING,
    JobCancelled,
    JobTimeout,
    MatchService,
    ServiceOverloaded,
)

from .conftest import job


@pytest.fixture
def service(fake_backend, triangle_graph):
    """One worker, no memo: every submission is an independent queue job."""
    svc = MatchService(
        n_workers=1, queue_limit=8, memoise=False, executor=fake_backend
    )
    svc.add_graph("default", triangle_graph)
    yield svc
    fake_backend.gate.set()
    svc.close()


class TestQueueOrdering:
    def test_priority_order_with_fifo_within_priority(self, service, fake_backend):
        blocker = service.submit(job(0))
        fake_backend.wait_started(1)
        # queued while the single worker is pinned: two at priority 5
        # (FIFO between them), one at 1, one at the default 0.
        service.submit(job(1))  # priority 0
        service.submit(job(2), priority=5)
        service.submit(job(3), priority=5)
        service.submit(job(4), priority=1)
        fake_backend.gate.set()
        assert service.drain(timeout=10)
        assert fake_backend.started == [0, 2, 3, 4, 1]
        assert blocker.result() == 7

    def test_fifo_among_equal_priorities(self, service, fake_backend):
        service.submit(job(0))
        fake_backend.wait_started(1)
        for i in range(1, 6):
            service.submit(job(i), priority=3)
        fake_backend.gate.set()
        assert service.drain(timeout=10)
        assert fake_backend.started == [0, 1, 2, 3, 4, 5]


class TestBackpressure:
    def test_overload_is_deterministic_at_high_water_mark(
        self, fake_backend, triangle_graph
    ):
        svc = MatchService(
            n_workers=1, queue_limit=3, memoise=False, executor=fake_backend
        )
        svc.add_graph("default", triangle_graph)
        try:
            svc.submit(job(0))  # taken by the worker
            fake_backend.wait_started(1)
            for i in range(1, 4):
                svc.submit(job(i))  # exactly queue_limit queued
            with pytest.raises(ServiceOverloaded):
                svc.submit(job(99))
            assert svc.stats().rejected == 1
            assert svc.stats().queue_depth == 3
        finally:
            fake_backend.gate.set()
            svc.close()
        assert 99 not in fake_backend.started

    def test_cancelling_a_queued_job_frees_its_slot(
        self, fake_backend, triangle_graph
    ):
        svc = MatchService(
            n_workers=1, queue_limit=2, memoise=False, executor=fake_backend
        )
        svc.add_graph("default", triangle_graph)
        try:
            svc.submit(job(0))
            fake_backend.wait_started(1)
            svc.submit(job(1))
            victim = svc.submit(job(2))
            with pytest.raises(ServiceOverloaded):
                svc.submit(job(3))
            assert victim.cancel()
            svc.submit(job(4))  # the freed slot admits this one
        finally:
            fake_backend.gate.set()
            svc.close()
        assert fake_backend.started == [0, 1, 4]


class TestCancellation:
    def test_cancel_queued_job_never_executes(self, service, fake_backend):
        service.submit(job(0))
        fake_backend.wait_started(1)
        victim = service.submit(job(1))
        assert victim.state == QUEUED
        assert victim.cancel()
        assert victim.state == CANCELLED
        with pytest.raises(JobCancelled):
            victim.result()
        fake_backend.gate.set()
        assert service.drain(timeout=10)
        assert fake_backend.started == [0]

    def test_cancel_running_job_resolves_immediately(self, service, fake_backend):
        fake_backend.cancel_waiters.add(0)
        victim = service.submit(job(0))
        fake_backend.wait_started(1)
        assert victim.state == RUNNING
        assert victim.cancel()
        assert victim.state == CANCELLED
        with pytest.raises(JobCancelled):
            victim.result(timeout=10)
        # the disowned worker unblocks (cancel_event fired) and the
        # service keeps serving
        after = service.submit(job(1))
        fake_backend.gate.set()
        assert after.result(timeout=10) == 7

    def test_cancel_finished_job_is_a_noop(self, service, fake_backend):
        fake_backend.gate.set()
        handle = service.submit(job(0))
        assert handle.result(timeout=10) == 7
        assert not handle.cancel()
        assert handle.state == DONE


class TestTimeouts:
    def test_timeout_fires_mid_run(self, service, fake_backend):
        fake_backend.cancel_waiters.add(0)  # job waits on its cancel event
        handle = service.submit(job(0), timeout=0.05)
        fake_backend.wait_started(1)
        with pytest.raises(JobTimeout):
            handle.result(timeout=10)
        assert handle.state == FAILED
        assert service.stats().timed_out == 1
        # service is healthy afterwards
        fake_backend.gate.set()
        assert service.submit(job(1)).result(timeout=10) == 7

    def test_timeout_fires_while_queued_and_frees_slot(
        self, fake_backend, triangle_graph
    ):
        svc = MatchService(
            n_workers=1, queue_limit=1, memoise=False, executor=fake_backend
        )
        svc.add_graph("default", triangle_graph)
        try:
            svc.submit(job(0))
            fake_backend.wait_started(1)
            doomed = svc.submit(job(1), timeout=0.05)
            with pytest.raises(JobTimeout):
                doomed.result(timeout=10)
            svc.submit(job(2))  # slot freed by the expired job
        finally:
            fake_backend.gate.set()
            svc.close()
        assert 1 not in fake_backend.started

    def test_finished_job_is_immune_to_its_stale_timer(self, service, fake_backend):
        fake_backend.gate.set()
        handle = service.submit(job(0), timeout=30.0)
        assert handle.result(timeout=10) == 7
        assert handle.state == DONE  # timer cancelled on completion


class TestLifecycleAndCallbacks:
    def test_status_callback_sees_every_transition(self, service, fake_backend):
        states = []
        results = []
        handle = service.submit(
            job(0),
            on_status=lambda h: states.append(h.state),
            on_result=results.append,
        )
        fake_backend.gate.set()
        assert handle.result(timeout=10) == 7
        assert states == [QUEUED, RUNNING, DONE]
        assert results == [7]

    def test_failure_propagates_to_result(self, service, fake_backend):
        fake_backend.fail_on.add(0)
        fake_backend.gate.set()
        handle = service.submit(job(0))
        with pytest.raises(RuntimeError, match="injected failure"):
            handle.result(timeout=10)
        assert handle.state == FAILED
        assert isinstance(handle.exception(), RuntimeError)
        assert service.stats().failed == 1

    def test_latency_accounting(self, service, fake_backend):
        fake_backend.gate.set()
        handle = service.submit(job(0))
        assert handle.result(timeout=10) == 7
        assert handle.latency >= 0.0
        assert handle.queue_seconds >= 0.0
        assert handle.latency >= handle.queue_seconds

    def test_closed_service_rejects_submissions(self, fake_backend, triangle_graph):
        svc = MatchService(n_workers=1, executor=fake_backend)
        svc.add_graph("default", triangle_graph)
        fake_backend.gate.set()
        svc.close()
        with pytest.raises(RuntimeError, match="closed"):
            svc.submit(job(0))

    def test_context_manager_drains_on_exit(self, fake_backend, triangle_graph):
        fake_backend.gate.set()
        with MatchService(n_workers=2, memoise=False,
                          executor=fake_backend) as svc:
            svc.add_graph("default", triangle_graph)
            handles = [svc.submit(job(i)) for i in range(5)]
        assert all(h.state == DONE for h in handles)


class TestAsyncFrontDoor:
    def test_await_handle(self, service, fake_backend):
        fake_backend.gate.set()

        async def go():
            return await service.submit(job(0))

        assert asyncio.run(go()) == 7

    def test_aresult_and_concurrent_awaits(self, service, fake_backend):
        async def go():
            h1 = service.submit(job(1))
            h2 = service.submit(job(2))
            # release the gate from a thread once both are in the system
            threading.Timer(0.01, fake_backend.gate.set).start()
            return await asyncio.gather(h1.aresult(), h2.aresult())

        assert asyncio.run(go()) == [7, 7]

    def test_await_propagates_failure(self, service, fake_backend):
        fake_backend.fail_on.add(0)
        fake_backend.gate.set()

        async def go():
            await service.submit(job(0))

        with pytest.raises(RuntimeError, match="injected failure"):
            asyncio.run(go())


class TestValidation:
    def test_bad_request_kind(self, triangle):
        from repro.serving import MatchRequest

        with pytest.raises(ValueError, match="unknown request kind"):
            MatchRequest("explode", triangle)

    def test_count_with_limit_rejected(self, triangle):
        from repro.serving import MatchRequest

        with pytest.raises(ValueError, match="limit only applies"):
            MatchRequest("count", triangle, limit=5)

    def test_unknown_replica(self, service, triangle):
        from repro.serving import MatchRequest

        with pytest.raises(KeyError, match="no replica named"):
            service.submit(MatchRequest("count", triangle, graph="nope"))

    def test_submit_needs_a_request(self, service):
        with pytest.raises(TypeError, match="MatchRequest"):
            service.submit("triangle")

    def test_constructor_validation(self):
        with pytest.raises(ValueError):
            MatchService(n_workers=0)
        with pytest.raises(ValueError):
            MatchService(queue_limit=0)


class TestRealExecution:
    """A handful of unmocked end-to-end counts (the integration seam)."""

    def test_count_and_enumerate_real(self, triangle_graph, triangle):
        with MatchService(n_workers=2) as svc:
            svc.add_graph("default", triangle_graph)
            assert svc.count(triangle).result(timeout=30) == 1
            embeddings = svc.enumerate(triangle, limit=10).result(timeout=30)
            assert len(embeddings) == 1
            assert sorted(embeddings[0]) == [0, 1, 2]

    def test_stats_expose_plan_cache_counters(self, triangle_graph, triangle):
        with MatchService(n_workers=1) as svc:
            svc.add_graph("default", triangle_graph)
            svc.count(triangle).result(timeout=30)
            svc.count(triangle, memoise=False).result(timeout=30)
            stats = svc.stats()
            info = stats.plan_caches["default"]
            # two executions, one plan: the second hit the plan cache
            assert info.misses >= 1
            assert info.hits >= 1
