"""Replica registry: freezing, churn routing, stream-watch warmth."""

from __future__ import annotations

import pytest

from repro.graph.builder import graph_from_edges
from repro.graph.dynamic import DynamicGraph
from repro.pattern.catalog import get_pattern
from repro.serving import MatchService, Replica, ReplicaRegistry


@pytest.fixture
def square_graph():
    return graph_from_edges([(0, 1), (1, 2), (2, 3), (0, 3)])


class TestRegistry:
    def test_add_get_remove(self, square_graph):
        reg = ReplicaRegistry()
        replica = reg.add("sq", square_graph)
        assert reg.get("sq") is replica
        assert "sq" in reg and len(reg) == 1
        assert reg.names() == ("sq",)
        reg.remove("sq")
        assert "sq" not in reg

    def test_duplicate_name_rejected(self, square_graph):
        reg = ReplicaRegistry()
        reg.add("sq", square_graph)
        with pytest.raises(ValueError, match="already registered"):
            reg.add("sq", square_graph)

    def test_unknown_name_lists_known(self, square_graph):
        reg = ReplicaRegistry()
        reg.add("sq", square_graph)
        with pytest.raises(KeyError, match="registered: sq"):
            reg.get("nope")

    def test_bad_graph_type(self):
        with pytest.raises(TypeError, match="replica holds"):
            Replica("bad", object())


class TestStaticReplica:
    def test_freeze_is_identity_at_version_zero(self, square_graph):
        replica = Replica("sq", square_graph)
        graph, version = replica.freeze()
        assert graph is square_graph and version == 0
        assert replica.version == 0
        assert not replica.dynamic

    def test_static_replica_refuses_churn_and_watches(self, square_graph):
        replica = Replica("sq", square_graph)
        with pytest.raises(TypeError, match="immutable"):
            replica.apply_churn([("+", 0, 2)])
        with pytest.raises(TypeError, match="immutable"):
            replica.watch(get_pattern("triangle"))
        assert replica.watch_counts() == {}


class TestDynamicReplica:
    def test_freeze_tracks_versions(self, square_graph):
        replica = Replica("sq", DynamicGraph.from_graph(square_graph))
        g0, v0 = replica.freeze()
        replica.apply_churn([("+", 0, 2)])
        g1, v1 = replica.freeze()
        assert v1 > v0
        assert g1 is not g0
        assert g1.n_edges == g0.n_edges + 1
        # quiescent replica hands out the memoised snapshot object
        g2, v2 = replica.freeze()
        assert g2 is g1 and v2 == v1

    def test_watches_stay_warm_across_churn(self, square_graph):
        replica = Replica("sq", DynamicGraph.from_graph(square_graph))
        handle = replica.watch(get_pattern("triangle"))
        assert handle.count == 0
        replica.apply_churn([("+", 0, 2)])  # one diagonal: two triangles
        assert replica.watch_counts() == {"triangle": 2}
        replica.apply_churn([("-", 0, 2)])
        assert handle.count == 0

    def test_service_watch_counts_match_recount(self, square_graph):
        with MatchService(n_workers=1) as svc:
            replica = svc.add_graph("default", DynamicGraph.from_graph(square_graph))
            handle = svc.watch(get_pattern("triangle"))
            svc.apply_churn([("+", 0, 2), ("+", 1, 3)])
            frozen, _ = replica.freeze()
            direct = svc.count(get_pattern("triangle")).result(timeout=30)
            assert handle.count == direct == 4
            # the stream session's own oracle agrees
            assert replica._stream.expected_counts()["triangle"] == 4
