"""DynamicGraph: incremental counters vs recomputation (property-tested)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph.dynamic import DynamicGraph
from repro.graph.generators import complete_graph, erdos_renyi
from repro.graph.stats import GraphStats, triangle_count


class TestBasics:
    def test_empty(self):
        g = DynamicGraph(5)
        assert g.n_vertices == 5
        assert g.n_edges == 0
        assert g.triangles == 0
        assert g.max_degree == 0

    def test_add_edge_returns_closed_triangles(self):
        g = DynamicGraph(4)
        assert g.add_edge(0, 1) == 0
        assert g.add_edge(1, 2) == 0
        assert g.add_edge(0, 2) == 1  # closes {0,1,2}
        assert g.triangles == 1

    def test_remove_edge_returns_opened_triangles(self):
        g = DynamicGraph(3, [(0, 1), (1, 2), (0, 2)])
        assert g.remove_edge(0, 1) == 1
        assert g.triangles == 0

    def test_duplicate_edge_rejected(self):
        g = DynamicGraph(3, [(0, 1)])
        with pytest.raises(KeyError):
            g.add_edge(1, 0)

    def test_missing_edge_removal_rejected(self):
        g = DynamicGraph(3)
        with pytest.raises(KeyError):
            g.remove_edge(0, 1)

    def test_self_loop_rejected(self):
        with pytest.raises(ValueError):
            DynamicGraph(2).add_edge(1, 1)

    def test_vertex_bounds(self):
        g = DynamicGraph(2)
        with pytest.raises(IndexError):
            g.add_edge(0, 5)
        with pytest.raises(IndexError):
            g.degree(-1)

    def test_add_vertex(self):
        g = DynamicGraph(2, [(0, 1)])
        vid = g.add_vertex()
        assert vid == 2
        g.add_edge(2, 0)
        assert g.n_edges == 2

    def test_neighbors_returns_copy(self):
        g = DynamicGraph(3, [(0, 1)])
        n = g.neighbors(0)
        n.add(99)
        assert g.neighbors(0) == {1}

    def test_edges_iteration(self):
        edges = [(0, 1), (1, 2), (0, 3)]
        g = DynamicGraph(4, edges)
        assert sorted(g.edges()) == sorted(edges)


class TestMaxDegree:
    def test_tracks_insertions(self):
        g = DynamicGraph(5)
        g.add_edge(0, 1)
        g.add_edge(0, 2)
        g.add_edge(0, 3)
        assert g.max_degree == 3

    def test_lazy_recompute_after_deletion(self):
        g = DynamicGraph(5, [(0, 1), (0, 2), (0, 3), (1, 2)])
        assert g.max_degree == 3
        g.remove_edge(0, 3)
        assert g.max_degree == 2

    def test_deletion_not_affecting_max(self):
        g = DynamicGraph(5, [(0, 1), (0, 2), (0, 3), (1, 2)])
        g.remove_edge(1, 2)  # degree-2 endpoints, max stays 3
        assert g.max_degree == 3


class TestSnapshotAndStats:
    def test_snapshot_roundtrip(self):
        und = erdos_renyi(40, 0.15, seed=5)
        dyn = DynamicGraph.from_graph(und)
        snap = dyn.snapshot()
        assert snap.n_vertices == und.n_vertices
        assert snap.n_edges == und.n_edges
        for v in range(und.n_vertices):
            assert np.array_equal(snap.neighbors(v), und.neighbors(v))

    def test_stats_match_recomputation(self):
        und = erdos_renyi(50, 0.2, seed=9)
        dyn = DynamicGraph.from_graph(und)
        assert dyn.stats() == GraphStats.of(und)

    def test_stats_after_mutations(self):
        dyn = DynamicGraph.from_graph(erdos_renyi(40, 0.2, seed=11))
        # remove a few edges, add a few others
        removed = list(dyn.edges())[:10]
        for u, v in removed:
            dyn.remove_edge(u, v)
        for u, v in [(0, 39), (1, 38), (2, 37)]:
            if not dyn.has_edge(u, v):
                dyn.add_edge(u, v)
        assert dyn.stats() == GraphStats.of(dyn.snapshot())

    def test_complete_graph_triangles(self):
        dyn = DynamicGraph.from_graph(complete_graph(8))
        assert dyn.triangles == 8 * 7 * 6 // 6

    def test_snapshot_feeds_matcher(self):
        from repro.core.api import count_pattern
        from repro.pattern.catalog import triangle

        dyn = DynamicGraph(4, [(0, 1), (1, 2), (0, 2), (2, 3)])
        assert count_pattern(dyn.snapshot(), triangle(), use_iep=False) == 1
        dyn.add_edge(1, 3)
        assert count_pattern(dyn.snapshot(), triangle(), use_iep=False) == 2


class TestSnapshotMemo:
    """snapshot() is memoised on the mutation version counter."""

    def test_repeated_snapshot_is_same_object(self):
        dyn = DynamicGraph.from_graph(erdos_renyi(25, 0.2, seed=3))
        assert dyn.snapshot() is dyn.snapshot()

    def test_add_edge_invalidates(self):
        dyn = DynamicGraph(4, [(0, 1), (1, 2)])
        first = dyn.snapshot()
        dyn.add_edge(0, 3)
        second = dyn.snapshot()
        assert second is not first
        assert second.n_edges == 3
        assert second is dyn.snapshot()

    def test_remove_edge_invalidates(self):
        dyn = DynamicGraph(4, [(0, 1), (1, 2)])
        first = dyn.snapshot()
        dyn.remove_edge(1, 2)
        assert dyn.snapshot() is not first
        assert dyn.snapshot().n_edges == 1

    def test_add_vertex_invalidates(self):
        dyn = DynamicGraph(3, [(0, 1)])
        first = dyn.snapshot()
        dyn.add_vertex()
        assert dyn.snapshot() is not first
        assert dyn.snapshot().n_vertices == 4

    def test_rejected_mutation_keeps_memo(self):
        dyn = DynamicGraph(3, [(0, 1)])
        first = dyn.snapshot()
        version = dyn.version
        with pytest.raises(KeyError):
            dyn.add_edge(0, 1)
        with pytest.raises(KeyError):
            dyn.remove_edge(1, 2)
        with pytest.raises(ValueError):
            dyn.add_edge(2, 2)
        assert dyn.version == version
        assert dyn.snapshot() is first

    def test_version_counts_successful_mutations(self):
        dyn = DynamicGraph(3)
        v0 = dyn.version
        dyn.add_edge(0, 1)
        dyn.add_vertex()
        dyn.remove_edge(0, 1)
        assert dyn.version == v0 + 3

    def test_name_change_rebuilds(self):
        dyn = DynamicGraph(3, [(0, 1)])
        anon = dyn.snapshot()
        named = dyn.snapshot(name="churn")
        assert named is not anon
        assert named.name == "churn"
        assert dyn.snapshot(name="churn") is named


@settings(max_examples=30, deadline=None)
@given(
    st.lists(
        st.tuples(st.integers(0, 11), st.integers(0, 11), st.booleans()),
        max_size=80,
    )
)
def test_property_counters_never_drift(ops):
    """Random interleaved insertions/deletions: the incremental triangle
    count, edge count and max degree always equal recomputation."""
    dyn = DynamicGraph(12)
    for u, v, insert in ops:
        if u == v:
            continue
        if insert:
            if not dyn.has_edge(u, v):
                dyn.add_edge(u, v)
        else:
            if dyn.has_edge(u, v):
                dyn.remove_edge(u, v)
    snap = dyn.snapshot()
    assert dyn.n_edges == snap.n_edges
    assert dyn.triangles == triangle_count(snap)
    assert dyn.max_degree == (int(snap.degrees.max()) if snap.n_edges else 0)
    assert dyn.stats() == GraphStats.of(snap)


@settings(max_examples=15, deadline=None)
@given(st.integers(4, 30), st.integers(0, 10_000))
def test_property_insert_then_delete_is_identity(n, seed):
    """Adding and removing the same random edge leaves all counters intact."""
    und = erdos_renyi(n, 0.3, seed=seed)
    dyn = DynamicGraph.from_graph(und)
    before = (dyn.n_edges, dyn.triangles, dyn.stats())
    u, v = None, None
    for a in range(n):
        for b in range(a + 1, n):
            if not dyn.has_edge(a, b):
                u, v = a, b
                break
        if u is not None:
            break
    if u is None:  # complete graph: delete-then-add instead
        u, v = 0, 1
        opened = dyn.remove_edge(u, v)
        closed = dyn.add_edge(u, v)
        assert opened == closed
    else:
        closed = dyn.add_edge(u, v)
        opened = dyn.remove_edge(u, v)
        assert closed == opened
    assert (dyn.n_edges, dyn.triangles, dyn.stats()) == before
