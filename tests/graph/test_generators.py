"""Synthetic graph generators: determinism, shape and degree structure."""

import numpy as np
import pytest

from repro.graph.generators import (
    barabasi_albert,
    chung_lu,
    complete_graph,
    empty_graph,
    erdos_renyi,
    random_power_law,
    watts_strogatz,
)


class TestCompleteGraph:
    def test_k5(self):
        g = complete_graph(5)
        assert g.n_vertices == 5
        assert g.n_edges == 10
        for u in range(5):
            for v in range(5):
                assert g.has_edge(u, v) == (u != v)

    def test_k1(self):
        g = complete_graph(1)
        assert g.n_vertices == 1 and g.n_edges == 0


class TestErdosRenyi:
    def test_deterministic(self):
        a = erdos_renyi(100, 0.1, seed=5)
        b = erdos_renyi(100, 0.1, seed=5)
        assert a == b

    def test_seed_changes_graph(self):
        assert erdos_renyi(100, 0.1, seed=5) != erdos_renyi(100, 0.1, seed=6)

    def test_p_zero_and_one(self):
        assert erdos_renyi(10, 0.0, seed=1).n_edges == 0
        assert erdos_renyi(10, 1.0, seed=1).n_edges == 45

    def test_edge_count_near_expectation(self):
        n, p = 300, 0.05
        g = erdos_renyi(n, p, seed=7)
        expected = p * n * (n - 1) / 2
        assert abs(g.n_edges - expected) < 4 * np.sqrt(expected)

    def test_vertex_count_includes_isolated(self):
        g = erdos_renyi(50, 0.01, seed=3)
        assert g.n_vertices == 50

    def test_invalid_p(self):
        with pytest.raises(ValueError):
            erdos_renyi(10, 1.5)


class TestBarabasiAlbert:
    def test_edge_count(self):
        g = barabasi_albert(200, m=3, seed=1)
        # Each of the n-m new vertices adds exactly m edges (dedup may
        # remove a handful when a target is drawn twice - we add to a set,
        # so exactly m distinct targets per new vertex).
        assert g.n_edges == (200 - 3) * 3

    def test_heavy_tail(self):
        g = barabasi_albert(500, m=2, seed=2)
        degrees = np.sort(g.degrees)[::-1]
        # Hubs dominate: top degree far above the median.
        assert degrees[0] > 4 * np.median(degrees)

    def test_deterministic(self):
        assert barabasi_albert(100, 2, seed=9) == barabasi_albert(100, 2, seed=9)

    def test_m_ge_n_rejected(self):
        with pytest.raises(ValueError):
            barabasi_albert(5, 5)

    def test_connected(self):
        # BA graphs are connected by construction.
        g = barabasi_albert(100, 2, seed=4)
        seen = {0}
        stack = [0]
        while stack:
            v = stack.pop()
            for u in g.neighbors(v):
                if int(u) not in seen:
                    seen.add(int(u))
                    stack.append(int(u))
        assert len(seen) == 100


class TestChungLu:
    def test_expected_degrees_tracked(self):
        rng = np.random.default_rng(0)
        w = rng.uniform(2, 10, size=400)
        g = chung_lu(w, seed=1)
        # Mean degree should be near mean weight.
        assert g.avg_degree == pytest.approx(w.mean(), rel=0.25)

    def test_zero_weights(self):
        g = chung_lu(np.zeros(5), seed=1)
        assert g.n_edges == 0 and g.n_vertices == 5

    def test_negative_weight_rejected(self):
        with pytest.raises(ValueError):
            chung_lu(np.array([1.0, -2.0]))

    def test_empty_weights_rejected(self):
        with pytest.raises(ValueError):
            chung_lu(np.array([]))


class TestPowerLaw:
    def test_avg_degree_close(self):
        g = random_power_law(800, avg_degree=10.0, exponent=2.5, seed=11)
        assert g.avg_degree == pytest.approx(10.0, rel=0.35)

    def test_skew_grows_with_lower_exponent(self):
        heavy = random_power_law(800, 8.0, exponent=2.05, seed=1)
        light = random_power_law(800, 8.0, exponent=3.5, seed=1)
        assert heavy.max_degree > light.max_degree

    def test_invalid_exponent(self):
        with pytest.raises(ValueError):
            random_power_law(10, 2.0, exponent=1.0)


class TestWattsStrogatz:
    def test_no_rewiring_is_ring_lattice(self):
        g = watts_strogatz(20, k=2, beta=0.0, seed=1)
        assert g.n_edges == 40
        for v in range(20):
            assert g.degree(v) == 4

    def test_edge_count_stable_under_rewiring(self):
        g = watts_strogatz(100, k=3, beta=0.5, seed=2)
        # Rewiring can only lose edges to the dedup retry cap, never gain.
        assert 0.9 * 300 <= g.n_edges <= 300

    def test_clustering_decreases_with_beta(self):
        from repro.graph.stats import global_clustering

        low = watts_strogatz(300, k=4, beta=0.0, seed=3)
        high = watts_strogatz(300, k=4, beta=0.9, seed=3)
        assert global_clustering(low) > global_clustering(high)

    def test_needs_n_over_2k(self):
        with pytest.raises(ValueError):
            watts_strogatz(6, k=3, beta=0.1)


def test_empty_graph_zero_vertices():
    g = empty_graph(0)
    assert g.n_vertices == 0


class TestRmat:
    def test_size_and_determinism(self):
        from repro.graph.generators import rmat

        g1 = rmat(8, edge_factor=8, seed=5)
        g2 = rmat(8, edge_factor=8, seed=5)
        assert g1.n_vertices == 256
        # dedup/self-loop removal only shrinks the requested count
        assert 0 < g1.n_edges <= 8 * 256
        assert np.array_equal(g1.indices, g2.indices)

    def test_seeds_differ(self):
        from repro.graph.generators import rmat

        a = rmat(7, seed=1)
        b = rmat(7, seed=2)
        assert not np.array_equal(a.indices, b.indices)

    def test_degree_skew(self):
        """Graph500 parameters produce heavy-tailed degrees: the max
        degree dwarfs the mean (unlike ER at the same density)."""
        from repro.graph.generators import erdos_renyi, rmat

        g = rmat(10, edge_factor=8, seed=9)
        mean_deg = 2 * g.n_edges / g.n_vertices
        assert g.max_degree > 6 * mean_deg
        er = erdos_renyi(g.n_vertices, 2 * g.n_edges / g.n_vertices**2, seed=9)
        assert g.max_degree > 2 * er.max_degree

    def test_invalid_probabilities(self):
        from repro.graph.generators import rmat

        with pytest.raises(ValueError, match="partition"):
            rmat(5, a=0.8, b=0.3, c=0.2)

    def test_invalid_sizes(self):
        from repro.graph.generators import rmat

        with pytest.raises(ValueError):
            rmat(0)
        with pytest.raises(ValueError):
            rmat(5, edge_factor=0)

    def test_matcher_runs_on_rmat(self):
        from repro.core.api import count_pattern
        from repro.graph.generators import rmat
        from repro.pattern.catalog import triangle

        g = rmat(7, edge_factor=4, seed=11)
        from repro.baselines.bruteforce import bruteforce_count

        assert count_pattern(g, triangle(), use_iep=False) == bruteforce_count(
            g, triangle()
        )
