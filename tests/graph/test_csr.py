"""CSR graph invariants and accessors."""

import numpy as np
import pytest

from repro.graph.builder import graph_from_edges
from repro.graph.csr import Graph
from repro.graph.generators import complete_graph, empty_graph


@pytest.fixture
def path4():
    return graph_from_edges([(0, 1), (1, 2), (2, 3)])


class TestConstruction:
    def test_counts(self, path4):
        assert path4.n_vertices == 4
        assert path4.n_edges == 3

    def test_neighbors_sorted(self, path4):
        for v in range(4):
            nbrs = path4.neighbors(v)
            assert np.all(np.diff(nbrs) > 0)

    def test_degree(self, path4):
        assert [path4.degree(v) for v in range(4)] == [1, 2, 2, 1]
        assert path4.degrees.tolist() == [1, 2, 2, 1]
        assert path4.max_degree == 2
        assert path4.avg_degree == pytest.approx(1.5)

    def test_rejects_malformed_indptr(self):
        with pytest.raises(ValueError):
            Graph(np.array([1, 2]), np.array([0]))

    def test_rejects_decreasing_indptr(self):
        with pytest.raises(ValueError):
            Graph(np.array([0, 2, 1, 2]), np.array([1, 0]))

    def test_rejects_out_of_range_neighbor(self):
        with pytest.raises(ValueError):
            Graph(np.array([0, 1, 2]), np.array([0, 5]))

    def test_rejects_unsorted_rows(self):
        # vertex 0 -> [2, 1] unsorted
        with pytest.raises(ValueError):
            Graph(np.array([0, 2, 3, 4]), np.array([2, 1, 0, 0]))

    def test_rejects_duplicate_neighbors(self):
        with pytest.raises(ValueError):
            Graph(np.array([0, 2, 4]), np.array([1, 1, 0, 0]))

    def test_rejects_self_loop(self):
        with pytest.raises(ValueError, match="self-loop"):
            Graph(np.array([0, 1, 2]), np.array([0, 0]))


class TestQueries:
    def test_has_edge_symmetric(self, path4):
        assert path4.has_edge(0, 1) and path4.has_edge(1, 0)
        assert not path4.has_edge(0, 2)
        assert not path4.has_edge(0, 0)

    def test_has_edge_out_of_range(self, path4):
        assert not path4.has_edge(-1, 2)
        assert not path4.has_edge(0, 99)

    def test_edges_iteration(self, path4):
        assert sorted(path4.edges()) == [(0, 1), (1, 2), (2, 3)]

    def test_edges_each_once(self):
        g = complete_graph(5)
        edges = list(g.edges())
        assert len(edges) == 10
        assert len(set(edges)) == 10
        assert all(u < v for u, v in edges)

    def test_vertices(self, path4):
        assert path4.vertices().tolist() == [0, 1, 2, 3]


class TestTransforms:
    def test_subgraph_of_path(self, path4):
        sub = path4.subgraph(np.array([1, 2, 3]))
        assert sub.n_vertices == 3
        assert sorted(sub.edges()) == [(0, 1), (1, 2)]

    def test_subgraph_drops_external_edges(self, path4):
        sub = path4.subgraph(np.array([0, 2]))
        assert sub.n_vertices == 2
        assert list(sub.edges()) == []

    def test_relabel_by_degree_preserves_structure(self):
        g = graph_from_edges([(0, 1), (0, 2), (0, 3), (1, 2)])
        r = g.relabel_by_degree()
        assert r.n_vertices == g.n_vertices
        assert r.n_edges == g.n_edges
        assert r.degree(0) == g.max_degree  # hub first
        assert sorted(r.degrees.tolist()) == sorted(g.degrees.tolist())

    def test_empty_graph(self):
        g = empty_graph(5)
        assert g.n_vertices == 5
        assert g.n_edges == 0
        assert list(g.edges()) == []


class TestDunder:
    def test_equality(self, path4):
        other = graph_from_edges([(0, 1), (1, 2), (2, 3)])
        assert path4 == other
        assert hash(path4) == hash(other)

    def test_inequality(self, path4):
        other = graph_from_edges([(0, 1), (1, 2), (0, 3)])
        assert path4 != other

    def test_eq_other_type(self, path4):
        assert path4 != "graph"
