"""Graph statistics: triangle counting and the p1/p2 estimators."""

import numpy as np
import pytest

from repro.graph.builder import graph_from_edges
from repro.graph.generators import complete_graph, erdos_renyi
from repro.graph.stats import (
    DegreeStats,
    GraphStats,
    _triangle_count_merge,
    degree_histogram,
    degree_statistics,
    global_clustering,
    triangle_count,
    wedge_count,
)


class TestTriangleCount:
    def test_single_triangle(self):
        g = graph_from_edges([(0, 1), (1, 2), (0, 2)])
        assert triangle_count(g) == 1

    def test_square_no_triangles(self):
        g = graph_from_edges([(0, 1), (1, 2), (2, 3), (3, 0)])
        assert triangle_count(g) == 0

    def test_complete_graph(self):
        # C(n,3) triangles in K_n.
        for n in (3, 4, 5, 6, 7):
            assert triangle_count(complete_graph(n)) == n * (n - 1) * (n - 2) // 6

    def test_empty(self):
        g = graph_from_edges([(0, 1)])
        assert triangle_count(g) == 0

    def test_scipy_and_merge_agree(self):
        g = erdos_renyi(80, 0.15, seed=21)
        assert triangle_count(g) == _triangle_count_merge(g)


class TestWedgesAndClustering:
    def test_wedges_of_star(self):
        g = graph_from_edges([(0, 1), (0, 2), (0, 3)])
        assert wedge_count(g) == 3  # C(3,2) centred at the hub

    def test_clustering_of_clique_is_one(self):
        assert global_clustering(complete_graph(6)) == pytest.approx(1.0)

    def test_clustering_of_star_is_zero(self):
        g = graph_from_edges([(0, i) for i in range(1, 6)])
        assert global_clustering(g) == 0.0

    def test_degree_histogram(self):
        g = graph_from_edges([(0, 1), (0, 2), (0, 3)])
        hist = degree_histogram(g)
        assert hist[1] == 3 and hist[3] == 1


class TestGraphStats:
    def test_of(self):
        g = complete_graph(5)
        s = GraphStats.of(g)
        assert s.n_vertices == 5
        assert s.n_edges == 10
        assert s.triangles == 10
        assert s.max_degree == 4
        assert s.tri_cnt == 60  # 6 embeddings per distinct triangle

    def test_p1_complete_graph(self):
        s = GraphStats.of(complete_graph(10))
        # p1 = 2E/V^2 = 90/100
        assert s.p1 == pytest.approx(0.9)

    def test_p2_complete_graph(self):
        s = GraphStats.of(complete_graph(10))
        # tri_cnt * V / (2E)^2 = 720*10 / 8100 ≈ 0.888 — close to 1 as
        # the estimator's independence assumption intends for cliques.
        assert 0.5 < s.p2 <= 1.1

    def test_expected_candidate_size_base_cases(self):
        s = GraphStats.of(complete_graph(10))
        assert s.expected_candidate_size(0) == 10.0
        assert s.expected_candidate_size(1) == pytest.approx(s.avg_degree)

    def test_expected_candidate_size_decreases(self):
        g = erdos_renyi(200, 0.08, seed=5)
        s = GraphStats.of(g)
        sizes = [s.expected_candidate_size(x) for x in range(4)]
        assert all(sizes[i] >= sizes[i + 1] for i in range(3))

    def test_negative_neighborhoods_rejected(self):
        s = GraphStats.of(complete_graph(4))
        with pytest.raises(ValueError):
            s.expected_candidate_size(-1)

    def test_describe_mentions_key_numbers(self):
        s = GraphStats.of(complete_graph(4))
        text = s.describe()
        assert "|V|=4" in text and "|E|=6" in text

    def test_empty_graph_stats(self):
        from repro.graph.generators import empty_graph

        s = GraphStats.of(empty_graph(4))
        assert s.p1 == 0.0 and s.p2 == 0.0 and s.avg_degree == 0.0


class TestDegreeStats:
    """The O(1) degree-only summary feeding runtime cost gates."""

    def test_matches_graphstats_on_shared_quantities(self):
        g = erdos_renyi(120, 0.1, seed=3)
        full = GraphStats.of(g)
        cheap = degree_statistics(g)
        assert cheap.n_vertices == full.n_vertices
        assert cheap.n_edges == full.n_edges
        assert cheap.avg_degree == pytest.approx(full.avg_degree)
        assert cheap.p1 == pytest.approx(full.p1)

    def test_expected_pool_size_base_cases(self):
        s = DegreeStats.of(complete_graph(10))
        assert s.expected_pool_size(0) == 10.0
        assert s.expected_pool_size(1) == pytest.approx(10.0 * s.p1)

    def test_expected_pool_size_agrees_with_full_estimator_at_one(self):
        # The proxy and the paper's estimator coincide at n=1 (both are
        # V * p1); beyond that they diverge only through p2 vs p1.
        g = erdos_renyi(150, 0.15, seed=11)
        full = GraphStats.of(g)
        cheap = DegreeStats.of(g)
        assert cheap.expected_pool_size(1) == pytest.approx(
            full.expected_candidate_size(1)
        )

    def test_expected_pool_size_decreases(self):
        s = DegreeStats.of(erdos_renyi(200, 0.08, seed=5))
        sizes = [s.expected_pool_size(k) for k in range(4)]
        assert all(sizes[i] >= sizes[i + 1] for i in range(3))

    def test_negative_neighborhoods_rejected(self):
        with pytest.raises(ValueError):
            DegreeStats.of(complete_graph(4)).expected_pool_size(-1)

    def test_empty_graph(self):
        from repro.graph.generators import empty_graph

        s = degree_statistics(empty_graph(5))
        assert s.avg_degree == 0.0 and s.p1 == 0.0
