"""Vertex orderings: invariants and the degeneracy guarantee."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.api import count_pattern
from repro.graph.builder import graph_from_edges
from repro.graph.generators import complete_graph, erdos_renyi, random_power_law
from repro.graph.orientation import (
    apply_order,
    degeneracy_order,
    degree_order,
    oriented_out_degrees,
    relabel_by_degeneracy,
    relabel_by_degree,
)
from repro.pattern.catalog import clique, house, triangle


class TestDegreeOrder:
    def test_degrees_ascend(self):
        g = random_power_law(80, avg_degree=6.0, exponent=2.3, seed=3)
        order = degree_order(g)
        degs = g.degrees[order]
        assert np.all(np.diff(degs) >= 0)

    def test_is_permutation(self):
        g = erdos_renyi(50, 0.1, seed=1)
        assert sorted(degree_order(g).tolist()) == list(range(50))


class TestDegeneracyOrder:
    def test_tree_degeneracy_one(self):
        g = graph_from_edges([(i, i + 1) for i in range(20)] + [(0, 21), (0, 22)])
        _, d = degeneracy_order(g)
        assert d == 1

    def test_clique_degeneracy(self):
        _, d = degeneracy_order(complete_graph(6))
        assert d == 5

    def test_cycle_degeneracy_two(self):
        g = graph_from_edges([(i, (i + 1) % 12) for i in range(12)])
        _, d = degeneracy_order(g)
        assert d == 2

    def test_out_degree_bound(self):
        """The defining property: each vertex has at most `degeneracy`
        neighbours later in the order."""
        g = random_power_law(120, avg_degree=7.0, exponent=2.2, seed=5)
        order, d = degeneracy_order(g)
        assert int(oriented_out_degrees(g, order).max()) <= d

    def test_degeneracy_below_max_degree_on_skewed_graph(self):
        g = random_power_law(200, avg_degree=6.0, exponent=2.1, seed=7)
        _, d = degeneracy_order(g)
        assert d < g.max_degree


class TestApplyOrder:
    def test_identity_order(self):
        g = erdos_renyi(30, 0.2, seed=9)
        h, perm = apply_order(g, np.arange(30))
        assert np.array_equal(h.indices, g.indices)
        assert np.array_equal(perm, np.arange(30))

    def test_bad_order_rejected(self):
        g = erdos_renyi(10, 0.3, seed=1)
        with pytest.raises(ValueError, match="permutation"):
            apply_order(g, np.zeros(10, dtype=int))

    def test_edges_preserved(self):
        g = erdos_renyi(40, 0.15, seed=11)
        h, perm = relabel_by_degree(g)
        assert h.n_edges == g.n_edges
        for u in range(g.n_vertices):
            for v in g.neighbors(u):
                assert h.has_edge(int(perm[u]), int(perm[int(v)]))

    def test_counts_invariant_under_relabeling(self):
        g = random_power_law(80, avg_degree=6.0, exponent=2.3, seed=13)
        for relabel in (relabel_by_degree, relabel_by_degeneracy):
            h, _ = relabel(g)
            for p in (triangle(), clique(4), house()):
                assert count_pattern(h, p, use_iep=False) == count_pattern(
                    g, p, use_iep=False
                )

    def test_roundtrip_mapping(self):
        g = erdos_renyi(25, 0.25, seed=15)
        order = degree_order(g)
        h, perm = apply_order(g, order)
        # order[new] = old and perm[old] = new are inverse
        assert np.array_equal(order[perm], np.arange(25))


@settings(max_examples=20, deadline=None)
@given(st.integers(5, 40), st.integers(0, 1000))
def test_property_degeneracy_order_bound(n, seed):
    g = erdos_renyi(n, 0.25, seed=seed)
    order, d = degeneracy_order(g)
    assert sorted(order.tolist()) == list(range(n))
    assert int(oriented_out_degrees(g, order).max(initial=0)) <= d
    # degeneracy is at most the max degree, at least (min degree of any subgraph)
    assert d <= max(int(g.degrees.max(initial=0)), 0)
