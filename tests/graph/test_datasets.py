"""Dataset proxies: registry, determinism, caching, scaling."""

import pytest

from repro.graph.datasets import (
    DATASETS,
    SINGLE_NODE_DATASETS,
    clear_memo,
    dataset_names,
    load_dataset,
)


class TestRegistry:
    def test_all_six_paper_graphs_present(self):
        assert set(dataset_names()) == {
            "wiki-vote",
            "mico",
            "patents",
            "livejournal",
            "orkut",
            "twitter",
        }

    def test_single_node_set_excludes_twitter(self):
        assert "twitter" not in SINGLE_NODE_DATASETS
        assert len(SINGLE_NODE_DATASETS) == 5

    def test_specs_have_paper_sizes(self):
        assert DATASETS["twitter"].paper_edges == "1.2B"
        assert DATASETS["wiki-vote"].paper_vertices == "7.1K"


class TestLoading:
    def test_unknown_name(self):
        with pytest.raises(KeyError):
            load_dataset("facebook")

    def test_deterministic(self):
        clear_memo()
        a = load_dataset("wiki-vote", scale=0.1, seed=1)
        clear_memo()
        b = load_dataset("wiki-vote", scale=0.1, seed=1)
        assert a == b

    def test_memoised(self):
        clear_memo()
        a = load_dataset("wiki-vote", scale=0.1, seed=1)
        b = load_dataset("wiki-vote", scale=0.1, seed=1)
        assert a is b

    def test_scale_changes_size(self):
        clear_memo()
        small = load_dataset("mico", scale=0.05, seed=2)
        large = load_dataset("mico", scale=0.2, seed=2)
        assert large.n_vertices > small.n_vertices

    def test_named(self):
        g = load_dataset("orkut", scale=0.05, seed=3)
        assert g.name == "orkut"

    def test_real_file_bypass(self, tmp_path):
        f = tmp_path / "real.txt"
        f.write_text("0 1\n1 2\n")
        g = load_dataset("wiki-vote", path=f)
        assert g.n_edges == 2

    def test_disk_cache(self, tmp_path):
        clear_memo()
        a = load_dataset("patents", scale=0.02, seed=4, cache_dir=tmp_path)
        clear_memo()
        b = load_dataset("patents", scale=0.02, seed=4, cache_dir=tmp_path)
        assert a == b
        assert any(p.suffix == ".npz" for p in tmp_path.iterdir())


class TestProxyCharacter:
    """The proxies must preserve the *regime* of each paper graph."""

    def test_orkut_denser_than_livejournal(self):
        lj = load_dataset("livejournal", scale=0.08, seed=7)
        ok = load_dataset("orkut", scale=0.08, seed=7)
        assert ok.avg_degree > lj.avg_degree

    def test_patents_clustered(self):
        from repro.graph.stats import global_clustering

        patents = load_dataset("patents", scale=0.05, seed=7)
        assert global_clustering(patents) > 0.1  # WS lattice remnants

    def test_powerlaw_proxies_are_skewed(self):
        wiki = load_dataset("wiki-vote", scale=0.5, seed=7)
        assert wiki.max_degree > 5 * wiki.avg_degree
