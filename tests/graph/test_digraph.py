"""DiGraph: construction invariants, accessors, generators."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph.digraph import (
    DiGraph,
    digraph_from_edges,
    price_citation_graph,
    random_digraph,
)
from repro.graph.generators import erdos_renyi


class TestConstruction:
    def test_basic(self):
        g = digraph_from_edges([(0, 1), (1, 2), (2, 0)])
        assert g.n_vertices == 3
        assert g.n_arcs == 3
        assert g.has_arc(0, 1) and not g.has_arc(1, 0)

    def test_duplicates_removed(self):
        g = digraph_from_edges([(0, 1), (0, 1), (1, 0)])
        assert g.n_arcs == 2  # antiparallel pair kept, duplicate dropped

    def test_self_loops_dropped(self):
        g = digraph_from_edges([(0, 1), (1, 1)])
        assert g.n_arcs == 1

    def test_n_vertices_padding(self):
        g = digraph_from_edges([(0, 1)], n_vertices=5)
        assert g.n_vertices == 5
        assert g.out_degree(4) == 0 and g.in_degree(4) == 0

    def test_n_vertices_too_small_rejected(self):
        with pytest.raises(ValueError, match="references vertex"):
            digraph_from_edges([(0, 9)], n_vertices=3)

    def test_negative_ids_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            digraph_from_edges([(-1, 2)])

    def test_inconsistent_in_out_rejected(self):
        # out says 0->1; in says the arc is 1->0.
        with pytest.raises(ValueError, match="different arc sets"):
            DiGraph(
                out_indptr=np.array([0, 1, 1]),
                out_indices=np.array([1]),
                in_indptr=np.array([0, 1, 1]),
                in_indices=np.array([1]),
            )

    def test_unsorted_rows_rejected(self):
        with pytest.raises(ValueError, match="strictly increasing"):
            DiGraph(
                out_indptr=np.array([0, 2, 2, 2]),
                out_indices=np.array([2, 1]),
                in_indptr=np.array([0, 0, 1, 2]),
                in_indices=np.array([0, 0]),
            )


class TestAccessors:
    def test_degrees(self):
        g = digraph_from_edges([(0, 1), (0, 2), (1, 2)])
        assert g.out_degree(0) == 2 and g.in_degree(0) == 0
        assert g.out_degree(2) == 0 and g.in_degree(2) == 2

    def test_neighbor_arrays_sorted(self):
        g = random_digraph(30, 0.3, seed=7)
        for v in range(g.n_vertices):
            for arr in (g.out_neighbors(v), g.in_neighbors(v)):
                assert np.all(np.diff(arr) > 0)

    def test_arcs_roundtrip(self):
        arcs = [(0, 1), (2, 1), (1, 3), (3, 0)]
        g = digraph_from_edges(arcs)
        assert sorted(g.arcs()) == sorted(arcs)

    def test_out_in_duality(self):
        g = random_digraph(25, 0.2, seed=11)
        for u, v in g.arcs():
            assert u in g.in_neighbors(v)


class TestConversions:
    def test_to_undirected_merges_antiparallel(self):
        g = digraph_from_edges([(0, 1), (1, 0), (1, 2)])
        u = g.to_undirected()
        assert u.n_edges == 2

    def test_from_undirected_symmetric(self):
        und = erdos_renyi(40, 0.2, seed=3)
        d = DiGraph.from_undirected(und)
        assert d.n_arcs == 2 * und.n_edges
        for u, v in list(d.arcs())[:100]:
            assert d.has_arc(v, u)

    def test_roundtrip_through_undirected(self):
        und = erdos_renyi(30, 0.25, seed=5)
        assert DiGraph.from_undirected(und).to_undirected().n_edges == und.n_edges

    def test_to_undirected_preserves_isolated(self):
        g = digraph_from_edges([(0, 1)], n_vertices=4)
        assert g.to_undirected().n_vertices == 4


class TestGenerators:
    def test_random_digraph_seeded(self):
        a = random_digraph(50, 0.1, seed=42)
        b = random_digraph(50, 0.1, seed=42)
        assert np.array_equal(a.out_indices, b.out_indices)

    def test_random_digraph_density(self):
        g = random_digraph(100, 0.1, seed=1)
        expected = 0.1 * 100 * 99
        assert 0.6 * expected < g.n_arcs < 1.4 * expected

    def test_random_digraph_bad_p(self):
        with pytest.raises(ValueError):
            random_digraph(10, 1.5)

    def test_price_model_acyclic(self):
        g = price_citation_graph(60, out_degree=3, seed=9)
        # every arc points from later to earlier vertex: a DAG by construction
        for u, v in g.arcs():
            assert u > v

    def test_price_model_skewed_indegree(self):
        g = price_citation_graph(300, out_degree=3, seed=13)
        indegs = sorted(g.in_degree(v) for v in range(g.n_vertices))
        # preferential attachment: max in-degree far above the median
        assert indegs[-1] >= 5 * max(1, indegs[len(indegs) // 2])

    def test_price_model_too_small(self):
        with pytest.raises(ValueError):
            price_citation_graph(1)


@settings(max_examples=25, deadline=None)
@given(
    st.lists(
        st.tuples(st.integers(0, 14), st.integers(0, 14)),
        max_size=60,
    )
)
def test_property_construction_invariants(edges):
    g = digraph_from_edges(edges) if edges else None
    if g is None:
        return
    # out and in arc multisets agree
    assert sorted(g.arcs()) == sorted((int(u), int(v)) for v in range(g.n_vertices)
                                      for u in g.in_neighbors(v))
    # no self loops survived
    assert all(u != v for u, v in g.arcs())
    # degree sums match arc count
    assert sum(g.out_degree(v) for v in range(g.n_vertices)) == g.n_arcs
    assert sum(g.in_degree(v) for v in range(g.n_vertices)) == g.n_arcs
