"""Sorted-array set algebra: every kernel against Python set semantics."""

import numpy as np
import pytest

from repro.graph.intersection import (
    KERNELS,
    VERTEX_DTYPE,
    bounded_count,
    bounded_slice,
    contains,
    count_members,
    difference,
    empty_vertex_array,
    intersect,
    intersect_count,
    intersect_galloping,
    intersect_many,
    intersect_merge,
    intersect_searchsorted,
)


def arr(*xs):
    return np.asarray(xs, dtype=VERTEX_DTYPE)


ALL_KERNELS = [intersect_merge, intersect_searchsorted, intersect_galloping, intersect]


@pytest.mark.parametrize("kernel", ALL_KERNELS, ids=lambda f: f.__name__)
class TestKernels:
    def test_basic_overlap(self, kernel):
        assert kernel(arr(1, 3, 5, 7), arr(3, 4, 5, 6)).tolist() == [3, 5]

    def test_disjoint(self, kernel):
        assert kernel(arr(1, 2), arr(3, 4)).tolist() == []

    def test_identical(self, kernel):
        assert kernel(arr(2, 4, 6), arr(2, 4, 6)).tolist() == [2, 4, 6]

    def test_one_empty(self, kernel):
        assert kernel(arr(), arr(1, 2)).tolist() == []
        assert kernel(arr(1, 2), arr()).tolist() == []

    def test_both_empty(self, kernel):
        assert kernel(arr(), arr()).tolist() == []

    def test_subset(self, kernel):
        assert kernel(arr(2, 5), arr(1, 2, 3, 5, 9)).tolist() == [2, 5]

    def test_single_elements(self, kernel):
        assert kernel(arr(5), arr(5)).tolist() == [5]
        assert kernel(arr(5), arr(6)).tolist() == []

    def test_extreme_size_imbalance(self, kernel):
        big = np.arange(0, 10_000, 3, dtype=VERTEX_DTYPE)
        small = arr(3, 9999, 9998, 9996)[np.argsort(arr(3, 9999, 9998, 9996))]
        small = np.unique(small)
        expected = sorted(set(big.tolist()) & set(small.tolist()))
        assert kernel(small, big).tolist() == expected

    def test_matches_set_semantics_randomised(self, kernel):
        rng = np.random.default_rng(42)
        for _ in range(25):
            a = np.unique(rng.integers(0, 200, size=rng.integers(0, 60)))
            b = np.unique(rng.integers(0, 200, size=rng.integers(0, 60)))
            expected = sorted(set(a.tolist()) & set(b.tolist()))
            got = kernel(a.astype(VERTEX_DTYPE), b.astype(VERTEX_DTYPE))
            assert got.tolist() == expected

    def test_result_sorted_strictly(self, kernel):
        rng = np.random.default_rng(7)
        a = np.unique(rng.integers(0, 100, size=50)).astype(VERTEX_DTYPE)
        b = np.unique(rng.integers(0, 100, size=50)).astype(VERTEX_DTYPE)
        out = kernel(a, b)
        assert np.all(np.diff(out) > 0)


class TestIntersectMany:
    def test_three_way(self):
        out = intersect_many([arr(1, 2, 3, 4), arr(2, 3, 4, 5), arr(3, 4, 9)])
        assert out.tolist() == [3, 4]

    def test_single_array(self):
        assert intersect_many([arr(1, 2)]).tolist() == [1, 2]

    def test_empty_list_raises(self):
        with pytest.raises(ValueError):
            intersect_many([])

    def test_short_circuits_on_empty(self):
        out = intersect_many([arr(), arr(1, 2), arr(2, 3)])
        assert out.tolist() == []


class TestCounts:
    def test_intersect_count_matches_len(self):
        rng = np.random.default_rng(3)
        for _ in range(20):
            a = np.unique(rng.integers(0, 80, size=30)).astype(VERTEX_DTYPE)
            b = np.unique(rng.integers(0, 80, size=30)).astype(VERTEX_DTYPE)
            assert intersect_count(a, b) == len(intersect(a, b))

    def test_contains(self):
        a = arr(1, 4, 6, 9)
        assert contains(a, 4) and contains(a, 1) and contains(a, 9)
        assert not contains(a, 5) and not contains(a, 0) and not contains(a, 10)

    def test_contains_empty(self):
        assert not contains(arr(), 3)

    def test_count_members(self):
        assert count_members(arr(1, 3, 5), [1, 2, 5, 5]) == 3  # 5 tested twice

    def test_difference(self):
        assert difference(arr(1, 2, 3, 4), arr(2, 4)).tolist() == [1, 3]
        assert difference(arr(1, 2), arr()).tolist() == [1, 2]


class TestBoundedSlice:
    def test_open_interval(self):
        a = arr(1, 3, 5, 7, 9)
        assert bounded_slice(a, 3, 9).tolist() == [5, 7]

    def test_lower_only(self):
        assert bounded_slice(arr(1, 3, 5), 1, None).tolist() == [3, 5]

    def test_upper_only(self):
        assert bounded_slice(arr(1, 3, 5), None, 5).tolist() == [1, 3]

    def test_unbounded(self):
        assert bounded_slice(arr(1, 3), None, None).tolist() == [1, 3]

    def test_empty_window(self):
        assert bounded_slice(arr(1, 3, 5), 3, 3).tolist() == []
        assert bounded_slice(arr(1, 3, 5), 5, 3).tolist() == []

    def test_bounds_not_in_array(self):
        assert bounded_slice(arr(1, 3, 5, 7), 2, 6).tolist() == [3, 5]

    def test_bounded_count_matches(self):
        rng = np.random.default_rng(9)
        a = np.unique(rng.integers(0, 50, size=30)).astype(VERTEX_DTYPE)
        for lo in [None, 0, 10, 25, 60]:
            for hi in [None, 0, 10, 25, 60]:
                assert bounded_count(a, lo, hi) == len(bounded_slice(a, lo, hi))

    def test_exclusive_semantics(self):
        # (lower, upper) is an *open* interval: bounds themselves excluded.
        a = arr(2, 4, 6)
        assert bounded_slice(a, 2, 6).tolist() == [4]


class TestAdaptiveDispatch:
    """``intersect`` must actually dispatch, with the documented threshold.

    The threshold itself (gallop only for a single probe into a row of
    at most ``GALLOP_MAX_LARGE`` elements with a > 32x imbalance) is
    backed by the micro-benchmark in
    ``benchmarks/bench_ablation_intersection.py`` — its tiny-probe shape
    shows galloping beating the vectorised kernel's fixed call overhead
    there, and its tiny/huge shape shows why the absolute cap exists
    (past a few hundred elements the C-level binary search always wins,
    however extreme the ratio).
    """

    @pytest.fixture()
    def recorded(self, monkeypatch):
        import repro.graph.intersection as mod

        calls = []
        real_gallop = mod.intersect_galloping
        real_search = mod.intersect_searchsorted
        monkeypatch.setattr(
            mod,
            "intersect_galloping",
            lambda a, b: calls.append("galloping") or real_gallop(a, b),
        )
        monkeypatch.setattr(
            mod,
            "intersect_searchsorted",
            lambda a, b: calls.append("searchsorted") or real_search(a, b),
        )
        return calls

    def dispatched(self, calls, a, b):
        from repro.graph.intersection import intersect

        calls.clear()
        intersect(a, b)
        assert len(calls) == 1
        return calls[0]

    def test_balanced_uses_searchsorted(self, recorded):
        a = np.arange(0, 3000, 3, dtype=VERTEX_DTYPE)
        b = np.arange(0, 2000, 2, dtype=VERTEX_DTYPE)
        assert self.dispatched(recorded, a, b) == "searchsorted"

    def test_tiny_probe_gallops_either_argument_order(self, recorded):
        small = arr(90)
        large = np.arange(0, 400, dtype=VERTEX_DTYPE)
        assert self.dispatched(recorded, small, large) == "galloping"
        assert self.dispatched(recorded, large, small) == "galloping"

    def test_ratio_boundary(self, recorded):
        from repro.graph.intersection import GALLOP_MAX_SMALL, GALLOP_RATIO

        small = np.arange(GALLOP_MAX_SMALL, dtype=VERTEX_DTYPE)
        at_ratio = np.arange(GALLOP_MAX_SMALL * GALLOP_RATIO, dtype=VERTEX_DTYPE)
        over = np.arange(GALLOP_MAX_SMALL * GALLOP_RATIO + 1, dtype=VERTEX_DTYPE)
        assert self.dispatched(recorded, small, at_ratio) == "searchsorted"
        assert self.dispatched(recorded, small, over) == "galloping"

    def test_small_side_cap(self, recorded):
        from repro.graph.intersection import GALLOP_MAX_LARGE, GALLOP_MAX_SMALL

        not_tiny = np.arange(GALLOP_MAX_SMALL + 1, dtype=VERTEX_DTYPE)
        row = np.arange(GALLOP_MAX_LARGE, dtype=VERTEX_DTYPE)
        assert self.dispatched(recorded, not_tiny, row) == "searchsorted"

    def test_large_side_cap(self, recorded):
        # An extreme ratio alone is not enough: past the absolute cap the
        # vectorised kernel's C-level search wins regardless.
        from repro.graph.intersection import GALLOP_MAX_LARGE

        tiny = arr(90)
        over = np.arange(GALLOP_MAX_LARGE + 1, dtype=VERTEX_DTYPE)
        at_cap = np.arange(GALLOP_MAX_LARGE, dtype=VERTEX_DTYPE)
        assert self.dispatched(recorded, tiny, over) == "searchsorted"
        assert self.dispatched(recorded, tiny, at_cap) == "galloping"

    def test_empty_short_circuits_without_dispatch(self, recorded):
        assert intersect(arr(), arr(1, 2)).tolist() == []
        assert intersect(arr(1, 2), arr()).tolist() == []
        assert recorded == []


class TestScratchPrimitives:
    """The auxiliary-pruning scratch-CSR builders against per-row references."""

    def _reference_rows(self, graph, vertex_cols):
        return [
            intersect_many([graph.neighbors(int(v)) for v in row])
            for row in vertex_cols
        ]

    @pytest.mark.parametrize("n_deps", [2, 3])
    def test_bulk_intersect_rows_matches_intersect_many(self, er_small, n_deps):
        from repro.graph.intersection import bulk_intersect_rows, sorted_edge_keys

        n = er_small.n_vertices
        rng = np.random.default_rng(17)
        vertex_cols = rng.integers(0, n, size=(50, n_deps))
        edge_keys = sorted_edge_keys(er_small.indptr, er_small.indices)
        indptr, values, keys = bulk_intersect_rows(
            er_small.indptr, er_small.indices, edge_keys, vertex_cols, n
        )
        assert len(indptr) == len(vertex_cols) + 1
        for r, expected in enumerate(self._reference_rows(er_small, vertex_cols)):
            got = values[indptr[r] : indptr[r + 1]]
            assert got.tolist() == expected.tolist(), r
        # the keyed layout the windowing search relies on
        assert np.array_equal(
            keys, np.repeat(np.arange(50), np.diff(indptr)) * n + values
        )
        assert np.all(np.diff(keys) > 0)

    def test_bulk_intersect_rows_empty(self, er_small):
        from repro.graph.intersection import bulk_intersect_rows, sorted_edge_keys

        edge_keys = sorted_edge_keys(er_small.indptr, er_small.indices)
        indptr, values, keys = bulk_intersect_rows(
            er_small.indptr,
            er_small.indices,
            edge_keys,
            np.empty((0, 2), dtype=np.int64),
            er_small.n_vertices,
        )
        assert indptr.tolist() == [0] and len(values) == 0 and len(keys) == 0

    def test_refine_scratch_rows_matches_reference(self, er_small):
        from repro.graph.intersection import (
            bulk_intersect_rows,
            refine_scratch_rows,
            sorted_edge_keys,
        )

        n = er_small.n_vertices
        rng = np.random.default_rng(23)
        edge_keys = sorted_edge_keys(er_small.indptr, er_small.indices)
        base_cols = rng.integers(0, n, size=(30, 2))
        pool = bulk_intersect_rows(
            er_small.indptr, er_small.indices, edge_keys, base_cols, n
        )
        # refine a shuffled selection of pool rows with one more column
        rows = rng.integers(0, 30, size=45)
        new_cols = rng.integers(0, n, size=(45, 1))
        indptr, values, keys = refine_scratch_rows(
            pool[0], pool[1], rows, edge_keys, new_cols, n
        )
        for i in range(45):
            expected = intersect_many(
                [er_small.neighbors(int(v)) for v in base_cols[rows[i]]]
                + [er_small.neighbors(int(new_cols[i, 0]))]
            )
            got = values[indptr[i] : indptr[i + 1]]
            assert got.tolist() == expected.tolist(), i
        assert np.all(np.diff(keys) > 0)


def test_kernel_registry_complete():
    assert set(KERNELS) == {"merge", "searchsorted", "galloping", "adaptive"}


def test_empty_vertex_array_is_shared_and_empty():
    e = empty_vertex_array()
    assert len(e) == 0 and e.dtype == VERTEX_DTYPE
