"""Sorted-array set algebra: every kernel against Python set semantics."""

import numpy as np
import pytest

from repro.graph.intersection import (
    KERNELS,
    VERTEX_DTYPE,
    bounded_count,
    bounded_slice,
    contains,
    count_members,
    difference,
    empty_vertex_array,
    intersect,
    intersect_count,
    intersect_galloping,
    intersect_many,
    intersect_merge,
    intersect_searchsorted,
)


def arr(*xs):
    return np.asarray(xs, dtype=VERTEX_DTYPE)


ALL_KERNELS = [intersect_merge, intersect_searchsorted, intersect_galloping, intersect]


@pytest.mark.parametrize("kernel", ALL_KERNELS, ids=lambda f: f.__name__)
class TestKernels:
    def test_basic_overlap(self, kernel):
        assert kernel(arr(1, 3, 5, 7), arr(3, 4, 5, 6)).tolist() == [3, 5]

    def test_disjoint(self, kernel):
        assert kernel(arr(1, 2), arr(3, 4)).tolist() == []

    def test_identical(self, kernel):
        assert kernel(arr(2, 4, 6), arr(2, 4, 6)).tolist() == [2, 4, 6]

    def test_one_empty(self, kernel):
        assert kernel(arr(), arr(1, 2)).tolist() == []
        assert kernel(arr(1, 2), arr()).tolist() == []

    def test_both_empty(self, kernel):
        assert kernel(arr(), arr()).tolist() == []

    def test_subset(self, kernel):
        assert kernel(arr(2, 5), arr(1, 2, 3, 5, 9)).tolist() == [2, 5]

    def test_single_elements(self, kernel):
        assert kernel(arr(5), arr(5)).tolist() == [5]
        assert kernel(arr(5), arr(6)).tolist() == []

    def test_extreme_size_imbalance(self, kernel):
        big = np.arange(0, 10_000, 3, dtype=VERTEX_DTYPE)
        small = arr(3, 9999, 9998, 9996)[np.argsort(arr(3, 9999, 9998, 9996))]
        small = np.unique(small)
        expected = sorted(set(big.tolist()) & set(small.tolist()))
        assert kernel(small, big).tolist() == expected

    def test_matches_set_semantics_randomised(self, kernel):
        rng = np.random.default_rng(42)
        for _ in range(25):
            a = np.unique(rng.integers(0, 200, size=rng.integers(0, 60)))
            b = np.unique(rng.integers(0, 200, size=rng.integers(0, 60)))
            expected = sorted(set(a.tolist()) & set(b.tolist()))
            got = kernel(a.astype(VERTEX_DTYPE), b.astype(VERTEX_DTYPE))
            assert got.tolist() == expected

    def test_result_sorted_strictly(self, kernel):
        rng = np.random.default_rng(7)
        a = np.unique(rng.integers(0, 100, size=50)).astype(VERTEX_DTYPE)
        b = np.unique(rng.integers(0, 100, size=50)).astype(VERTEX_DTYPE)
        out = kernel(a, b)
        assert np.all(np.diff(out) > 0)


class TestIntersectMany:
    def test_three_way(self):
        out = intersect_many([arr(1, 2, 3, 4), arr(2, 3, 4, 5), arr(3, 4, 9)])
        assert out.tolist() == [3, 4]

    def test_single_array(self):
        assert intersect_many([arr(1, 2)]).tolist() == [1, 2]

    def test_empty_list_raises(self):
        with pytest.raises(ValueError):
            intersect_many([])

    def test_short_circuits_on_empty(self):
        out = intersect_many([arr(), arr(1, 2), arr(2, 3)])
        assert out.tolist() == []


class TestCounts:
    def test_intersect_count_matches_len(self):
        rng = np.random.default_rng(3)
        for _ in range(20):
            a = np.unique(rng.integers(0, 80, size=30)).astype(VERTEX_DTYPE)
            b = np.unique(rng.integers(0, 80, size=30)).astype(VERTEX_DTYPE)
            assert intersect_count(a, b) == len(intersect(a, b))

    def test_contains(self):
        a = arr(1, 4, 6, 9)
        assert contains(a, 4) and contains(a, 1) and contains(a, 9)
        assert not contains(a, 5) and not contains(a, 0) and not contains(a, 10)

    def test_contains_empty(self):
        assert not contains(arr(), 3)

    def test_count_members(self):
        assert count_members(arr(1, 3, 5), [1, 2, 5, 5]) == 3  # 5 tested twice

    def test_difference(self):
        assert difference(arr(1, 2, 3, 4), arr(2, 4)).tolist() == [1, 3]
        assert difference(arr(1, 2), arr()).tolist() == [1, 2]


class TestBoundedSlice:
    def test_open_interval(self):
        a = arr(1, 3, 5, 7, 9)
        assert bounded_slice(a, 3, 9).tolist() == [5, 7]

    def test_lower_only(self):
        assert bounded_slice(arr(1, 3, 5), 1, None).tolist() == [3, 5]

    def test_upper_only(self):
        assert bounded_slice(arr(1, 3, 5), None, 5).tolist() == [1, 3]

    def test_unbounded(self):
        assert bounded_slice(arr(1, 3), None, None).tolist() == [1, 3]

    def test_empty_window(self):
        assert bounded_slice(arr(1, 3, 5), 3, 3).tolist() == []
        assert bounded_slice(arr(1, 3, 5), 5, 3).tolist() == []

    def test_bounds_not_in_array(self):
        assert bounded_slice(arr(1, 3, 5, 7), 2, 6).tolist() == [3, 5]

    def test_bounded_count_matches(self):
        rng = np.random.default_rng(9)
        a = np.unique(rng.integers(0, 50, size=30)).astype(VERTEX_DTYPE)
        for lo in [None, 0, 10, 25, 60]:
            for hi in [None, 0, 10, 25, 60]:
                assert bounded_count(a, lo, hi) == len(bounded_slice(a, lo, hi))

    def test_exclusive_semantics(self):
        # (lower, upper) is an *open* interval: bounds themselves excluded.
        a = arr(2, 4, 6)
        assert bounded_slice(a, 2, 6).tolist() == [4]


def test_kernel_registry_complete():
    assert set(KERNELS) == {"merge", "searchsorted", "galloping", "adaptive"}


def test_empty_vertex_array_is_shared_and_empty():
    e = empty_vertex_array()
    assert len(e) == 0 and e.dtype == VERTEX_DTYPE
