"""Graph serialisation round trips."""

import io

import pytest

from repro.graph.builder import graph_from_edges
from repro.graph.io import (
    load_binary,
    load_edge_list,
    load_or_build,
    save_binary,
    save_edge_list,
)


@pytest.fixture
def sample():
    return graph_from_edges([(0, 1), (1, 2), (2, 3), (0, 3), (0, 2)], name="sample")


class TestEdgeList:
    def test_round_trip(self, sample, tmp_path):
        path = tmp_path / "g.txt"
        save_edge_list(sample, path)
        loaded = load_edge_list(path)
        assert loaded == sample

    def test_comments_and_blank_lines(self):
        text = "# snap header\n% other comment\n\n0 1\n1 2\n// trailing\n"
        g = load_edge_list(io.StringIO(text))
        assert g.n_edges == 2

    def test_snap_style_directed_dups(self):
        g = load_edge_list(io.StringIO("0\t1\n1\t0\n1\t2\n"))
        assert g.n_edges == 2

    def test_bad_line_reports_lineno(self):
        with pytest.raises(ValueError, match="line 2"):
            load_edge_list(io.StringIO("0 1\njunk\n"))

    def test_non_integer_ids(self):
        with pytest.raises(ValueError, match="non-integer"):
            load_edge_list(io.StringIO("a b\n"))

    def test_name_from_filename(self, sample, tmp_path):
        path = tmp_path / "mygraph.txt"
        save_edge_list(sample, path)
        assert load_edge_list(path).name == "mygraph"


class TestBinary:
    def test_round_trip(self, sample, tmp_path):
        path = tmp_path / "g.npz"
        save_binary(sample, path)
        loaded = load_binary(path)
        assert loaded == sample
        assert loaded.name == "sample"


class TestLoadOrBuild:
    def test_builds_then_caches(self, sample, tmp_path):
        path = tmp_path / "cache.npz"
        calls = []

        def factory():
            calls.append(1)
            return sample

        g1 = load_or_build(path, factory)
        g2 = load_or_build(path, factory)
        assert g1 == g2 == sample
        assert len(calls) == 1  # second call hit the cache

    def test_refresh_rebuilds(self, sample, tmp_path):
        path = tmp_path / "cache.npz"
        calls = []

        def factory():
            calls.append(1)
            return sample

        load_or_build(path, factory)
        load_or_build(path, factory, refresh=True)
        assert len(calls) == 2

    def test_corrupted_cache_recovers(self, sample, tmp_path):
        path = tmp_path / "cache.npz"
        path.write_bytes(b"not an npz")
        g = load_or_build(path, lambda: sample)
        assert g == sample


class TestGraphPiFormat:
    def test_round_trip_semantics(self):
        from repro.graph.io import load_graphpi_format

        text = "4 4\n0 1\n1 2\n2 3\n3 0\n"
        g = load_graphpi_format(io.StringIO(text))
        assert g.n_vertices == 4
        assert g.n_edges == 4  # directed lines collapse to undirected

    def test_header_vertex_padding(self):
        from repro.graph.io import load_graphpi_format

        g = load_graphpi_format(io.StringIO("5 1\n0 1\n"))
        assert g.n_vertices == 5
        assert g.degree(4) == 0

    def test_header_edge_mismatch(self):
        from repro.graph.io import load_graphpi_format

        with pytest.raises(ValueError, match="declares 3 edges"):
            load_graphpi_format(io.StringIO("3 3\n0 1\n1 2\n"))

    def test_header_vertex_overflow(self):
        from repro.graph.io import load_graphpi_format

        with pytest.raises(ValueError, match="ids reach"):
            load_graphpi_format(io.StringIO("2 1\n0 5\n"))

    def test_empty_file(self):
        from repro.graph.io import load_graphpi_format

        with pytest.raises(ValueError, match="empty"):
            load_graphpi_format(io.StringIO(""))

    def test_bad_header(self):
        from repro.graph.io import load_graphpi_format

        with pytest.raises(ValueError, match="header"):
            load_graphpi_format(io.StringIO("banana\n0 1\n"))


class TestDirectedLoader:
    def test_roundtrip_preserves_direction(self, tmp_path):
        import io as _io

        from repro.graph.io import load_edge_list_directed

        text = "# comment\n0 1\n1 2\n2 0\n"
        g = load_edge_list_directed(_io.StringIO(text))
        assert g.n_arcs == 3
        assert g.has_arc(0, 1) and not g.has_arc(1, 0)

    def test_compacts_ids(self):
        import io as _io

        from repro.graph.io import load_edge_list_directed

        g = load_edge_list_directed(_io.StringIO("100 200\n200 300\n"))
        assert g.n_vertices == 3
        assert g.has_arc(0, 1) and g.has_arc(1, 2)

    def test_drops_self_loops_and_duplicates(self):
        import io as _io

        from repro.graph.io import load_edge_list_directed

        g = load_edge_list_directed(_io.StringIO("0 1\n0 1\n1 1\n1 0\n"))
        assert g.n_arcs == 2  # the antiparallel pair

    def test_empty_rejected(self):
        import io as _io

        import pytest as _pytest

        from repro.graph.io import load_edge_list_directed

        with _pytest.raises(ValueError, match="no edges"):
            load_edge_list_directed(_io.StringIO("# nothing\n"))

    def test_agrees_with_undirected_loader_after_symmetrisation(self, tmp_path):
        from repro.graph.io import load_edge_list, load_edge_list_directed

        path = tmp_path / "g.txt"
        path.write_text("0 1\n1 2\n2 0\n0 2\n")
        und = load_edge_list(path)
        di = load_edge_list_directed(path)
        assert di.to_undirected().n_edges == und.n_edges

    def test_malformed_line(self):
        import io as _io

        import pytest as _pytest

        from repro.graph.io import load_edge_list_directed

        with _pytest.raises(ValueError, match="expected"):
            load_edge_list_directed(_io.StringIO("0\n"))
