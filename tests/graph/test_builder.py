"""Edge-list normalisation pipeline."""

import numpy as np
import pytest

from repro.graph.builder import (
    GraphBuilder,
    build_graph_arrays,
    graph_from_adjacency_matrix,
    graph_from_edges,
)


class TestGraphBuilder:
    def test_deduplicates_directed_pairs(self):
        g = graph_from_edges([(0, 1), (1, 0), (0, 1)])
        assert g.n_edges == 1

    def test_drops_self_loops(self):
        g = graph_from_edges([(0, 0), (0, 1), (2, 2)])
        assert g.n_edges == 1
        # Compacted: only vertices that appear survive; 2 appeared only in
        # a self-loop, which is dropped before compaction.
        assert g.n_vertices == 2

    def test_compacts_sparse_ids(self):
        g = graph_from_edges([(100, 205), (205, 999)])
        assert g.n_vertices == 3
        assert g.n_edges == 2

    def test_labels_roundtrip(self):
        b = GraphBuilder()
        b.add_edges([(100, 205), (205, 999)])
        g, labels = b.build_with_labels()
        assert labels.tolist() == [100, 205, 999]
        assert g.has_edge(0, 1) and g.has_edge(1, 2) and not g.has_edge(0, 2)

    def test_no_compaction_mode(self):
        b = GraphBuilder(compact_ids=False)
        b.add_edge(0, 5)
        g = b.build()
        assert g.n_vertices == 6
        assert g.degree(3) == 0

    def test_n_raw_edges(self):
        b = GraphBuilder()
        b.add_edges([(0, 1), (0, 1)])
        assert b.n_raw_edges == 2

    def test_empty_build(self):
        g = GraphBuilder().build()
        assert g.n_vertices == 0 and g.n_edges == 0

    def test_rejects_negative_ids(self):
        b = GraphBuilder()
        b.add_edge(-1, 2)
        with pytest.raises(ValueError):
            b.build()


class TestBuildArrays:
    def test_mismatched_lengths(self):
        with pytest.raises(ValueError):
            build_graph_arrays(np.array([1, 2]), np.array([3]))

    def test_adjacency_sorted_per_row(self):
        rng = np.random.default_rng(5)
        src = rng.integers(0, 50, 300)
        dst = rng.integers(0, 50, 300)
        g, _ = build_graph_arrays(src, dst)
        for v in range(g.n_vertices):
            assert np.all(np.diff(g.neighbors(v)) > 0)

    def test_symmetric_storage(self):
        g, _ = build_graph_arrays(np.array([0, 1]), np.array([1, 2]))
        for u, v in [(0, 1), (1, 2)]:
            assert g.has_edge(u, v) and g.has_edge(v, u)


class TestAdjacencyMatrix:
    def test_round_trip(self):
        mat = np.array(
            [
                [0, 1, 1, 0],
                [1, 0, 0, 1],
                [1, 0, 0, 1],
                [0, 1, 1, 0],
            ]
        )
        g = graph_from_adjacency_matrix(mat)
        assert g.n_vertices == 4 and g.n_edges == 4
        assert sorted(g.edges()) == [(0, 1), (0, 2), (1, 3), (2, 3)]

    def test_rejects_asymmetric(self):
        with pytest.raises(ValueError):
            graph_from_adjacency_matrix(np.array([[0, 1], [0, 0]]))

    def test_rejects_non_square(self):
        with pytest.raises(ValueError):
            graph_from_adjacency_matrix(np.zeros((2, 3)))

    def test_trailing_isolated_vertices_preserved(self):
        mat = np.zeros((4, 4), dtype=int)
        mat[0, 1] = mat[1, 0] = 1
        g = graph_from_adjacency_matrix(mat)
        assert g.n_vertices == 4
        assert g.degree(3) == 0

    def test_all_isolated(self):
        g = graph_from_adjacency_matrix(np.zeros((3, 3), dtype=int))
        assert g.n_vertices == 3 and g.n_edges == 0
