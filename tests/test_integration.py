"""Cross-module integration: the full pipeline, determinism, consistency."""

import pytest

from repro import PatternMatcher, count_pattern, get_pattern, load_dataset
from repro.baselines.bruteforce import bruteforce_count
from repro.core.engine import Engine
from repro.graph.datasets import clear_memo
from repro.runtime.cluster import ClusterSpec, ClusterSimulator
from repro.runtime.parallel import measure_task_costs, parallel_count
from repro.runtime.tasks import run_partitioned


class TestFullPipelineDeterminism:
    def test_same_seed_same_everything(self):
        clear_memo()
        g1 = load_dataset("wiki-vote", scale=0.1, seed=42)
        m1 = PatternMatcher(get_pattern("house"))
        rep1 = m1.plan(g1, use_iep=True)
        c1 = m1.count(g1, report=rep1)

        clear_memo()
        g2 = load_dataset("wiki-vote", scale=0.1, seed=42)
        m2 = PatternMatcher(get_pattern("house"))
        rep2 = m2.plan(g2, use_iep=True)
        c2 = m2.count(g2, report=rep2)

        assert g1 == g2
        assert rep1.chosen.config.schedule == rep2.chosen.config.schedule
        assert rep1.chosen.config.restrictions == rep2.chosen.config.restrictions
        assert c1 == c2

    def test_generated_source_deterministic(self):
        g = load_dataset("wiki-vote", scale=0.1, seed=42)
        reports = [PatternMatcher(get_pattern("pentagon")).plan(g) for _ in range(2)]
        assert reports[0].generated.source == reports[1].generated.source


class TestExecutionPathsAgree:
    """count == codegen == partitioned == multiprocessing == IEP."""

    @pytest.mark.parametrize("pattern_name", ["triangle", "rectangle", "house"])
    def test_five_ways(self, pattern_name, er_small):
        pattern = get_pattern(pattern_name)
        expected = bruteforce_count(er_small, pattern)

        matcher = PatternMatcher(pattern)
        rep_plain = matcher.plan(er_small, use_iep=False)
        rep_iep = matcher.plan(er_small, use_iep=True)

        assert rep_plain.generated(er_small) == expected
        assert Engine(er_small, rep_plain.plan).count() == expected
        assert matcher.count(er_small, report=rep_iep) == expected
        total, _ = run_partitioned(er_small, rep_plain.plan)
        assert total == expected
        assert parallel_count(er_small, rep_plain.plan, n_workers=1).count == expected

    def test_oneshot_matches(self, er_small):
        pattern = get_pattern("hourglass")
        assert count_pattern(er_small, pattern) == bruteforce_count(er_small, pattern)


class TestMeasuredCostsDriveSimulation:
    def test_end_to_end_scaling_path(self, er_small):
        pattern = get_pattern("triangle")
        rep = PatternMatcher(pattern).plan(er_small, use_iep=False)
        costs = measure_task_costs(er_small, rep.plan, split_depth=1)
        assert len(costs) > 0
        result = ClusterSimulator(ClusterSpec(4, threads_per_node=2)).run(costs)
        assert result.makespan > 0
        assert result.total_work == pytest.approx(sum(costs))

    def test_cyclic_distribution_also_completes(self, er_small):
        pattern = get_pattern("triangle")
        rep = PatternMatcher(pattern).plan(er_small, use_iep=False)
        costs = measure_task_costs(er_small, rep.plan, split_depth=1)
        a = ClusterSimulator(ClusterSpec(3, threads_per_node=2)).run(
            costs, distribution="block"
        )
        b = ClusterSimulator(ClusterSpec(3, threads_per_node=2)).run(
            costs, distribution="cyclic"
        )
        assert a.total_work == pytest.approx(b.total_work)


class TestStatsCaching:
    def test_plan_accepts_shared_stats(self, er_small):
        """One GraphStats can drive many matchers (the paper's
        preprocessing is per-pattern, stats are per-graph)."""
        from repro.graph.stats import GraphStats

        stats = GraphStats.of(er_small)
        for name in ("triangle", "house", "pentagon"):
            rep = PatternMatcher(get_pattern(name)).plan(stats=stats, use_iep=False)
            assert rep.stats is stats

    def test_overcount_multiplicity_memoised(self):
        from repro.core.restrictions import (
            _multiplicity_cache,
            iep_overcount_multiplicity,
        )
        from repro.pattern.catalog import house

        kept = frozenset({(0, 1)})
        a = iep_overcount_multiplicity(house(), kept)
        size_before = len(_multiplicity_cache)
        b = iep_overcount_multiplicity(house(), kept)
        assert a == b
        assert len(_multiplicity_cache) == size_before
