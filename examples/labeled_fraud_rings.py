#!/usr/bin/env python
"""Labeled pattern matching: fraud-ring detection on a payment graph.

The paper's motivation cites fraud detection as a pattern-matching
application and claims the methods "can be easily extended to labeled
graphs" (§II-A).  This example runs that extension: vertices carry
account types (USER / MERCHANT / MULE) and we search for suspicious
labeled structures — e.g. a ring of users all transacting with the same
two mule accounts.

Labels change the redundancy-elimination story in a measurable way:
only *label-preserving* symmetries create duplicate embeddings, so the
restriction generator runs on a smaller group — sometimes none are
needed at all.

Run:  python examples/labeled_fraud_rings.py
"""

from repro.core.labeled import LabeledMatcher
from repro.graph.datasets import load_dataset
from repro.graph.labeled import assign_random_labels
from repro.pattern.catalog import cycle, rectangle, triangle
from repro.pattern.labeled import LabeledPattern, labeled_automorphism_count
from repro.pattern.pattern import Pattern
from repro.utils.tables import Table

USER, MERCHANT, MULE = 0, 1, 2
LABEL_NAMES = {USER: "user", MERCHANT: "merchant", MULE: "mule"}


def main() -> None:
    base = load_dataset("livejournal", scale=0.05, seed=21)
    # 80% users, 15% merchants, 5% mules.
    lgraph = assign_random_labels(base, 3, seed=22, weights=[0.80, 0.15, 0.05])
    hist = lgraph.label_histogram()
    print(f"payment graph: {base}")
    print("account mix:  ",
          ", ".join(f"{LABEL_NAMES[k]}={v}" for k, v in sorted(hist.items())))

    suspicious = {
        "mule triangle (3 mutually linked mules)": LabeledPattern(
            triangle(), (MULE, MULE, MULE)
        ),
        "collusion square (user-mule-user-mule ring)": LabeledPattern(
            rectangle(), (USER, MULE, USER, MULE)
        ),
        "fan-in (two users feeding a mule pair)": LabeledPattern(
            Pattern(4, [(0, 2), (0, 3), (1, 2), (1, 3)]),
            (USER, USER, MULE, MULE),
        ),
        "laundering pentagon (user ring with one mule)": LabeledPattern(
            cycle(5), (MULE, USER, USER, USER, USER)
        ),
    }

    table = Table(
        ["structure", "labeled |Aut| (vs structural)", "matches"],
        title="suspicious labeled structures",
    )
    for name, lpattern in suspicious.items():
        from repro.pattern.automorphism import automorphism_count

        matcher = LabeledMatcher(lpattern)
        count = matcher.count(lgraph)
        table.add_row(
            [name,
             f"{labeled_automorphism_count(lpattern)} "
             f"(vs {automorphism_count(lpattern.pattern)})",
             count]
        )
    print("\n" + table.render())

    # Show a few concrete suspects from the most constrained shape.
    lpattern = suspicious["collusion square (user-mule-user-mule ring)"]
    matcher = LabeledMatcher(lpattern)
    print("\nexample collusion squares (vertex ids):")
    for emb in matcher.match(lgraph, limit=5):
        roles = ", ".join(
            f"{v}:{LABEL_NAMES[lgraph.label_of(v)]}" for v in emb
        )
        print(f"  ({roles})")


if __name__ == "__main__":
    main()
