#!/usr/bin/env python
"""Frequent subgraph mining over a labeled collaboration network.

FSM systems (ScaleMine, GraMi-family — the paper's related work §VI)
spend their time exactly where GraphPi is fast: counting one labeled
pattern in one large graph, over and over, for every candidate the
pattern-growth search generates.  This example mines a synthetic
collaboration network whose vertices carry role labels and prints every
pattern with MNI support above a threshold.

The interesting output columns:

* support — the MNI (minimum node image) measure: in how many distinct
  data vertices each pattern role is realised, minimised over roles.
  Anti-monotone, so the level-wise search prunes soundly.
* the per-level candidate counts — how fast anti-monotone pruning
  shrinks the search frontier as patterns grow.

Run:  python examples/fsm_mining.py
"""

import numpy as np

from repro.graph.generators import random_power_law
from repro.graph.labeled import LabeledGraph
from repro.mining.fsm import frequent_subgraphs, mni_support

ROLES = {0: "dev", 1: "reviewer", 2: "manager"}


def synthesise():
    """A skewed collaboration graph with role-correlated structure."""
    g = random_power_law(300, avg_degree=5.0, exponent=2.3, seed=91)
    rng = np.random.default_rng(91)
    # managers are rare; hubs are more likely to be managers
    degrees = g.degrees.astype(float)
    labels = np.zeros(g.n_vertices, dtype=np.int64)
    labels[rng.random(g.n_vertices) < 0.35] = 1
    hubs = np.argsort(degrees)[-20:]
    labels[hubs] = 2
    return LabeledGraph(g, labels)


def pattern_to_str(fp) -> str:
    roles = "/".join(ROLES[l] for l in fp.pattern.labels)
    edges = fp.pattern.pattern.edges
    return f"[{roles}] edges={edges}" if edges else f"[{roles}]"


def main() -> None:
    lgraph = synthesise()
    print(f"collaboration graph: {lgraph.graph}")
    hist = lgraph.label_histogram()
    print("roles:", {ROLES[l]: c for l, c in hist.items()})

    threshold = 25
    print(f"\nmining with MNI support >= {threshold}, patterns up to 3 vertices\n")
    results = frequent_subgraphs(lgraph, min_support=threshold, max_vertices=3)

    print(f"{'pattern':<58} {'support':>7}")
    for fp in results:
        print(f"{pattern_to_str(fp):<58} {fp.support:>7}")

    by_size: dict[int, int] = {}
    for fp in results:
        by_size[fp.pattern.n_vertices] = by_size.get(fp.pattern.n_vertices, 0) + 1
    print("\nfrequent patterns per size:", by_size)

    # spot-check anti-monotonicity on the first 2-vertex survivor
    two = next(fp for fp in results if fp.pattern.n_vertices == 2)
    print(
        f"\nanti-monotone check: {pattern_to_str(two)} has support "
        f"{mni_support(lgraph, two.pattern)} >= every extension's support"
    )


if __name__ == "__main__":
    main()
