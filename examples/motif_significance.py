#!/usr/bin/env python
"""Motif significance profiles: counts only mean something vs a null.

The paper motivates pattern matching with bioinformatics motif discovery
(reference [2]); the methodology those applications actually run is the
Milo-et-al. significance profile — compare each motif count against
degree-preserving randomisations of the same graph and report z-scores.
Every ensemble member is one more full GraphPi counting run, which is
why the repeated-counting speed the paper optimises matters downstream.

Two graphs, same statistics machinery:

* a Watts–Strogatz small world — triangles hugely over-represented
  (that is what "clustered" means once degrees are controlled for);
* an Erdős–Rényi control with the same size — z-scores near zero.

Run:  python examples/motif_significance.py
"""

from repro.graph.generators import erdos_renyi, watts_strogatz
from repro.mining.significance import motif_significance
from repro.pattern.catalog import cycle, path, triangle

MOTIFS = [triangle(), cycle(4), path(3)]


def profile(graph, label: str) -> None:
    print(f"\n--- {label}: {graph.n_vertices} vertices, {graph.n_edges} edges ---")
    rows = motif_significance(
        graph, MOTIFS, n_random=8, swaps_per_edge=5, seed=2020
    )
    print(f"{'motif':<12} {'observed':>9} {'null mean':>10} {'null std':>9} {'z':>8}")
    for r in rows:
        print(
            f"{r.pattern.name:<12} {r.observed:>9} {r.null_mean:>10.1f} "
            f"{r.null_std:>9.1f} {r.zscore:>+8.2f}"
        )


def main() -> None:
    smallworld = watts_strogatz(200, 4, 0.05, seed=7, name="small-world")
    profile(smallworld, "Watts-Strogatz small world (clustered)")

    control = erdos_renyi(200, 4 / 199, seed=9, name="ER-control")
    profile(control, "Erdős-Rényi control (same density)")

    print(
        "\nThe small world's triangle z-score dwarfs the control's: its\n"
        "clustering is structure, not a degree artefact — the conclusion\n"
        "the null-model comparison exists to license.\n"
        "\nAlso note the path-3 rows: wedge counts are a pure function of\n"
        "the degree sequence (sum of deg·(deg-1)/2), so the degree-\n"
        "preserving null reproduces them *exactly* — null std 0, z 0 —\n"
        "a built-in correctness check on the swap randomiser."
    )


if __name__ == "__main__":
    main()
