#!/usr/bin/env python
"""Clique counting on a social-network proxy (the paper's 7-clique story).

A k-clique has k! automorphisms (5 040 for k = 7, §II-B), so symmetry
breaking is the difference between tractable and hopeless.  This script
counts cliques of growing size on the Orkut proxy and shows the
restriction chain GraphPi generates, plus the redundancy a naive
matcher would pay.

Run:  python examples/clique_hunting.py
"""

import time
from math import factorial

from repro import PatternMatcher, load_dataset
from repro.mining.cliques import clique_count_ordered, max_clique_lower_bound
from repro.pattern.catalog import clique
from repro.utils.tables import Table


def main() -> None:
    graph = load_dataset("orkut", scale=0.08, seed=5)
    print(f"data graph: {graph}\n")

    kmax = max_clique_lower_bound(graph, limit=8)
    print(f"largest clique found (k <= 8 scan): {kmax}\n")

    table = Table(
        ["k", "cliques", "naive redundancy (|Aut| = k!)", "GraphPi time",
         "specialised-ordered time"],
        title="clique counting with automatic symmetry breaking",
    )
    for k in range(3, min(kmax, 6) + 1):
        matcher = PatternMatcher(clique(k), max_restriction_sets=8)

        t0 = time.perf_counter()
        count = matcher.count(graph)
        t_pi = time.perf_counter() - t0

        t0 = time.perf_counter()
        ordered = clique_count_ordered(graph, k)
        t_ord = time.perf_counter() - t0
        assert ordered == count

        table.add_row(
            [k, count, f"{factorial(k)}x", f"{t_pi:.3f} s", f"{t_ord:.3f} s"]
        )
    print(table.render())

    # Show the restriction chain for the 4-clique: a total order.
    matcher = PatternMatcher(clique(4), max_restriction_sets=8)
    report = matcher.plan(graph)
    print("\nchosen 4-clique configuration:", report.chosen.config.describe())
    print("every clique is enumerated exactly once — the general machinery "
          "rediscovers the classic ordered-enumeration trick.")


if __name__ == "__main__":
    main()
