#!/usr/bin/env python
"""Distributed pattern matching: real cores + simulated cluster (§IV-E).

Demonstrates all three runtime layers:

1. sequential master/worker task partitioning (reference),
2. real multiprocessing across local cores,
3. the event-driven cluster simulator replaying *measured* task costs
   at Tianhe-2A scale (24 threads/node, MPI-style work stealing) — the
   machinery behind the Figure 12 reproduction,
4. the `distributed` execution backend, which folds steps 1+3 into the
   unified query seam: one `MatchQuery` call returns the exact count
   *and* the simulated scaling profile.

Run:  python examples/distributed_scaling.py
"""

import numpy as np

from repro import (
    MatchQuery,
    PatternMatcher,
    get_backend,
    get_pattern,
    load_dataset,
    match_query,
)
from repro.runtime.cluster import scaling_curve
from repro.runtime.parallel import measure_task_costs, parallel_count
from repro.runtime.tasks import run_partitioned
from repro.utils.tables import Table, format_seconds


def main() -> None:
    graph = load_dataset("orkut", scale=0.08, seed=13)
    pattern = get_pattern("house")
    print(f"pattern {pattern.name!r} on {graph}\n")

    report = PatternMatcher(pattern).plan(graph, use_iep=False)
    plan = report.plan

    # 1. Sequential master/worker partitioning.
    total, parts = run_partitioned(graph, plan, split_depth=2)
    sizes = sorted(c for _, c in parts)
    print(f"sequential partitioned count: {total} over {len(parts)} tasks")
    print(f"task skew: median={sizes[len(sizes) // 2]}, max={sizes[-1]} "
          "(power-law degrees -> imbalanced tasks, the §IV-E motivation)\n")

    # 2. Real multiprocessing.
    result = parallel_count(graph, plan, n_workers=2, split_depth=2)
    assert result.count == total
    print(f"multiprocessing ({result.n_workers} workers): count={result.count}\n")

    # 3. Simulated cluster at paper scale.
    costs = np.asarray(measure_task_costs(graph, plan, split_depth=2))
    print(f"measured {len(costs)} task costs "
          f"(total {costs.sum():.2f} s, max {costs.max() * 1e3:.1f} ms)")
    table = Table(
        ["nodes", "cores", "simulated time", "speedup", "efficiency", "steals"],
        title="simulated scaling (24 threads/node, work stealing)",
    )
    node_counts = [1, 2, 4, 8, 16, 32, 64, 128]
    results = scaling_curve(costs, node_counts, threads_per_node=24)
    base = results[0].makespan
    for n, r in zip(node_counts, results):
        table.add_row(
            [n, n * 24, format_seconds(r.makespan), f"{base / r.makespan:.1f}x",
             f"{r.efficiency * 100:.0f}%", r.steals]
        )
    print(table.render())
    print("\nNear-linear until per-node work runs out — the Figure 12 shape.")

    # 4. The same study through the unified backend seam: the session
    #    plans for the backend's capabilities, an inner executor counts
    #    root-range tasks for real, and the measured costs replay
    #    through the simulator — one call, count + profile.
    backend = get_backend(
        "distributed", node_counts=(1, 4, 16, 64), threads_per_node=4
    )
    res = match_query(graph, MatchQuery(pattern, backend=backend))
    rep = res.distributed_report
    assert res.count == total
    print(f"\nbackend seam: count={res.count} via backend={res.backend!r}")
    print(f"  {rep.describe()}")


if __name__ == "__main__":
    main()
