#!/usr/bin/env python
"""Motif census: the graph-mining workload from the paper's introduction.

The paper motivates GraphPi with general-purpose miners choking on
motif counting ("RStream generates about 1.2TB intermediate data to
count 4-motif on the MiCo graph").  With GraphPi-style counting, a
4-motif census is six planned counts — no intermediate data at all —
and IEP collapses the biggest terms.

Run:  python examples/motif_census.py
"""

import time

from repro import load_dataset
from repro.mining.motifs import motif_census, motif_frequencies
from repro.utils.tables import Table


def main() -> None:
    # The MiCo co-authorship proxy (Table I), scaled for a laptop run.
    graph = load_dataset("mico", scale=0.12, seed=11)
    print(f"data graph: {graph}\n")

    for k in (3, 4):
        t0 = time.perf_counter()
        census = motif_census(graph, k, use_iep=True)
        elapsed = time.perf_counter() - t0

        freqs = motif_frequencies(graph, k)
        table = Table(
            ["motif", "vertices", "edges", "count", "frequency"],
            title=f"{k}-motif census ({elapsed:.2f} s with IEP)",
        )
        for m in census:
            table.add_row(
                [m.pattern.name, m.pattern.n_vertices, m.pattern.n_edges,
                 m.count, f"{freqs[m.pattern.name] * 100:.2f}%"]
            )
        print(table.render())
        print()

    # Show the IEP effect on the census (the paper's Figure 10 story).
    t0 = time.perf_counter()
    motif_census(graph, 4, use_iep=False)
    t_plain = time.perf_counter() - t0
    t0 = time.perf_counter()
    motif_census(graph, 4, use_iep=True)
    t_iep = time.perf_counter() - t0
    print(f"4-motif census without IEP: {t_plain:.2f} s")
    print(f"4-motif census with IEP:    {t_iep:.2f} s  "
          f"({t_plain / t_iep:.1f}x faster)")


if __name__ == "__main__":
    main()
