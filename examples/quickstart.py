#!/usr/bin/env python
"""Quickstart: count and list a pattern in a graph, the GraphPi way.

The paper's user contract (§III): input a pattern and a data graph,
get embeddings.  Everything else — restriction-set generation, schedule
selection, the performance model, code generation, IEP — happens inside
``PatternMatcher``.

Run:  python examples/quickstart.py
"""

from repro import PatternMatcher, get_pattern, load_dataset


def main() -> None:
    # A scaled-down proxy of the paper's Wiki-Vote graph (Table I).
    graph = load_dataset("wiki-vote", scale=0.3, seed=7)
    print(f"data graph: {graph}")

    # The paper's running example: the 5-vertex House pattern (Fig. 5).
    pattern = get_pattern("house")
    print(f"pattern:    {pattern}")

    matcher = PatternMatcher(pattern)

    # Planning is explicit if you want to see what the system decided.
    report = matcher.plan(graph, use_iep=True)
    print("\n--- preprocessing (the paper's Figure 3 pipeline) ---")
    print(f"restriction sets generated : {len(report.restriction_sets)}")
    print(f"efficient schedules        : {report.n_schedules}")
    print(f"configurations ranked      : {len(report.ranking)}")
    print(f"chosen configuration       : {report.chosen.config.describe()}")
    print(f"IEP absorbs innermost k    : {report.plan.iep_k}")
    print(f"preprocessing time         : {report.seconds_total * 1e3:.1f} ms")

    # Counting (uses the generated specialised code + IEP).
    count = matcher.count(graph, report=report)
    print(f"\nhouse embeddings: {count}")

    # Every entry point routes through the pluggable backend registry;
    # any registered backend returns the same count.  `repro backends`
    # lists them, docs/architecture.md shows how to add one.
    for backend in ("interpreter", "compiled"):
        assert matcher.count(graph, report=report, backend=backend) == count
    print("backends agree: interpreter == compiled")

    # Listing the first few embeddings (tuples indexed by pattern vertex).
    print("\nfirst 5 embeddings (A, B, C, D, E):")
    for emb in matcher.match(graph, limit=5):
        print(f"  {emb}")

    # The generated code itself is inspectable — the Python analogue of
    # the C++ the paper's code generator emits (Fig. 5(b)).
    print("\n--- generated counting code ---")
    print(report.generated.source)


if __name__ == "__main__":
    main()
