#!/usr/bin/env python
"""Quickstart: the unified MatchQuery/MatchSession facade.

The paper's user contract (§III): input a pattern and a data graph, get
embeddings.  The modern surface makes that one declarative query object
(:class:`repro.MatchQuery` — pattern + mode + semantics + planner
knobs) run against one graph-bound session (:class:`repro.MatchSession`)
that caches plans: restriction-set generation (Algorithm 1), schedule
selection, the performance model, code generation and IEP all happen on
the first sight of a query fingerprint and are replayed for free on
every repeat.

Run:  python examples/quickstart.py
"""

from repro import MatchQuery, MatchSession, get_pattern, load_dataset


def main() -> None:
    # A scaled-down proxy of the paper's Wiki-Vote graph (Table I).
    graph = load_dataset("wiki-vote", scale=0.3, seed=7)
    session = MatchSession(graph)
    print(f"data graph: {graph}")

    # The paper's running example: the 5-vertex House pattern (Fig. 5).
    query = MatchQuery(get_pattern("house"))
    print(f"query:      {query!r}")

    # --- first count: plans (the paper's Figure 3 pipeline) + executes
    cold = session.count(query)
    print("\n--- cold call (cache miss: full preprocessing) ---")
    print(f"count            : {cold.count}")
    print(f"backend          : {cold.backend}")
    print(f"configuration    : {cold.provenance}")
    print(f"planning time    : {cold.seconds_plan * 1e3:.1f} ms")
    print(f"execution time   : {cold.seconds_execute * 1e3:.1f} ms")

    # --- second count: identical fingerprint -> plan-cache hit
    warm = session.count(MatchQuery(get_pattern("house")))
    print("\n--- warm call (cache hit: planning amortised to zero) ---")
    print(f"count            : {warm.count}  (cache_hit={warm.cache_hit})")
    print(f"execution time   : {warm.seconds_execute * 1e3:.1f} ms")
    print(f"cache            : {session.cache_info()}")

    # The full plan is inspectable: PlanEntry keeps the report of the
    # mode-specific planner (restriction sets, ranking, generated code).
    entry = session.plan_for(query)
    report = entry.report
    print("\n--- preprocessing detail (Table III pipeline) ---")
    print(f"restriction sets generated : {len(report.restriction_sets)}")
    print(f"efficient schedules        : {report.n_schedules}")
    print(f"configurations ranked      : {len(report.ranking)}")
    print(f"IEP absorbs innermost k    : {report.plan.iep_k}")

    # Every query routes through the pluggable backend registry; any
    # registered backend returns the same count.  `repro backends`
    # lists them, docs/architecture.md shows how to add one.
    for backend in ("interpreter", "compiled"):
        assert session.count(query, backend=backend) == cold.count
    print("\nbackends agree: interpreter == compiled")

    # Vertex-induced semantics (the AutoMine/GraphZero definition,
    # §V-A) is a query option, not a separate API.
    induced = session.count(MatchQuery(get_pattern("house"), semantics="induced"))
    print(f"vertex-induced house embeddings: {induced.count}")

    # Batch workloads: count_many shares the cache across the batch.
    names = ("triangle", "rectangle", "house")
    batch = session.count_many([MatchQuery(get_pattern(n)) for n in names])
    print("batch:", dict(zip(names, (r.count for r in batch))))

    # Listing embeddings (tuples indexed by pattern vertex); the
    # IEP-free enumeration plan is cached under its own fingerprint.
    print("\nfirst 5 embeddings (A, B, C, D, E):")
    for emb in session.enumerate(query, limit=5):
        print(f"  {emb}")

    # The generated code itself is inspectable — the Python analogue of
    # the C++ the paper's code generator emits (Fig. 5(b)).
    print("\n--- generated counting code ---")
    print(entry.generated.source)

    # Streaming: a mutating graph keeps its counts exact without ever
    # recounting — each edge update adjusts the watched counts by
    # enumerating only the embeddings through that edge (see
    # examples/streaming_counts.py and docs/architecture.md).
    from repro import DynamicGraph, StreamSession

    stream = StreamSession(DynamicGraph.from_graph(graph))
    tri = stream.watch(MatchQuery(get_pattern("triangle")))
    u = next(v for v in range(graph.n_vertices) if not graph.has_edge(0, v) and v != 0)
    delta = stream.apply([("+", 0, u), ("-", 0, u)])
    print("\n--- streaming maintenance ---")
    print(f"triangles watched: {tri.count} "
          f"(insert/delete round-trip delta {delta.deltas[tri.name]:+d})")
    assert stream.counts() == stream.expected_counts()

    # Serving: the same sessions behind an async job queue.  Submit
    # returns a handle; repeating a query on an unchanged graph is a
    # memo hit (no re-execution), and `await handle` works from any
    # event loop (see docs/architecture.md, "Serving runtime").
    from repro import MatchService

    print("\n--- matching-as-a-service ---")
    with MatchService(n_workers=2) as service:
        service.add_graph("default", graph)
        handle = service.count(get_pattern("house"))
        print(f"served count     : {handle.result(timeout=60)}")
        repeat = service.count(get_pattern("house"))
        print(f"repeat (memoised): {repeat.result(timeout=60)} "
              f"in {repeat.latency * 1e6:.0f} us")
        stats = service.stats()
        print(f"service stats    : {stats.describe()}")
        assert handle.result() == cold.count == repeat.result()
        assert stats.memo.hits == 1


if __name__ == "__main__":
    main()
