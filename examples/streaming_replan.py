#!/usr/bin/env python
"""Streaming updates: incremental statistics and cheap replanning.

The paper's cardinality estimator treats the triangle count as a
constant because *"we assume that the data graph is immutable ...  Even
if the graph is mutable, it is trivial to calculate tri_cnt
incrementally"* (§IV-C).  This example plays that scenario out:

1. start from a sparse power-law graph;
2. stream in batches of edges (a densifying community);
3. after each batch, refresh the plan from the **O(1)** incremental
   statistics — no graph rescan — and recount the House pattern;
4. watch the performance model's chosen configuration shift as the
   graph's clustering (p2) rises.

Run:  python examples/streaming_replan.py
"""

import itertools
import random

from repro import PatternMatcher, get_pattern
from repro.graph.dynamic import DynamicGraph
from repro.graph.generators import random_power_law


def community_batches(members, rng, batch_size=60):
    """Yield batches of intra-community edges in random order."""
    pairs = list(itertools.combinations(members, 2))
    rng.shuffle(pairs)
    for i in range(0, len(pairs), batch_size):
        yield pairs[i : i + batch_size]


def main() -> None:
    base = random_power_law(250, avg_degree=4.0, exponent=2.3, seed=17)
    dyn = DynamicGraph.from_graph(base)
    print(f"start: {dyn!r}")

    pattern = get_pattern("house")
    matcher = PatternMatcher(pattern)
    rng = random.Random(23)
    community = rng.sample(range(dyn.n_vertices), 24)

    print(
        f"\n{'batch':>5} {'|E|':>6} {'triangles':>9} {'p2':>9}  "
        f"{'house count':>11}  chosen schedule"
    )
    for i, batch in enumerate(community_batches(community, rng)):
        for u, v in batch:
            if not dyn.has_edge(u, v):
                dyn.add_edge(u, v)

        stats = dyn.stats()  # O(1): from incremental counters
        report = matcher.plan(stats=stats, use_iep=True)
        count = matcher.count(dyn.snapshot(), report=report)
        print(
            f"{i:>5} {stats.n_edges:>6} {stats.triangles:>9} {stats.p2:>9.2e}  "
            f"{count:>11}  {list(report.chosen.config.schedule)}"
        )

    print(
        "\nEach row replanned from incremental counters alone; the\n"
        "snapshot() freeze is the only per-batch O(|E|) step, and the\n"
        "house count climbs as the community densifies."
    )


if __name__ == "__main__":
    main()
