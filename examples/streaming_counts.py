#!/usr/bin/env python
"""Incremental pattern counts: StreamSession vs snapshot-and-recount.

The streaming subsystem keeps exact pattern counts alive while the
graph churns.  Where ``streaming_replan.py`` shows cheap *replanning*
from incremental statistics (and still recounts every batch), this
example never recounts at all: each watched pattern's count is
maintained by enumerating only the embeddings through each updated
edge — anchored delta plans whose exactly-once guarantee comes from
GraphPi's restriction machinery applied to the anchor-stabilising
automorphism subgroup (see ``docs/architecture.md``, "Streaming
maintenance").

The script:

1. starts from a power-law graph and watches the triangle and house
   patterns;
2. streams batches of mixed edge insertions/deletions (a churning
   community);
3. after each batch prints the maintained counts, the batch delta and
   the time the delta pass took;
4. finishes by verifying every maintained count against a full recount
   on the final snapshot, and comparing total maintenance time to what
   per-update snapshot recounts would have cost.

Run:  python examples/streaming_counts.py
"""

import time

from repro import get_pattern, get_session
from repro.graph.dynamic import DynamicGraph
from repro.graph.generators import random_power_law
from repro.streaming import StreamSession, random_churn


def main() -> None:
    base = random_power_law(300, avg_degree=5.0, exponent=2.3, seed=17)
    stream = StreamSession(DynamicGraph.from_graph(base))
    watches = [stream.watch(get_pattern(name)) for name in ("triangle", "house")]
    print(f"start: {stream!r}")
    for h in watches:
        print(f"  watching {h.name}: {h.count} "
              f"({len(h.plan.anchored)} anchored sub-plans)")

    header = f"{'batch':>5} {'|E|':>6}"
    for h in watches:
        header += f" {h.name:>10} {'delta':>7}"
    print("\n" + header + f" {'ms':>7}")
    for i in range(8):
        # fresh churn against the *live* edge set each batch
        report = stream.apply(random_churn(stream.graph, 24, seed=23 + i))
        row = f"{i:>5} {stream.graph.n_edges:>6}"
        for w in report.watches:
            row += f" {w.count:>10} {w.delta:>+7d}"
        print(row + f" {report.seconds * 1e3:>7.1f}")

    # verification: the maintained counts ARE the full recounts
    expected = stream.expected_counts()
    assert stream.counts() == expected, (stream.counts(), expected)
    print("\nverified: every maintained count equals a full recount "
          "on the final snapshot")

    # what would one snapshot-recount of all watches cost, per update?
    snap = stream.snapshot()
    session = get_session(snap)
    for h in watches:
        session.count(h.query)  # warm the plan cache
    t0 = time.perf_counter()
    for h in watches:
        session.count(h.query)
    recount = time.perf_counter() - t0
    spent = sum(h.seconds_delta for h in watches)
    per_update = spent / max(1, watches[0].updates_seen)
    print(f"delta maintenance: {per_update * 1e3:.2f} ms/update vs "
          f"{recount * 1e3:.1f} ms per snapshot recount "
          f"({recount / max(per_update, 1e-9):.0f}x)")


if __name__ == "__main__":
    main()
