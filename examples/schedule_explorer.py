#!/usr/bin/env python
"""Schedule explorer: see why configuration choice matters (§II-C, Fig. 9).

For a pattern of your choice this script:

1. enumerates all schedules and shows what the 2-phase generator keeps,
2. generates every valid restriction set (Algorithm 1),
3. ranks all configurations with the performance model,
4. *measures* a sample of them, so you can see the predicted-vs-actual
   landscape the paper plots in Figure 9.

Run:  python examples/schedule_explorer.py [pattern] [dataset]
e.g.  python examples/schedule_explorer.py cycle-6-tri wiki-vote
"""

import math
import sys
import time

from repro import get_pattern, load_dataset
from repro.core.codegen import compile_plan_function
from repro.core.config import Configuration, enumerate_configurations
from repro.core.perf_model import PerformanceModel
from repro.core.restrictions import generate_restriction_sets
from repro.core.schedule import generate_schedules
from repro.graph.stats import GraphStats
from repro.utils.tables import Table, format_seconds


def main() -> None:
    pattern_name = sys.argv[1] if len(sys.argv) > 1 else "house"
    dataset = sys.argv[2] if len(sys.argv) > 2 else "wiki-vote"

    pattern = get_pattern(pattern_name)
    graph = load_dataset(dataset, scale=0.25, seed=3)
    stats = GraphStats.of(graph)
    print(f"pattern {pattern!r} on {graph}")
    print(f"graph stats: {stats.describe()}\n")

    n = pattern.n_vertices
    phase1 = generate_schedules(pattern, phase1=True, phase2=False)
    both = generate_schedules(pattern)
    deduped = generate_schedules(pattern, dedup_automorphic=True)
    print(f"schedules: {math.factorial(n)} total -> {len(phase1)} connected "
          f"(phase 1) -> {len(both)} with independent suffix (phase 2) "
          f"-> {len(deduped)} after automorphism dedup")

    rsets = generate_restriction_sets(pattern, max_sets=32)
    print(f"restriction sets (Algorithm 1): {len(rsets)}")
    for rs in rsets[:5]:
        print("   ", ", ".join(f"id({g})>id({s})" for g, s in sorted(rs)) or "(none)")
    if len(rsets) > 5:
        print(f"    ... and {len(rsets) - 5} more")

    configs = enumerate_configurations(pattern, deduped, rsets)
    model = PerformanceModel(stats)
    ranked = model.rank(configs)
    print(f"\nconfigurations ranked by the model: {len(ranked)}")

    # Measure a spread: best 3, middle 2, worst 2 by prediction.
    sample = ranked[:3] + [ranked[len(ranked) // 2]] + ranked[-2:]
    table = Table(
        ["model rank", "schedule", "restrictions", "predicted", "measured", "count"],
        title="predicted vs measured (sampled configurations)",
    )
    for r in sample:
        fn = compile_plan_function(r.plan)
        t0 = time.perf_counter()
        count = fn(graph)
        measured = time.perf_counter() - t0
        table.add_row(
            [ranked.index(r), list(r.config.schedule),
             ", ".join(f"{g}>{s}" for g, s in sorted(r.config.restrictions)),
             f"{r.predicted_cost:.3g}", format_seconds(measured), count]
        )
    print("\n" + table.render())
    print("\nThe model's ordering should broadly track measured times — "
          "that is the paper's Figure 9/11 claim.")


if __name__ == "__main__":
    main()
