#!/usr/bin/env python
"""Directed network motifs on a citation graph.

The paper scopes its presentation to undirected graphs but claims the
methods *"can be easily extended to directed and labeled graphs"*
(§II-A).  This example exercises that extension
(:mod:`repro.core.directed`): the classic directed-motif census of
systems biology / network science — feed-forward loops, feedback loops,
bi-fans — on a Price preferential-attachment citation DAG and on a
directed Erdős–Rényi control.

Two things to notice in the output:

* the citation DAG has *zero* feedback (cyclic) triangles — arcs always
  point back in time — while the ER control has plenty; the feed-forward
  loop dominates, which is the signature structure of citation networks;
* the directed pipeline is the same GraphPi pipeline: Algorithm 1 runs
  on the direction-preserving automorphism subgroup (the directed
  3-cycle keeps only its 3 rotations; breaking a pure rotation group is
  exactly the case where the orbit-anchor fallback extends the paper's
  2-cycle scan).

Run:  python examples/directed_motifs.py
"""

from repro import DirectedMatcher
from repro.graph.digraph import price_citation_graph, random_digraph
from repro.pattern.directed import (
    bi_fan,
    directed_cycle,
    feedforward_loop,
    out_star,
)

MOTIFS = [
    feedforward_loop(),  # X -> Y, X -> Z, Y -> Z  (acyclic triangle)
    directed_cycle(3),  # X -> Y -> Z -> X        (feedback triangle)
    bi_fan(),  # two sources x two sinks
    out_star(2),  # one vertex citing two others
    directed_cycle(4),  # 4-vertex feedback ring
]


def census(graph, label: str) -> None:
    print(f"\n--- {label}: {graph.n_vertices} vertices, {graph.n_arcs} arcs ---")
    print(f"{'motif':<20} {'count':>10}  {'|Aut|':>5}  restrictions of chosen set")
    for motif in MOTIFS:
        matcher = DirectedMatcher(motif)
        report = matcher.plan(graph)
        count = matcher.count(graph, report=report)
        res = (
            ", ".join(f"id({g})>id({s})" for g, s in sorted(report.chosen_restrictions))
            or "(none needed)"
        )
        from repro.pattern.directed import directed_automorphism_count

        print(
            f"{motif.name:<20} {count:>10}  "
            f"{directed_automorphism_count(motif):>5}  {res}"
        )


def main() -> None:
    citation = price_citation_graph(400, out_degree=4, seed=11, name="price-citations")
    census(citation, "citation DAG (Price model)")

    control = random_digraph(400, 4 / 399, seed=13, name="directed-ER-control")
    census(control, "directed ER control (same density)")

    print(
        "\nNote the zero feedback-loop rows on the DAG: arcs only point\n"
        "backwards in time, so every triangle is feed-forward — the\n"
        "motif signature that distinguishes citation networks from the\n"
        "ER control above."
    )


if __name__ == "__main__":
    main()
