"""One-off line-coverage measurement without coverage.py.

The container that grows this repo has no ``coverage``/``pytest-cov``;
CI does (it pip-installs them), but the ``--cov-fail-under`` floor in
the workflow has to be calibrated from a real measurement.  This module
is a pytest plugin: run

    PYTHONPATH=src python -m pytest -q -p tools.trace_coverage

and it records every executed line under ``src/repro`` via
``sys.settrace``, then reports per-file and total percentages against
the executable-line sets derived from each file's code objects
(``co_lines``), writing ``coverage_lines.json`` next to the repo root.

Slower than coverage.py's C tracer by an order of magnitude — use it to
calibrate the CI floor, not in CI itself.  Lines marked ``pragma: no
cover`` are *not* excluded here, so the percentage reported is a
conservative lower bound on what pytest-cov will report.
"""

from __future__ import annotations

import json
import os
import sys
import threading
from types import CodeType

ROOT = os.path.abspath(
    os.path.join(os.path.dirname(__file__), "..", "src", "repro")
)

_executed: dict[str, set[int]] = {}


def _trace(frame, event, arg):
    if event != "call":
        return None
    filename = frame.f_code.co_filename
    if not filename.startswith(ROOT):
        return None
    lines = _executed.setdefault(filename, set())
    lines.add(frame.f_lineno)

    def local(frame, event, arg):
        if event == "line":
            lines.add(frame.f_lineno)
        return local

    return local


def _code_lines(code: CodeType) -> set[int]:
    lines = {line for _, _, line in code.co_lines() if line is not None}
    for const in code.co_consts:
        if isinstance(const, CodeType):
            lines |= _code_lines(const)
    return lines


# Installed at plugin *import* time, not pytest_configure: command-line
# `-p` plugins load before conftest files, and the root conftest already
# imports the repro package — a configure-time hook would miss every
# module-level line (defs, class bodies, registrations) and under-report
# each file by its top-level statement count.
threading.settrace(_trace)
sys.settrace(_trace)


def pytest_configure(config):
    # Re-assert in case another plugin's configure replaced the tracer.
    threading.settrace(_trace)
    sys.settrace(_trace)


def pytest_unconfigure(config):
    sys.settrace(None)
    threading.settrace(None)
    totals = [0, 0]
    report = {}
    for dirpath, _dirnames, filenames in os.walk(ROOT):
        for name in sorted(filenames):
            if not name.endswith(".py"):
                continue
            path = os.path.join(dirpath, name)
            source = open(path, encoding="utf-8").read()
            executable = _code_lines(compile(source, path, "exec"))
            hit = _executed.get(path, set()) & executable
            rel = os.path.relpath(path, ROOT)
            report[rel] = {
                "executable": len(executable),
                "covered": len(hit),
                "missing": sorted(executable - hit),
            }
            totals[0] += len(hit)
            totals[1] += len(executable)
    pct = 100.0 * totals[0] / totals[1] if totals[1] else 0.0
    report["TOTAL"] = {"covered": totals[0], "executable": totals[1], "percent": pct}
    with open(os.path.join(ROOT, "..", "..", "coverage_lines.json"), "w") as fh:
        json.dump(report, fh, indent=1, sort_keys=True)
    lines = [
        (rel, rec)
        for rel, rec in sorted(report.items())
        if rel != "TOTAL" and rec["executable"]
    ]
    print("\n--- traced line coverage (settrace, pragma lines included) ---")
    for rel, rec in lines:
        print(f"{rel:40s} {100.0 * rec['covered'] / rec['executable']:6.1f}%")
    print(f"{'TOTAL':40s} {pct:6.1f}%  ({totals[0]}/{totals[1]} lines)")
