"""Generate the backend capability table embedded in ``docs/backends.md``.

The table is rendered from :func:`repro.core.backend.available_backends`
— the same declared-capability registry the session planner and the CLI
``backends`` command consume — so the documentation cannot drift from
the code.  The target file carries a marker pair::

    <!-- BEGIN GENERATED: capability-table (tools/gen_capability_table.py) -->
    ...
    <!-- END GENERATED: capability-table -->

and this tool rewrites everything between them.

    PYTHONPATH=src python tools/gen_capability_table.py            # rewrite
    PYTHONPATH=src python tools/gen_capability_table.py --check    # CI gate

``--check`` exits 1 when the committed table differs from the registry
(the CI docs job runs it; regenerate and commit on failure).
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.core.backend import available_backends  # noqa: E402

BEGIN = "<!-- BEGIN GENERATED: capability-table (tools/gen_capability_table.py) -->"
END = "<!-- END GENERATED: capability-table -->"
DEFAULT_TARGET = Path(__file__).resolve().parent.parent / "docs" / "backends.md"


def render_table() -> str:
    """The capability/fallback table as GitHub-flavoured markdown."""
    rows = [
        "| backend | modes | IEP plans | enumerates | kernels | traced | role |",
        "|---------|-------|-----------|------------|---------|--------|------|",
    ]
    for name, info in available_backends().items():
        caps = info.capabilities
        role = info.summary().rstrip(".")
        if getattr(info.cls, "is_meta", False):
            name = f"`{name}`*"
        else:
            name = f"`{name}`"
        rows.append(
            "| {} | {} | {} | {} | {} | {} | {} |".format(
                name,
                ", ".join(sorted(caps.modes)),
                "yes" if caps.iep else "no",
                "yes" if caps.enumeration else "no",
                "yes" if caps.generated_kernels else "no",
                "yes" if caps.traced else "no",
                role,
            )
        )
    rows.append("")
    rows.append(
        "\\* `auto` is a *meta* backend: it delegates to one of the others "
        "and is never its own delegation candidate.  Its declared flags "
        "keep every planner default available for the eventual delegate."
    )
    rows.append("")
    rows.append(
        "*traced* marks backends that emit fine-grained spans (per-depth "
        "frontier steps, per-task ranges) under the session's `execute` "
        "span when tracing is on — see "
        "[observability](observability.md)."
    )
    return "\n".join(rows)


def splice(text: str, table: str) -> str:
    """``text`` with the marker block's body replaced by ``table``."""
    try:
        head, rest = text.split(BEGIN, 1)
        _, tail = rest.split(END, 1)
    except ValueError:
        raise SystemExit(
            f"marker pair not found (expected {BEGIN!r} ... {END!r})"
        )
    return f"{head}{BEGIN}\n{table}\n{END}{tail}"


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="regenerate the capability table in docs/backends.md"
    )
    parser.add_argument("--target", default=str(DEFAULT_TARGET), metavar="PATH")
    parser.add_argument(
        "--check", action="store_true",
        help="exit 1 if the committed table is stale instead of rewriting",
    )
    args = parser.parse_args(argv)

    target = Path(args.target)
    current = target.read_text()
    updated = splice(current, render_table())
    if args.check:
        if current != updated:
            print(
                f"{target}: capability table is stale — regenerate with "
                f"`PYTHONPATH=src python tools/gen_capability_table.py`",
                file=sys.stderr,
            )
            return 1
        print(f"{target}: capability table is current")
        return 0
    if current == updated:
        print(f"{target}: already current")
    else:
        target.write_text(updated)
        print(f"{target}: capability table rewritten")
    return 0


if __name__ == "__main__":
    sys.exit(main())
