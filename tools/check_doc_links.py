"""Markdown link checker for the ``docs/`` suite (and the README).

Validates every ``[text](target)`` link in the checked files:

* **relative file links** (``architecture.md``, ``../README.md``) must
  resolve to an existing file relative to the linking document;
* **anchor links** (``backends.md#tuning-guide``, ``#recipes``) must
  name a heading that actually exists in the target document, using
  GitHub's slug rules (lowercase, punctuation stripped, spaces to
  dashes);
* **absolute URLs** (``https://...``) are *not* fetched — CI must not
  depend on the network — but must at least parse as http(s);
* bare code spans, images and reference-style definitions are handled
  like ordinary links.

Exit status is the number of broken links (0 = all good), so the CI
docs job can run it directly.

    PYTHONPATH=src python tools/check_doc_links.py
    PYTHONPATH=src python tools/check_doc_links.py docs/*.md README.md
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent

#: inline links/images: [text](target) — target may carry a title.
LINK_RE = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
#: fenced code blocks are excluded (their brackets are code, not links).
FENCE_RE = re.compile(r"^(```|~~~)")
HEADING_RE = re.compile(r"^#{1,6}\s+(.*)$")


def github_slug(heading: str) -> str:
    """GitHub's heading-to-anchor slug: lowercase, drop punctuation,
    spaces to dashes (backticks and links stripped first)."""
    text = re.sub(r"`([^`]*)`", r"\1", heading)
    text = re.sub(r"\[([^\]]*)\]\([^)]*\)", r"\1", text)
    text = text.strip().lower()
    text = re.sub(r"[^\w\- ]", "", text)
    return text.replace(" ", "-")


def heading_slugs(path: Path) -> set[str]:
    slugs: set[str] = set()
    in_fence = False
    for line in path.read_text().splitlines():
        if FENCE_RE.match(line):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        m = HEADING_RE.match(line)
        if m:
            slugs.add(github_slug(m.group(1)))
    return slugs


def iter_links(path: Path):
    """(line number, target) pairs for every link outside code fences."""
    in_fence = False
    for lineno, line in enumerate(path.read_text().splitlines(), start=1):
        if FENCE_RE.match(line):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        for m in LINK_RE.finditer(line):
            yield lineno, m.group(1)


def check_file(path: Path) -> list[str]:
    problems = []
    for lineno, target in iter_links(path):
        where = f"{path.relative_to(REPO)}:{lineno}"
        if target.startswith(("http://", "https://")):
            continue  # external: syntax-checked by the regex, not fetched
        if target.startswith("mailto:"):
            continue
        base, _, anchor = target.partition("#")
        dest = path if not base else (path.parent / base).resolve()
        if base and not dest.exists():
            problems.append(f"{where}: broken file link -> {target}")
            continue
        if anchor:
            if dest.suffix != ".md":
                continue  # anchors into non-markdown files: not checkable
            if github_slug(anchor) not in heading_slugs(dest):
                problems.append(f"{where}: missing anchor -> {target}")
    return problems


def main(argv: list[str] | None = None) -> int:
    args = argv if argv is not None else sys.argv[1:]
    if args:
        files = [Path(a).resolve() for a in args]
    else:
        files = sorted((REPO / "docs").glob("*.md"))
        readme = REPO / "README.md"
        if readme.exists():
            files.append(readme)
    all_problems: list[str] = []
    for path in files:
        all_problems.extend(check_file(path))
    for problem in all_problems:
        print(problem, file=sys.stderr)
    if not all_problems:
        print(f"checked {len(files)} files: all links resolve")
    return len(all_problems)


if __name__ == "__main__":
    sys.exit(main())
