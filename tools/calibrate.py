"""Calibration sweep CLI: measure backends x knobs, persist a profile.

The driver for :mod:`repro.core.autotune`: build a grid of workloads
(datasets x scales x patterns), measure every applicable
:class:`~repro.core.autotune.ProfileChoice` on each (best-of-``repeats``
execution seconds through a warm ``MatchSession`` plan cache), aggregate
into per-(pattern signature, graph signature) buckets, and write the
versioned JSON profile ``backend="auto"`` consumes.

    PYTHONPATH=src python tools/calibrate.py --out calibration.json
    PYTHONPATH=src python tools/calibrate.py --quick --out /tmp/cal.json
    REPRO_AUTOTUNE_PROFILE=calibration.json python -m repro count \\
        --backend auto --pattern house

``--heavy`` adds the process-pool and simulated-distributed
configurations to the sweep (minutes, worth it for large graphs);
``--quick`` shrinks everything for smoke runs.  Inspect a written
profile with ``python -m repro backends --profile PATH``; re-run this
tool whenever the backend registry changes (the profile records the
registry snapshot and invalidates itself otherwise).  The full tuning
guide lives in ``docs/backends.md``.
"""

from __future__ import annotations

import argparse
import platform
import sys
import time
from datetime import datetime, timezone
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.core.autotune import (  # noqa: E402
    CalibrationWorkload,
    default_choice_grid,
    run_calibration,
)
from repro.core.query import MatchQuery  # noqa: E402
from repro.graph.datasets import load_dataset  # noqa: E402
from repro.pattern.catalog import get_pattern  # noqa: E402
from repro.utils.tables import Table, format_seconds  # noqa: E402

#: defaults chosen to span the signature space: two degree regimes
#: (wiki-vote is skewed, mico is flatter) at two sizes each, and
#: patterns spanning sparse cycles to dense cliques.
DEFAULT_DATASETS = "wiki-vote,mico"
DEFAULT_SCALES = "0.1,0.2"
DEFAULT_PATTERNS = "triangle,rectangle,clique-4,pentagon,house"
DEFAULT_SEED = 2020


def build_workloads(args) -> list[CalibrationWorkload]:
    datasets = [d.strip() for d in args.datasets.split(",") if d.strip()]
    scales = [float(s) for s in args.scales.split(",") if s.strip()]
    patterns = [p.strip() for p in args.patterns.split(",") if p.strip()]
    workloads = []
    for dataset in datasets:
        for scale in scales:
            graph = load_dataset(dataset, scale=scale, seed=args.seed)
            for pname in patterns:
                query = MatchQuery(get_pattern(pname))
                workloads.append(
                    CalibrationWorkload(
                        name=f"{dataset}@{scale}/{pname}",
                        graph=graph,
                        query=query,
                    )
                )
    return workloads


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="sweep backends x knobs and write a calibration profile"
    )
    parser.add_argument("--datasets", default=DEFAULT_DATASETS,
                        help=f"comma-separated proxies (default {DEFAULT_DATASETS})")
    parser.add_argument("--scales", default=DEFAULT_SCALES,
                        help=f"comma-separated proxy scales (default {DEFAULT_SCALES})")
    parser.add_argument("--patterns", default=DEFAULT_PATTERNS,
                        help=f"comma-separated patterns (default {DEFAULT_PATTERNS})")
    parser.add_argument("--repeats", type=int, default=3,
                        help="timing repetitions per (workload, choice); "
                             "best-of is recorded (default 3)")
    parser.add_argument("--seed", type=int, default=DEFAULT_SEED)
    parser.add_argument("--heavy", action="store_true",
                        help="also sweep parallel and distributed configurations")
    parser.add_argument("--quick", action="store_true",
                        help="smoke sweep: one small graph, three patterns, "
                             "one repeat")
    parser.add_argument("--out", default="calibration.json", metavar="PATH",
                        help="profile destination (default calibration.json)")
    args = parser.parse_args(argv)

    if args.quick:
        args.datasets = "wiki-vote"
        args.scales = "0.08"
        args.patterns = "triangle,rectangle,clique-4"
        args.repeats = 1

    workloads = build_workloads(args)
    grid = default_choice_grid(heavy=args.heavy)
    print(f"sweeping {len(workloads)} workloads x {len(grid)} choices "
          f"(best of {args.repeats})...")
    t0 = time.perf_counter()
    profile, measurements = run_calibration(
        workloads,
        grid,
        repeats=args.repeats,
        created=datetime.now(timezone.utc).isoformat(timespec="seconds"),
        host=platform.node() or platform.machine(),
    )
    elapsed = time.perf_counter() - t0

    table = Table(["workload", "count", "best choice", "seconds", "vs worst"],
                  title="calibration sweep (best measured choice per workload)")
    for m in measurements:
        choice, seconds = m.best
        worst = max(s for _, s in m.seconds)
        table.add_row([
            m.workload,
            m.count,
            choice.describe(),
            format_seconds(seconds),
            f"{worst / seconds:.1f}x" if seconds else "-",
        ])
    print(table.render())

    path = profile.save(args.out)
    print(f"\nprofile: {path} — {profile.describe()}")
    print(f"sweep time: {format_seconds(elapsed)}")
    print(f"activate with REPRO_AUTOTUNE_PROFILE={path} or "
          f"repro.set_active_profile({str(path)!r}); inspect with "
          f"`python -m repro backends --profile {path}`")
    return 0


if __name__ == "__main__":
    sys.exit(main())
