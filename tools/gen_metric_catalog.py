"""Generate the metric catalog embedded in ``docs/observability.md``.

The catalog is rendered from :meth:`repro.obs.metrics.MetricsRegistry.
describe` over the process-global registry — every instrument the
repository emits is declared at import time in ``repro/obs/metrics.py``,
so importing that one module yields the complete set and the
documentation cannot drift from the code.  The target file carries a
marker pair::

    <!-- BEGIN GENERATED: metric-catalog (tools/gen_metric_catalog.py) -->
    ...
    <!-- END GENERATED: metric-catalog -->

and this tool rewrites everything between them.

    PYTHONPATH=src python tools/gen_metric_catalog.py            # rewrite
    PYTHONPATH=src python tools/gen_metric_catalog.py --check    # CI gate

``--check`` exits 1 when the committed catalog differs from the
registry (the CI docs job runs it; regenerate and commit on failure).
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.obs.metrics import REGISTRY  # noqa: E402

BEGIN = "<!-- BEGIN GENERATED: metric-catalog (tools/gen_metric_catalog.py) -->"
END = "<!-- END GENERATED: metric-catalog -->"
DEFAULT_TARGET = Path(__file__).resolve().parent.parent / "docs" / "observability.md"


def render_table() -> str:
    """The metric catalog as GitHub-flavoured markdown."""
    rows = [
        "| metric | kind | labels | meaning |",
        "|--------|------|--------|---------|",
    ]
    for spec in REGISTRY.describe():
        rows.append(
            "| `{}` | {} | {} | {} |".format(
                spec.name,
                spec.kind,
                ", ".join(f"`{label}`" for label in spec.labels) or "—",
                spec.help,
            )
        )
    rows.append("")
    rows.append(
        "Histograms expose Prometheus cumulative samples "
        "(`*_bucket{le=...}`, `*_sum`, `*_count`); labeled counters "
        "expose one sample per observed label combination."
    )
    return "\n".join(rows)


def splice(text: str, table: str) -> str:
    """``text`` with the marker block's body replaced by ``table``."""
    try:
        head, rest = text.split(BEGIN, 1)
        _, tail = rest.split(END, 1)
    except ValueError:
        raise SystemExit(
            f"marker pair not found (expected {BEGIN!r} ... {END!r})"
        )
    return f"{head}{BEGIN}\n{table}\n{END}{tail}"


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="regenerate the metric catalog in docs/observability.md"
    )
    parser.add_argument("--target", default=str(DEFAULT_TARGET), metavar="PATH")
    parser.add_argument(
        "--check", action="store_true",
        help="exit 1 if the committed catalog is stale instead of rewriting",
    )
    args = parser.parse_args(argv)

    target = Path(args.target)
    current = target.read_text()
    updated = splice(current, render_table())
    if args.check:
        if current != updated:
            print(
                f"{target}: metric catalog is stale — regenerate with "
                f"`PYTHONPATH=src python tools/gen_metric_catalog.py`",
                file=sys.stderr,
            )
            return 1
        print(f"{target}: metric catalog is current")
        return 0
    if current == updated:
        print(f"{target}: already current")
    else:
        target.write_text(updated)
        print(f"{target}: metric catalog rewritten")
    return 0


if __name__ == "__main__":
    sys.exit(main())
