"""Ablation: how restriction placement is executed.

DESIGN.md calls out that our engine resolves restrictions as *range
slices* on the sorted candidate stream (binary search), generalising the
paper's ``break``.  This bench quantifies the ladder:

1. no restrictions at all (count every automorphic image, divide later) —
   what AutoMine-without-symmetry-breaking pays;
2. restrictions as per-candidate *filter checks* (the naive reading);
3. restrictions as range slices (GraphPi's break, generalised).
"""

import pytest

from repro.core.codegen import compile_plan_function
from repro.core.config import Configuration
from repro.core.engine import Engine
from repro.core.restrictions import generate_restriction_sets
from repro.core.schedule import generate_schedules
from repro.graph.intersection import bounded_slice
from repro.pattern.automorphism import automorphism_count
from repro.pattern.catalog import house
from repro.utils.tables import Table, format_seconds, format_speedup

from _common import bench_graph, emit, once, time_call


def _filter_check_count(graph, plan):
    """Variant 2: apply bounds by scanning candidates one by one."""
    n = plan.n

    def rec(depth, assigned):
        deps = plan.deps[depth]
        if deps:
            from repro.graph.intersection import intersect_many

            arrays = [graph.neighbors(assigned[j]) for j in deps]
            cand = arrays[0] if len(arrays) == 1 else intersect_many(arrays)
        else:
            cand = graph.vertices()
        total = 0
        for v in cand:
            vi = int(v)
            if vi in assigned:
                continue
            ok = all(vi > assigned[j] for j in plan.lower[depth]) and all(
                vi < assigned[j] for j in plan.upper[depth]
            )
            if not ok:
                continue
            if depth == n - 1:
                total += 1
            else:
                assigned.append(vi)
                total += rec(depth + 1, assigned)
                assigned.pop()
        return total

    return rec(0, [])


@pytest.mark.benchmark(group="ablation-pruning")
def test_ablation_restriction_pruning(benchmark, capsys):
    graph = bench_graph("wiki-vote")
    pattern = house()
    rs = generate_restriction_sets(pattern)[0]
    schedule = generate_schedules(pattern)[0]

    plan = Configuration(pattern, schedule, rs).compile()
    plan_none = Configuration(pattern, schedule, frozenset()).compile()

    t_none, raw = time_call(compile_plan_function(plan_none), graph)
    count_none = raw // automorphism_count(pattern)
    t_filter, count_filter = time_call(_filter_check_count, graph, plan)
    t_slice, count_slice = time_call(compile_plan_function(plan), graph)
    assert count_none == count_filter == count_slice

    table = Table(
        ["variant", "time", "speedup vs no-restrictions"],
        title="Ablation: restriction execution strategy (house on wiki proxy)",
    )
    table.add_row(["no restrictions (÷|Aut| afterwards)", format_seconds(t_none), "1x"])
    table.add_row(["per-candidate filter checks", format_seconds(t_filter),
                   format_speedup(t_none / t_filter)])
    table.add_row(["range slices / break (GraphPi)", format_seconds(t_slice),
                   format_speedup(t_none / t_slice)])
    emit(table, capsys, "ablation_pruning.tsv")

    once(benchmark, compile_plan_function(plan), graph)

    # Slicing must beat per-candidate checks; both beat no restrictions
    # for a symmetric pattern.
    assert t_slice <= t_filter
    assert t_slice < t_none
