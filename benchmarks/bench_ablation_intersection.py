"""Ablation: sorted-intersection kernels.

The paper stores CSR with sorted rows so intersections cost O(n+m)
merges in C++.  In NumPy-land the constant factors invert: vectorised
binary search (searchsorted) beats an interpreted two-pointer merge by
orders of magnitude, and galloping pays off only for extreme size
imbalance.  This bench documents why ``intersect`` dispatches the way
it does — the kernels are interchangeable and tested equal.
"""

import numpy as np
import pytest

from repro.graph.intersection import (
    VERTEX_DTYPE,
    intersect,
    intersect_galloping,
    intersect_merge,
    intersect_searchsorted,
)
from repro.utils.tables import Table, format_seconds

from _common import emit, once, time_call

KERNELS = [
    ("merge (two-pointer)", intersect_merge),
    ("searchsorted (default)", intersect_searchsorted),
    ("galloping", intersect_galloping),
    ("adaptive dispatch", intersect),
]

SHAPES = [
    ("balanced 1k/1k", 1000, 1000),
    ("skewed 50/5k", 50, 5000),
    ("skewed 5/50k", 5, 50000),
    # the adaptive-dispatch regime: a single interpreted probe into a
    # small row undercuts the vectorised kernel's fixed call overhead —
    # this shape backs GALLOP_MAX_SMALL / GALLOP_RATIO / GALLOP_MAX_LARGE.
    ("tiny probe 1/400", 1, 400),
    # ... and the counter-example behind GALLOP_MAX_LARGE: however
    # extreme the ratio, a huge row hands the win back to the C-level
    # binary search (per-probe cost ~ns there vs ~100ns interpreted).
    ("tiny/huge 8/100k", 8, 100000),
]


def _arrays(n, m, seed):
    rng = np.random.default_rng(seed)
    universe = 4 * max(n, m)
    a = np.unique(rng.integers(0, universe, size=n)).astype(VERTEX_DTYPE)
    b = np.unique(rng.integers(0, universe, size=m)).astype(VERTEX_DTYPE)
    return a, b


@pytest.mark.benchmark(group="ablation-intersection")
def test_ablation_intersection_kernels(benchmark, capsys):
    REPEATS = 50
    table = Table(
        ["workload"] + [name for name, _ in KERNELS],
        title="Ablation: intersection kernel timings (per call)",
    )
    results = {}
    for wname, n, m in SHAPES:
        a, b = _arrays(n, m, seed=len(wname))
        expected = intersect_merge(a, b).tolist()
        row = [wname]
        for kname, kernel in KERNELS:
            assert kernel(a, b).tolist() == expected
            # best-of-N: the dispatch-threshold assertions below sit on
            # ~15% margins, which a single sample cannot resolve.
            seconds = min(
                time_call(lambda: [kernel(a, b) for _ in range(REPEATS)])[0]
                for _ in range(5)
            )
            per_call = seconds / REPEATS
            results[(wname, kname)] = per_call
            row.append(format_seconds(per_call))
        table.add_row(row)
    emit(table, capsys, "ablation_intersection.tsv")

    a, b = _arrays(1000, 1000, seed=1)
    once(benchmark, intersect_searchsorted, a, b)

    # The vectorised kernel must dominate the interpreted merge on the
    # balanced workload (this is the Python-vs-C++ constant inversion).
    assert results[("balanced 1k/1k", "searchsorted (default)")] < results[
        ("balanced 1k/1k", "merge (two-pointer)")
    ]
    # The thresholds behind ``intersect``'s adaptive dispatch, both
    # directions: a single probe into a small row is galloping's regime
    # (it skips the vectorised path's fixed call overhead) ...
    assert results[("tiny probe 1/400", "galloping")] < results[
        ("tiny probe 1/400", "searchsorted (default)")
    ]
    # ... while a huge row is not, however extreme the ratio — the
    # measurement that sets GALLOP_MAX_LARGE.
    assert results[("tiny/huge 8/100k", "searchsorted (default)")] < results[
        ("tiny/huge 8/100k", "galloping")
    ]
