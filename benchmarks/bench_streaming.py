"""Streaming delta maintenance vs snapshot-recount-per-update.

The streaming subsystem's claim: maintaining exact pattern counts under
edge churn by anchored delta enumeration beats the only alternative the
repository previously had — freeze a snapshot and recount after every
update — by a wide margin, because a delta pass touches only the
embeddings through the updated edge while a recount touches the whole
graph.

The bench replays one deterministic mixed insert/delete churn sequence
per batch size (1 / 16 / 256) through a :class:`StreamSession` watching
the pattern suite, and compares against the strongest honest recount
baseline: a *warm* compiled plan replayed on each post-update snapshot
(planning excluded, kernel pre-generated — only snapshot + execution
are timed).  Recount cost per update is flat, so the baseline is
measured over the first ``RECOUNT_SAMPLE`` updates and extrapolated;
exactness is asserted separately by comparing every maintained count
against a full recount after each replay (the delta == recount gate the
CI smoke job runs in every mode).

Outputs: an aligned table, a TSV under ``benchmarks/results/`` and
``BENCH_streaming.json`` in the repo root with per-pattern timings and
the geomean speedups the acceptance floor is asserted on.
"""

from __future__ import annotations

import time

from repro.core.backend import MatchContext, get_backend
from repro.core.session import MatchSession
from repro.graph.dynamic import DynamicGraph
from repro.pattern.catalog import house, rectangle, triangle
from repro.streaming import StreamSession, random_churn
from repro.utils.tables import Table, format_seconds, format_speedup

from _common import QUICK, bench_graph, emit, emit_json, geomean

DATASET = "wiki-vote"
SCALE = 0.08 if QUICK else 0.15

PATTERNS = {"triangle": triangle, "rectangle": rectangle, "house": house}

#: updates replayed per batch-size configuration (the 256 batch needs a
#: sequence at least that long to exercise a full bulk burst).
N_UPDATES = 64 if QUICK else 256
BATCH_SIZES = [1, 16, 64] if QUICK else [1, 16, 256]

#: recount baseline: measured over this many updates, extrapolated.
RECOUNT_SAMPLE = 8 if QUICK else 32

#: the acceptance floor — delta maintenance must beat
#: snapshot-recount-per-update by this factor (geomean over patterns)
#: at batch size 1.  Quick mode shrinks the graph, which shrinks the
#: recount the baseline pays, hence the lower floor.
SPEEDUP_FLOOR = 3.0 if QUICK else 5.0

CHURN_SEED = 2020


def time_delta(base, updates, batch_size):
    """(seconds, final maintained counts, verified) for one replay."""
    stream = StreamSession(DynamicGraph.from_graph(base))
    for name, builder in PATTERNS.items():
        stream.watch(builder(), name=name)
    t0 = time.perf_counter()
    for start in range(0, len(updates), batch_size):
        stream.apply(updates[start : start + batch_size])
    seconds = time.perf_counter() - t0
    counts = stream.counts()
    # the exactness gate: maintained == full recount, every pattern.
    expected = stream.expected_counts()
    assert counts == expected, (counts, expected)
    return seconds, counts


def time_recount_baseline(base, updates, sample):
    """Seconds for `sample` snapshot+recount updates, with warm plans.

    The strongest honest baseline: plans are prepared (and kernels
    generated) once on the initial graph, so the measured cost is pure
    snapshot freeze + compiled execution per update — what a service
    without delta maintenance would pay at best.
    """
    session = MatchSession(base)
    entries = {
        name: session.plan_for(builder()) for name, builder in PATTERNS.items()
    }
    backend = get_backend("compiled")
    dyn = DynamicGraph.from_graph(base)
    t0 = time.perf_counter()
    for up in updates[:sample]:
        if up.is_insert:
            dyn.add_edge(up.u, up.v)
        else:
            dyn.remove_edge(up.u, up.v)
        snap = dyn.snapshot()
        for entry in entries.values():
            backend.count(
                MatchContext(graph=snap, plan=entry.plan, generated=entry.generated)
            )
    return time.perf_counter() - t0


def run_streaming_bench() -> dict:
    base = bench_graph(DATASET, scale=SCALE)
    updates = random_churn(base, N_UPDATES, seed=CHURN_SEED)
    recount_sample_s = time_recount_baseline(base, updates, RECOUNT_SAMPLE)
    recount_per_update = recount_sample_s / RECOUNT_SAMPLE
    recount_total = recount_per_update * len(updates)

    rows = {}
    for batch_size in BATCH_SIZES:
        delta_s, counts = time_delta(base, updates, batch_size)
        rows[str(batch_size)] = {
            "batch_size": batch_size,
            "delta_seconds": delta_s,
            "recount_seconds_extrapolated": recount_total,
            "speedup": recount_total / delta_s if delta_s else float("inf"),
            "final_counts": counts,
        }
    return {
        "graph": repr(base),
        "dataset": DATASET,
        "scale": SCALE,
        "quick": QUICK,
        "n_updates": len(updates),
        "recount_sample": RECOUNT_SAMPLE,
        "recount_seconds_per_update": recount_per_update,
        "patterns": sorted(PATTERNS),
        "batches": rows,
        "speedup_floor": SPEEDUP_FLOOR,
    }


def _render(results: dict, capsys=None) -> dict:
    suffix = ", quick" if QUICK else ""
    table = Table(
        ["batch", "delta total", "delta/update", "recount/update", "speedup"],
        title=(
            f"delta maintenance vs snapshot-recount-per-update on {DATASET} "
            f"proxy ({results['n_updates']} updates, "
            f"{len(results['patterns'])} watched patterns{suffix})"
        ),
    )
    n = results["n_updates"]
    for row in results["batches"].values():
        table.add_row([
            row["batch_size"],
            format_seconds(row["delta_seconds"]),
            format_seconds(row["delta_seconds"] / n),
            format_seconds(results["recount_seconds_per_update"]),
            format_speedup(row["speedup"]),
        ])
    results["geomean_speedup"] = geomean(
        [row["speedup"] for row in results["batches"].values()]
    )
    results["speedup_batch_1"] = results["batches"]["1"]["speedup"]
    table.add_row(["geomean", "", "", "", format_speedup(results["geomean_speedup"])])
    emit(table, capsys, "bench_streaming.tsv")
    emit_json("BENCH_streaming.json", results)
    return results


def _assert_floors(results: dict) -> None:
    for row in results["batches"].values():
        assert row["speedup"] > SPEEDUP_FLOOR, (
            f"delta maintenance speedup {row['speedup']:.2f}x at batch size "
            f"{row['batch_size']} is below the {SPEEDUP_FLOOR}x floor"
        )


def test_streaming_maintenance(benchmark, capsys):
    from _common import once

    results = once(benchmark, run_streaming_bench)
    _render(results, capsys)
    _assert_floors(results)


if __name__ == "__main__":
    _assert_floors(_render(run_streaming_bench()))
