"""Table I: graph datasets.

Paper: 6 SNAP graphs from 7.1 K to 41.7 M vertices.  Here: the seeded
synthetic proxies at benchmark scale, with the paper's original sizes
printed alongside for the record.
"""

import pytest

from repro.graph.datasets import DATASETS
from repro.graph.stats import GraphStats
from repro.utils.tables import Table

from _common import BENCH_SCALES, bench_graph, emit, once


@pytest.mark.benchmark(group="table1")
def test_table1_datasets(benchmark, capsys):
    table = Table(
        ["graph", "paper |V|", "paper |E|", "proxy |V|", "proxy |E|",
         "proxy triangles", "avg deg", "description"],
        title="Table I: graph datasets (proxies at benchmark scale)",
    )
    stats_of = {}
    for name, spec in DATASETS.items():
        g = bench_graph(name)
        s = GraphStats.of(g)
        stats_of[name] = s
        table.add_row(
            [name, spec.paper_vertices, spec.paper_edges, s.n_vertices,
             s.n_edges, s.triangles, f"{s.avg_degree:.1f}", spec.description]
        )
    emit(table, capsys, "table1_datasets.tsv")

    # Representative measured operation: full stats of the largest proxy.
    once(benchmark, lambda: GraphStats.of(bench_graph("twitter")))

    # Shape assertions mirroring the paper's dataset ordering.
    assert stats_of["twitter"].n_vertices == max(s.n_vertices for s in stats_of.values())
    assert stats_of["orkut"].avg_degree > stats_of["livejournal"].avg_degree
