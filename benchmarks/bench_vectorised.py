"""Frontier-vs-scalar execution: vectorised vs interpreter vs compiled.

The tentpole claim of the vectorised backend: materialising per-depth
frontiers as numpy arrays and extending them in bulk beats both the
nested-loop interpreter *and* the generated per-embedding code, because
the per-candidate work (CSR gather, sorted-merge intersection,
restriction bounds) moves from the Python interpreter into whole-array
kernels.  This bench runs the Fig. 8 pattern suite (P1–P6, no IEP — the
vectorised backend's covered regime) once per backend and reports
seconds plus speedup over the interpreter baseline.

Outputs: an aligned table, a TSV under ``benchmarks/results/`` and a
machine-readable ``BENCH_vectorised.json`` in the repo root with
per-pattern timings and geometric-mean speedups.

Quick mode (``REPRO_BENCH_QUICK=1``, the CI bench-smoke job) shrinks
the proxy graph and trims the suite to the first three patterns; the
cross-backend count assertion runs in every mode.
"""

from __future__ import annotations

from repro.core.api import PatternMatcher
from repro.core.backend import MatchContext, get_backend
from repro.pattern.catalog import paper_patterns
from repro.utils.tables import Table, format_seconds, format_speedup

from _common import QUICK, bench_graph, emit, emit_json, geomean, time_call

DATASET = "wiki-vote"

#: backends measured, interpreter first (the speedup baseline).
BACKENDS = ["interpreter", "vectorised", "compiled"]

#: quick mode keeps the smoke job in seconds; the full run covers P1–P6.
PATTERN_LIMIT = 3 if QUICK else 6

#: the acceptance floor: vectorised must beat the interpreter by this
#: factor (geomean over plain-mode patterns of >= MIN_SIZE vertices).
SPEEDUP_FLOOR = 1.5
MIN_SIZE = 4


def run_vectorised_bench() -> dict:
    graph = bench_graph(DATASET)
    patterns = dict(list(paper_patterns().items())[:PATTERN_LIMIT])
    records: dict[str, dict] = {}

    for pname, pattern in patterns.items():
        matcher = PatternMatcher(pattern, max_restriction_sets=16)
        # One IEP-free plan per pattern (the vectorised backend's covered
        # regime); every backend executes the same chosen configuration,
        # so differences are purely execution strategy.
        report = matcher.plan(graph, use_iep=False)
        ctx = MatchContext(graph=graph, plan=report.plan, generated=report.generated)
        row: dict[str, dict] = {}
        baseline = expected = None
        for bname in BACKENDS:
            seconds, count = time_call(get_backend(bname).count, ctx)
            if baseline is None:
                baseline, expected = seconds, count
            else:
                # the smoke gate: all backends agree on every count.
                assert count == expected, (pname, bname, count, expected)
            row[bname] = {
                "seconds": seconds,
                "count": int(count),
                "speedup_vs_interpreter": baseline / seconds if seconds else float("inf"),
            }
        records[pname] = {"n_vertices": pattern.n_vertices, "backends": row}
    return {
        "graph": repr(graph),
        "dataset": DATASET,
        "quick": QUICK,
        "patterns": records,
    }


def _render(results: dict, capsys=None) -> dict:
    suffix = ", quick" if QUICK else ""
    table = Table(
        ["pattern", "count"]
        + [f"{b} (s)" for b in BACKENDS]
        + [f"{b} x" for b in BACKENDS[1:]],
        title=f"frontier vs scalar execution on {DATASET} proxy (Fig. 8 suite, no IEP{suffix})",
    )
    for pname, rec in results["patterns"].items():
        row = rec["backends"]
        cells = [pname, row["interpreter"]["count"]]
        cells += [format_seconds(row[b]["seconds"]) for b in BACKENDS]
        cells += [
            format_speedup(row[b]["speedup_vs_interpreter"]) for b in BACKENDS[1:]
        ]
        table.add_row(cells)
    summary = {
        b: geomean(
            [
                rec["backends"][b]["speedup_vs_interpreter"]
                for rec in results["patterns"].values()
            ]
        )
        for b in BACKENDS[1:]
    }
    # the acceptance metric: geomean over plain patterns of size >= 4.
    large = {
        b: geomean(
            [
                rec["backends"][b]["speedup_vs_interpreter"]
                for rec in results["patterns"].values()
                if rec["n_vertices"] >= MIN_SIZE
            ]
        )
        for b in BACKENDS[1:]
    }
    table.add_row(
        ["geomean", ""] + [""] * len(BACKENDS)
        + [format_speedup(summary[b]) for b in BACKENDS[1:]]
    )
    results["geomean_speedup_vs_interpreter"] = summary
    results["geomean_speedup_size_ge_4"] = large
    emit(table, capsys, "bench_vectorised.tsv")
    emit_json("BENCH_vectorised.json", results)
    return results


def test_vectorised_comparison(benchmark, capsys):
    from _common import once

    results = once(benchmark, run_vectorised_bench)
    _render(results, capsys)
    # the acceptance criterion: bulk frontier execution beats the
    # interpreter decisively on the non-trivial patterns.
    assert results["geomean_speedup_size_ge_4"]["vectorised"] > SPEEDUP_FLOOR


if __name__ == "__main__":
    results = _render(run_vectorised_bench())
    floor = results["geomean_speedup_size_ge_4"]["vectorised"]
    assert floor > SPEEDUP_FLOOR, (
        f"vectorised geomean speedup {floor:.2f}x below the {SPEEDUP_FLOOR}x floor"
    )
