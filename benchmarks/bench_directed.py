"""Directed fast paths vs the interpreter, plus the reduction ablation.

Two claims under measurement:

1. **Fast-path execution** — IEP-free `DirectedPlan`s run on the
   vectorised frontier engine and on generated directed kernels; the
   best fast path must beat the nested-loop interpreter by a decisive
   geometric-mean factor over the directed catalog patterns.
2. **Skeleton-sharing reduction** — a batch of orientations of one
   skeleton answered through `MatchSession.count_many(reduce=True)`
   (one core enumeration + arc classification) vs the same batch
   counted per-pattern (`reduce=False`, compiled kernels).  Counts are
   asserted equal; the speedup is recorded as the ablation.

Outputs: an aligned table, a TSV under ``benchmarks/results/`` and a
machine-readable ``BENCH_directed.json`` in the repo root.

Quick mode (``REPRO_BENCH_QUICK=1``, the CI bench-smoke job) shrinks
the proxy digraph and trims the pattern suite; the cross-backend count
assertion runs in every mode.
"""

from __future__ import annotations

import numpy as np

from repro.core.backend import MatchContext, get_backend
from repro.core.directed import DirectedMatcher
from repro.core.query import MatchQuery
from repro.core.session import MatchSession
from repro.graph.digraph import digraph_from_edges
from repro.pattern.directed import get_directed_pattern
from repro.utils.tables import Table, format_seconds, format_speedup

from _common import QUICK, bench_graph, emit, emit_json, geomean, time_call

DATASET = "wiki-vote"
ORIENTATION_SEED = 909

#: backends measured, interpreter first (the speedup baseline).
BACKENDS = ["interpreter", "vectorised", "compiled"]

PATTERN_NAMES = ["ffl", "bifan", "dcycle-3", "dpath-4", "outstar-3"]
PATTERN_LIMIT = 3 if QUICK else len(PATTERN_NAMES)

#: orientations of the triangle skeleton for the reduction ablation.
BATCH_NAMES = ["ffl", "transitive-triangle", "dcycle-3"]

#: the acceptance floor: the best fast path must beat the interpreter
#: by this geomean factor across the directed catalog suite.
SPEEDUP_FLOOR = 3.0


def bench_digraph():
    """The bench proxy under a seeded random orientation.

    wiki-vote is a directed dataset served undirected by the loader;
    the seeded coin per edge restores arc data deterministically (and,
    unlike a low-to-high orientation, keeps directed cycles).
    """
    ug = bench_graph(DATASET)
    rng = np.random.default_rng(ORIENTATION_SEED)
    arcs = [(u, v) if rng.random() < 0.5 else (v, u) for u, v in ug.edges()]
    return digraph_from_edges(
        arcs, n_vertices=ug.n_vertices, name=f"{DATASET}-directed"
    )


def run_directed_bench() -> dict:
    graph = bench_digraph()
    records: dict[str, dict] = {}

    for pname in PATTERN_NAMES[:PATTERN_LIMIT]:
        pattern = get_directed_pattern(pname)
        # One IEP-free plan per pattern; every backend executes the same
        # chosen configuration, so differences are purely execution
        # strategy.
        report = DirectedMatcher(pattern).plan(graph, use_iep=False)
        ctx = MatchContext(graph=graph, plan=report.plan, mode="directed")
        row: dict[str, dict] = {}
        baseline = expected = None
        for bname in BACKENDS:
            seconds, count = time_call(get_backend(bname).count, ctx)
            if baseline is None:
                baseline, expected = seconds, count
            else:
                # the smoke gate: all backends agree on every count.
                assert count == expected, (pname, bname, count, expected)
            row[bname] = {
                "seconds": seconds,
                "count": int(count),
                "speedup_vs_interpreter": baseline / seconds if seconds else float("inf"),
            }
        records[pname] = {
            "n_vertices": pattern.n_vertices,
            "backends": row,
        }

    # --- reduction ablation: one shared core vs per-pattern kernels ---
    session = MatchSession(graph)
    queries = [MatchQuery(get_directed_pattern(n)) for n in BATCH_NAMES]
    sec_grouped, grouped = time_call(session.count_many, queries, reduce=True)
    sec_single, single = time_call(session.count_many, queries, reduce=False)
    assert [r.count for r in grouped] == [r.count for r in single], (
        "reduction and per-pattern counts diverged"
    )
    assert all(r.backend == "reduction" for r in grouped)
    reduction = {
        "batch": BATCH_NAMES,
        "counts": [r.count for r in grouped],
        "seconds_grouped": sec_grouped,
        "seconds_per_pattern": sec_single,
        "speedup": sec_single / sec_grouped if sec_grouped else float("inf"),
    }

    return {
        "graph": repr(graph),
        "dataset": DATASET,
        "quick": QUICK,
        "patterns": records,
        "reduction_ablation": reduction,
    }


def _render(results: dict, capsys=None) -> dict:
    suffix = ", quick" if QUICK else ""
    table = Table(
        ["pattern", "count"]
        + [f"{b} (s)" for b in BACKENDS]
        + [f"{b} x" for b in BACKENDS[1:]],
        title=f"directed fast paths on {DATASET} proxy (directed catalog{suffix})",
    )
    for pname, rec in results["patterns"].items():
        row = rec["backends"]
        cells = [pname, row["interpreter"]["count"]]
        cells += [format_seconds(row[b]["seconds"]) for b in BACKENDS]
        cells += [
            format_speedup(row[b]["speedup_vs_interpreter"]) for b in BACKENDS[1:]
        ]
        table.add_row(cells)
    summary = {
        b: geomean(
            [
                rec["backends"][b]["speedup_vs_interpreter"]
                for rec in results["patterns"].values()
            ]
        )
        for b in BACKENDS[1:]
    }
    table.add_row(
        ["geomean", ""] + [""] * len(BACKENDS)
        + [format_speedup(summary[b]) for b in BACKENDS[1:]]
    )
    red = results["reduction_ablation"]
    table.add_row(
        [
            "reduction",
            "+".join(red["batch"]),
            format_seconds(red["seconds_per_pattern"]),
            format_seconds(red["seconds_grouped"]),
            "",
            format_speedup(red["speedup"]),
            "",
        ]
    )
    results["geomean_speedup_vs_interpreter"] = summary
    results["best_fast_path_geomean"] = max(summary.values())
    emit(table, capsys, "bench_directed.tsv")
    emit_json("BENCH_directed.json", results)
    return results


def test_directed_comparison(benchmark, capsys):
    from _common import once

    results = once(benchmark, run_directed_bench)
    _render(results, capsys)
    # the acceptance criterion: at least one fast path beats the
    # interpreter decisively across the directed catalog.
    assert results["best_fast_path_geomean"] > SPEEDUP_FLOOR


if __name__ == "__main__":
    results = _render(run_directed_bench())
    floor = results["best_fast_path_geomean"]
    assert floor > SPEEDUP_FLOOR, (
        f"best directed fast-path geomean {floor:.2f}x below the "
        f"{SPEEDUP_FLOOR}x floor"
    )
