"""Table III: preprocessing and code-generation overhead per pattern.

Paper: 8 ms (P1) to 2.53 s (P6) — independent of the data graph, driven
by the pattern's symmetry (restriction enumeration) and schedule count
(model evaluations).  Compared with hours of matching, negligible.

Here: the same breakdown — restriction generation, schedule generation,
model ranking, code generation — per pattern, using cached graph stats
(so, like the paper, no data-graph work is included).
"""

import pytest

from repro.core.api import PatternMatcher
from repro.graph.stats import GraphStats
from repro.pattern.catalog import paper_patterns
from repro.utils.tables import Table, format_seconds

from _common import bench_graph, emit, once

PAPER_OVERHEAD = {"P1": 0.008, "P2": 0.07, "P3": 0.04, "P4": 0.07,
                  "P5": 1.88, "P6": 2.53}


@pytest.mark.benchmark(group="table3")
def test_table3_preprocessing_overhead(benchmark, capsys):
    stats = GraphStats.of(bench_graph("wiki-vote"))
    table = Table(
        ["pattern", "restrictions", "schedules", "model", "codegen",
         "total", "paper total", "#configs"],
        title="Table III: preprocessing + code generation overhead",
    )
    totals = {}
    for pname, pattern in paper_patterns().items():
        matcher = PatternMatcher(pattern, max_restriction_sets=64)
        report = matcher.plan(stats=stats, use_iep=False)
        totals[pname] = report.seconds_total
        table.add_row(
            [pname,
             format_seconds(report.seconds_restrictions),
             format_seconds(report.seconds_schedules),
             format_seconds(report.seconds_model),
             format_seconds(report.seconds_codegen),
             format_seconds(report.seconds_total),
             format_seconds(PAPER_OVERHEAD[pname]),
             len(report.ranking)]
        )
    emit(table, capsys, "table3_preprocessing.tsv")

    once(benchmark,
         lambda: PatternMatcher(paper_patterns()["P1"]).plan(stats=stats))

    # Shape: the symmetric 7-vertex P6 dominates, the 5-vertex P1 is the
    # cheapest, everything stays in interactive range.
    assert totals["P6"] == max(totals.values())
    assert totals["P1"] <= min(totals["P5"], totals["P6"])
    assert all(t < 30.0 for t in totals.values())
