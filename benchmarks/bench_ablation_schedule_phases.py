"""Ablation: the two schedule-generation phases (§IV-B).

Phase 1 (connected prefix) and phase 2 (independent suffix) exist to
shrink the space the performance model must score *without* losing the
good schedules.  This bench reports, per pattern: the space size after
each phase and the best *measured* schedule retained — phase filtering
must not eliminate the oracle.
"""

import pytest

from repro.core.codegen import compile_plan_function
from repro.core.config import Configuration
from repro.core.restrictions import generate_restriction_sets
from repro.core.schedule import dedup_schedules, generate_schedules, all_schedules
from repro.pattern.catalog import paper_patterns
from repro.utils.tables import Table, format_seconds

from _common import bench_graph, emit, once, time_call


@pytest.mark.benchmark(group="ablation-schedule")
def test_ablation_schedule_phases(benchmark, capsys):
    graph = bench_graph("wiki-vote")
    patterns = paper_patterns()
    table = Table(
        ["pattern", "n!", "phase1", "phase1+2 (GraphPi)",
         "best time phase1", "best time phase1+2"],
        title="Ablation: schedule-space filtering by generation phase",
    )

    import math

    for pname in ("P1", "P2", "P3"):
        pattern = patterns[pname]
        rs = generate_restriction_sets(pattern)[0]
        phase1 = generate_schedules(pattern, phase1=True, phase2=False,
                                    dedup_automorphic=True)
        both = generate_schedules(pattern, phase1=True, phase2=True,
                                  dedup_automorphic=True)

        def best_time(schedules):
            best = float("inf")
            for s in schedules:
                plan = Configuration(pattern, s, rs).compile()
                seconds, _ = time_call(compile_plan_function(plan), graph)
                best = min(best, seconds)
            return best

        t1 = best_time(phase1)
        t2 = best_time(both)
        table.add_row(
            [pname, math.factorial(pattern.n_vertices), len(phase1), len(both),
             format_seconds(t1), format_seconds(t2)]
        )
        # Phase 2 must not lose much: its best is within noise of the
        # phase-1 oracle (it may even win by keeping only cheap shapes).
        assert t2 <= t1 * 3.0, pname
        assert len(both) <= len(phase1)

    emit(table, capsys, "ablation_schedule_phases.tsv")

    pattern = patterns["P1"]
    rs = generate_restriction_sets(pattern)[0]
    plan = Configuration(pattern, generate_schedules(pattern)[0], rs).compile()
    once(benchmark, compile_plan_function(plan), graph)
