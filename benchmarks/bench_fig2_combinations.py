"""Figure 2(b): schedule x restriction combinations differ several-fold.

Paper: four combinations of two schedules and two restriction sets for
the 5-vertex pattern on Patents run in 6.33 s / 11.4 s / 73.6 s / 146.7 s
— a 23.2x spread.  Here: the house pattern on the Patents proxy, two
generated schedules crossed with two generated restriction sets; we
report the spread (expect the same shape: several-fold, best combo is
schedule- *and* restriction-dependent).
"""

import pytest

from repro.core.codegen import compile_plan_function
from repro.core.config import Configuration
from repro.core.perf_model import PerformanceModel
from repro.core.restrictions import generate_restriction_sets
from repro.core.schedule import generate_schedules
from repro.graph.stats import GraphStats
from repro.pattern.catalog import house
from repro.utils.tables import Table, format_seconds, format_speedup

from _common import bench_graph, emit, once, time_call


@pytest.mark.benchmark(group="fig2")
def test_fig2_combinations(benchmark, capsys):
    graph = bench_graph("patents")
    pattern = house()
    stats = GraphStats.of(graph)
    model = PerformanceModel(stats)

    schedules = generate_schedules(pattern, dedup_automorphic=True)
    rsets = generate_restriction_sets(pattern)
    # Rank schedules under the first restriction set; take best and worst.
    ranked = model.rank([Configuration(pattern, s, rsets[0]) for s in schedules])
    sched_best = ranked[0].config.schedule
    sched_worst = ranked[-1].config.schedule
    # Two restriction sets that disagree on the best schedule's cost.
    rs_sorted = sorted(
        rsets,
        key=lambda rs: model.rank([Configuration(pattern, sched_best, rs)])[0].predicted_cost,
    )
    rs_good, rs_bad = rs_sorted[0], rs_sorted[-1]

    table = Table(
        ["schedule", "restrictions", "time", "count"],
        title="Figure 2(b): performance of schedule x restriction combinations "
              "(house on patents proxy; paper spread: 23.2x)",
    )
    times = {}
    for sched in (sched_best, sched_worst):
        for rs in (rs_good, rs_bad):
            plan = Configuration(pattern, sched, rs).compile()
            fn = compile_plan_function(plan)
            seconds, count = time_call(fn, graph)
            times[(sched, rs)] = seconds
            table.add_row(
                [list(sched), ", ".join(f"id({g})>id({s})" for g, s in sorted(rs)),
                 format_seconds(seconds), count]
            )
    spread = max(times.values()) / min(times.values())
    table.add_row(["spread (best vs worst)", "", format_speedup(spread), ""])
    emit(table, capsys, "fig2_combinations.tsv")

    counts = set()
    once(benchmark, compile_plan_function(
        Configuration(pattern, sched_best, rs_good).compile()), graph)

    assert spread > 1.2, "combinations should differ measurably"
