"""Shared plumbing for the benchmark harness.

Every benchmark prints the paper's rows/series as an aligned table and
writes a TSV copy under ``benchmarks/results/``.  Workloads are scaled
down (pure Python vs the paper's generated C++ on Tianhe-2A); each
bench states the scale it used.  EXPERIMENTS.md records paper-vs-measured.
"""

from __future__ import annotations

import json
import math
import os
import time
from pathlib import Path

from repro.graph.datasets import load_dataset
from repro.utils.tables import Table

RESULTS_DIR = Path(__file__).parent / "results"

#: CI smoke mode: REPRO_BENCH_QUICK=1 shrinks every bench to a small
#: graph and a reduced workload (1 repetition) so the whole benchmark
#: smoke job finishes in seconds while still asserting cross-backend
#: count agreement.  Individual benches also trim their pattern sets.
QUICK = os.environ.get("REPRO_BENCH_QUICK", "") not in ("", "0")

#: proxy-scale multiplier applied in quick mode.
QUICK_SCALE = 0.5

#: machine-readable benchmark records (BENCH_*.json) land in the repo
#: root so drivers/dashboards find them without knowing the layout.
REPO_ROOT = Path(__file__).parent.parent

#: per-dataset proxy scales for the single-node benches, tuned so the
#: full benchmark suite completes in minutes of pure Python.
BENCH_SCALES = {
    "wiki-vote": 0.22,
    "mico": 0.1,
    "patents": 0.06,
    "livejournal": 0.07,
    "orkut": 0.07,
    "twitter": 0.1,
}

BENCH_SEED = 2020


def bench_graph(name: str, scale: float | None = None):
    """The scaled proxy used throughout the benchmark suite.

    ``scale`` overrides the per-dataset default; quick mode
    (:data:`QUICK`) shrinks whichever scale applies.
    """
    effective = BENCH_SCALES[name] if scale is None else scale
    if QUICK:
        effective *= QUICK_SCALE
    return load_dataset(name, scale=effective, seed=BENCH_SEED)


def time_call(fn, *args, **kwargs) -> tuple[float, object]:
    """(seconds, result) of one call."""
    t0 = time.perf_counter()
    result = fn(*args, **kwargs)
    return time.perf_counter() - t0, result


def geomean(values: list[float]) -> float:
    """Geometric mean (0.0 for an empty list) — the speedup aggregate."""
    if not values:
        return 0.0
    return math.exp(sum(math.log(v) for v in values) / len(values))


def emit(table: Table, capsys, filename: str) -> None:
    """Print the table to the real terminal and persist a TSV copy."""
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    (RESULTS_DIR / filename).write_text(table.to_tsv())
    rendered = "\n" + table.render() + "\n"
    if capsys is not None:
        with capsys.disabled():
            print(rendered)
    else:  # pragma: no cover - direct invocation
        print(rendered)


def emit_json(filename: str, payload: dict) -> Path:
    """Persist a machine-readable benchmark record (``BENCH_*.json``)."""
    path = REPO_ROOT / filename
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path


def once(benchmark, fn, *args, **kwargs):
    """Register ``fn`` with pytest-benchmark as a single-shot measurement.

    The sweeps in these benches measure many variants manually; the
    benchmark fixture records one representative run so the suite
    integrates with ``--benchmark-only`` machinery.
    """
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)
