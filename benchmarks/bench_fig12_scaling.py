"""Figure 12: scalability of the distributed version.

Paper: (a) near-linear speedup to 128 nodes on Orkut for P1/P4/P5/P6;
P2 and P3 scale poorly because their total runtimes are seconds; (b) on
Twitter, P2/P3 at 128-1024 nodes show sub-linear scaling from load
imbalance.

Here: per-task costs are *measured* with the real engine on the proxies
(fine-grained prefix tasks, exactly §IV-E), then replayed through the
event-driven cluster simulator (24 threads/node, MPI-latency work
stealing) across node counts.  Expect: near-linear while
tasks >> threads, saturation for short workloads, imbalance-limited
tails — the paper's three regimes.
"""

import numpy as np
import pytest

from repro.core.api import PatternMatcher
from repro.runtime.cluster import scaling_curve
from repro.runtime.parallel import measure_task_costs
from repro.utils.tables import Table, format_seconds

from _common import bench_graph, emit, once

ORKUT_NODES = [1, 2, 4, 8, 16, 32, 64, 128]
TWITTER_NODES = [128, 256, 512, 1024]


def _task_costs(graph, pattern, split_depth):
    rep = PatternMatcher(pattern, max_restriction_sets=8).plan(graph, use_iep=False)
    return np.asarray(
        measure_task_costs(graph, rep.plan, split_depth=split_depth), dtype=np.float64
    )


@pytest.mark.benchmark(group="fig12")
def test_fig12a_orkut_scaling(benchmark, capsys):
    graph = bench_graph("orkut")
    from repro.pattern.catalog import paper_patterns

    patterns = paper_patterns()
    table = Table(
        ["pattern", "#tasks"] + [f"{n} nodes" for n in ORKUT_NODES] + ["speedup@128"],
        title="Figure 12(a): simulated scaling on orkut proxy "
              "(paper: near-linear for P1/P4/P5/P6; P2/P3 too short to scale)",
    )
    speedups = {}
    for pname in ("P1", "P2", "P3", "P4"):
        costs = _task_costs(graph, patterns[pname], split_depth=2)
        results = scaling_curve(costs, ORKUT_NODES, threads_per_node=24,
                                steal_latency=5e-4)
        times = [r.makespan for r in results]
        speedups[pname] = times[0] / times[-1]
        table.add_row([pname, len(costs)] +
                      [format_seconds(t) for t in times] +
                      [f"{speedups[pname]:.1f}x"])
    emit(table, capsys, "fig12a_orkut_scaling.tsv")

    once(benchmark, lambda: scaling_curve(
        _task_costs(graph, patterns["P1"], 2), [8], threads_per_node=24))

    # Shape: heavier patterns scale further than the short P2 run.
    assert speedups["P4"] > speedups["P2"] * 0.8
    assert speedups["P4"] > 4.0  # meaningful scaling for heavy work


@pytest.mark.benchmark(group="fig12")
def test_fig12b_twitter_scaling(benchmark, capsys):
    graph = bench_graph("twitter")
    from repro.pattern.catalog import paper_patterns

    patterns = paper_patterns()
    table = Table(
        ["pattern", "#tasks"] + [f"{n} nodes" for n in TWITTER_NODES] +
        ["efficiency@1024", "imbalance@1024"],
        title="Figure 12(b): simulated scaling on twitter proxy, 128-1024 nodes "
              "(paper: sub-linear for P2/P3 due to load imbalance)",
    )
    effs = {}
    for pname in ("P2", "P3"):
        costs = _task_costs(graph, patterns[pname], split_depth=2)
        results = scaling_curve(costs, TWITTER_NODES, threads_per_node=24,
                                steal_latency=5e-4)
        times = [r.makespan for r in results]
        effs[pname] = results[-1].efficiency
        table.add_row([pname, len(costs)] +
                      [format_seconds(t) for t in times] +
                      [f"{results[-1].efficiency * 100:.0f}%",
                       f"{results[-1].imbalance:.2f}"])
    emit(table, capsys, "fig12b_twitter_scaling.tsv")

    once(benchmark, lambda: scaling_curve(
        _task_costs(graph, patterns["P2"], 2), [128], threads_per_node=24))

    # Shape: at 24,576 simulated cores the short proxy workloads are far
    # from perfectly efficient — the paper's observed imbalance regime.
    assert all(e < 0.9 for e in effs.values())
