"""Autotune acceptance bench: ``backend="auto"`` vs every static choice.

The calibration harness exists to make ``backend="auto"`` at least as
good as the best static backend the user could have picked by hand.
This bench closes the loop on the sweep workloads themselves:

1. run a calibration sweep (:func:`repro.core.autotune.run_calibration`)
   over datasets x patterns, recording every choice's best-of-N seconds;
2. install the resulting profile and time ``backend="auto"`` on each
   workload (warm plan cache, best-of-N — the same protocol the static
   choices were measured under);
3. per workload, compare auto against the measured-best static choice,
   *re-timed interleaved with the auto reps*: the sweep's own number
   comes from an earlier phase, and on sub-millisecond workloads
   machine drift between phases would otherwise swamp the few
   microseconds of decision overhead this bench exists to bound.

Floors (asserted here and therefore in the CI bench-smoke job):

* ``geomean(best_static / auto) >= 0.9`` — auto selection costs at most
  ~10% geomean over an oracle static pick;
* auto lands on the measured-best choice (or within 1.3x of its time —
  timing jitter between two near-tied backends is not a mispick) on
  >= 90% of workloads.

Every auto count is asserted equal to the sweep's cross-checked count.
Outputs: aligned table, ``benchmarks/results/bench_autotune.tsv`` and
``BENCH_autotune.json``.  Schema notes live in ``docs/benchmarks.md``.
"""

from __future__ import annotations

import dataclasses

from repro.core.autotune import (
    CalibrationWorkload,
    default_choice_grid,
    run_calibration,
    set_active_profile,
)
from repro.core.backend import get_backend
from repro.core.query import MatchQuery
from repro.core.session import MatchSession
from repro.pattern.catalog import get_pattern
from repro.utils.tables import Table, format_seconds

from _common import QUICK, bench_graph, emit, emit_json, geomean, time_call

#: (dataset, patterns) cells of the sweep; quick mode trims both axes.
WORKLOADS = (
    [("wiki-vote", ["triangle", "clique-4", "rectangle"])]
    if QUICK
    else [
        ("wiki-vote", ["triangle", "rectangle", "clique-4", "pentagon", "house"]),
        ("mico", ["triangle", "clique-4", "house"]),
    ]
)

#: quick mode's graph is tiny (sub-millisecond workloads), so it takes
#: more repetitions for min-of-N to converge under scheduler jitter.
REPS = 5 if QUICK else 3

#: acceptance floors (see module docstring); asserted in every mode —
#: auto delegates to the measured winner, so these hold by construction
#: up to decision overhead, which is exactly what they bound.
AUTO_GEOMEAN_FLOOR = 0.9
PICK_RATE_FLOOR = 0.9

#: a pick within this factor of the measured best is "correct": between
#: near-tied backends the sweep's own jitter decides the nominal winner.
PICK_TOLERANCE = 1.3


def _build_workloads() -> list[CalibrationWorkload]:
    workloads = []
    for dataset, patterns in WORKLOADS:
        graph = bench_graph(dataset)
        for pname in patterns:
            workloads.append(
                CalibrationWorkload(
                    name=f"{dataset}/{pname}",
                    graph=graph,
                    query=MatchQuery(get_pattern(pname)),
                )
            )
    return workloads


def run_autotune_bench() -> dict:
    workloads = _build_workloads()
    profile, measurements = run_calibration(
        workloads, default_choice_grid(), repeats=REPS
    )
    previous = set_active_profile(profile)
    try:
        records: dict[str, dict] = {}
        for workload, m in zip(workloads, measurements):
            best_choice, sweep_seconds = m.best
            session = MatchSession(workload.graph)
            query = workload.query.with_backend("auto")
            static_backend = get_backend(
                best_choice.backend, **best_choice.options_dict()
            )
            static_query = workload.query.with_backend(static_backend)
            if best_choice.use_iep is not None:
                static_query = dataclasses.replace(
                    static_query, use_iep=best_choice.use_iep
                )
            session.count(query)  # warm the plan cache (as the sweep did)
            session.count(static_query)
            auto_seconds = best_seconds = float("inf")
            result = None
            for _ in range(REPS):
                _, result = time_call(session.count, query)
                auto_seconds = min(auto_seconds, result.seconds_execute)
                _, static_result = time_call(session.count, static_query)
                best_seconds = min(best_seconds, static_result.seconds_execute)
                assert static_result.backend == best_choice.backend, (
                    workload.name, static_result.backend, best_choice.backend
                )
            assert int(result) == m.count, (
                workload.name, int(result), m.count
            )
            report = result.autotune_report
            ratio = best_seconds / auto_seconds if auto_seconds else float("inf")
            picked_best = (
                report.chosen == best_choice.backend
                and dict(report.options) == best_choice.options_dict()
            ) or auto_seconds <= PICK_TOLERANCE * best_seconds
            records[workload.name] = {
                "count": m.count,
                "best_choice": best_choice.describe(),
                "best_seconds": best_seconds,
                "sweep_seconds": sweep_seconds,
                "auto_choice": result.backend,
                "auto_source": report.source,
                "auto_seconds": auto_seconds,
                "ratio_best_over_auto": ratio,
                "picked_best": picked_best,
            }
        return {
            "quick": QUICK,
            "reps": REPS,
            "n_workloads": len(records),
            "n_buckets": len(profile.entries),
            "workloads": records,
        }
    finally:
        set_active_profile(previous)


def _render(results: dict, capsys=None) -> dict:
    suffix = ", quick" if QUICK else ""
    table = Table(
        ["workload", "count", "best static", "best (s)", "auto picked",
         "auto (s)", "best/auto"],
        title=f"auto selection vs oracle static backend{suffix}",
    )
    for name, rec in results["workloads"].items():
        table.add_row([
            name,
            rec["count"],
            rec["best_choice"],
            format_seconds(rec["best_seconds"]),
            rec["auto_choice"],
            format_seconds(rec["auto_seconds"]),
            f"{rec['ratio_best_over_auto']:.2f}x",
        ])
    ratios = [r["ratio_best_over_auto"] for r in results["workloads"].values()]
    picks = [r["picked_best"] for r in results["workloads"].values()]
    results["geomean_best_over_auto"] = geomean(ratios)
    results["pick_rate"] = sum(picks) / len(picks) if picks else 0.0
    results["geomean_floor"] = AUTO_GEOMEAN_FLOOR
    results["pick_rate_floor"] = PICK_RATE_FLOOR
    table.add_row([
        "geomean / pick rate", "", "", "", f"{results['pick_rate'] * 100:.0f}%",
        "", f"{results['geomean_best_over_auto']:.2f}x",
    ])
    emit(table, capsys, "bench_autotune.tsv")
    emit_json("BENCH_autotune.json", results)
    return results


def _assert_floors(results: dict) -> None:
    geo = results["geomean_best_over_auto"]
    assert geo >= AUTO_GEOMEAN_FLOOR, (
        f"auto selection runs at {geo:.2f}x the oracle static backend "
        f"(geomean), below the {AUTO_GEOMEAN_FLOOR}x floor"
    )
    rate = results["pick_rate"]
    assert rate >= PICK_RATE_FLOOR, (
        f"auto picked the measured-best backend on only {rate * 100:.0f}% "
        f"of sweep workloads (floor {PICK_RATE_FLOOR * 100:.0f}%)"
    )


def test_autotune_selection(benchmark, capsys):
    from _common import once

    results = once(benchmark, run_autotune_bench)
    _render(results, capsys)
    _assert_floors(results)


if __name__ == "__main__":
    results = _render(run_autotune_bench())
    _assert_floors(results)
    print(
        f"geomean best/auto: {results['geomean_best_over_auto']:.2f}x "
        f"(floor {AUTO_GEOMEAN_FLOOR}x); pick rate "
        f"{results['pick_rate'] * 100:.0f}% (floor {PICK_RATE_FLOOR * 100:.0f}%)"
    )
