"""Ablation: base vs extended performance model (§V-C future work).

The paper blames its P4-on-Wiki-Vote misprediction on using only
|V|, |E| and the triangle count: the model cannot estimate the
rectangle subpattern's frequency.  The extended model adds 4-cycle
closure information.  This bench compares, for P4-like patterns on a
clustered graph, how close each model's *pick* lands to the measured
oracle over all generated schedules.
"""

import pytest

from repro.core.codegen import compile_plan_function
from repro.core.config import Configuration
from repro.core.perf_model import PerformanceModel
from repro.core.perf_model_ext import ExtendedGraphStats, ExtendedPerformanceModel
from repro.core.restrictions import generate_restriction_sets
from repro.core.schedule import generate_schedules
from repro.pattern.catalog import paper_patterns, rectangle_house
from repro.utils.tables import Table, format_seconds

from _common import bench_graph, emit, once, time_call


@pytest.mark.benchmark(group="ablation-model")
def test_ablation_extended_model(benchmark, capsys):
    graph = bench_graph("patents")  # clustered proxy: the regime that hurts
    ext_stats = ExtendedGraphStats.of(graph, exact=False)

    table = Table(
        ["pattern", "base pick", "extended pick", "oracle",
         "base gap", "extended gap", "#schedules"],
        title="Ablation: base vs extended (4-cycle aware) cost model "
              "(paper: P4 misprediction from missing rectangle statistics)",
    )
    gaps = {}
    for pname in ("P1", "P4"):
        pattern = paper_patterns()[pname]
        rs = generate_restriction_sets(pattern, max_sets=4)[0]
        configs = [
            Configuration(pattern, s, rs)
            for s in generate_schedules(pattern, dedup_automorphic=True)
        ]
        base_pick = PerformanceModel(ext_stats.base).choose(configs)
        ext_pick = ExtendedPerformanceModel(ext_stats).choose(configs)

        times = {}
        for cfg in configs:
            fn = compile_plan_function(cfg.compile())
            seconds, _ = time_call(fn, graph)
            times[cfg.schedule] = seconds
        oracle = min(times.values())
        base_gap = times[base_pick.config.schedule] / oracle - 1
        ext_gap = times[ext_pick.config.schedule] / oracle - 1
        gaps[pname] = (base_gap, ext_gap)
        table.add_row(
            [pname,
             format_seconds(times[base_pick.config.schedule]),
             format_seconds(times[ext_pick.config.schedule]),
             format_seconds(oracle),
             f"+{base_gap * 100:.0f}%", f"+{ext_gap * 100:.0f}%",
             len(configs)]
        )
    emit(table, capsys, "ablation_model_ext.tsv")

    pattern = rectangle_house()
    rs = generate_restriction_sets(pattern, max_sets=2)[0]
    plan = Configuration(pattern, generate_schedules(pattern)[0], rs).compile()
    once(benchmark, compile_plan_function(plan), graph)

    # Shape: the extended model is at least as close to the oracle on P4
    # (allowing generous noise at millisecond scales).
    base_gap, ext_gap = gaps["P4"]
    assert ext_gap <= base_gap + 1.0
