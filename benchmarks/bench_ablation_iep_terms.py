"""Ablation: IEP evaluation strategy.

Algorithm 2 in the paper sums over all 2^(k(k-1)/2) subsets of equality
pairs; grouping terms by the induced connected-component partition
collapses this to Bell(k) terms.  Both are implemented and equal
(tests); this bench shows the term-count gap is real time for k >= 4.
"""

import numpy as np
import pytest

from repro.core.iep import (
    count_distinct_tuples,
    count_distinct_tuples_pairs,
    set_partitions,
)
from repro.graph.intersection import VERTEX_DTYPE
from repro.utils.tables import Table, format_seconds, format_speedup

from _common import emit, once, time_call


def _random_sets(k, size, seed):
    rng = np.random.default_rng(seed)
    return [
        np.unique(rng.integers(0, size * 3, size=size)).astype(VERTEX_DTYPE)
        for _ in range(k)
    ]


@pytest.mark.benchmark(group="ablation-iep")
def test_ablation_iep_formulations(benchmark, capsys):
    table = Table(
        ["k", "partition terms (Bell)", "pair-subset terms (2^(k(k-1)/2))",
         "partition time", "pair-subset time", "speedup"],
        title="Ablation: partition-lattice vs literal pair-subset IEP",
    )
    REPEATS = 200
    speedups = {}
    for k in (2, 3, 4):
        sets = _random_sets(k, 200, seed=k)
        a = count_distinct_tuples(sets)
        b = count_distinct_tuples_pairs(sets)
        assert a == b

        t_part, _ = time_call(
            lambda: [count_distinct_tuples(sets) for _ in range(REPEATS)]
        )
        t_pair, _ = time_call(
            lambda: [count_distinct_tuples_pairs(sets) for _ in range(REPEATS)]
        )
        speedups[k] = t_pair / t_part
        table.add_row(
            [k, len(set_partitions(k)), 2 ** (k * (k - 1) // 2),
             format_seconds(t_part / REPEATS), format_seconds(t_pair / REPEATS),
             format_speedup(speedups[k])]
        )
    emit(table, capsys, "ablation_iep_terms.tsv")

    sets = _random_sets(3, 200, seed=1)
    once(benchmark, count_distinct_tuples, sets)

    # k=4: 15 partition terms vs 64 subset terms must show through.
    assert speedups[4] > 1.0
