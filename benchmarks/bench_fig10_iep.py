"""Figure 10: counting with vs without the Inclusion-Exclusion Principle.

Paper: same configuration, counting mode; IEP wins 4.3x (P1 average)
up to 457.8x (P2), peak 1110.5x for P2 on LiveJournal.  The win scales
with the size of the independent suffix k and the loop sizes IEP absorbs.

Here: P1-P6 on the five single-node proxies; both runs use the
model-selected configuration (the paper holds schedule/restrictions
fixed), differing only in iep_k.
"""

import pytest

from repro.core.api import PatternMatcher
from repro.graph.datasets import SINGLE_NODE_DATASETS
from repro.pattern.catalog import paper_patterns
from repro.utils.tables import Table, format_seconds, format_speedup

from _common import bench_graph, emit, once, time_call

PAPER_AVG = {"P1": 4.3, "P2": 457.8, "P3": 320.5, "P4": 265.5, "P5": 11.1, "P6": 10.1}


@pytest.mark.benchmark(group="fig10")
def test_fig10_iep_speedup(benchmark, capsys):
    patterns = paper_patterns()
    table = Table(
        ["graph", "pattern", "k", "no IEP", "with IEP", "speedup",
         "paper avg speedup", "count"],
        title="Figure 10: counting with vs without IEP "
              "(peak in paper: 1110x, P2 on LiveJournal)",
    )
    speedups: dict[str, list[float]] = {p: [] for p in patterns}
    for gname in SINGLE_NODE_DATASETS:
        graph = bench_graph(gname)
        for pname, pattern in patterns.items():
            matcher = PatternMatcher(pattern, max_restriction_sets=16)
            rep_plain = matcher.plan(graph, use_iep=False)
            rep_iep = matcher.plan(graph, use_iep=True)
            t_plain, c_plain = time_call(rep_plain.generated, graph)
            t_iep, c_iep = time_call(rep_iep.generated, graph)
            assert c_plain == c_iep, (gname, pname)
            ratio = t_plain / t_iep if t_iep > 0 else float("nan")
            speedups[pname].append(ratio)
            table.add_row(
                [gname, pname, rep_iep.plan.iep_k, format_seconds(t_plain),
                 format_seconds(t_iep), format_speedup(ratio),
                 f"{PAPER_AVG[pname]}x", c_plain]
            )
    for pname, rs in speedups.items():
        avg = sum(rs) / len(rs)
        table.add_row(["average", pname, "", "", "", format_speedup(avg),
                       f"{PAPER_AVG[pname]}x", ""])
    emit(table, capsys, "fig10_iep.tsv")

    graph = bench_graph("wiki-vote")
    rep = PatternMatcher(patterns["P2"]).plan(graph, use_iep=True)
    once(benchmark, rep.generated, graph)

    # Shape: IEP helps most where the paper says it does — patterns with
    # large independent suffixes (P2, P3, P4) see the biggest wins.
    avg = {p: sum(v) / len(v) for p, v in speedups.items()}
    assert avg["P2"] > avg["P1"]
    assert avg["P2"] > 1.5 and avg["P3"] > 1.5
