"""Figure 11: accuracy of the performance prediction model.

Paper: over all generated schedules for each pattern on Wiki-Vote and
Patents, the model-selected schedule is on average 32% slower than the
oracle (the measured-best schedule); the visible gap is P4 on Wiki-Vote,
caused by the rectangle-count misprediction.

Here: the same experiment on the proxies — every generated
(automorphism-deduplicated) schedule is timed, and the model's pick is
compared with the measured oracle.
"""

import pytest

from repro.core.codegen import compile_plan_function
from repro.core.config import Configuration
from repro.core.perf_model import PerformanceModel
from repro.core.restrictions import generate_restriction_sets
from repro.core.schedule import generate_schedules
from repro.graph.stats import GraphStats
from repro.pattern.catalog import paper_patterns
from repro.utils.tables import Table, format_seconds

from _common import bench_graph, emit, once, time_call


@pytest.mark.benchmark(group="fig11")
def test_fig11_model_vs_oracle(benchmark, capsys):
    patterns = paper_patterns()
    table = Table(
        ["graph", "pattern", "model pick", "oracle", "gap",
         "#schedules"],
        title="Figure 11: model-selected schedule vs oracle "
              "(paper: 32% slower on average)",
    )
    #: measuring *every* schedule of the 6-7-vertex patterns is hours of
    #: pure Python; measure the model's top picks plus a sample of the
    #: rest (the oracle estimate is then a lower bound over the sample,
    #: which only makes the reported gap pessimistic).
    MAX_MEASURED = 24
    gaps = []
    for gname in ("wiki-vote", "patents"):
        graph = bench_graph(gname)
        stats = GraphStats.of(graph)
        model = PerformanceModel(stats)
        for pname, pattern in patterns.items():
            rs = generate_restriction_sets(pattern, max_sets=8)[0]
            schedules = generate_schedules(pattern, dedup_automorphic=True)
            configs = [Configuration(pattern, s, rs) for s in schedules]
            ranked = model.rank(configs)
            if len(ranked) > MAX_MEASURED:
                step = len(ranked) // (MAX_MEASURED - 8)
                sample = list(ranked[:8]) + list(ranked[8::step])
            else:
                sample = list(ranked)
            times = {}
            for r in sample:
                fn = compile_plan_function(r.plan)
                seconds, _ = time_call(fn, graph)
                times[r.config.schedule] = seconds
            pick_t = times[ranked[0].config.schedule]
            oracle_t = min(times.values())
            gap = pick_t / oracle_t - 1.0
            gaps.append(gap)
            table.add_row(
                [gname, pname, format_seconds(pick_t), format_seconds(oracle_t),
                 f"+{gap * 100:.0f}%", len(schedules)]
            )
    avg_gap = sum(gaps) / len(gaps)
    table.add_row(["average", "", "", "", f"+{avg_gap * 100:.0f}% (paper: +32%)", ""])
    emit(table, capsys, "fig11_model_accuracy.tsv")

    graph = bench_graph("wiki-vote")
    pattern = patterns["P1"]
    rs = generate_restriction_sets(pattern)[0]
    plan = Configuration(pattern, generate_schedules(pattern)[0], rs).compile()
    once(benchmark, compile_plan_function(plan), graph)

    # Shape: the model's pick is consistently near the oracle.  Pure-
    # Python timing noise at millisecond scale is large, so the bound is
    # loose; the paper's figure allows sizable per-case gaps too (P4).
    assert avg_gap < 2.0
