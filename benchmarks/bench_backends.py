"""Backend micro-benchmark: interpreter vs preslice vs compiled vs parallel.

The tentpole claim of the unified execution-backend layer: routing every
entry point through the compiled-first core is a *win*, not just a
refactor.  This bench runs the Fig. 8-style overall workload (paper
patterns on a scaled proxy, no IEP — matching the paper's Fig. 8 setup)
once per registered counting backend and reports seconds plus speedup
over the interpreter.

Outputs: an aligned table, a TSV under ``benchmarks/results/`` and a
machine-readable ``BENCH_backends.json`` in the repo root with the
per-pattern timings and the geometric-mean speedups.

Run directly (``python benchmarks/bench_backends.py``) or through
pytest-benchmark like the other benches.
"""

from __future__ import annotations

import os

from repro.core.api import PatternMatcher
from repro.core.backend import MatchContext, get_backend
from repro.pattern.catalog import paper_patterns
from repro.utils.tables import Table, format_seconds, format_speedup

from _common import QUICK, bench_graph, emit, emit_json, geomean, time_call

DATASET = "wiki-vote"

#: backends measured, interpreter first (the speedup baseline).
BACKENDS = ["interpreter", "preslice", "compiled", "parallel", "vectorised", "distributed"]

#: P1..P6 is the Fig. 8 grid; P5/P6 interpret slowly enough to dominate
#: the whole suite, so the micro-bench uses the first four patterns
#: (two in the CI quick/smoke mode).
PATTERN_LIMIT = 2 if QUICK else 4


def _backend_instance(name: str):
    if name == "parallel":
        # compiled workers (the default) — this is the compiled+parallel
        # configuration the ISSUE's acceptance criterion names.
        return get_backend("parallel", n_workers=min(4, os.cpu_count() or 2))
    if name == "distributed":
        # .count() skips the cost replay, so this times the real
        # counting path; the scaling study lives in bench_distributed.py.
        return get_backend("distributed")
    return get_backend(name)


def run_backend_bench() -> dict:
    graph = bench_graph(DATASET)
    patterns = dict(list(paper_patterns().items())[:PATTERN_LIMIT])
    records: dict[str, dict] = {}

    for pname, pattern in patterns.items():
        matcher = PatternMatcher(pattern, max_restriction_sets=16)
        # Plan once (no IEP, as in Fig. 8); every backend executes the
        # same chosen configuration, so differences are purely execution.
        report = matcher.plan(graph, use_iep=False)
        ctx = MatchContext(graph=graph, plan=report.plan, generated=report.generated)
        row: dict[str, dict] = {}
        baseline = None
        for bname in BACKENDS:
            backend = _backend_instance(bname)
            seconds, count = time_call(backend.count, ctx)
            if baseline is None:
                baseline = seconds
                expected = count
            else:
                assert count == expected, (pname, bname, count, expected)
            row[bname] = {
                "seconds": seconds,
                "count": int(count),
                "speedup_vs_interpreter": baseline / seconds if seconds else float("inf"),
            }
        records[pname] = row
    return {"graph": repr(graph), "dataset": DATASET, "patterns": records}


def _render(results: dict, capsys=None) -> None:
    table = Table(
        ["pattern"] + [f"{b} (s)" for b in BACKENDS]
        + [f"{b} x" for b in BACKENDS[1:]],
        title=f"execution backends on {DATASET} proxy (Fig. 8-style, no IEP)",
    )
    for pname, row in results["patterns"].items():
        cells = [pname] + [format_seconds(row[b]["seconds"]) for b in BACKENDS]
        cells += [
            format_speedup(row[b]["speedup_vs_interpreter"]) for b in BACKENDS[1:]
        ]
        table.add_row(cells)
    summary = {
        b: geomean(
            [row[b]["speedup_vs_interpreter"] for row in results["patterns"].values()]
        )
        for b in BACKENDS[1:]
    }
    table.add_row(
        ["geomean"] + [""] * len(BACKENDS)
        + [format_speedup(summary[b]) for b in BACKENDS[1:]]
    )
    results["geomean_speedup_vs_interpreter"] = summary
    emit(table, capsys, "bench_backends.tsv")
    emit_json("BENCH_backends.json", results)


def test_backend_comparison(benchmark, capsys):
    from _common import once

    results = once(benchmark, run_backend_bench)
    _render(results, capsys)
    # the acceptance criterion: generated code beats interpretation.
    assert results["geomean_speedup_vs_interpreter"]["compiled"] > 1.0


if __name__ == "__main__":
    _render(run_backend_bench())
