"""The observability overhead budget: tracing off vs sampled-off vs on.

The tentpole claim of the tracing layer (`repro.obs.trace`): a disabled
span site costs one module-global branch, so leaving the
instrumentation compiled into every hot loop is free, and even full
tracing — every span created, timed and attached into the collected
tree — stays within a bounded fraction of the run.  This bench measures
the Fig. 8 pattern suite through `MatchSession.count` (the fully
instrumented path: plan cache, execute wrapper, per-depth backend
spans) on each instrumented single-process backend in three
configurations:

- **off** — `obs.disable()`, the default;
- **sampled-off** — `obs.enable(every=10**9)`: tracing enabled but the
  sampler rejects every trace, so each site pays its guard branch and
  nothing else;
- **on** — `obs.enable()`: every call collects a full span tree.

Outputs: an aligned table, a TSV under ``benchmarks/results/`` and a
machine-readable ``BENCH_obs.json`` in the repo root with per-cell
timings, the two geomean overhead ratios, and the enforced ceilings
(sampled-off <= 3 %, on <= 25 %).  Counts are asserted identical in
every configuration — observability must never change an answer.

Quick mode (``REPRO_BENCH_QUICK=1``, the CI bench-smoke job) shrinks
the proxy graph and trims the suite to the first three patterns; the
ceilings and the count assertion hold in every mode.
"""

from __future__ import annotations

from repro import MatchQuery, MatchSession, obs
from repro.pattern.catalog import paper_patterns
from repro.utils.tables import Table, format_seconds

from _common import QUICK, bench_graph, emit, emit_json, geomean, time_call

DATASET = "wiki-vote"

#: the instrumented single-process backends (the parallel/distributed
#: masters reuse the same span substrate; their per-run cost is
#: dominated by task execution, not instrumentation).
BACKENDS = ["interpreter", "compiled", "vectorised"]

#: quick mode keeps the smoke job in seconds; the full run covers P1-P6.
PATTERN_LIMIT = 3 if QUICK else 6

#: min-of-N timing per (cell, configuration), interleaved so drift hits
#: every configuration equally.
REPEATS = 3 if QUICK else 5

#: the enforced ceilings (geomean of per-cell ratios vs tracing off).
SAMPLED_OFF_CEILING = 1.03
ON_CEILING = 1.25

#: sampler period that admits no trace — "enabled but sampled out".
NEVER = 10**9

CONFIGS = ["off", "sampled_off", "on"]


def _configure(config: str) -> None:
    if config == "off":
        obs.disable()
    elif config == "sampled_off":
        obs.enable(every=NEVER)
    else:
        obs.enable()


def run_obs_bench() -> dict:
    graph = bench_graph(DATASET)
    patterns = dict(list(paper_patterns().items())[:PATTERN_LIMIT])
    records: dict[str, dict] = {}

    try:
        for bname in BACKENDS:
            session = MatchSession(graph)
            for pname, pattern in patterns.items():
                query = MatchQuery(pattern, backend=bname)
                # Warm-up with tracing off: plan cached, kernel compiled,
                # so the timed calls measure pure execution + tracing.
                obs.disable()
                warm = session.count(query)
                best = dict.fromkeys(CONFIGS, float("inf"))
                counts: dict[str, int] = {}
                for _ in range(REPEATS):
                    for config in CONFIGS:
                        _configure(config)
                        seconds, result = time_call(session.count, query)
                        best[config] = min(best[config], seconds)
                        counts[config] = int(result)
                        if config == "on":
                            assert result.trace is not None, (bname, pname)
                obs.disable()
                # the acceptance invariant: observability never changes
                # an answer, in any configuration.
                assert counts["off"] == counts["sampled_off"] == counts["on"]
                assert counts["off"] == int(warm), (bname, pname)
                records[f"{bname}/{pname}"] = {
                    "backend": bname,
                    "pattern": pname,
                    "count": counts["off"],
                    "off_seconds": best["off"],
                    "sampled_off_seconds": best["sampled_off"],
                    "on_seconds": best["on"],
                    "sampled_off_ratio": best["sampled_off"] / best["off"],
                    "on_ratio": best["on"] / best["off"],
                }
    finally:
        obs.disable()

    return {
        "graph": repr(graph),
        "dataset": DATASET,
        "quick": QUICK,
        "repeats": REPEATS,
        "runs": records,
        "sampled_off_geomean": geomean(
            [r["sampled_off_ratio"] for r in records.values()]
        ),
        "on_geomean": geomean([r["on_ratio"] for r in records.values()]),
        "sampled_off_ceiling": SAMPLED_OFF_CEILING,
        "on_ceiling": ON_CEILING,
    }


def _render(results: dict, capsys=None) -> dict:
    suffix = ", quick" if QUICK else ""
    table = Table(
        [
            "backend/pattern",
            "count",
            "off (s)",
            "sampled-off (s)",
            "on (s)",
            "sampled-off x",
            "on x",
        ],
        title=f"observability overhead on {DATASET} proxy (Fig. 8 suite{suffix})",
    )
    for cell, rec in results["runs"].items():
        table.add_row(
            [
                cell,
                rec["count"],
                format_seconds(rec["off_seconds"]),
                format_seconds(rec["sampled_off_seconds"]),
                format_seconds(rec["on_seconds"]),
                f"{rec['sampled_off_ratio']:.3f}",
                f"{rec['on_ratio']:.3f}",
            ]
        )
    table.add_row(
        [
            "geomean",
            "",
            "",
            "",
            "",
            f"{results['sampled_off_geomean']:.3f}",
            f"{results['on_geomean']:.3f}",
        ]
    )
    emit(table, capsys, "bench_obs.tsv")
    emit_json("BENCH_obs.json", results)
    return results


def _assert_floors(results: dict) -> None:
    sampled = results["sampled_off_geomean"]
    on = results["on_geomean"]
    assert sampled <= SAMPLED_OFF_CEILING, (
        f"sampled-off geomean overhead {sampled:.3f} exceeds the "
        f"{SAMPLED_OFF_CEILING} ceiling — the one-branch claim is broken"
    )
    assert on <= ON_CEILING, (
        f"full-tracing geomean overhead {on:.3f} exceeds the {ON_CEILING} ceiling"
    )


def test_obs_overhead(benchmark, capsys):
    from _common import once

    results = once(benchmark, run_obs_bench)
    _render(results, capsys)
    _assert_floors(results)


if __name__ == "__main__":
    _assert_floors(_render(run_obs_bench()))
