"""Supplementary: the ASAP comparison the paper's introduction makes.

Two intro claims about approximate systems (§I):

1. *"It allows users to make a trade-off between the result accuracy
   and latency"* — sweeping the sample budget must show relative error
   falling as 1/√n while latency grows linearly, and exact GraphPi
   counting sits at (0 error, fixed latency) as the reference point.
2. *"ASAP fails to generate relatively accurate estimation by sampling
   if there are very few embeddings in the graph"* — on a graph with a
   single planted 5-house, the sampler's pilot sees (almost) nothing
   and the error-latency profile cannot be calibrated, while exact
   counting finds the embedding immediately.
"""

import math

import pytest

from repro.approx.elp import RareEmbeddingError, build_elp
from repro.approx.sampling import NeighborhoodSampler
from repro.core.api import PatternMatcher
from repro.graph.builder import graph_from_edges
from repro.pattern.catalog import house, triangle
from repro.utils.tables import Table, format_seconds

from _common import bench_graph, emit, once, time_call


@pytest.mark.benchmark(group="approx")
def test_accuracy_latency_tradeoff(benchmark, capsys):
    graph = bench_graph("wiki-vote")
    pattern = triangle()

    matcher = PatternMatcher(pattern)
    t_exact, truth = time_call(matcher.count, graph, use_iep=False)

    table = Table(
        ["samples", "estimate", "true count", "rel. error", "time", "vs exact"],
        title="ASAP-style accuracy/latency trade-off (triangle on wiki proxy)",
    )
    errors = {}
    for n_samples in (200, 2_000, 20_000, 100_000):
        sampler = NeighborhoodSampler(graph, pattern, seed=2020)
        t, res = time_call(sampler.estimate, n_samples)
        rel = res.relative_error(truth)
        errors[n_samples] = rel
        table.add_row(
            [
                str(n_samples),
                f"{res.estimate:.4g}",
                str(truth),
                f"{rel:.1%}",
                format_seconds(t),
                f"{t / t_exact:.2f}x",
            ]
        )
    table.add_row(["exact (GraphPi)", str(truth), str(truth), "0%",
                   format_seconds(t_exact), "1x"])
    emit(table, capsys, "approx_tradeoff.tsv")

    # the knob works: two decades more samples must cut error markedly
    assert errors[100_000] < max(errors[200], 0.02)

    once(benchmark, NeighborhoodSampler(graph, pattern, seed=2020).estimate, 20_000)


@pytest.mark.benchmark(group="approx")
def test_rare_embedding_failure(benchmark, capsys):
    # one planted house at the end of a long path: exactly 1 embedding
    path_edges = [(i, i + 1) for i in range(400)]
    base = 500
    house_edges = [
        (base, base + 1), (base + 1, base + 2), (base + 2, base + 3),
        (base + 3, base), (base, base + 4), (base + 1, base + 4),
    ]
    graph = graph_from_edges(path_edges + house_edges + [(400, base)])
    pattern = house()

    matcher = PatternMatcher(pattern)
    t_exact, truth = time_call(matcher.count, graph, use_iep=False)
    assert truth == 1

    table = Table(
        ["approach", "answer", "time", "note"],
        title="Rare-embedding failure mode (1 planted house, §I claim)",
    )
    table.add_row(["exact (GraphPi)", str(truth), format_seconds(t_exact), "finds it"])

    prof = build_elp(graph, pattern, pilot_samples=3_000, seed=7)
    try:
        budget = prof.samples_for(0.05)
        note = f"needs {budget:,} samples for 5% error"
    except RareEmbeddingError:
        budget = None
        note = "pilot saw 0 hits: cannot calibrate"
    table.add_row(
        [
            "sampling pilot (3k trials)",
            f"{prof.pilot_mean:.3g} (hits={prof.pilot_hits})",
            "-",
            note,
        ]
    )
    emit(table, capsys, "approx_rare_failure.tsv")

    # the paper's claim: the sampler carries (almost) no signal here —
    # either the pilot saw nothing, or the required budget is absurd
    if budget is not None:
        assert budget > 100_000 or math.isinf(budget)

    once(benchmark, matcher.count, graph, use_iep=False)
