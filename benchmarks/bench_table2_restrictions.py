"""Table II: speedup from the better restriction set.

Paper: running *all schedules* of P1, P2, P4 on Wiki-Vote and Patents,
comparing GraphPi's model-selected restriction set against GraphZero's
single set for schedules where they differ — average speedups 1.6x-2.5x,
maxima 2.4x-7.8x.

Here: same grid on the proxies.  For each generated schedule we time the
GraphZero set and GraphPi's best set for that schedule; rows report the
average and maximum ratio over schedules where the sets differ.
"""

import pytest

from repro.baselines.graphzero import graphzero_restriction_set
from repro.core.codegen import compile_plan_function
from repro.core.config import Configuration
from repro.core.perf_model import PerformanceModel
from repro.core.restrictions import generate_restriction_sets
from repro.core.schedule import generate_schedules
from repro.graph.stats import GraphStats
from repro.pattern.catalog import paper_patterns
from repro.utils.tables import Table, format_speedup

from _common import bench_graph, emit, once, time_call

PAPER_ROWS = {
    ("wiki-vote", "P1"): (1.94, 2.52),
    ("wiki-vote", "P2"): (1.71, 4.10),
    ("wiki-vote", "P4"): (1.60, 2.39),
    ("patents", "P1"): (2.02, 5.08),
    ("patents", "P2"): (1.65, 6.65),
    ("patents", "P4"): (2.46, 7.82),
}


def _measure(graph, pattern, schedule, rs):
    plan = Configuration(pattern, schedule, rs).compile()
    fn = compile_plan_function(plan)
    seconds, _ = time_call(fn, graph)
    return seconds


@pytest.mark.benchmark(group="table2")
def test_table2_restriction_selection(benchmark, capsys):
    patterns = paper_patterns()
    table = Table(
        ["graph", "pattern", "avg speedup", "max speedup",
         "paper avg", "paper max", "#schedules compared"],
        title="Table II: speedup from GraphPi's restriction-set choice "
              "over GraphZero's single set (same schedule)",
    )
    all_ratios = []
    for gname in ("wiki-vote", "patents"):
        graph = bench_graph(gname)
        stats = GraphStats.of(graph)
        model = PerformanceModel(stats)
        for pname in ("P1", "P2", "P4"):
            pattern = patterns[pname]
            gz_set = graphzero_restriction_set(pattern)
            pi_sets = generate_restriction_sets(pattern, max_sets=32)
            ratios = []
            for schedule in generate_schedules(pattern, dedup_automorphic=True):
                ranked = model.rank(
                    [Configuration(pattern, schedule, rs) for rs in pi_sets]
                )
                best = ranked[0].config.restrictions
                if best == gz_set:
                    continue  # same choice: no difference to measure
                t_gz = _measure(graph, pattern, schedule, gz_set)
                t_pi = _measure(graph, pattern, schedule, best)
                ratios.append(t_gz / t_pi)
            if not ratios:
                table.add_row([gname, pname, "n/a", "n/a",
                               *PAPER_ROWS[(gname, pname)], 0])
                continue
            avg = sum(ratios) / len(ratios)
            all_ratios.extend(ratios)
            paper_avg, paper_max = PAPER_ROWS[(gname, pname)]
            table.add_row(
                [gname, pname, format_speedup(avg), format_speedup(max(ratios)),
                 f"{paper_avg}x", f"{paper_max}x", len(ratios)]
            )
    emit(table, capsys, "table2_restrictions.tsv")

    graph = bench_graph("wiki-vote")
    pattern = patterns["P1"]
    once(benchmark, _measure, graph, pattern,
         generate_schedules(pattern)[0], graphzero_restriction_set(pattern))

    # Shape: a better set exists for at least some schedules, and on
    # average GraphPi's choice is at least as good as GraphZero's.
    assert all_ratios, "expected schedules where the sets differ"
    assert sum(all_ratios) / len(all_ratios) >= 0.9
    assert max(all_ratios) > 1.1
