"""Serving runtime: memoisation payoff, concurrency sweep, backpressure.

Three experiments against :class:`~repro.serving.MatchService`:

1. **Memoisation payoff** — a repeated-query trace (every pattern
   queried once cold, then many times warm).  The warm repeats must be
   memo hits (hit ratio > MEMO_RATIO_FLOOR over the whole trace) and
   the warm p50 latency must sit at least ``WARM_SPEEDUP_FLOOR`` times
   under the cold p50: a memo hit returns a stored value under one lock
   acquisition instead of re-executing a compiled plan.
2. **Concurrency sweep** — one synthetic mixed count/enumerate trace
   replayed open-loop at several worker-pool sizes with memoisation
   *off*, so the sweep measures raw execution throughput (QPS) and
   latency percentiles rather than cache performance.
3. **Backpressure profile** — a burst of slow jobs (an event-gated
   executor pins the workers) against several queue limits; the service
   must shed exactly the overflow, deterministically:
   ``rejected = burst - queue_limit - n_workers``.

Every served count in experiment 1 is checked against a direct
:func:`~repro.core.session.get_session` count on the job's own frozen
graph — the zero-wrong-counts gate CI runs in quick mode.

Outputs: aligned tables, a TSV under ``benchmarks/results/`` and
``BENCH_serving.json`` in the repo root.
"""

from __future__ import annotations

import threading
import time

from repro.core.session import get_session
from repro.pattern.catalog import house, rectangle, triangle
from repro.serving import (
    MatchRequest,
    MatchService,
    ServiceOverloaded,
    latency_percentiles,
    replay_trace,
    synthetic_trace,
)
from repro.utils.tables import Table, format_seconds

from _common import QUICK, bench_graph, emit, emit_json

DATASET = "wiki-vote"
SCALE = 0.08 if QUICK else 0.15

PATTERNS = {"triangle": triangle, "rectangle": rectangle, "house": house}

#: warm repeats per pattern in the memoisation trace.
WARM_REPEATS = 4 if QUICK else 16

#: synthetic-trace length and worker sweep for the concurrency run.
SWEEP_OPS = 24 if QUICK else 96
SWEEP_WORKERS = [1, 2] if QUICK else [1, 2, 4]

#: backpressure burst size and the queue limits profiled against it.
BURST = 12 if QUICK else 32
QUEUE_LIMITS = [1, 4] if QUICK else [1, 4, 16]

#: acceptance floors (ISSUE 7): the repeated-query trace must be
#: mostly memo hits, and a warm hit must be at least this much faster
#: than a cold execution.
MEMO_RATIO_FLOOR = 0.5
WARM_SPEEDUP_FLOOR = 10.0

SEED = 2020


# -- experiment 1: memoisation payoff ---------------------------------------
def run_memo_experiment(graph) -> dict:
    wrong = 0
    with MatchService(n_workers=2) as svc:
        svc.add_graph("default", graph)
        cold = []
        for builder in PATTERNS.values():
            handle = svc.count(builder())
            handle.result()
            cold.append(handle)
        warm = []
        for _ in range(WARM_REPEATS):
            for builder in PATTERNS.values():
                warm.append(svc.count(builder()))
        for handle in warm:
            handle.result()
        stats = svc.stats()
        # the zero-wrong-counts gate: every served count equals a direct
        # session count on the same frozen graph.
        for handle in cold + warm:
            expected = int(get_session(handle.graph).count(handle.request.query))
            if handle.result() != expected:  # pragma: no cover - gate
                wrong += 1
    cold_p50, cold_p99 = latency_percentiles([h.latency for h in cold])
    warm_p50, warm_p99 = latency_percentiles([h.latency for h in warm])
    return {
        "patterns": sorted(PATTERNS),
        "warm_repeats": WARM_REPEATS,
        "cold_p50_s": cold_p50,
        "cold_p99_s": cold_p99,
        "warm_p50_s": warm_p50,
        "warm_p99_s": warm_p99,
        "warm_speedup_p50": cold_p50 / warm_p50 if warm_p50 else float("inf"),
        "memo_hits": stats.memo.hits,
        "memo_misses": stats.memo.misses,
        "memo_collapsed": stats.memo.collapsed,
        "memo_hit_ratio": stats.memo_hit_ratio,
        "wrong_counts": wrong,
    }


# -- experiment 2: concurrency sweep ----------------------------------------
def run_concurrency_sweep(graph) -> dict:
    ops = synthetic_trace(
        sorted(PATTERNS), SWEEP_OPS, enumerate_ratio=0.25,
        enumerate_limit=50, seed=SEED,
    )
    rows = {}
    for n_workers in SWEEP_WORKERS:
        # memoisation off: measure executions, not cache lookups.
        svc = MatchService(n_workers=n_workers, queue_limit=SWEEP_OPS,
                           memoise=False)
        svc.add_graph("default", graph)
        t0 = time.perf_counter()
        outcome = replay_trace(svc, ops)
        outcome.wait()
        elapsed = time.perf_counter() - t0
        done = [h for h in outcome.handles if h.state == "done"]
        p50, p99 = latency_percentiles([h.latency for h in done])
        svc.close()
        rows[str(n_workers)] = {
            "n_workers": n_workers,
            "jobs": len(outcome.handles),
            "done": len(done),
            "seconds": elapsed,
            "qps": len(done) / elapsed if elapsed else 0.0,
            "p50_s": p50,
            "p99_s": p99,
        }
    return {"n_ops": SWEEP_OPS, "workers": rows}


# -- experiment 3: backpressure profile -------------------------------------
def run_backpressure_profile() -> dict:
    """Deterministic shedding: a gated executor pins every worker."""
    gate = threading.Event()
    started = threading.Event()

    def gated_executor(graph, request, cancel_event):
        started.set()
        gate.wait(30)
        return 0

    tiny = bench_graph(DATASET, scale=0.02)
    request = MatchRequest("count", triangle())
    rows = {}
    for queue_limit in QUEUE_LIMITS:
        gate.clear()
        started.clear()
        svc = MatchService(n_workers=1, queue_limit=queue_limit,
                           memoise=False, executor=gated_executor)
        svc.add_graph("default", tiny)
        # pin the worker first so the burst contends for queue slots only
        svc.submit(request)
        assert started.wait(30), "worker never picked up the pinning job"
        rejected = 0
        for _ in range(BURST):
            try:
                svc.submit(request)
            except ServiceOverloaded:
                rejected += 1
        stats = svc.stats()
        gate.set()
        svc.close()
        rows[str(queue_limit)] = {
            "queue_limit": queue_limit,
            "burst": BURST,
            "admitted": BURST - rejected,
            "rejected": rejected,
            "expected_rejected": BURST - queue_limit,
            "stats_rejected": stats.rejected,
        }
    return {"burst": BURST, "queue_limits": rows}


def run_serving_bench() -> dict:
    graph = bench_graph(DATASET, scale=SCALE)
    return {
        "graph": repr(graph),
        "dataset": DATASET,
        "scale": SCALE,
        "quick": QUICK,
        "memo": run_memo_experiment(graph),
        "concurrency": run_concurrency_sweep(graph),
        "backpressure": run_backpressure_profile(),
        "memo_ratio_floor": MEMO_RATIO_FLOOR,
        "warm_speedup_floor": WARM_SPEEDUP_FLOOR,
    }


def _render(results: dict, capsys=None) -> dict:
    suffix = ", quick" if QUICK else ""
    memo = results["memo"]
    t1 = Table(
        ["phase", "jobs", "p50", "p99"],
        title=(
            f"memoised serving on {DATASET} proxy "
            f"({len(memo['patterns'])} patterns x {memo['warm_repeats']} "
            f"warm repeats{suffix})"
        ),
    )
    n_patterns = len(memo["patterns"])
    t1.add_row(["cold", n_patterns, format_seconds(memo["cold_p50_s"]),
                format_seconds(memo["cold_p99_s"])])
    t1.add_row(["warm (memo)", n_patterns * memo["warm_repeats"],
                format_seconds(memo["warm_p50_s"]),
                format_seconds(memo["warm_p99_s"])])
    t1.add_row(["p50 speedup", f"{memo['warm_speedup_p50']:.0f}x",
                f"hit ratio {memo['memo_hit_ratio']:.2f}",
                f"wrong {memo['wrong_counts']}"])
    emit(t1, capsys, "bench_serving_memo.tsv")

    t2 = Table(
        ["workers", "jobs", "QPS", "p50", "p99"],
        title=f"concurrency sweep, memoisation off ({results['concurrency']['n_ops']} ops)",
    )
    for row in results["concurrency"]["workers"].values():
        t2.add_row([row["n_workers"], row["done"], f"{row['qps']:.0f}",
                    format_seconds(row["p50_s"]), format_seconds(row["p99_s"])])
    emit(t2, capsys, "bench_serving_sweep.tsv")

    t3 = Table(
        ["queue limit", "burst", "admitted", "rejected", "expected"],
        title="backpressure-rejection profile (1 pinned worker)",
    )
    for row in results["backpressure"]["queue_limits"].values():
        t3.add_row([row["queue_limit"], row["burst"], row["admitted"],
                    row["rejected"], row["expected_rejected"]])
    emit(t3, capsys, "bench_serving_backpressure.tsv")

    emit_json("BENCH_serving.json", results)
    return results


def _assert_floors(results: dict) -> None:
    memo = results["memo"]
    assert memo["wrong_counts"] == 0, (
        f"{memo['wrong_counts']} served counts disagree with direct "
        "MatchSession execution"
    )
    assert memo["memo_hit_ratio"] > MEMO_RATIO_FLOOR, (
        f"memo hit ratio {memo['memo_hit_ratio']:.2f} on the "
        f"repeated-query trace is below the {MEMO_RATIO_FLOOR} floor"
    )
    assert memo["warm_speedup_p50"] >= WARM_SPEEDUP_FLOOR, (
        f"warm memoised p50 is only {memo['warm_speedup_p50']:.1f}x under "
        f"cold execution (floor {WARM_SPEEDUP_FLOOR}x)"
    )
    for row in results["backpressure"]["queue_limits"].values():
        assert row["rejected"] == row["expected_rejected"], (
            f"queue limit {row['queue_limit']}: shed {row['rejected']} of a "
            f"{row['burst']}-job burst, expected {row['expected_rejected']}"
        )
        assert row["stats_rejected"] == row["rejected"]


def test_serving(benchmark, capsys):
    from _common import once

    results = once(benchmark, run_serving_bench)
    _render(results, capsys)
    _assert_floors(results)


if __name__ == "__main__":
    _assert_floors(_render(run_serving_bench()))
