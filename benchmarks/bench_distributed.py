"""Figure 12 through the backend seam: the distributed execution study.

The original Fig. 12 bench (`bench_fig12_scaling.py`) measured task
costs by hand and fed the cluster simulator directly — a side study
detached from the matching API.  The `distributed` backend folds that
study into the standard execution seam: this bench runs
``MatchQuery(pattern, backend=distributed)`` through the session layer
(the exact path ``count_pattern(..., backend=...)`` takes), so every
call returns the **exact count** (cross-checked against the `compiled`
backend here) *and* the simulated multi-node scaling profile from the
measured per-task costs.

Expected shape (the paper's three regimes): near-linear speedup while
root-range tasks outnumber simulated threads, then flattening once
24 x nodes approaches the task count, with work stealing absorbing the
power-law task skew in between.  The quick mode (``REPRO_BENCH_QUICK=1``,
the CI bench-smoke job) shrinks the proxy and trims patterns/node
counts but still asserts count agreement and the curve shape.

Outputs: an aligned table, ``benchmarks/results/bench_distributed.tsv``
and machine-readable ``BENCH_distributed.json``.
"""

from __future__ import annotations

from repro.core.api import count_pattern, match_query
from repro.core.backend import get_backend
from repro.core.query import MatchQuery
from repro.pattern.catalog import paper_patterns
from repro.utils.tables import Table, format_seconds

from _common import QUICK, bench_graph, emit, emit_json

DATASET = "twitter"  # the proxy with enough vertices for >=1000 root tasks

NODE_COUNTS = (1, 2, 4, 8, 16, 32) if QUICK else (1, 2, 4, 8, 16, 32, 64, 128)
PATTERN_NAMES = ("P1", "P2") if QUICK else ("P1", "P2", "P3", "P4")

#: 4 simulated threads per node, not Tianhe-2A's 24: the proxies are
#: ~1000x smaller than the real Twitter graph, so a single root-range
#: task on the hub vertex is ~5% of total work — at 24 threads/node the
#: 1-node *baseline* already sits on that heavy-tail ceiling and no
#: node count can look better.  Scaling threads down keeps the
#: task:thread ratio in the paper's regime so the three Fig. 12 phases
#: (near-linear, stealing-absorbed skew, heavy-tail flattening) are
#: visible; the backend default stays 24 for paper-shaped studies.
THREADS_PER_NODE = 4

#: shape acceptance: on the heaviest workload, the early doubling must
#: be near-linear and the curve must flatten by the largest node count.
EARLY_SPEEDUP_FLOOR = 1.4  # speedup at 2 nodes (linear would be 2.0)
FLAT_GAIN_CEILING = 1.6  # last doubling's relative gain (linear = 2.0)
FINAL_FRACTION_CEILING = 0.7  # speedup@max must be < 0.7 * max nodes


def run_distributed_bench() -> dict:
    graph = bench_graph(DATASET)
    patterns = paper_patterns()
    records: dict[str, dict] = {}
    for pname in PATTERN_NAMES:
        pattern = patterns[pname]
        backend = get_backend(
            "distributed",
            node_counts=NODE_COUNTS,
            threads_per_node=THREADS_PER_NODE,
        )
        result = match_query(graph, MatchQuery(pattern, backend=backend))
        report = result.distributed_report
        assert report is not None, "distributed backend must attach its report"
        # The count gate: the simulated-cluster path and the generated
        # single-process kernel must agree exactly.
        expected = count_pattern(graph, pattern, backend="compiled")
        assert result.count == expected, (pname, result.count, expected)
        records[pname] = {
            "count": int(result.count),
            "n_roots": report.n_roots,
            "n_tasks": report.n_tasks,
            "inner_backend": report.inner_backend,
            "total_task_seconds": sum(report.task_seconds),
            "node_counts": list(report.node_counts),
            "makespans": list(report.makespans),
            "speedups": list(report.speedups),
            "efficiencies": list(report.efficiencies),
            "steals": [r.steals for r in report.results],
        }
    return {
        "graph": repr(graph),
        "dataset": DATASET,
        "quick": QUICK,
        "threads_per_node": THREADS_PER_NODE,
        "patterns": records,
    }


def _shape_assertions(results: dict) -> None:
    """The Fig. 12 acceptance: near-linear early, flattening at scale.

    Asserted on the heaviest pattern (most measured work) — the paper
    itself shows the short P2/P3 runs scaling poorly, so light patterns
    only need to stay exact, not scale.
    """
    heaviest = max(
        results["patterns"].values(), key=lambda rec: rec["total_task_seconds"]
    )
    speedups = heaviest["speedups"]
    nodes = heaviest["node_counts"]
    assert speedups[1] >= EARLY_SPEEDUP_FLOOR, (
        f"speedup at {nodes[1]} nodes is {speedups[1]:.2f}x, below the "
        f"near-linear floor {EARLY_SPEEDUP_FLOOR}x"
    )
    last_gain = speedups[-1] / speedups[-2] if speedups[-2] else float("inf")
    assert last_gain <= FLAT_GAIN_CEILING, (
        f"curve still gaining {last_gain:.2f}x per doubling at "
        f"{nodes[-1]} nodes - no flattening regime"
    )
    assert speedups[-1] <= FINAL_FRACTION_CEILING * nodes[-1], (
        f"speedup {speedups[-1]:.1f}x at {nodes[-1]} nodes is implausibly "
        f"close to linear for a saturated simulation"
    )


def _render(results: dict, capsys=None) -> dict:
    suffix = ", quick" if QUICK else ""
    table = Table(
        ["pattern", "count", "#tasks"]
        + [f"{n}n" for n in NODE_COUNTS]
        + ["eff@max"],
        title=f"Fig. 12 via backend seam on {DATASET} proxy "
        f"({THREADS_PER_NODE} threads/node{suffix}); cells = simulated speedup",
    )
    for pname, rec in results["patterns"].items():
        table.add_row(
            [pname, rec["count"], rec["n_tasks"]]
            + [f"{s:.1f}x" for s in rec["speedups"]]
            + [f"{rec['efficiencies'][-1] * 100:.0f}%"]
        )
    emit(table, capsys, "bench_distributed.tsv")
    emit_json("BENCH_distributed.json", results)
    return results


def test_distributed_scaling(benchmark, capsys):
    from _common import once

    results = once(benchmark, run_distributed_bench)
    _render(results, capsys)
    _shape_assertions(results)


if __name__ == "__main__":
    results = _render(run_distributed_bench())
    _shape_assertions(results)
    heaviest = max(
        results["patterns"].items(),
        key=lambda item: item[1]["total_task_seconds"],
    )
    curve = ", ".join(
        f"{n}n:{s:.1f}x"
        for n, s in zip(heaviest[1]["node_counts"], heaviest[1]["speedups"])
    )
    print(f"shape OK on {heaviest[0]}: {curve}")
    print(f"simulated makespan@1 node: "
          f"{format_seconds(heaviest[1]['makespans'][0])}")
