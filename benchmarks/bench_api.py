"""Plan-cache benchmark: cold vs warm MatchSession.count() latency.

The tentpole claim of the unified MatchQuery/MatchSession facade: a
repeated query pays execution only — the whole preprocessing pipeline
(Algorithm 1 restriction generation, 2-phase schedules, model ranking,
code generation: the costs Table III measures) is amortised to zero on
a plan-cache hit.  This bench replays the Fig. 8 paper-pattern suite
through fresh sessions, timing each pattern's cold (planning) call and
warm (cache-hit) calls.

The data graph is a *sparse* ER proxy: the bench isolates planning
amortisation, the regime of a service answering many pattern queries
against metadata-sized graphs, where Table III preprocessing — not
execution — dominates per-request latency.  Patterns with large
automorphism groups (P2, P6) plan 100-1000x slower than they execute
here; patterns with trivial symmetry (P1, P3) plan in single-digit
milliseconds, so their cold/warm gap is inherently small — the
acceptance criterion is therefore assessed on the repeated-query
*suite*: one cold pass over all six patterns vs one warm pass must be
≥ 10x faster.

Outputs: an aligned table, a TSV under ``benchmarks/results/`` and a
machine-readable ``BENCH_api.json`` in the repo root with per-pattern
cold/warm seconds and speedups plus the suite-level numbers.

Run directly (``python benchmarks/bench_api.py``) or through pytest
like the other benches.
"""

from __future__ import annotations

import math
import statistics

from repro.core.query import MatchQuery
from repro.core.session import MatchSession
from repro.graph.generators import erdos_renyi
from repro.pattern.catalog import paper_patterns
from repro.utils.tables import Table, format_seconds, format_speedup

from _common import BENCH_SEED, emit, emit_json, time_call

#: sparse service-style graph: execution is cheap, planning is not.
N_VERTICES = 150
EDGE_PROB = 0.02

#: warm calls per pattern (median reported).
WARM_REPEATS = 3

ACCEPTANCE_MIN_SPEEDUP = 10.0


def run_api_bench() -> dict:
    graph = erdos_renyi(N_VERTICES, EDGE_PROB, seed=BENCH_SEED)
    records: dict[str, dict] = {}

    for pname, pattern in paper_patterns().items():
        session = MatchSession(graph)  # fresh cache: first call is cold
        query = MatchQuery(pattern)
        cold_s, cold = time_call(session.count, query)
        assert not cold.cache_hit
        warm_samples = []
        for _ in range(WARM_REPEATS):
            s, res = time_call(session.count, query)
            assert res.cache_hit and res.count == cold.count
            warm_samples.append(s)
        warm_s = statistics.median(warm_samples)
        records[pname] = {
            "count": cold.count,
            "cold_seconds": cold_s,
            "warm_seconds": warm_s,
            "plan_seconds": cold.seconds_plan,
            "speedup": cold_s / warm_s if warm_s > 0 else float("inf"),
        }

    speedups = [r["speedup"] for r in records.values() if math.isfinite(r["speedup"])]
    geomean = math.exp(sum(math.log(s) for s in speedups) / len(speedups))
    suite_cold = sum(r["cold_seconds"] for r in records.values())
    suite_warm = sum(r["warm_seconds"] for r in records.values())
    suite_speedup = suite_cold / suite_warm if suite_warm > 0 else float("inf")
    return {
        "graph": f"ER({N_VERTICES},{EDGE_PROB})",
        "warm_repeats": WARM_REPEATS,
        "patterns": records,
        "geomean_speedup": geomean,
        "suite_cold_seconds": suite_cold,
        "suite_warm_seconds": suite_warm,
        "suite_speedup": suite_speedup,
        "acceptance_min_speedup": ACCEPTANCE_MIN_SPEEDUP,
        "acceptance_met": suite_speedup >= ACCEPTANCE_MIN_SPEEDUP,
    }


def render(payload: dict) -> Table:
    table = Table(
        ["pattern", "count", "cold", "warm", "plan share", "speedup"],
        title=f"plan cache: cold vs warm MatchSession.count() on "
              f"{payload['graph']}",
    )
    for pname, rec in payload["patterns"].items():
        share = rec["plan_seconds"] / rec["cold_seconds"] if rec["cold_seconds"] else 0
        table.add_row([
            pname,
            rec["count"],
            format_seconds(rec["cold_seconds"]),
            format_seconds(rec["warm_seconds"]),
            f"{share * 100:.0f}%",
            format_speedup(rec["speedup"]),
        ])
    table.add_row([
        "suite",
        "",
        format_seconds(payload["suite_cold_seconds"]),
        format_seconds(payload["suite_warm_seconds"]),
        "",
        format_speedup(payload["suite_speedup"]),
    ])
    return table


def main(capsys=None) -> dict:
    payload = run_api_bench()
    table = render(payload)
    emit(table, capsys, "bench_api.tsv")
    path = emit_json("BENCH_api.json", payload)
    line = (
        f"suite warm speedup {payload['suite_speedup']:.1f}x "
        f"(per-pattern geomean {payload['geomean_speedup']:.1f}x, acceptance "
        f">= {ACCEPTANCE_MIN_SPEEDUP:.0f}x: "
        f"{'met' if payload['acceptance_met'] else 'NOT MET'}) -> {path.name}"
    )
    if capsys is not None:
        with capsys.disabled():
            print(line)
    else:  # pragma: no cover - direct invocation
        print(line)
    return payload


def test_api_plan_cache(capsys):
    payload = main(capsys)
    assert payload["acceptance_met"], payload["suite_speedup"]


if __name__ == "__main__":
    main()
