"""Figure 8: overall performance — GraphPi vs GraphZero vs Fractal.

Paper: 6 patterns x 5 graphs on one Tianhe-2A node; GraphPi beats
GraphZero by 1.4x-105x and Fractal by 26x-154x on average per pattern;
Fractal OOMs on Orkut; several GraphZero runs exceed 48 h.

Here: the same grid on scaled proxies.  GraphPi = model-selected
configuration + generated code (no IEP, as in the paper's Fig. 8);
GraphZero = its single restriction set + degree-only schedule choice;
Fractal = frontier-materialising extension with a memory cap (the cap
reproduces the paper's OOM entries).  Expect the ordering
GraphPi <= GraphZero << Fractal with the gap growing on larger patterns.
"""

import pytest

from repro.baselines.fractal import FractalMatcher
from repro.baselines.graphzero import GraphZeroMatcher
from repro.core.api import PatternMatcher
from repro.core.engine import Engine
from repro.graph.datasets import SINGLE_NODE_DATASETS
from repro.pattern.catalog import paper_patterns
from repro.utils.tables import Table, format_seconds, format_speedup

from _common import bench_graph, emit, once, time_call

#: frontier cap standing in for the 64 GB node memory (tuples ~ bytes).
FRACTAL_FRONTIER_CAP = 3_000_000

#: patterns large enough that the Fractal baseline would dominate the
#: whole suite's runtime; the paper similarly reports "T" (>48h) entries.
FRACTAL_SKIP = {"P5", "P6"}
GRAPHZERO_SKIP: set[str] = set()


def _graphpi_seconds(graph, pattern):
    matcher = PatternMatcher(pattern, max_restriction_sets=16)
    report = matcher.plan(graph, use_iep=False)
    return time_call(report.generated, graph)


def _graphzero_seconds(graph, pattern):
    matcher = GraphZeroMatcher(pattern)
    plan = matcher.plan(graph)
    return time_call(Engine(graph, plan.plan).count)


def _fractal_seconds(graph, pattern):
    matcher = FractalMatcher(pattern, max_frontier=FRACTAL_FRONTIER_CAP)
    try:
        return time_call(matcher.count, graph)
    except MemoryError:
        return (float("inf"), "OOM")


@pytest.mark.benchmark(group="fig8")
def test_fig8_overall_performance(benchmark, capsys):
    patterns = paper_patterns()
    table = Table(
        ["graph", "pattern", "GraphPi", "GraphZero", "Fractal",
         "GZ/Pi speedup", "Fractal/Pi speedup", "count"],
        title="Figure 8: overall performance (proxies; paper: GraphPi up to "
              "105x over GraphZero, 154x over Fractal; Fractal OOM on Orkut)",
    )
    speedups_gz, speedups_fr = [], []
    for gname in SINGLE_NODE_DATASETS:
        graph = bench_graph(gname)
        for pname, pattern in patterns.items():
            t_pi, count = _graphpi_seconds(graph, pattern)
            if pname in GRAPHZERO_SKIP:
                t_gz, c_gz = float("nan"), None
            else:
                t_gz, c_gz = _graphzero_seconds(graph, pattern)
                assert c_gz == count, (gname, pname)
            if pname in FRACTAL_SKIP:
                t_fr, c_fr = float("nan"), None
            else:
                t_fr, c_fr = _fractal_seconds(graph, pattern)
                if c_fr != "OOM":
                    assert c_fr == count, (gname, pname)
            gz_ratio = t_gz / t_pi if t_gz == t_gz else float("nan")
            fr_ratio = t_fr / t_pi if t_fr == t_fr else float("nan")
            if gz_ratio == gz_ratio:
                speedups_gz.append(gz_ratio)
            if fr_ratio == fr_ratio and fr_ratio != float("inf"):
                speedups_fr.append(fr_ratio)
            table.add_row(
                [gname, pname, format_seconds(t_pi), format_seconds(t_gz),
                 "OOM" if t_fr == float("inf") else format_seconds(t_fr),
                 format_speedup(gz_ratio), format_speedup(fr_ratio), count]
            )
    geo_gz = _geomean(speedups_gz)
    geo_fr = _geomean(speedups_fr)
    table.add_row(["geomean", "", "", "", "", format_speedup(geo_gz),
                   format_speedup(geo_fr), ""])
    emit(table, capsys, "fig8_overall.tsv")

    # Representative single measurement for pytest-benchmark.
    graph = bench_graph("wiki-vote")
    report = PatternMatcher(patterns["P1"]).plan(graph, use_iep=False)
    once(benchmark, report.generated, graph)

    # Shape: GraphPi at least matches GraphZero on average, and beats
    # Fractal decisively.
    assert geo_gz >= 0.95
    assert geo_fr > 2.0


def _geomean(xs):
    import math

    xs = [x for x in xs if x > 0 and x == x and x != float("inf")]
    if not xs:
        return float("nan")
    return math.exp(sum(math.log(x) for x in xs) / len(xs))
