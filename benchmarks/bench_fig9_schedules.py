"""Figure 9: the schedule landscape of P3 on Wiki-Vote.

Paper: all schedules of P3 plotted by execution time; the 2-phase
generator eliminates most slow ones (including GraphZero's pick); among
generated schedules the oracle is 8x faster than the slowest; GraphPi's
model picks a schedule only 22% slower than the oracle.

Here: every automorphism-deduplicated schedule of P3 on the Wiki-Vote
proxy, timed with the same restriction set (isolating the schedule
dimension, as the paper does).  Eliminated schedules are sampled (they
only need to demonstrate their slowness).
"""

import numpy as np
import pytest

from repro.baselines.graphzero import GraphZeroMatcher
from repro.core.codegen import compile_plan_function
from repro.core.config import Configuration
from repro.core.perf_model import PerformanceModel
from repro.core.restrictions import generate_restriction_sets
from repro.core.schedule import dedup_schedules, generate_schedules, all_schedules
from repro.graph.stats import GraphStats
from repro.pattern.catalog import paper_patterns
from repro.utils.tables import Table, format_seconds, format_speedup

from _common import bench_graph, emit, once, time_call

N_ELIMINATED_SAMPLES = 12


@pytest.mark.benchmark(group="fig9")
def test_fig9_schedule_landscape(benchmark, capsys):
    graph = bench_graph("wiki-vote")
    pattern = paper_patterns()["P3"]
    stats = GraphStats.of(graph)
    rs = generate_restriction_sets(pattern)[0]

    generated = generate_schedules(pattern, dedup_automorphic=True)
    eliminated_all = [
        s
        for s in dedup_schedules(pattern, all_schedules(pattern))
        if s not in set(generated)
    ]
    rng = np.random.default_rng(7)
    eliminated = [
        eliminated_all[i]
        for i in rng.choice(len(eliminated_all),
                            size=min(N_ELIMINATED_SAMPLES, len(eliminated_all)),
                            replace=False)
    ]

    def run(schedule):
        plan = Configuration(pattern, schedule, rs).compile()
        seconds, _ = time_call(compile_plan_function(plan), graph)
        return seconds

    gen_times = {s: run(s) for s in generated}
    elim_times = {s: run(s) for s in eliminated}

    model = PerformanceModel(stats)
    ranked = model.rank([Configuration(pattern, s, rs) for s in generated])
    graphpi_pick = ranked[0].config.schedule
    gz_pick = GraphZeroMatcher(pattern).plan(stats=stats).config.schedule
    gz_time = gen_times.get(gz_pick) or elim_times.get(gz_pick) or run(gz_pick)

    oracle_s, oracle_t = min(gen_times.items(), key=lambda kv: kv[1])
    slowest_gen = max(gen_times.values())

    table = Table(
        ["series", "schedules", "fastest", "slowest", "median"],
        title="Figure 9: schedule landscape of P3 on wiki-vote proxy",
    )

    def row(name, times):
        ts = sorted(times.values())
        table.add_row([name, len(ts), format_seconds(ts[0]),
                       format_seconds(ts[-1]),
                       format_seconds(ts[len(ts) // 2])])

    row("generated (2-phase)", gen_times)
    row("eliminated (sampled)", elim_times)
    table.add_row(["GraphPi pick", str(list(graphpi_pick)),
                   format_seconds(gen_times[graphpi_pick]), "", ""])
    table.add_row(["GraphZero pick", str(list(gz_pick)),
                   format_seconds(gz_time), "", ""])
    table.add_row(["oracle", str(list(oracle_s)), format_seconds(oracle_t), "", ""])
    table.add_row(["oracle vs slowest generated (paper: 8x)", "",
                   format_speedup(slowest_gen / oracle_t), "", ""])
    table.add_row(["GraphPi pick vs oracle (paper: +22%)", "",
                   f"+{(gen_times[graphpi_pick] / oracle_t - 1) * 100:.0f}%", "", ""])
    emit(table, capsys, "fig9_schedules.tsv")

    once(benchmark, run, graphpi_pick)

    # Shape assertions: the eliminated schedules' *median* is worse than
    # the generated median, and GraphPi's pick is near the oracle.
    med = lambda d: sorted(d.values())[len(d) // 2]
    assert med(elim_times) > med(gen_times)
    assert gen_times[graphpi_pick] <= 4.0 * oracle_t
