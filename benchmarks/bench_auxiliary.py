"""Auxiliary-graph pruning ablation: the frontier engine with and without
scratch-CSR candidate pools.

GraphMini's observation, applied to our vectorised backend: at a loop
depth whose dependency columns repeat across the frontier (or nest into
the next depth's), the direct path re-gathers and re-intersects the same
hub adjacency rows for every sibling row.  ``FrontierEngine(aux=...)``
ablates the fix:

* ``aux=False`` — the pre-pruning engine (the "current vectorised
  path"): every depth windows and gathers full CSR rows;
* ``aux=True`` — pruning forced wherever structurally possible (group
  dedup + pool chaining, cost gate and frontier-size guard bypassed);
* ``aux="auto"`` — the shipped configuration: the DegreeStats cost
  model decides per depth (dense prefixes materialise, sparse prefixes
  keep the direct path).

The suite splits the catalog accordingly: *dense* patterns (cliques,
house, near-clique-7, prism-chord) have multi-dependency depths whose
pools chain or dedup, *sparse* ones (pentagon, rectangle) have
single-dependency middle depths where pruning never applies — there the
gate must stay out of the way (no regression beyond noise).

Every measured pattern asserts that all three engines return identical
counts (the correctness gate CI runs even in quick mode).  Outputs: an
aligned table, ``benchmarks/results/bench_auxiliary.tsv`` and
``BENCH_auxiliary.json`` with per-pattern seconds and the dense/sparse
geomean ratios the acceptance criteria read.
"""

from __future__ import annotations

from repro.core.api import PatternMatcher
from repro.core.backend import MatchContext, get_backend
from repro.pattern.catalog import get_pattern
from repro.utils.tables import Table, format_seconds, format_speedup

from _common import QUICK, bench_graph, emit, emit_json, geomean, time_call

DATASET = "wiki-vote"

#: multi-dependency depths throughout: pools chain (cliques) or dedup
#: (house's {1,2} depth) — the regime pruning exists for.
DENSE_PATTERNS = ["clique-4", "clique-5", "house", "near-clique-7", "prism-chord"]

#: single-dependency middle depths: no pool is ever worth building, the
#: cost gate must keep the direct path (regression guard).
SPARSE_PATTERNS = ["pentagon", "rectangle"]

#: the aux knob settings measured, ablation baseline first.
VARIANTS = [False, True, "auto"]
VARIANT_NAMES = {False: "direct", True: "forced", "auto": "auto"}

#: acceptance floors (full runs; the quick smoke graph is too small for
#: stable timing, so quick mode asserts counts only): the cost-gated
#: engine must beat the direct path by >= 1.3x geomean on the dense
#: patterns and never regress the sparse ones by more than 5%.
DENSE_GEOMEAN_FLOOR = 1.3
SPARSE_REGRESSION_FLOOR = 0.95

#: quick mode trims to one dense + one sparse pattern.
PATTERNS = (
    (["clique-4"], ["rectangle"])
    if QUICK
    else (DENSE_PATTERNS, SPARSE_PATTERNS)
)

#: best-of-N timing per (pattern, variant): the sub-second workloads
#: here are allocator/GC-noise sensitive, and the sparse regression
#: floor is a 5% band — min-of-reps is the stable estimator.
REPS = 1 if QUICK else 3


def _best_of(fn, *args) -> tuple[float, object]:
    best, result = time_call(fn, *args)
    for _ in range(REPS - 1):
        seconds, again = time_call(fn, *args)
        assert again == result
        best = min(best, seconds)
    return best, result


def run_auxiliary_bench() -> dict:
    graph = bench_graph(DATASET)
    dense, sparse = PATTERNS
    records: dict[str, dict] = {}

    for pname in dense + sparse:
        pattern = get_pattern(pname)
        matcher = PatternMatcher(pattern, max_restriction_sets=16)
        # One IEP-free plan per pattern; every variant executes the same
        # chosen configuration, so differences are purely the pruning.
        report = matcher.plan(graph, use_iep=False)
        ctx = MatchContext(graph=graph, plan=report.plan)
        row: dict[str, dict] = {}
        baseline = expected = None
        for variant in VARIANTS:
            backend = get_backend("vectorised", aux=variant)
            seconds, count = _best_of(backend.count, ctx)
            if baseline is None:
                baseline, expected = seconds, count
            else:
                # the correctness gate: aux-pruned counts must equal the
                # unpruned vectorised counts on every measured pattern.
                assert count == expected, (pname, variant, count, expected)
            row[VARIANT_NAMES[variant]] = {
                "seconds": seconds,
                "count": int(count),
                "speedup_vs_direct": baseline / seconds if seconds else float("inf"),
            }
        records[pname] = {
            "n_vertices": pattern.n_vertices,
            "dense": pname in dense,
            "variants": row,
        }
    return {
        "graph": repr(graph),
        "dataset": DATASET,
        "quick": QUICK,
        "patterns": records,
    }


def _ratios(results: dict, dense: bool) -> list[float]:
    return [
        rec["variants"]["auto"]["speedup_vs_direct"]
        for rec in results["patterns"].values()
        if rec["dense"] is dense
    ]


def _render(results: dict, capsys=None) -> dict:
    suffix = ", quick" if QUICK else ""
    names = [VARIANT_NAMES[v] for v in VARIANTS]
    table = Table(
        ["pattern", "set", "count"]
        + [f"{n} (s)" for n in names]
        + [f"{n} x" for n in names[1:]],
        title=f"auxiliary-graph pruning ablation on {DATASET} proxy{suffix}",
    )
    for pname, rec in results["patterns"].items():
        row = rec["variants"]
        cells = [pname, "dense" if rec["dense"] else "sparse", row["direct"]["count"]]
        cells += [format_seconds(row[n]["seconds"]) for n in names]
        cells += [format_speedup(row[n]["speedup_vs_direct"]) for n in names[1:]]
        table.add_row(cells)
    dense_geo = geomean(_ratios(results, dense=True))
    sparse_geo = geomean(_ratios(results, dense=False))
    table.add_row(
        ["geomean (dense, auto)", "", ""] + [""] * len(names)
        + ["", format_speedup(dense_geo)]
    )
    results["geomean_auto_vs_direct_dense"] = dense_geo
    results["geomean_auto_vs_direct_sparse"] = sparse_geo
    results["sparse_worst_ratio"] = (
        min(_ratios(results, dense=False)) if _ratios(results, dense=False) else 0.0
    )
    emit(table, capsys, "bench_auxiliary.tsv")
    emit_json("BENCH_auxiliary.json", results)
    return results


def _assert_floors(results: dict) -> None:
    """The perf acceptance criteria — full runs only (the quick smoke
    graph is seconds-scale noise; counts are asserted in every mode)."""
    if QUICK:
        return
    dense_geo = results["geomean_auto_vs_direct_dense"]
    assert dense_geo >= DENSE_GEOMEAN_FLOOR, (
        f"aux-pruned geomean {dense_geo:.2f}x on dense patterns is below "
        f"the {DENSE_GEOMEAN_FLOOR}x floor"
    )
    worst = results["sparse_worst_ratio"]
    assert worst >= SPARSE_REGRESSION_FLOOR, (
        f"cost gate let a sparse pattern regress to {worst:.2f}x "
        f"(floor {SPARSE_REGRESSION_FLOOR}x)"
    )


def test_auxiliary_ablation(benchmark, capsys):
    from _common import once

    results = once(benchmark, run_auxiliary_bench)
    _render(results, capsys)
    _assert_floors(results)


if __name__ == "__main__":
    results = _render(run_auxiliary_bench())
    _assert_floors(results)
    print(
        f"dense geomean (auto vs direct): "
        f"{results['geomean_auto_vs_direct_dense']:.2f}x; "
        f"sparse worst ratio: {results['sparse_worst_ratio']:.2f}x"
    )
