"""Ablation: restriction-bound placement × vertex-id ordering.

GraphPi's restrictions prune by *id comparisons*.  Two knobs decide how
much merge work they save on dense sub-patterns (cliques):

* **where the bound is applied** — the stock engine mirrors the paper's
  generated code: intersect full neighbourhoods (hoisting the result
  across inner loops, like ``tmpAB``), then slice.  ``PreSliceEngine``
  pushes the bound into the intersection inputs, valid by
  ``bound(A ∩ B) == bound(A) ∩ bound(B)``.
* **how ids correlate with degree** — with the ascending chain
  ``id(v0) < id(v1) < …``, pre-sliced inputs are exactly each vertex's
  "later-ordered neighbours"; a degeneracy (smallest-last) order bounds
  them by the graph's degeneracy instead of its max degree — the
  classic clique-listing orientation.

Two findings this bench documents (both discovered while building it):

1. With slice-AFTER-intersect, merge work is *exactly* label-invariant:
   for a full chain each unordered clique survives once under any id
   assignment, and the merge inputs are always full neighbourhoods —
   the measured element counts are bit-identical across orders.
2. In pure Python, wall time tracks DFS-tree size (also label-invariant
   for chains), so the merge savings barely move the clock here; the
   merged-elements column is the machine-independent cost a compiled
   (memory-bandwidth-bound) engine pays.  We therefore report and
   assert on both: wall time ~flat, merge work cut by an order of
   magnitude when both knobs are set together.
"""

import pytest

from repro.core.config import Configuration
from repro.core.engine import Engine
from repro.core.engine_variants import PreSliceEngine
from repro.graph.generators import rmat
from repro.graph.intersection import bounded_slice
from repro.graph.orientation import degeneracy_order, relabel_by_degeneracy
from repro.pattern.catalog import clique
from repro.utils.tables import Table, format_seconds

from _common import emit, once, time_call


class _CountingStock(Engine):
    """Stock engine instrumented with merged-element counting.

    Counts only cache-*miss* merges — the hoisted ``tmpAB`` reuse is part
    of the stock design and must be credited to it.
    """

    def __init__(self, graph, plan):
        super().__init__(graph, plan)
        self.merged = 0

    def _raw_candidates(self, depth, assigned):
        deps = self.plan.deps[depth]
        if len(deps) >= 2:
            key = tuple(assigned[j] for j in deps)
            slot = self._raw_cache[depth]
            if not (slot is not None and slot[0] == key):
                self.merged += sum(len(self.graph.neighbors(v)) for v in key)
        return super()._raw_candidates(depth, assigned)


class _CountingPre(PreSliceEngine):
    """Pre-slice engine instrumented with merged-element counting."""

    def __init__(self, graph, plan):
        super().__init__(graph, plan)
        self.merged = 0

    def candidates(self, depth, assigned):
        plan = self.plan
        deps = plan.deps[depth]
        if len(deps) >= 2:
            lo = max((assigned[j] for j in plan.lower[depth]), default=None)
            hi = min((assigned[j] for j in plan.upper[depth]), default=None)
            arrays = [self.graph.neighbors(assigned[j]) for j in deps]
            if lo is not None or hi is not None:
                arrays = [bounded_slice(a, lo, hi) for a in arrays]
            self.merged += sum(len(a) for a in arrays)
        return super().candidates(depth, assigned)


def _ascending_chain(k: int) -> frozenset:
    """id(v0) < id(v1) < … < id(vk-1) over schedule positions."""
    return frozenset((i + 1, i) for i in range(k - 1))


@pytest.mark.benchmark(group="ablation-orientation")
def test_ablation_bound_placement_and_id_order(benchmark, capsys):
    # hub-heavy follower-network-style graph: max degree >> degeneracy
    graph = rmat(10, edge_factor=12, seed=3, name="rmat-10")
    _, degeneracy = degeneracy_order(graph)
    ordered, _ = relabel_by_degeneracy(graph)

    k = 4
    pattern = clique(k)
    plan = Configuration(pattern, tuple(range(k)), _ascending_chain(k)).compile()

    table = Table(
        ["engine", "ids", "time", "merged elements", "merge work vs stock"],
        title=(
            "Ablation: bound placement x id order, 4-clique chain "
            f"(rmat-10: max_deg={graph.max_degree}, degeneracy={degeneracy})"
        ),
    )
    results = {}
    counts = set()
    for engine_label, ids_label, g in [
        ("slice-after (stock)", "identity", graph),
        ("slice-after (stock)", "degeneracy", ordered),
        ("slice-before", "identity", graph),
        ("slice-before", "degeneracy", ordered),
    ]:
        cls = _CountingStock if engine_label.startswith("slice-after") else _CountingPre
        engine = cls(g, plan)
        t, count = time_call(engine.count)
        counts.add(count)
        results[(engine_label, ids_label)] = (t, engine.merged)
    assert len(counts) == 1, "placement/relabelling must not change the count"

    base_merged = results[("slice-after (stock)", "identity")][1]
    for (engine_label, ids_label), (t, merged) in results.items():
        table.add_row(
            [
                engine_label,
                ids_label,
                format_seconds(t),
                f"{merged:,}",
                f"{base_merged / merged:.1f}x less" if merged else "-",
            ]
        )
    emit(table, capsys, "ablation_orientation.tsv")

    # finding 1: stock merge work is exactly label-invariant
    assert (
        results[("slice-after (stock)", "identity")][1]
        == results[("slice-after (stock)", "degeneracy")][1]
    )
    # finding 2: both knobs together cut merge work by >= 4x; the id
    # order alone (without pre-slicing) buys nothing
    pre_id = results[("slice-before", "identity")][1]
    pre_degen = results[("slice-before", "degeneracy")][1]
    assert pre_degen < pre_id < base_merged
    assert base_merged / pre_degen > 4.0

    once(benchmark, PreSliceEngine(ordered, plan).count)
