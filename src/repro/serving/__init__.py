"""Matching-as-a-service: the async serving runtime over MatchSession.

``MatchService`` owns graph replicas, the shared plan caches and a
versioned result memo, and admits concurrent count/enumerate jobs
through a bounded priority queue with explicit backpressure
(``ServiceOverloaded``), per-job timeouts, cancellation and
status/result callbacks.  ``await handle`` is the asyncio front door.
See ``docs/architecture.md`` ("Serving runtime") for the guide and
``benchmarks/bench_serving.py`` for the measured p50/p99/QPS claims.
"""

from repro.serving.jobs import (
    CANCELLED,
    DONE,
    FAILED,
    QUEUED,
    RUNNING,
    STATES,
    JobCancelled,
    JobHandle,
    JobTimeout,
    MatchRequest,
    ServiceOverloaded,
)
from repro.serving.memo import MemoStats, ResultMemo
from repro.serving.replicas import Replica, ReplicaRegistry
from repro.serving.service import MatchService, ServiceStats, default_executor
from repro.serving.trace import (
    ReplayOutcome,
    TraceOp,
    latency_percentiles,
    parse_trace_line,
    read_trace_file,
    replay_trace,
    synthetic_trace,
)

__all__ = [
    "CANCELLED",
    "DONE",
    "FAILED",
    "QUEUED",
    "RUNNING",
    "STATES",
    "JobCancelled",
    "JobHandle",
    "JobTimeout",
    "MatchRequest",
    "ServiceOverloaded",
    "MemoStats",
    "ResultMemo",
    "Replica",
    "ReplicaRegistry",
    "MatchService",
    "ServiceStats",
    "default_executor",
    "ReplayOutcome",
    "TraceOp",
    "latency_percentiles",
    "parse_trace_line",
    "read_trace_file",
    "replay_trace",
    "synthetic_trace",
]
