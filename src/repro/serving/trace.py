"""Serving traces: a replayable mixed count/enumerate/churn workload.

The text format (one operation per line, ``#`` comments and blank lines
skipped) is what ``python -m repro serve --trace FILE`` replays::

    count house                 # count a named pattern
    count triangle prio=5       # higher priority runs earlier
    count house timeout=2.5     # per-job deadline in seconds
    enumerate triangle 10       # first 10 embeddings
    churn + 3 17                # admin path: insert edge (3,17)
    churn - 3 17                # admin path: delete edge (3,17)

Counts and enumerations become service jobs; ``churn`` lines route
through the replica's stream session (and invalidate the memo) before
any later line is submitted — the trace is replayed in order, so a
trace models a client population whose query mix interleaves with graph
mutations.

:func:`synthetic_trace` generates the repeated-query mix the benchmark
and the CLI's ``--synthetic`` mode use: a Zipf-ish draw over a small
pattern pool (real query traffic is heavy-tailed — a few hot queries
dominate), with optional periodic churn.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable

#: operations a trace line can carry.
TRACE_OPS = ("count", "enumerate", "churn")


@dataclass(frozen=True)
class TraceOp:
    """One parsed trace line."""

    op: str
    pattern: str | None = None
    limit: int | None = None
    priority: int = 0
    timeout: float | None = None
    #: churn payload: ("+"|"-", u, v)
    update: tuple[str, int, int] | None = None

    def __post_init__(self):
        if self.op not in TRACE_OPS:
            raise ValueError(f"unknown trace op {self.op!r}: expected {TRACE_OPS}")

    def describe(self) -> str:
        if self.op == "churn":
            sign, u, v = self.update
            return f"churn {sign} {u} {v}"
        extra = f" limit={self.limit}" if self.limit is not None else ""
        prio = f" prio={self.priority}" if self.priority else ""
        return f"{self.op} {self.pattern}{extra}{prio}"


def _parse_options(parts: list[str], where: str) -> tuple[int, float | None]:
    """Trailing ``prio=N`` / ``timeout=S`` options, any order."""
    priority, timeout = 0, None
    for part in parts:
        key, sep, value = part.partition("=")
        if not sep or key not in ("prio", "timeout"):
            raise ValueError(
                f"{where}: unexpected token {part!r} "
                "(options are prio=N and timeout=S)"
            )
        try:
            if key == "prio":
                priority = int(value)
            else:
                timeout = float(value)
                if timeout <= 0:
                    raise ValueError
        except ValueError:
            raise ValueError(f"{where}: bad value in {part!r}") from None
    return priority, timeout


def parse_trace_line(line: str, *, where: str = "trace") -> TraceOp | None:
    """One line -> :class:`TraceOp` (None for blanks/comments)."""
    line = line.split("#", 1)[0].strip()
    if not line:
        return None
    parts = line.split()
    op = parts[0].lower()
    if op == "churn":
        if len(parts) != 4 or parts[1] not in ("+", "-"):
            raise ValueError(f"{where}: expected 'churn +|- U V', got {line!r}")
        try:
            u, v = int(parts[2]), int(parts[3])
        except ValueError:
            raise ValueError(f"{where}: bad vertex ids in {line!r}") from None
        return TraceOp("churn", update=(parts[1], u, v))
    if op == "count":
        if len(parts) < 2:
            raise ValueError(f"{where}: expected 'count PATTERN ...', got {line!r}")
        priority, timeout = _parse_options(parts[2:], where)
        return TraceOp("count", pattern=parts[1], priority=priority,
                       timeout=timeout)
    if op == "enumerate":
        if len(parts) < 3:
            raise ValueError(
                f"{where}: expected 'enumerate PATTERN LIMIT ...', got {line!r}"
            )
        try:
            limit = int(parts[2])
        except ValueError:
            raise ValueError(f"{where}: bad limit in {line!r}") from None
        priority, timeout = _parse_options(parts[3:], where)
        return TraceOp("enumerate", pattern=parts[1], limit=limit,
                       priority=priority, timeout=timeout)
    raise ValueError(f"{where}: unknown op {op!r}: expected one of {TRACE_OPS}")


def read_trace_file(path: str | Path) -> list[TraceOp]:
    """Parse a whole trace file (errors carry file:line locations)."""
    ops: list[TraceOp] = []
    for lineno, raw in enumerate(Path(path).read_text().splitlines(), start=1):
        parsed = parse_trace_line(raw, where=f"{path}:{lineno}")
        if parsed is not None:
            ops.append(parsed)
    return ops


def synthetic_trace(
    patterns: list[str],
    n_ops: int,
    *,
    enumerate_ratio: float = 0.1,
    enumerate_limit: int = 20,
    churn_every: int = 0,
    n_vertices: int = 0,
    avoid_edges: "set[tuple[int, int]] | None" = None,
    seed: int = 2020,
) -> list[TraceOp]:
    """A heavy-tailed repeated-query workload over a pattern pool.

    Patterns are drawn with Zipf weights (1, 1/2, 1/3, ... in list
    order), so the first pattern dominates — the regime where the
    result memo earns its keep.  ``churn_every > 0`` inserts an edge
    toggle every that-many operations (needs ``n_vertices`` to draw
    endpoints from); each toggle is an insert the first time and a
    delete the next, so the trace never references a missing edge.
    ``avoid_edges`` (pairs with u < v) names the base graph's existing
    edges so an insert never duplicates one.
    """
    if not patterns:
        raise ValueError("synthetic_trace needs at least one pattern")
    if churn_every and n_vertices < 2:
        raise ValueError("churn needs n_vertices >= 2 to draw endpoints")
    rng = random.Random(seed)
    weights = [1.0 / (i + 1) for i in range(len(patterns))]
    avoid = avoid_edges or set()
    ops: list[TraceOp] = []
    toggled: set[tuple[int, int]] = set()
    for i in range(n_ops):
        if churn_every and i and i % churn_every == 0:
            while True:
                u = rng.randrange(n_vertices)
                v = rng.randrange(n_vertices)
                if u == v:
                    continue
                key = (min(u, v), max(u, v))
                if key not in avoid:
                    break
            sign = "-" if key in toggled else "+"
            toggled.symmetric_difference_update({key})
            ops.append(TraceOp("churn", update=(sign, key[0], key[1])))
            continue
        name = rng.choices(patterns, weights=weights)[0]
        if rng.random() < enumerate_ratio:
            ops.append(TraceOp("enumerate", pattern=name, limit=enumerate_limit))
        else:
            ops.append(TraceOp("count", pattern=name))
    return ops


def latency_percentiles(
    seconds: list[float], fractions: tuple[float, ...] = (0.5, 0.99)
) -> tuple[float, ...]:
    """Nearest-rank percentiles of a latency sample (0.0 when empty).

    Nearest-rank (not interpolated) so the p99 of a small sample is an
    actually-observed latency, never an optimistic blend.
    """
    if not seconds:
        return tuple(0.0 for _ in fractions)
    ordered = sorted(seconds)
    out = []
    for f in fractions:
        rank = min(len(ordered) - 1, max(0, int(round(f * len(ordered))) - 1))
        out.append(ordered[rank])
    return tuple(out)


@dataclass
class ReplayOutcome:
    """What one trace replay produced (handles still resolving)."""

    handles: list = field(default_factory=list)
    rejected: int = 0
    churn_applied: int = 0
    seconds_submit: float = 0.0

    def wait(self, timeout: float | None = None) -> None:
        for h in self.handles:
            h.wait(timeout)


def replay_trace(
    service: Any,
    ops: list[TraceOp],
    *,
    graph: str = "default",
    resolve_pattern: Callable[[str], Any] | None = None,
) -> ReplayOutcome:
    """Submit a trace, open-loop, in order; churn lines apply inline.

    Rejected submissions (:class:`~repro.serving.jobs.ServiceOverloaded`)
    are counted, not retried — the load-shedding client model the
    backpressure profile measures.  Returns as soon as the last line is
    submitted; call :meth:`ReplayOutcome.wait` to resolve every handle.
    """
    from repro.serving.jobs import MatchRequest, ServiceOverloaded

    if resolve_pattern is None:
        from repro.pattern.catalog import get_pattern as resolve_pattern
    outcome = ReplayOutcome()
    t0 = time.perf_counter()
    for op in ops:
        if op.op == "churn":
            sign, u, v = op.update
            service.apply_churn([(sign, u, v)], graph=graph)
            outcome.churn_applied += 1
            continue
        request = MatchRequest(
            op.op,
            resolve_pattern(op.pattern),
            graph=graph,
            limit=op.limit,
        )
        try:
            handle = service.submit(
                request, priority=op.priority, timeout=op.timeout
            )
        except ServiceOverloaded:
            outcome.rejected += 1
            continue
        outcome.handles.append(handle)
    outcome.seconds_submit = time.perf_counter() - t0
    return outcome
