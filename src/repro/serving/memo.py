"""The result memo: identical jobs between mutations are answered once.

The plan cache (:class:`~repro.core.session.MatchSession`) amortises
*preprocessing*; under serving traffic the execution itself is the
repeated cost — many clients asking "how many triangles?" against a
graph that has not changed since the last answer.  This module caches
the *results*, keyed by::

    (request fingerprint, graph name, DynamicGraph.version)

The version component makes invalidation free: a mutation bumps the
replica's version counter, so post-churn submissions compute a new key
and simply miss — no write ever has to chase down stale readers.  Stale
entries for dead versions age out of the LRU; :meth:`ResultMemo.
invalidate` additionally drops them eagerly (the service calls it on
``apply_churn`` so a hot-churn replica doesn't flush colder replicas'
entries by LRU pressure).

Single-flight: when a job for a key is already queued or running, a
duplicate submission does not enqueue a second execution — it attaches
to the in-flight primary as a *follower* and resolves with the same
outcome.  Under a thundering herd of identical queries exactly one
execution happens per (query, version).
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Any, NamedTuple

from repro.obs import metrics as obs_metrics
from repro.serving.jobs import Job


class MemoStats(NamedTuple):
    """Counters for the serving stats endpoint and the benchmark."""

    hits: int
    misses: int
    collapsed: int
    size: int
    evictions: int
    invalidated: int


class ResultMemo:
    """A bounded LRU of finished results plus the in-flight job index.

    Thread-safe; every method takes the internal lock.  The in-flight
    index is maintained by the service (register on admit, resolve on
    finalise) under the same lock that guards job transitions, so a
    duplicate can never slip between "primary finished" and "result
    recorded".
    """

    def __init__(self, capacity: int = 1024):
        if capacity < 1:
            raise ValueError("the result memo needs capacity >= 1")
        self.capacity = capacity
        self._lock = threading.Lock()
        self._results: OrderedDict[tuple, Any] = OrderedDict()
        self._inflight: dict[tuple, Job] = {}
        self._hits = 0
        self._misses = 0
        self._collapsed = 0
        self._evictions = 0
        self._invalidated = 0

    @staticmethod
    def key_for(request: Any, graph_name: str, version: int) -> tuple:
        """The memo key: request fingerprint + replica identity + version."""
        return request.memo_fingerprint() + (graph_name, int(version))

    # ------------------------------------------------------------------
    # lookup / record
    # ------------------------------------------------------------------
    def lookup(self, key: tuple) -> "tuple[bool, Any, Job | None]":
        """One atomic admission probe: ``(cached?, value, inflight job)``.

        Exactly one of the three outcomes holds: a cached value (memo
        hit), an in-flight primary to follow (single-flight collapse —
        counted here), or a miss (the caller will enqueue a primary).
        """
        with self._lock:
            if key in self._results:
                self._hits += 1
                obs_metrics.MEMO_HITS.inc()
                self._results.move_to_end(key)
                return True, self._results[key], None
            primary = self._inflight.get(key)
            if primary is not None:
                self._collapsed += 1
                obs_metrics.MEMO_COLLAPSED.inc()
                return False, None, primary
            self._misses += 1
            obs_metrics.MEMO_MISSES.inc()
            return False, None, None

    def register_inflight(self, key: tuple, job: Job) -> None:
        with self._lock:
            self._inflight[key] = job

    def resolve(self, key: tuple, job: Job, value: Any, *, store: bool) -> None:
        """Retire an in-flight primary, recording its value on success.

        ``store=False`` (failure/cancellation/timeout) just clears the
        in-flight slot so the next identical submission re-executes.
        """
        with self._lock:
            if self._inflight.get(key) is job:
                del self._inflight[key]
            if store:
                self._results[key] = value
                self._results.move_to_end(key)
                while len(self._results) > self.capacity:
                    self._results.popitem(last=False)
                    self._evictions += 1

    # ------------------------------------------------------------------
    # invalidation / introspection
    # ------------------------------------------------------------------
    def invalidate(self, graph_name: str, *, below_version: int | None = None) -> int:
        """Eagerly drop entries for a replica; returns how many died.

        ``below_version`` keeps entries at or above that version (the
        churn path passes the new version, preserving any result a
        racing worker already computed against it).
        """
        with self._lock:
            doomed = [
                key
                for key in self._results
                if key[-2] == graph_name
                and (below_version is None or key[-1] < below_version)
            ]
            for key in doomed:
                del self._results[key]
            self._invalidated += len(doomed)
            return len(doomed)

    def clear(self) -> None:
        with self._lock:
            self._results.clear()

    def stats(self) -> MemoStats:
        with self._lock:
            return MemoStats(
                hits=self._hits,
                misses=self._misses,
                collapsed=self._collapsed,
                size=len(self._results),
                evictions=self._evictions,
                invalidated=self._invalidated,
            )

    def __len__(self) -> int:
        with self._lock:
            return len(self._results)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        s = self.stats()
        return (
            f"ResultMemo(size={s.size}/{self.capacity}, hits={s.hits}, "
            f"misses={s.misses}, collapsed={s.collapsed})"
        )
