"""Jobs: the unit of work the serving runtime admits, tracks and resolves.

A caller describes *what* to run with a frozen :class:`MatchRequest`
(kind + query + target replica — deliberately excluding scheduling
concerns like priority or timeout, which belong to ``submit()``), the
service wraps it in an internal :class:`Job` carrying all mutable
lifecycle state, and hands back a :class:`JobHandle` — the only object
callers touch afterwards.

Lifecycle (the state machine the queue tests pin)::

    QUEUED ──────▶ RUNNING ──────▶ DONE
       │              │  └───────▶ FAILED   (error or timeout)
       └──────────────┴──────────▶ CANCELLED

Transitions are monotone: a job reaches exactly one of the three
terminal states, and every transition fires the job's ``on_status``
callback (``on_result`` additionally fires with the value on ``DONE``)
— the callback-driven coordinator style of the openreview-matcher
``Matcher``, generalised to a pool of concurrent jobs.

Cancellation and timeouts are *cooperative*: Python threads cannot be
killed, so cancelling a RUNNING job (or a deadline firing mid-run)
finalises the job immediately — the handle resolves, followers are
notified — while the worker's in-flight computation is disowned; its
eventual return value is discarded.  The job's :attr:`Job.cancel_event`
is set so cooperative executors (the streaming-aware default checks it
between root chunks is future work; the test fakes wait on it) can stop
early instead of computing a result nobody will read.
"""

from __future__ import annotations

import asyncio
import threading
from dataclasses import dataclass
from typing import Any, Callable

from repro.core.query import MatchQuery, as_query

#: job lifecycle states (strings, matching the repo's mode/semantics style).
QUEUED = "queued"
RUNNING = "running"
DONE = "done"
FAILED = "failed"
CANCELLED = "cancelled"

STATES = (QUEUED, RUNNING, DONE, FAILED, CANCELLED)
TERMINAL_STATES = (DONE, FAILED, CANCELLED)

#: request kinds a job can carry.
KINDS = ("count", "enumerate")


class ServiceOverloaded(RuntimeError):
    """The queue is at its high-water mark: the job was rejected.

    Backpressure is explicit — the caller decides whether to retry,
    shed, or slow down; the service never buffers unboundedly.
    """


class JobCancelled(RuntimeError):
    """Raised by ``result()`` when the job was cancelled."""


class JobTimeout(RuntimeError):
    """Raised by ``result()`` when the job's deadline fired first."""


@dataclass(frozen=True)
class MatchRequest:
    """What to run: a query against a named replica.

    Parameters
    ----------
    kind:
        ``"count"`` (result: the embedding count as ``int``) or
        ``"enumerate"`` (result: a tuple of embedding tuples).
    query:
        A :class:`~repro.core.query.MatchQuery` or a bare pattern
        (coerced exactly like the session entry points).
    graph:
        Replica name in the service's registry (default ``"default"``).
    limit:
        Embedding cap for ``enumerate`` requests (``None`` = all);
        must be ``None`` for counts.

    Frozen and scheduling-free on purpose: two requests that are equal
    describe the same work, which is what makes the result memo and
    single-flight collapsing sound.
    """

    kind: str
    query: Any
    graph: str = "default"
    limit: int | None = None

    def __post_init__(self):
        if self.kind not in KINDS:
            raise ValueError(
                f"unknown request kind {self.kind!r}: expected one of {KINDS}"
            )
        if not isinstance(self.query, MatchQuery):
            object.__setattr__(self, "query", as_query(self.query))
        if self.kind == "count" and self.limit is not None:
            raise ValueError("limit only applies to enumerate requests")
        if self.limit is not None and self.limit < 0:
            raise ValueError("limit must be non-negative")

    def memo_fingerprint(self) -> tuple:
        """The request half of the memo key (see :mod:`repro.serving.memo`).

        ``query.fingerprint`` already canonicalises every plan-affecting
        field; ``kind`` and ``limit`` distinguish work the same plan
        performs differently.
        """
        return (self.kind, self.query.fingerprint, self.limit)

    def describe(self) -> str:
        lim = f" limit={self.limit}" if self.limit is not None else ""
        return f"{self.kind} {self.query.describe()} @{self.graph}{lim}"


class Job:
    """Internal lifecycle record: one admitted request and its fate.

    Owned by the service; all state transitions go through
    :meth:`transition` / :meth:`finalize` under the service's lock.
    Callers only ever see the :class:`JobHandle`.
    """

    __slots__ = (
        "id",
        "request",
        "priority",
        "seq",
        "timeout",
        "state",
        "value",
        "error",
        "graph",
        "version",
        "memo_key",
        "cancel_event",
        "timer",
        "enqueued",
        "_finished",
        "on_status",
        "on_result",
        "followers",
        "t_submit",
        "t_start",
        "t_done",
        "trace",
    )

    def __init__(
        self,
        job_id: int,
        request: MatchRequest,
        *,
        priority: int = 0,
        seq: int = 0,
        timeout: float | None = None,
        graph: Any = None,
        version: int = 0,
        memo_key: tuple | None = None,
        on_status: Callable[["JobHandle"], None] | None = None,
        on_result: Callable[[Any], None] | None = None,
    ):
        self.id = job_id
        self.request = request
        self.priority = priority
        self.seq = seq
        self.timeout = timeout
        self.state = QUEUED
        self.value: Any = None
        self.error: BaseException | None = None
        #: the frozen data graph captured at submit time — executing on
        #: it (not on whatever the replica holds later) is what makes
        #: the memo key's version honest under concurrent churn.
        self.graph = graph
        self.version = version
        self.memo_key = memo_key
        self.cancel_event = threading.Event()
        #: deadline timer (service-managed), cancelled on finalisation.
        self.timer: threading.Timer | None = None
        #: True while the job occupies a queue slot (followers and
        #: memo hits never do — they must not release one on death).
        self.enqueued = False
        self._finished = threading.Event()
        self.on_status = on_status
        self.on_result = on_result
        #: handles of collapsed duplicate submissions (single-flight);
        #: resolved with this job's outcome on finalisation.
        self.followers: list[JobHandle] = []
        self.t_submit: float = 0.0
        self.t_start: float = 0.0
        self.t_done: float = 0.0
        #: the worker-side span tree (a :class:`repro.obs.trace.Trace`)
        #: when tracing was enabled while the job ran; None otherwise.
        self.trace: Any = None

    @property
    def finished(self) -> bool:
        return self.state in TERMINAL_STATES


class JobHandle:
    """The caller's view of a submitted job: state, result, cancellation.

    * ``result(timeout=None)`` blocks until the job finishes and returns
      the value (or raises the job's error / :class:`JobCancelled` /
      :class:`JobTimeout`).
    * The handle is *awaitable* — ``await handle`` inside a coroutine is
      the asyncio front door (the blocking wait is pushed to a thread,
      so the event loop stays responsive); ``aresult()`` is the explicit
      spelling.
    * ``cancel()`` requests cancellation; queued jobs die immediately,
      running jobs are finalised and their computation disowned.
    """

    __slots__ = ("_job", "_service")

    def __init__(self, job: Job, service: Any):
        self._job = job
        self._service = service

    # -- introspection --------------------------------------------------
    @property
    def id(self) -> int:
        return self._job.id

    @property
    def request(self) -> MatchRequest:
        return self._job.request

    @property
    def state(self) -> str:
        return self._job.state

    @property
    def priority(self) -> int:
        return self._job.priority

    @property
    def graph(self) -> Any:
        """The frozen data graph the job executes on (submit-time capture)."""
        return self._job.graph

    @property
    def version(self) -> int:
        """The replica's mutation version the job was keyed against."""
        return self._job.version

    def done(self) -> bool:
        return self._job.finished

    @property
    def latency(self) -> float:
        """Submit-to-terminal wall seconds (0.0 while unfinished)."""
        if not self._job.finished:
            return 0.0
        return self._job.t_done - self._job.t_submit

    @property
    def trace(self) -> Any:
        """The job's span tree (populated only when tracing was enabled
        while a worker ran this job; followers share the primary's)."""
        return self._job.trace

    @property
    def queue_seconds(self) -> float:
        """Time spent QUEUED before running (or before a queued death)."""
        if self._job.t_start:
            return self._job.t_start - self._job.t_submit
        if self._job.finished:
            return self._job.t_done - self._job.t_submit
        return 0.0

    # -- resolution -----------------------------------------------------
    def wait(self, timeout: float | None = None) -> bool:
        """Block until the job reaches a terminal state (True) or timeout."""
        return self._job._finished.wait(timeout)

    def result(self, timeout: float | None = None) -> Any:
        """The job's value; blocks, raises the job's failure if it lost."""
        if not self._job._finished.wait(timeout):
            raise TimeoutError(
                f"job {self._job.id} still {self._job.state} after {timeout}s"
            )
        job = self._job
        if job.state == DONE:
            return job.value
        if job.state == CANCELLED:
            raise JobCancelled(f"job {job.id} ({job.request.describe()}) cancelled")
        assert job.error is not None
        raise job.error

    async def aresult(self, timeout: float | None = None) -> Any:
        """Asyncio front door: ``await handle.aresult()`` / ``await handle``."""
        return await asyncio.to_thread(self.result, timeout)

    def __await__(self):
        return self.aresult().__await__()

    def cancel(self) -> bool:
        """Request cancellation; True iff the job ends CANCELLED."""
        return self._service._cancel(self._job)

    def exception(self) -> BaseException | None:
        """The failure (after completion), or None."""
        return self._job.error

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"JobHandle(#{self._job.id} {self._job.request.describe()} "
            f"[{self._job.state}])"
        )
