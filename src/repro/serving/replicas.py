"""Replica registry: the named graphs a service owns and mutates.

A :class:`Replica` binds one name to one data graph — immutable
(:class:`~repro.graph.csr.Graph`, labeled, directed) or mutable
(:class:`~repro.graph.dynamic.DynamicGraph`).  Two duties:

* **Freezing.**  Workers never execute on a mutable graph: ``freeze()``
  atomically captures ``(snapshot, version)`` under the replica lock,
  so a job runs on exactly the graph state its memo key names even if
  churn lands mid-flight.  ``DynamicGraph.snapshot()`` is memoised per
  version, so a quiescent replica hands every worker the *same* frozen
  object — and the identity-keyed session registry keeps hitting one
  shared plan cache.
* **Churn.**  ``apply_churn()`` is the single admin write path.  It
  routes through a :class:`~repro.streaming.session.StreamSession`
  rather than mutating the graph directly, so any streamed watches
  (``watch()``) are maintained incrementally across the mutation —
  post-churn, their counts are already warm, no recount needed.  The
  service layers memo invalidation on top.

Static replicas are deliberately write-free: ``apply_churn`` raises.
Mutability is declared by handing the registry a ``DynamicGraph``.
"""

from __future__ import annotations

import threading
from typing import Any, Iterable

from repro.graph.csr import Graph
from repro.graph.digraph import DiGraph
from repro.graph.dynamic import DynamicGraph
from repro.graph.labeled import LabeledGraph
from repro.streaming.session import StreamReport, StreamSession, WatchHandle

#: graph types a replica can hold.
_STATIC_TYPES = (Graph, LabeledGraph, DiGraph)


class Replica:
    """One named graph, its lock, and (when dynamic) its stream session."""

    def __init__(self, name: str, graph: Any):
        if not isinstance(graph, _STATIC_TYPES + (DynamicGraph,)):
            raise TypeError(
                "a replica holds a Graph, LabeledGraph, DiGraph or "
                f"DynamicGraph, got {type(graph).__name__}"
            )
        self.name = name
        self.graph = graph
        self.dynamic = isinstance(graph, DynamicGraph)
        self._lock = threading.RLock()
        #: created on first watch()/apply_churn(); owns the DynamicGraph.
        self._stream: StreamSession | None = None

    # ------------------------------------------------------------------
    @property
    def version(self) -> int:
        """The mutation counter memo keys embed (0 forever when static)."""
        return self.graph.version if self.dynamic else 0

    def freeze(self) -> tuple[Any, int]:
        """Atomic ``(executable graph, version)`` capture.

        The pair is what makes concurrent churn safe: the returned graph
        is immutable, and the version is the one it was frozen at — a
        memo entry recorded under this version can never describe a
        different graph state.
        """
        if not self.dynamic:
            return self.graph, 0
        with self._lock:
            return self.graph.snapshot(), self.graph.version

    def _stream_session(self) -> StreamSession:
        if not self.dynamic:
            raise TypeError(
                f"replica {self.name!r} holds an immutable "
                f"{type(self.graph).__name__}; churn and watches need a "
                "DynamicGraph"
            )
        if self._stream is None:
            self._stream = StreamSession(self.graph)
        return self._stream

    # ------------------------------------------------------------------
    # the admin write path
    # ------------------------------------------------------------------
    def apply_churn(self, updates: Iterable[Any]) -> StreamReport:
        """Apply edge updates through the stream session (watches stay warm)."""
        with self._lock:
            return self._stream_session().apply(updates)

    def watch(self, query: Any, *, name: str | None = None) -> WatchHandle:
        """Maintain a query's count incrementally across future churn."""
        with self._lock:
            return self._stream_session().watch(query, name=name)

    def watch_counts(self) -> dict[str, int]:
        """Current maintained counts of every watch (empty when none)."""
        with self._lock:
            if self._stream is None:
                return {}
            return self._stream.counts()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        kind = "dynamic" if self.dynamic else "static"
        return f"Replica({self.name!r}, {kind}, {self.graph!r})"


class ReplicaRegistry:
    """Name → :class:`Replica`, thread-safe, the service's graph directory."""

    def __init__(self):
        self._lock = threading.Lock()
        self._replicas: dict[str, Replica] = {}

    def add(self, name: str, graph: Any) -> Replica:
        """Register a graph under ``name`` (duplicate names are an error)."""
        replica = Replica(name, graph)
        with self._lock:
            if name in self._replicas:
                raise ValueError(f"replica {name!r} already registered")
            self._replicas[name] = replica
        return replica

    def get(self, name: str) -> Replica:
        with self._lock:
            try:
                return self._replicas[name]
            except KeyError:
                known = sorted(self._replicas) or ["<none>"]
                raise KeyError(
                    f"no replica named {name!r} (registered: {', '.join(known)})"
                ) from None

    def remove(self, name: str) -> None:
        with self._lock:
            if name not in self._replicas:
                raise KeyError(f"no replica named {name!r}")
            del self._replicas[name]

    def names(self) -> tuple[str, ...]:
        with self._lock:
            return tuple(sorted(self._replicas))

    def snapshot(self) -> tuple[tuple[str, Replica], ...]:
        """Atomic ``(name, replica)`` capture, sorted by name.

        The read path for anything that iterates replicas
        (``MatchService.stats()``): ``names()`` followed by per-name
        ``get()`` calls races concurrent ``remove()`` — a name listed in
        the first call can be gone by the second, turning a stats poll
        into a spurious ``KeyError``.
        """
        with self._lock:
            return tuple(sorted(self._replicas.items()))

    def __contains__(self, name: str) -> bool:
        with self._lock:
            return name in self._replicas

    def __len__(self) -> int:
        with self._lock:
            return len(self._replicas)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ReplicaRegistry({', '.join(self.names()) or 'empty'})"
