"""MatchService: the long-lived serving runtime over MatchSession.

The production story the ROADMAP asks for: one service process owns the
graph replicas, the shared plan caches and a result memo, and admits
concurrent queries through a bounded priority queue::

                 submit()                      worker pool
    clients ──▶ [memo? single-flight?] ──▶ ╔═══════════════╗
                 │ admission control        ║ freeze→count  ║──▶ DONE
                 ▼ (ServiceOverloaded)      ╚═══════════════╝
               priority heap  ── timeout/cancel ──▶ FAILED/CANCELLED

Design decisions, in the order they bite:

* **Admission before queueing.**  ``submit()`` resolves the replica,
  freezes ``(graph, version)`` and probes the memo *before* taking a
  queue slot — a memo hit or a single-flight collapse costs no
  capacity.  Only genuinely new work competes for the ``queue_limit``
  slots; at the high-water mark the submit raises
  :class:`~repro.serving.jobs.ServiceOverloaded` instead of buffering
  without bound.
* **Priorities with FIFO fairness.**  The heap orders by
  ``(-priority, sequence)``: higher priority first, submission order
  within a priority — so a stream of urgent jobs cannot reorder among
  themselves and starvation within a class is impossible.
* **Workers are threads.**  Matching is numpy-heavy (kernels release
  the GIL in bulk operations) and the frozen graphs are immutable, so
  threads share every cache for free; the thread-safe session layer
  (PR 7) is what makes that sound.  The asyncio front door is the
  handle itself: ``await handle`` parks the blocking wait on a thread.
* **Cooperative cancellation.**  A cancelled or timed-out RUNNING job
  is finalised immediately (callers unblock, followers resolve) and the
  worker's computation is disowned — its result is discarded on
  arrival.  ``job.cancel_event`` is set for executors that can stop
  early.
* **Callbacks under the service lock.**  ``on_status``/``on_result``
  fire in transition order, exactly once per transition (the
  openreview-matcher coordinator contract).  They must be quick and
  non-blocking; the lock is reentrant, so a callback may call back into
  the service (e.g. cancel a sibling job).
"""

from __future__ import annotations

import heapq
import threading
import time
from dataclasses import dataclass
from typing import Any, Callable, Iterable

from repro.core.session import CacheInfo, get_session
from repro.obs import metrics as obs_metrics
from repro.obs.trace import collect, record_span
from repro.serving.jobs import (
    CANCELLED,
    DONE,
    FAILED,
    QUEUED,
    RUNNING,
    Job,
    JobHandle,
    JobTimeout,
    MatchRequest,
    ServiceOverloaded,
)
from repro.serving.memo import MemoStats, ResultMemo
from repro.serving.replicas import Replica, ReplicaRegistry
from repro.streaming.session import StreamReport


def default_executor(graph: Any, request: MatchRequest,
                     cancel_event: threading.Event) -> Any:
    """Run a request on a frozen graph through the ordinary session layer.

    ``cancel_event`` is accepted for interface parity (test fakes gate
    on it); the real engines run to completion — disowning, not
    interruption, is what bounds a caller's wait.
    """
    session = get_session(graph)
    if request.kind == "count":
        return int(session.count(request.query))
    return tuple(session.enumerate(request.query, limit=request.limit))


@dataclass(frozen=True)
class ServiceStats:
    """One consistent snapshot of the service's counters.

    ``plan_caches`` surfaces every replica session's
    :class:`~repro.core.session.CacheInfo` — the per-session hit/miss
    counters the serving stats endpoint is the window onto.
    """

    n_workers: int
    queue_depth: int
    running: int
    submitted: int
    completed: int
    failed: int
    cancelled: int
    timed_out: int
    rejected: int
    churn_batches: int
    memo: MemoStats
    plan_caches: dict[str, CacheInfo]

    @property
    def memo_hit_ratio(self) -> float:
        probes = self.memo.hits + self.memo.misses
        return self.memo.hits / probes if probes else 0.0

    def describe(self) -> str:
        return (
            f"workers={self.n_workers} queue={self.queue_depth} "
            f"running={self.running} | submitted={self.submitted} "
            f"done={self.completed} failed={self.failed} "
            f"cancelled={self.cancelled} timed_out={self.timed_out} "
            f"rejected={self.rejected} | memo hits={self.memo.hits} "
            f"misses={self.memo.misses} collapsed={self.memo.collapsed} "
            f"(ratio {self.memo_hit_ratio:.2f})"
        )


class MatchService:
    """A worker pool serving match jobs against registered replicas.

    Parameters
    ----------
    registry:
        A :class:`~repro.serving.replicas.ReplicaRegistry` (a fresh one
        is created when omitted; ``add_graph`` registers into it).
    n_workers:
        Worker thread count.
    queue_limit:
        High-water mark: the maximum number of *queued* jobs (running
        jobs hold no slot).  At the mark, ``submit`` raises
        :class:`ServiceOverloaded`.
    memo_capacity:
        Result-memo LRU size; ``memoise=False`` disables result reuse
        service-wide (per-submit override available).
    executor:
        ``(frozen graph, request, cancel_event) -> value`` — the work
        function.  Defaults to :func:`default_executor`; tests inject
        event-gated fakes so queue semantics are exercised without
        sleeping.

    >>> service = MatchService(n_workers=4)
    >>> service.add_graph("wiki", load_dataset("wiki-vote", scale=0.1))
    >>> handle = service.count(get_pattern("triangle"), graph="wiki")
    >>> handle.result()
    """

    def __init__(
        self,
        registry: ReplicaRegistry | None = None,
        *,
        n_workers: int = 2,
        queue_limit: int = 64,
        memo_capacity: int = 1024,
        memoise: bool = True,
        executor: Callable[[Any, MatchRequest, threading.Event], Any] | None = None,
        name: str = "match-service",
    ):
        if n_workers < 1:
            raise ValueError("the service needs at least one worker")
        if queue_limit < 1:
            raise ValueError("queue_limit must be >= 1")
        self.registry = registry if registry is not None else ReplicaRegistry()
        self.name = name
        self.memoise = memoise
        self._executor = executor if executor is not None else default_executor
        self._memo = ResultMemo(memo_capacity)
        self._lock = threading.RLock()
        self._not_empty = threading.Condition(self._lock)
        self._heap: list[tuple[int, int, Job]] = []
        self._queue_limit = queue_limit
        self._queued = 0  # live queued jobs (dead heap entries excluded)
        self._running = 0
        self._seq = 0
        self._next_id = 1
        self._closed = False
        self._submitted = 0
        self._completed = 0
        self._failed = 0
        self._cancelled = 0
        self._timed_out = 0
        self._rejected = 0
        self._churn_batches = 0
        self._workers = [
            threading.Thread(
                target=self._worker_loop, name=f"{name}-worker-{i}", daemon=True
            )
            for i in range(n_workers)
        ]
        for t in self._workers:
            t.start()

    # ------------------------------------------------------------------
    # replica administration
    # ------------------------------------------------------------------
    def add_graph(self, name: str, graph: Any) -> Replica:
        """Register a graph (static or dynamic) as a named replica."""
        return self.registry.add(name, graph)

    def watch(self, query: Any, *, graph: str = "default",
              name: str | None = None):
        """Stream-maintain a query's count on a dynamic replica."""
        return self.registry.get(graph).watch(query, name=name)

    def apply_churn(self, updates: Iterable[Any], *,
                    graph: str = "default") -> StreamReport:
        """The admin write path: mutate a dynamic replica.

        Routes through the replica's :class:`StreamSession` (streamed
        watch counts stay warm across the mutation), then eagerly drops
        the now-stale memo entries — version keys already guarantee no
        stale *read*; the invalidation just frees the space.
        """
        replica = self.registry.get(graph)
        report = replica.apply_churn(updates)
        self._memo.invalidate(graph, below_version=replica.version)
        with self._lock:
            self._churn_batches += 1
        return report

    # ------------------------------------------------------------------
    # submission
    # ------------------------------------------------------------------
    def count(self, query: Any, *, graph: str = "default", **submit_kw) -> JobHandle:
        """Submit a count job (convenience over :meth:`submit`)."""
        return self.submit(MatchRequest("count", query, graph=graph), **submit_kw)

    def enumerate(self, query: Any, *, graph: str = "default",
                  limit: int | None = None, **submit_kw) -> JobHandle:
        """Submit an enumerate job (result: tuple of embedding tuples)."""
        return self.submit(
            MatchRequest("enumerate", query, graph=graph, limit=limit), **submit_kw
        )

    def submit(
        self,
        request: MatchRequest,
        *,
        priority: int = 0,
        timeout: float | None = None,
        on_status: Callable[[JobHandle], None] | None = None,
        on_result: Callable[[Any], None] | None = None,
        memoise: bool | None = None,
    ) -> JobHandle:
        """Admit a request; returns the handle tracking its job.

        ``priority``: larger runs earlier (FIFO within equal priority).
        ``timeout``: seconds from submission to a deadline that fails
        the job wherever it is (queued or mid-run).  ``memoise=None``
        inherits the service default.

        Raises :class:`ServiceOverloaded` when the job would need a
        queue slot and none is free — memo hits and single-flight
        followers are admitted regardless, they cost nothing to serve.
        """
        if not isinstance(request, MatchRequest):
            raise TypeError(
                f"submit takes a MatchRequest, got {type(request).__name__} "
                "(use service.count()/service.enumerate() for bare patterns)"
            )
        use_memo = self.memoise if memoise is None else memoise
        replica = self.registry.get(request.graph)
        graph, version = replica.freeze()
        key = ResultMemo.key_for(request, request.graph, version)
        with self._lock:
            if self._closed:
                raise RuntimeError(f"{self.name} is closed")
            job = Job(
                self._next_id,
                request,
                priority=priority,
                seq=self._seq,
                timeout=timeout,
                graph=graph,
                version=version,
                memo_key=key if use_memo else None,
                on_status=on_status,
                on_result=on_result,
            )
            self._next_id += 1
            self._seq += 1
            job.t_submit = time.perf_counter()
            handle = JobHandle(job, self)
            if use_memo:
                cached, value, primary = self._memo.lookup(key)
                if cached:
                    # served entirely from the memo: no slot, no worker.
                    self._submitted += 1
                    job.t_start = job.t_submit
                    self._finalize(job, DONE, value=value)
                    return handle
                if primary is not None:
                    # single-flight: ride the in-flight primary.
                    self._submitted += 1
                    self._fire_status(job, handle)
                    primary.followers.append(handle)
                    self._arm_timer(job)
                    return handle
            if self._queued >= self._queue_limit:
                self._rejected += 1
                raise ServiceOverloaded(
                    f"{self.name} queue at high-water mark "
                    f"({self._queued}/{self._queue_limit} queued); "
                    f"rejecting {request.describe()}"
                )
            self._submitted += 1
            job.enqueued = True
            self._queued += 1
            obs_metrics.SERVICE_QUEUE_DEPTH.inc()
            heapq.heappush(self._heap, (-priority, job.seq, job))
            if use_memo:
                self._memo.register_inflight(key, job)
            self._fire_status(job, handle)
            self._arm_timer(job)
            self._not_empty.notify()
            return handle

    # ------------------------------------------------------------------
    # lifecycle internals (all called under self._lock unless noted)
    # ------------------------------------------------------------------
    def _fire_status(self, job: Job, handle: JobHandle | None = None) -> None:
        if job.on_status is not None:
            job.on_status(handle if handle is not None else JobHandle(job, self))

    def _arm_timer(self, job: Job) -> None:
        if job.timeout is not None:
            job.timer = threading.Timer(job.timeout, self._expire, args=(job,))
            job.timer.daemon = True
            job.timer.start()

    def _expire(self, job: Job) -> None:
        """Deadline fired (timer thread): fail the job wherever it is."""
        with self._lock:
            if job.finished:
                return
            if job.enqueued and job.state == QUEUED:
                self._queued -= 1
                job.enqueued = False
                obs_metrics.SERVICE_QUEUE_DEPTH.dec()
            self._timed_out += 1
            job.cancel_event.set()
            self._finalize(
                job,
                FAILED,
                error=JobTimeout(
                    f"job {job.id} ({job.request.describe()}) exceeded its "
                    f"{job.timeout}s deadline while {job.state}"
                ),
            )

    def _cancel(self, job: Job) -> bool:
        """Handle.cancel() lands here; True iff the job ends CANCELLED."""
        with self._lock:
            if job.finished:
                return job.state == CANCELLED
            if job.enqueued and job.state == QUEUED:
                self._queued -= 1
                job.enqueued = False
                obs_metrics.SERVICE_QUEUE_DEPTH.dec()
            job.cancel_event.set()
            self._finalize(job, CANCELLED)
            return True

    def _finalize(self, job: Job, state: str, *, value: Any = None,
                  error: BaseException | None = None) -> None:
        """The single terminal transition: resolve job, memo, followers."""
        if job.finished:  # disowned worker result arriving late
            return
        was_running = job.state == RUNNING
        job.state = state
        job.value = value
        job.error = error
        job.t_done = time.perf_counter()
        if job.timer is not None:
            job.timer.cancel()
            job.timer = None
        if was_running:
            self._running -= 1
        if state == DONE:
            self._completed += 1
        elif state == CANCELLED:
            self._cancelled += 1
        else:
            self._failed += 1
        obs_metrics.SERVICE_JOBS.labels(state=state).inc()
        obs_metrics.SERVICE_JOB_SECONDS.observe(job.t_done - job.t_submit)
        if job.t_start:
            obs_metrics.SERVICE_QUEUE_WAIT_SECONDS.observe(
                job.t_start - job.t_submit
            )
        if job.memo_key is not None:
            self._memo.resolve(job.memo_key, job, value, store=state == DONE)
        job._finished.set()
        self._fire_status(job)
        if state == DONE and job.on_result is not None:
            job.on_result(value)
        # resolve single-flight followers with the same outcome; a
        # follower that already died on its own (cancel/timeout) is
        # skipped — its fate was sealed first.
        followers, job.followers = job.followers, []
        for fh in followers:
            fjob = fh._job
            if not fjob.finished:
                fjob.t_start = fjob.t_start or job.t_start or fjob.t_submit
                fjob.trace = fjob.trace or job.trace
                self._finalize(fjob, state, value=value, error=error)

    def _next_job(self) -> Job | None:
        """Pop the next live job (worker thread, under the lock)."""
        while True:
            while not self._heap and not self._closed:
                self._not_empty.wait()
            if not self._heap:
                return None  # closed and drained
            _, _, job = heapq.heappop(self._heap)
            if job.finished:
                continue  # cancelled/expired while queued; slot already freed
            job.enqueued = False
            self._queued -= 1
            obs_metrics.SERVICE_QUEUE_DEPTH.dec()
            job.state = RUNNING
            job.t_start = time.perf_counter()
            self._running += 1
            self._fire_status(job)
            return job

    def _worker_loop(self) -> None:
        while True:
            with self._not_empty:
                job = self._next_job()
            if job is None:
                return
            trace = None
            try:
                with collect(
                    "serve.job",
                    job=job.id,
                    kind=job.request.kind,
                    graph=job.request.graph,
                ) as trace:
                    # the time this job sat QUEUED, as a sibling interval
                    # of the execution work — the wait/run split in one
                    # trace (Perfetto shows it as a leading child slice).
                    record_span("serve.queue_wait", job.t_submit, job.t_start)
                    value = self._executor(
                        job.graph, job.request, job.cancel_event
                    )
            except Exception as exc:  # noqa: BLE001 — job-scoped failure wall
                with self._lock:
                    job.trace = trace
                    if not job.finished:
                        self._finalize(job, FAILED, error=exc)
            else:
                if trace is not None:
                    obs_metrics.TRACES_COLLECTED.inc()
                with self._lock:
                    job.trace = trace
                    if not job.finished:
                        self._finalize(job, DONE, value=value)
                    # else: cancelled/timed out mid-run — result disowned.

    # ------------------------------------------------------------------
    # introspection / shutdown
    # ------------------------------------------------------------------
    def stats(self) -> ServiceStats:
        """The service's counters plus every replica's plan-cache info."""
        plan_caches: dict[str, CacheInfo] = {}
        # One atomic capture of the replica set: iterating names() and
        # re-resolving each with get() races concurrent remove()/add —
        # a replica dropped mid-iteration turned a stats poll into a
        # KeyError.  freeze() then takes each replica's own lock, so a
        # racing apply_churn still yields a consistent (graph, version).
        for name, replica in self.registry.snapshot():
            graph, _ = replica.freeze()
            plan_caches[name] = get_session(graph).cache_info()
        with self._lock:
            return ServiceStats(
                n_workers=len(self._workers),
                queue_depth=self._queued,
                running=self._running,
                submitted=self._submitted,
                completed=self._completed,
                failed=self._failed,
                cancelled=self._cancelled,
                timed_out=self._timed_out,
                rejected=self._rejected,
                churn_batches=self._churn_batches,
                memo=self._memo.stats(),
                plan_caches=plan_caches,
            )

    def export_metrics(self) -> str:
        """Prometheus text exposition of the process-global registry.

        The serving half of the observability surface: everything the
        service and the layers under it emitted (job states, queue
        depth, latency histograms, memo and plan-cache counters) in the
        format a scraper — or ``repro metrics`` — expects.  The registry
        is process-global, so services sharing a process share one
        exposition.
        """
        return obs_metrics.REGISTRY.render_prometheus()

    @property
    def queue_limit(self) -> int:
        return self._queue_limit

    def drain(self, timeout: float | None = None) -> bool:
        """Block until the queue is empty and no job is running."""
        deadline = None if timeout is None else time.perf_counter() + timeout
        while True:
            with self._lock:
                if self._queued == 0 and self._running == 0:
                    return True
            if deadline is not None and time.perf_counter() >= deadline:
                return False
            time.sleep(0.001)

    def close(self, *, wait: bool = True) -> None:
        """Stop admitting work; workers drain the queue, then exit."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            self._not_empty.notify_all()
        if wait:
            for t in self._workers:
                t.join()

    def __enter__(self) -> "MatchService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close(wait=True)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        with self._lock:
            return (
                f"MatchService({self.name!r}, workers={len(self._workers)}, "
                f"queued={self._queued}, running={self._running}, "
                f"replicas={list(self.registry.names())})"
            )
