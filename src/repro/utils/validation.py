"""Argument-validation helpers with uniform error messages.

The public API surfaces of the graph and pattern packages validate their
inputs eagerly so that user errors fail at construction time with a clear
message rather than deep inside the matching engine.
"""

from __future__ import annotations

from typing import Any


def require(condition: bool, message: str) -> None:
    """Raise ``ValueError(message)`` unless ``condition`` holds."""
    if not condition:
        raise ValueError(message)


def check_positive(value: float, name: str, *, strict: bool = True) -> None:
    """Validate that a numeric argument is positive (or non-negative)."""
    if strict and value <= 0:
        raise ValueError(f"{name} must be > 0, got {value!r}")
    if not strict and value < 0:
        raise ValueError(f"{name} must be >= 0, got {value!r}")


def check_probability(value: float, name: str) -> None:
    """Validate that ``value`` lies in the closed interval [0, 1]."""
    if not 0.0 <= value <= 1.0:
        raise ValueError(f"{name} must be in [0, 1], got {value!r}")


def check_index(value: Any, size: int, name: str) -> int:
    """Validate an integer index into a container of length ``size``."""
    idx = int(value)
    if idx != value:
        raise TypeError(f"{name} must be an integer, got {value!r}")
    if not 0 <= idx < size:
        raise IndexError(f"{name}={idx} out of range [0, {size})")
    return idx
