"""Shared low-level utilities (timing, RNG seeding, validation, tables).

Nothing in this package knows about graphs or patterns; it exists so that
the substrate packages stay dependency-free of each other.
"""

from repro.utils.timing import Timer, timed
from repro.utils.rng import make_rng, spawn_rngs
from repro.utils.validation import (
    check_index,
    check_positive,
    check_probability,
    require,
)
from repro.utils.tables import Table, format_seconds, format_speedup

__all__ = [
    "Timer",
    "timed",
    "make_rng",
    "spawn_rngs",
    "check_index",
    "check_positive",
    "check_probability",
    "require",
    "Table",
    "format_seconds",
    "format_speedup",
]
