"""Plain-text table rendering for the benchmark harness.

Every benchmark prints the rows/series the paper reports; this module
renders them as aligned monospace tables (and round-trips them to/from
simple TSV for ``benchmarks/results/``).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Iterable, Sequence


def format_seconds(seconds: float) -> str:
    """Human-friendly duration: '123 ms', '4.56 s', '2.1 min'."""
    if seconds != seconds:  # NaN
        return "n/a"
    if seconds == float("inf"):
        return "timeout"
    if seconds < 1e-3:
        return f"{seconds * 1e6:.0f} us"
    if seconds < 1.0:
        return f"{seconds * 1e3:.1f} ms"
    if seconds < 120.0:
        return f"{seconds:.2f} s"
    return f"{seconds / 60.0:.1f} min"


def format_speedup(ratio: float) -> str:
    """Render a speedup ratio as the paper does ('105x', '1.4x')."""
    if ratio != ratio or ratio <= 0 or math.isinf(ratio):
        return "n/a"
    if ratio >= 100:
        return f"{ratio:.0f}x"
    if ratio >= 10:
        return f"{ratio:.1f}x"
    return f"{ratio:.2f}x"


@dataclass
class Table:
    """An append-only table with aligned text rendering.

    >>> t = Table(["graph", "time"], title="demo")
    >>> t.add_row(["wiki", "1.0 s"])
    >>> print(t.render())  # doctest: +ELLIPSIS
    demo...
    """

    columns: Sequence[str]
    title: str = ""
    rows: list[list[str]] = field(default_factory=list)

    def add_row(self, row: Iterable[Any]) -> None:
        cells = [str(c) for c in row]
        if len(cells) != len(self.columns):
            raise ValueError(
                f"row has {len(cells)} cells, table has {len(self.columns)} columns"
            )
        self.rows.append(cells)

    def render(self) -> str:
        widths = [len(c) for c in self.columns]
        for row in self.rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))

        def line(cells: Sequence[str]) -> str:
            return "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(cells)).rstrip()

        sep = "-" * (sum(widths) + 2 * (len(widths) - 1))
        out: list[str] = []
        if self.title:
            out.append(self.title)
            out.append("=" * len(self.title))
        out.append(line(list(self.columns)))
        out.append(sep)
        out.extend(line(row) for row in self.rows)
        return "\n".join(out)

    def to_tsv(self) -> str:
        head = "\t".join(self.columns)
        body = "\n".join("\t".join(row) for row in self.rows)
        return f"{head}\n{body}\n" if body else f"{head}\n"

    @classmethod
    def from_tsv(cls, text: str, title: str = "") -> "Table":
        lines = [ln for ln in text.splitlines() if ln.strip()]
        if not lines:
            raise ValueError("empty TSV text")
        table = cls(lines[0].split("\t"), title=title)
        for ln in lines[1:]:
            table.add_row(ln.split("\t"))
        return table
