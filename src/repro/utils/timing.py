"""Wall-clock timing helpers.

The benchmark harness wants (a) a context-manager timer whose result can
be read after the block, and (b) a decorator that records cumulative time
per function for quick profiling of the preprocessing pipeline
(Table III measures exactly that).
"""

from __future__ import annotations

import functools
import time
from dataclasses import dataclass, field


@dataclass
class Timer:
    """Context-manager stopwatch.

    >>> with Timer() as t:
    ...     _ = sum(range(1000))
    >>> t.elapsed >= 0.0
    True

    A single Timer may be re-entered; ``elapsed`` then accumulates, and
    ``laps`` records each enter/exit interval separately.
    """

    elapsed: float = 0.0
    laps: list[float] = field(default_factory=list)
    _start: float | None = None

    def __enter__(self) -> "Timer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        if self._start is None:  # pragma: no cover - defensive
            return
        lap = time.perf_counter() - self._start
        self.laps.append(lap)
        self.elapsed += lap
        self._start = None

    @property
    def last(self) -> float:
        """Duration of the most recent lap (0.0 before first exit)."""
        return self.laps[-1] if self.laps else 0.0


def timed(func):
    """Decorator accumulating total wall time and call count on the function.

    The accumulated values are exposed as ``func.total_seconds`` and
    ``func.call_count`` and can be reset with ``func.reset_timing()``.
    """

    @functools.wraps(func)
    def wrapper(*args, **kwargs):
        start = time.perf_counter()
        try:
            return func(*args, **kwargs)
        finally:
            wrapper.total_seconds += time.perf_counter() - start
            wrapper.call_count += 1

    def reset_timing() -> None:
        wrapper.total_seconds = 0.0
        wrapper.call_count = 0

    wrapper.total_seconds = 0.0
    wrapper.call_count = 0
    wrapper.reset_timing = reset_timing
    return wrapper
