"""Deterministic random-number-generator plumbing.

Every stochastic component in the repository (graph generators, dataset
proxies, workload samplers) accepts either an integer seed or an existing
``numpy.random.Generator``.  Centralising the coercion here keeps the
whole evaluation reproducible from a single seed.
"""

from __future__ import annotations

import numpy as np

RngLike = "int | np.random.Generator | None"


def make_rng(seed: int | np.random.Generator | None) -> np.random.Generator:
    """Coerce ``seed`` into a ``numpy.random.Generator``.

    ``None`` yields a fresh nondeterministic generator; an existing
    generator is passed through unchanged (so callers can thread one RNG
    through a pipeline).
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn_rngs(seed: int | np.random.Generator | None, n: int) -> list[np.random.Generator]:
    """Derive ``n`` independent child generators from one seed.

    Used by the simulated cluster so that per-node stochastic decisions
    (steal victim selection) are independent streams yet reproducible.
    """
    if n < 0:
        raise ValueError(f"cannot spawn a negative number of RNGs: {n}")
    root = make_rng(seed)
    return [np.random.default_rng(s) for s in root.bit_generator.seed_seq.spawn(n)] if hasattr(
        root.bit_generator, "seed_seq"
    ) and root.bit_generator.seed_seq is not None else [
        np.random.default_rng(root.integers(0, 2**63 - 1)) for _ in range(n)
    ]
