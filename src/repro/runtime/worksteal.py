"""The work-stealing policy (§IV-E).

*"There is a communication thread that maintains a task queue on each
node.  When the number of tasks in the task queue is less than a
threshold, the communication thread uses asynchronous communication
primitives of MPI to steal tasks from other nodes and add them to its
queue."*

This module isolates the *policy* — when to steal, from whom, how much —
so the event-driven cluster simulator and the tests exercise the same
decisions the paper describes.  The mechanism (message timing) lives in
:mod:`repro.runtime.cluster`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.utils.rng import make_rng


@dataclass(frozen=True)
class StealPolicy:
    """Parameters of the stealing behaviour.

    steal_threshold:
        Steal when the local queue length drops below this.
    steal_batch_fraction:
        Fraction of the victim's queue taken per steal (at least one
        task); half-stealing is the classic choice.
    max_victim_probes:
        How many victims a thief probes before giving up this round.
    """

    steal_threshold: int = 2
    steal_batch_fraction: float = 0.5
    max_victim_probes: int = 3

    def __post_init__(self):
        if self.steal_threshold < 1:
            raise ValueError("steal_threshold must be >= 1")
        if not 0.0 < self.steal_batch_fraction <= 1.0:
            raise ValueError("steal_batch_fraction must be in (0, 1]")
        if self.max_victim_probes < 1:
            raise ValueError("max_victim_probes must be >= 1")

    def should_steal(self, queue_length: int) -> bool:
        return queue_length < self.steal_threshold

    def batch_size(self, victim_queue_length: int) -> int:
        """How many tasks to take from a victim with the given backlog."""
        if victim_queue_length <= 0:
            return 0
        return max(1, int(victim_queue_length * self.steal_batch_fraction))


class VictimSelector:
    """Random victim selection with a deterministic RNG stream.

    Random selection is what MPI work-stealing runtimes typically do
    (and what keeps the simulation assumption-free about topology).
    """

    def __init__(self, n_nodes: int, seed=None):
        if n_nodes < 1:
            raise ValueError("need at least one node")
        self.n_nodes = n_nodes
        self._rng = make_rng(seed)

    def pick(self, thief: int, queue_lengths) -> int | None:
        """Pick a victim with a non-empty queue, or None if all empty."""
        candidates = [
            n for n in range(self.n_nodes) if n != thief and queue_lengths[n] > 0
        ]
        if not candidates:
            return None
        return int(candidates[self._rng.integers(0, len(candidates))])

    def pick_loaded(self, thief: int, queue_lengths) -> int | None:
        """Pick the most loaded other node (informed variant, for the
        ablation of steal policies)."""
        best, best_len = None, 0
        for n in range(self.n_nodes):
            if n == thief:
                continue
            if queue_lengths[n] > best_len:
                best, best_len = n, queue_lengths[n]
        return best


def initial_distribution(n_tasks: int, n_nodes: int, mode: str = "block") -> list[list[int]]:
    """Distribute task indices to node queues.

    ``block`` gives contiguous ranges (what a master handing out batches
    produces); ``cyclic`` deals round-robin (better initial balance,
    poorer locality).  Returned queues preserve execution order.
    """
    queues: list[list[int]] = [[] for _ in range(n_nodes)]
    if mode == "block":
        bounds = np.linspace(0, n_tasks, n_nodes + 1).astype(int)
        for node in range(n_nodes):
            queues[node] = list(range(bounds[node], bounds[node + 1]))
    elif mode == "cyclic":
        for t in range(n_tasks):
            queues[t % n_nodes].append(t)
    else:
        raise ValueError(f"unknown distribution mode {mode!r}")
    return queues
