"""Real shared-memory parallel execution (the single-node OpenMP analogue).

GraphPi runs 1 MPI process × 24 OpenMP threads per node.  The Python
analogue for one node is a ``multiprocessing`` pool of workers pulling
prefix tasks from the master.  The graph and plan are shipped once per
worker (fork/initializer), not per task; tasks are tiny tuples.

Python-specific honesty note: processes, not threads (the GIL would
serialise CPU-bound matching), and speedups are bounded by the host's
core count — the *cluster-scale* behaviour is studied with the
simulator in :mod:`repro.runtime.cluster`.
"""

from __future__ import annotations

import multiprocessing as mp
import os
from dataclasses import dataclass

from repro.core.config import Configuration, ExecutionPlan
from repro.core.engine import Engine
from repro.graph.csr import Graph
from repro.runtime.tasks import Task, choose_split_depth, generate_tasks

# Worker-global engine, installed by the pool initializer so that tasks
# only carry their prefix tuples.
_worker_engine: Engine | None = None


def _init_worker(graph: Graph, plan: ExecutionPlan) -> None:
    global _worker_engine
    _worker_engine = Engine(graph, plan)


def _run_task(prefix: tuple[int, ...]) -> int:
    assert _worker_engine is not None, "worker pool not initialised"
    return _worker_engine.count_prefix(prefix)


@dataclass(frozen=True)
class ParallelResult:
    count: int
    n_tasks: int
    n_workers: int
    split_depth: int


def parallel_count(
    graph: Graph,
    plan_or_config,
    *,
    n_workers: int | None = None,
    split_depth: int | None = None,
    chunksize: int = 8,
) -> ParallelResult:
    """Count embeddings using a pool of worker processes.

    The master (this process) enumerates prefix tasks lazily and streams
    them to the pool; partial raw counts are summed and the IEP divisor
    applied once at the end — the same aggregation the distributed
    implementation performs.
    """
    plan = plan_or_config if isinstance(plan_or_config, ExecutionPlan) else (
        plan_or_config.compile() if isinstance(plan_or_config, Configuration) else None
    )
    if plan is None:
        raise TypeError("parallel_count expects an ExecutionPlan or Configuration")
    engine = Engine(graph, plan)
    depth = split_depth if split_depth is not None else choose_split_depth(plan)
    workers = n_workers or max(1, (os.cpu_count() or 2))

    tasks = (t.prefix for t in generate_tasks(engine, depth))
    if workers == 1:
        raw = sum(engine.count_prefix(p) for p in tasks)
        n_tasks = sum(1 for _ in generate_tasks(engine, depth))
        return ParallelResult(engine.finalize_count(raw), n_tasks, 1, depth)

    ctx = mp.get_context("fork" if hasattr(os, "fork") else "spawn")
    n_tasks = 0
    raw = 0
    with ctx.Pool(workers, initializer=_init_worker, initargs=(graph, plan)) as pool:
        for sub in pool.imap_unordered(_run_task, tasks, chunksize=chunksize):
            raw += sub
            n_tasks += 1
    return ParallelResult(engine.finalize_count(raw), n_tasks, workers, depth)


def measure_task_costs(
    graph: Graph,
    plan_or_config,
    *,
    split_depth: int | None = None,
    limit: int | None = None,
) -> list[float]:
    """Wall-clock seconds per task, sequentially — the simulator's input.

    ``limit`` caps how many tasks are timed (the scaling benchmark uses
    a cap plus cost-model extrapolation for very large task sets).
    """
    import time

    plan = plan_or_config if isinstance(plan_or_config, ExecutionPlan) else plan_or_config.compile()
    engine = Engine(graph, plan)
    depth = split_depth if split_depth is not None else choose_split_depth(plan)
    costs: list[float] = []
    for i, task in enumerate(generate_tasks(engine, depth)):
        if limit is not None and i >= limit:
            break
        start = time.perf_counter()
        engine.count_prefix(task.prefix)
        costs.append(time.perf_counter() - start)
    return costs
