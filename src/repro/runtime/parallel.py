"""Real shared-memory parallel execution (the single-node OpenMP analogue).

GraphPi runs 1 MPI process × 24 OpenMP threads per node.  The Python
analogue for one node is a ``multiprocessing`` pool of workers pulling
prefix tasks from the master.  The graph and plan are shipped once per
worker (fork/initializer), not per task; tasks are tiny tuples.

Workers build their execution path through the backend registry
(:func:`repro.core.backend.make_prefix_counter`): by default each
worker compiles the specialised inner-loop kernel for its plan
(``worker_backend="compiled"``) and falls back to the interpreter
engine for contexts code generation does not cover (induced, labeled,
directed).  The master always interprets the outer loops — they are a
vanishing fraction of the work, and :meth:`Engine.iter_prefixes` already
applies outer restrictions so workers receive only viable prefixes.

Python-specific honesty note: processes, not threads (the GIL would
serialise CPU-bound matching), and speedups are bounded by the host's
core count — the *cluster-scale* behaviour is studied with the
simulator in :mod:`repro.runtime.cluster`.
"""

from __future__ import annotations

import multiprocessing as mp
import os
from dataclasses import dataclass, replace

from repro.core.backend import MatchContext, make_engine, make_prefix_counter, plain_context
from repro.core.config import Configuration, ExecutionPlan
from repro.graph.csr import Graph
from repro.obs import metrics as obs_metrics
from repro.obs.trace import span
from repro.runtime.tasks import Task, choose_split_depth, generate_tasks

# Worker-global prefix counter, installed by the pool initializer so
# that tasks only carry their prefix tuples.
_worker_counter = None


def _init_worker(ctx: MatchContext, split_depth: int, worker_backend: str) -> None:
    global _worker_counter
    _worker_counter, _ = make_prefix_counter(ctx, split_depth, worker_backend)


def _run_task(prefix: tuple[int, ...]) -> int:
    assert _worker_counter is not None, "worker pool not initialised"
    return _worker_counter(prefix)


@dataclass(frozen=True)
class ParallelResult:
    count: int
    n_tasks: int
    n_workers: int
    split_depth: int
    worker_backend: str = "interpreter"


def parallel_count_ctx(
    ctx: MatchContext,
    *,
    n_workers: int | None = None,
    split_depth: int | None = None,
    chunksize: int = 8,
    worker_backend: str = "compiled",
) -> ParallelResult:
    """Count a :class:`MatchContext` with a pool of worker processes.

    The master (this process) enumerates prefix tasks lazily and streams
    them to the pool; partial raw counts are summed and the IEP divisor
    applied once at the end — the same aggregation the distributed
    implementation performs.
    """
    engine = make_engine(ctx)
    depth = split_depth if split_depth is not None else choose_split_depth(ctx.plan)
    workers = n_workers or max(1, (os.cpu_count() or 2))
    # Built once for the fallback name even on the pool path: what the
    # workers will actually run, post-fallback.
    counter, effective = make_prefix_counter(ctx, depth, worker_backend)

    tasks = (t.prefix for t in generate_tasks(engine, depth))
    if workers == 1:
        raw = 0
        n_tasks = 0
        with span("pool", workers=1, split_depth=depth) as sp:
            for p in tasks:
                raw += counter(p)
                n_tasks += 1
            sp.set(tasks=n_tasks)
        obs_metrics.PARALLEL_TASKS.inc(n_tasks)
        return ParallelResult(engine.finalize_count(raw), n_tasks, 1, depth, effective)

    mp_ctx = mp.get_context("fork" if hasattr(os, "fork") else "spawn")
    n_tasks = 0
    raw = 0
    # A pre-generated kernel is an exec() product and does not pickle
    # under spawn; workers re-derive their own kernel anyway.
    ship = replace(ctx, generated=None)
    # Master-side span only: spans opened inside pool workers live in
    # other processes and cannot attach to this trace.
    with span("pool", workers=workers, split_depth=depth) as sp:
        with mp_ctx.Pool(
            workers, initializer=_init_worker, initargs=(ship, depth, worker_backend)
        ) as pool:
            for sub in pool.imap_unordered(_run_task, tasks, chunksize=chunksize):
                raw += sub
                n_tasks += 1
        sp.set(tasks=n_tasks)
    obs_metrics.PARALLEL_TASKS.inc(n_tasks)
    return ParallelResult(engine.finalize_count(raw), n_tasks, workers, depth, effective)


def parallel_count(
    graph: Graph,
    plan_or_config,
    *,
    n_workers: int | None = None,
    split_depth: int | None = None,
    chunksize: int = 8,
    worker_backend: str = "compiled",
) -> ParallelResult:
    """Count embeddings of a plain (undirected, unlabeled) plan in parallel.

    Thin wrapper building a plain :class:`MatchContext`; see
    :func:`parallel_count_ctx` for the general entry point the
    ``parallel`` backend uses.
    """
    if not isinstance(plan_or_config, (ExecutionPlan, Configuration)):
        raise TypeError("parallel_count expects an ExecutionPlan or Configuration")
    return parallel_count_ctx(
        plain_context(graph, plan_or_config),
        n_workers=n_workers,
        split_depth=split_depth,
        chunksize=chunksize,
        worker_backend=worker_backend,
    )


def measure_task_costs(
    graph: Graph,
    plan_or_config,
    *,
    split_depth: int | None = None,
    limit: int | None = None,
) -> list[float]:
    """Wall-clock seconds per task, sequentially — the simulator's input.

    ``limit`` caps how many tasks are timed (the scaling benchmark uses
    a cap plus cost-model extrapolation for very large task sets).
    Measured on the interpreter engine: the cluster simulator models the
    distributed implementation's relative task skew, not kernel speed.
    """
    import time

    ctx = plain_context(graph, plan_or_config)
    engine = make_engine(ctx)
    depth = split_depth if split_depth is not None else choose_split_depth(ctx.plan)
    costs: list[float] = []
    for i, task in enumerate(generate_tasks(engine, depth)):
        if limit is not None and i >= limit:
            break
        start = time.perf_counter()
        engine.count_prefix(task.prefix)
        costs.append(time.perf_counter() - start)
    return costs
