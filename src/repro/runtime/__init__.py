"""Distributed/parallel runtime: tasks, work stealing, cluster simulation.

Mirrors §IV-E: fine-grained prefix tasks from a master, worker execution
of inner loops, and MPI-style work stealing between per-node queues.
``parallel`` runs for real on local cores; ``cluster`` replays measured
task costs through a deterministic event simulation at any node count.
"""

from repro.runtime.tasks import (
    Task,
    choose_split_depth,
    execute_task,
    generate_tasks,
    run_partitioned,
)
from repro.runtime.worksteal import StealPolicy, VictimSelector, initial_distribution
from repro.runtime.cluster import (
    ClusterSimulator,
    ClusterSpec,
    SimulationResult,
    scaling_curve,
)
from repro.runtime.parallel import ParallelResult, measure_task_costs, parallel_count

__all__ = [
    "Task",
    "choose_split_depth",
    "execute_task",
    "generate_tasks",
    "run_partitioned",
    "StealPolicy",
    "VictimSelector",
    "initial_distribution",
    "ClusterSimulator",
    "ClusterSpec",
    "SimulationResult",
    "scaling_curve",
    "ParallelResult",
    "measure_task_costs",
    "parallel_count",
]
