"""Fine-grained task partitioning (§IV-E).

*"The master thread executes the outer loops and packs the values of the
outer loops into a task.  Worker threads unpack tasks and continue
executing the remaining inner loops."*

A task is the tuple of data vertices bound by the outermost
``split_depth`` loops.  Because real-world degree distributions are
power-law, per-task cost is wildly skewed — which is the entire reason
the paper needs fine-grained partitioning plus work stealing.  The
``split_depth`` choice trades master-side enumeration cost against
granularity; ``choose_split_depth`` implements the paper's guidance
("the number of outer loops executed by the master depends on the
complexity of the pattern").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Sequence

from repro.core.config import ExecutionPlan
from repro.core.engine import Engine
from repro.graph.csr import Graph


@dataclass(frozen=True)
class Task:
    """One unit of distributable work: an outer-loop prefix."""

    prefix: tuple[int, ...]

    @property
    def depth(self) -> int:
        return len(self.prefix)


def choose_split_depth(plan: ExecutionPlan, *, target_tasks: int | None = None,
                       graph: Graph | None = None) -> int:
    """Pick how many outer loops the master executes.

    Simple patterns (triangles) need only the outermost loop; complex
    patterns benefit from a second loop so that tasks are fine enough to
    balance.  If ``target_tasks`` and ``graph`` are given, split deeper
    until the estimated task count reaches the target (the paper's
    "much finer-grained subtask partitioning" future-work knob).
    """
    max_depth = max(1, plan.n_loops - 1)
    if target_tasks is None or graph is None:
        return 1 if plan.n <= 3 else min(2, max_depth)
    depth = 1
    estimate = graph.n_vertices
    while depth < max_depth and estimate < target_tasks:
        estimate *= max(2, int(graph.avg_degree))
        depth += 1
    return depth


def generate_tasks(engine: Engine, split_depth: int) -> Iterator[Task]:
    """Master-side enumeration of all tasks at ``split_depth``."""
    for prefix in engine.iter_prefixes(split_depth):
        yield Task(prefix)


def execute_task(counter, task: Task) -> int:
    """Worker-side: finish the inner loops under the task's prefix.

    ``counter`` is anything the backend registry hands a worker — an
    engine exposing ``count_prefix`` (interpreter family) or a bare
    ``prefix -> raw count`` callable (a compiled kernel from
    :func:`repro.core.backend.make_prefix_counter`).  Returns the raw
    (pre-IEP-division) count so partial results sum.
    """
    if hasattr(counter, "count_prefix"):
        return counter.count_prefix(task.prefix)
    return counter(task.prefix)


def run_partitioned(graph: Graph, plan: ExecutionPlan, *, split_depth: int | None = None
                    ) -> tuple[int, list[tuple[Task, int]]]:
    """Sequential master/worker execution: the reference for the parallel
    and simulated backends (they must produce the same partial sums).

    Returns ``(final_count, [(task, raw_subcount), ...])``.
    """
    engine = Engine(graph, plan)
    depth = split_depth if split_depth is not None else choose_split_depth(plan)
    results: list[tuple[Task, int]] = []
    total = 0
    for task in generate_tasks(engine, depth):
        sub = execute_task(engine, task)
        results.append((task, sub))
        total += sub
    return engine.finalize_count(total), results
