"""Event-driven simulated cluster for the scalability study (Figure 12).

The paper scales GraphPi to 1 024 Tianhe-2A nodes (24 576 cores).  We
cannot run MPI here, but the *shape* of Figure 12 — near-linear speedup
flattening when per-node work gets too small or too skewed — is a
property of the task-cost distribution plus the scheduling policy, both
of which we have.  So:

1. measure (or synthesise) per-task costs once, with the real engine;
2. replay them through this simulator at any node count.

The simulator models, per node: ``threads_per_node`` worker threads
popping a node-local queue, and a communication thread that steals
batches from a random victim when the local queue drops below the
policy threshold.  A steal costs ``steal_latency`` seconds of simulated
time before the stolen tasks arrive (MPI round-trip + packing), during
which workers may idle — that is where the sub-linear tail of Figure 12
comes from.

The simulation is deterministic given the seed.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field

import numpy as np

from repro.runtime.worksteal import StealPolicy, VictimSelector, initial_distribution
from repro.utils.validation import check_positive


@dataclass(frozen=True)
class ClusterSpec:
    """Hardware/runtime shape of the simulated cluster."""

    n_nodes: int
    threads_per_node: int = 24  # Tianhe-2A: 24 OpenMP threads per node
    steal_latency: float = 5e-4  # seconds per steal round-trip
    dispatch_overhead: float = 1e-6  # per-task dequeue cost
    policy: StealPolicy = field(default_factory=StealPolicy)

    def __post_init__(self):
        check_positive(self.n_nodes, "n_nodes")
        check_positive(self.threads_per_node, "threads_per_node")
        check_positive(self.steal_latency, "steal_latency", strict=False)
        check_positive(self.dispatch_overhead, "dispatch_overhead", strict=False)

    @property
    def total_threads(self) -> int:
        return self.n_nodes * self.threads_per_node


@dataclass
class SimulationResult:
    """Outcome of one simulated run."""

    spec: ClusterSpec
    makespan: float
    total_work: float
    steals: int
    failed_steal_rounds: int
    per_node_busy: list[float]

    @property
    def ideal_time(self) -> float:
        return self.total_work / self.spec.total_threads

    @property
    def efficiency(self) -> float:
        """Parallel efficiency vs. the perfectly balanced ideal."""
        if self.makespan <= 0:
            return 1.0
        return self.ideal_time / self.makespan

    @property
    def imbalance(self) -> float:
        """max busy / mean busy across nodes (1.0 = perfect balance)."""
        busy = np.asarray(self.per_node_busy)
        mean = busy.mean()
        return float(busy.max() / mean) if mean > 0 else 1.0


class ClusterSimulator:
    """Discrete-event simulation of master/worker + work stealing."""

    def __init__(self, spec: ClusterSpec, seed=2020):
        self.spec = spec
        self.seed = seed

    def run(self, task_costs, *, distribution: str = "block") -> SimulationResult:
        """Simulate executing ``task_costs`` (seconds per task).

        Event loop: worker threads are (time, node) entries in a heap;
        when a worker needs a task it pops the node queue; an empty (or
        below-threshold) queue triggers the node's communication thread
        to steal a batch, which lands ``steal_latency`` later.
        """
        costs = np.asarray(task_costs, dtype=np.float64)
        if costs.ndim != 1 or len(costs) == 0:
            raise ValueError("task_costs must be a non-empty 1-D sequence")
        if np.any(costs < 0):
            raise ValueError("task costs must be non-negative")
        spec = self.spec
        n_nodes = spec.n_nodes
        queues = initial_distribution(len(costs), n_nodes, mode=distribution)
        selector = VictimSelector(n_nodes, seed=self.seed)

        # Worker availability: heap of (time, tie, node, thread).
        heap: list[tuple[float, int, int, int]] = []
        tie = 0
        for node in range(n_nodes):
            for thread in range(spec.threads_per_node):
                heapq.heappush(heap, (0.0, tie, node, thread))
                tie += 1

        # Pending steals: node -> arrival time of the in-flight batch.
        inflight: dict[int, float] = {}
        # Future task-completion times (lazily pruned): the progress
        # horizon idle workers park on under zero-latency configurations.
        finishes: list[float] = []
        busy = [0.0] * n_nodes
        steals = 0
        failed_rounds = 0
        remaining = len(costs)
        makespan = 0.0

        def try_steal(thief: int, now: float) -> None:
            nonlocal steals, failed_rounds
            if thief in inflight:
                return
            lengths = [len(q) for q in queues]
            victim = None
            for _ in range(spec.policy.max_victim_probes):
                v = selector.pick(thief, lengths)
                if v is not None and lengths[v] > 0:
                    victim = v
                    break
            if victim is None:
                failed_rounds += 1
                return
            batch = spec.policy.batch_size(len(queues[victim]))
            if batch <= 0:
                failed_rounds += 1
                return
            stolen = [queues[victim].pop() for _ in range(batch)]
            steals += 1
            inflight[thief] = now + spec.steal_latency
            # The stolen tasks are appended on arrival; we model this by
            # holding them aside until the worker loop reaches that time.
            arrivals.setdefault(thief, []).extend(stolen)

        arrivals: dict[int, list[int]] = {}

        while remaining > 0:
            now, _, node, thread = heapq.heappop(heap)
            makespan = max(makespan, now)
            # Deliver any steal batch that has arrived by now.
            if node in inflight and inflight[node] <= now:
                queues[node].extend(arrivals.pop(node, []))
                del inflight[node]
            if spec.policy.should_steal(len(queues[node])) and remaining > len(
                queues[node]
            ):
                try_steal(node, now)
            if queues[node]:
                task = queues[node].pop(0)
                dur = float(costs[task]) + spec.dispatch_overhead
                busy[node] += dur
                remaining -= 1
                finish = now + dur
                makespan = max(makespan, finish)
                heapq.heappush(heap, (finish, tie, node, thread))
                heapq.heappush(finishes, finish)
                tie += 1
            else:
                # Idle until either an in-flight batch lands or a small
                # backoff elapses; re-queue the worker at that time.
                wake = inflight.get(node, now + spec.steal_latency)
                wake = max(wake, now + spec.steal_latency / 4)
                if wake <= now and node not in inflight:
                    # Zero-latency configuration with nothing headed our
                    # way: park on the next task completion, or an idle
                    # node whose steal just failed could spin forever at
                    # one timestamp while a busy node holds every
                    # remaining task.  (With a batch in flight, even one
                    # due now, re-queueing at `now` is livelock-free —
                    # the next pop delivers it — and parking would defer
                    # already-stolen work behind an unrelated task.)
                    while finishes and finishes[0] <= now:
                        heapq.heappop(finishes)
                    if finishes:
                        wake = finishes[0]
                heapq.heappush(heap, (wake, tie, node, thread))
                tie += 1

        return SimulationResult(
            spec=spec,
            makespan=makespan,
            total_work=float(costs.sum()),
            steals=steals,
            failed_steal_rounds=failed_rounds,
            per_node_busy=busy,
        )


def scaling_curve(
    task_costs,
    node_counts,
    *,
    threads_per_node: int = 24,
    steal_latency: float = 5e-4,
    dispatch_overhead: float = 1e-6,
    seed: int = 2020,
    policy: StealPolicy | None = None,
    distribution: str = "block",
) -> list[SimulationResult]:
    """Run the simulator over a range of node counts (Figure 12's x-axis).

    The one replay protocol: both the standalone Fig. 12 benches and the
    ``distributed`` execution backend build their per-node-count curves
    here, so the two paths cannot drift.
    """
    results = []
    for n in node_counts:
        spec = ClusterSpec(
            n_nodes=int(n),
            threads_per_node=threads_per_node,
            steal_latency=steal_latency,
            dispatch_overhead=dispatch_overhead,
            policy=policy or StealPolicy(),
        )
        results.append(
            ClusterSimulator(spec, seed=seed).run(task_costs, distribution=distribution)
        )
    return results
