"""The distributed execution backend: real counts, simulated cluster (Fig. 12).

GraphPi's headline scaling result is near-linear speedup to 1 024
Tianhe-2A nodes (24 576 cores, Figure 12).  We cannot run MPI here, but
the quantities the figure depends on are all available:

1. the **exact count** — the master enumerates the viable root vertices
   (``Engine.iter_prefixes(1)``, §IV-E's outer loop), partitions them
   into contiguous task ranges with the same
   :func:`~repro.runtime.worksteal.initial_distribution` the cluster
   uses for node queues, and an *inner* executor counts each range for
   real (default: one bulk :class:`~repro.core.vectorised.FrontierEngine`
   sweep per range);
2. the **per-task cost distribution** — each task's wall-clock seconds
   are measured while computing those real counts; power-law degree skew
   shows up here exactly as it does on the real cluster;
3. the **scaling profile** — the measured costs are replayed through the
   event-driven :class:`~repro.runtime.cluster.ClusterSimulator`
   (node-local queues, MPI-latency work stealing) at every requested
   node count.

So one ``count()`` call returns both the exact embedding count and a
Figure 12-shaped makespan/speedup curve, and because
:class:`DistributedBackend` is a registered
:class:`~repro.core.backend.ExecutionBackend`, the whole study runs
through the same ``count_pattern(..., backend=...)`` /
``MatchQuery``/``MatchSession`` seam as every other execution strategy —
the scaling curve rides on :attr:`~repro.core.query.MatchResult.
distributed_report`.

Honesty notes: the counts are real (the conformance suite pins them
against every other backend), the *times* are simulated from measured
single-process task costs — relative skew and scheduling behaviour are
faithful, absolute kernel speed is not.
"""

from __future__ import annotations

import dataclasses
import time
from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from repro.core.backend import (
    MODES,
    BackendCapabilities,
    ExecutionBackend,
    MatchContext,
    capabilities_of,
    make_engine,
    make_prefix_counter,
    register_backend,
)
from repro.obs import metrics as obs_metrics
from repro.obs.trace import span
from repro.runtime.cluster import SimulationResult, scaling_curve
from repro.runtime.worksteal import StealPolicy, initial_distribution

#: node counts simulated per call unless overridden (Fig. 12's x-axis,
#: trimmed so a default ``backend="distributed"`` count stays snappy).
DEFAULT_NODE_COUNTS = (1, 2, 4, 8, 16, 32, 64)

#: granularity cap: at most this many root-range tasks by default.
DEFAULT_MAX_TASKS = 1024

#: inner executors :func:`make_task_counter` can actually build; other
#: registered backends (preslice, parallel, distributed itself) have no
#: per-task entry point and would silently demote to the interpreter.
INNER_BACKENDS = ("vectorised", "compiled", "interpreter")


def _check_inner(inner: str) -> None:
    if inner not in INNER_BACKENDS:
        raise ValueError(
            f"unsupported inner backend {inner!r}: the distributed "
            f"backend's per-task executors are {INNER_BACKENDS}"
        )


@dataclass(frozen=True)
class DistributedReport:
    """Everything one distributed execution produced.

    ``count`` is exact (same as any other backend); ``results`` holds
    one :class:`~repro.runtime.cluster.SimulationResult` per entry of
    ``node_counts``, replaying the measured ``task_seconds`` through the
    cluster simulator.  ``task_roots`` is populated only when the run
    was asked to record its partition (``record_tasks=True``) — the
    exactly-once tests use it.
    """

    count: int
    n_roots: int
    n_tasks: int
    inner_backend: str
    distribution: str
    split_depth: int
    threads_per_node: int
    node_counts: tuple[int, ...]
    results: tuple[SimulationResult, ...]
    task_seconds: tuple[float, ...]
    seconds_execute: float
    task_roots: tuple[tuple[int, ...], ...] | None = None

    @property
    def makespans(self) -> tuple[float, ...]:
        """Simulated seconds to drain all tasks, per node count."""
        return tuple(r.makespan for r in self.results)

    @property
    def speedups(self) -> tuple[float, ...]:
        """Makespan ratio vs the *first* simulated node count.

        With ``node_counts`` starting at 1 this is Figure 12's speedup
        axis; with another baseline it is relative scaling from there.
        """
        if not self.results:
            return ()
        base = self.results[0].makespan
        return tuple(
            base / r.makespan if r.makespan > 0 else float("inf")
            for r in self.results
        )

    @property
    def efficiencies(self) -> tuple[float, ...]:
        """Parallel efficiency vs the perfectly balanced ideal, per node count."""
        return tuple(r.efficiency for r in self.results)

    def describe(self) -> str:
        curve = ", ".join(
            f"{n}n:{s:.1f}x" for n, s in zip(self.node_counts, self.speedups)
        )
        return (
            f"{self.n_tasks} tasks over {self.n_roots} roots "
            f"(inner={self.inner_backend}, {self.distribution}); "
            f"speedup [{curve}]"
        )


def make_task_counter(
    ctx: MatchContext, inner: str = "vectorised"
) -> tuple[Callable[[Sequence[int]], int], str]:
    """Build the per-task ``roots -> raw count`` executor via the registry.

    The distributed analogue of :func:`~repro.core.backend.
    make_prefix_counter`: ``inner`` (one of :data:`INNER_BACKENDS`)
    names the executor that should do the real counting inside each
    root-range task, with the compiled-first fallback chain applied
    where the preferred strategy cannot serve the context:

    * ``"vectorised"`` — one bulk frontier sweep per range (plain,
      labeled, induced or directed IEP-free, connected-prefix plans);
      otherwise falls through to
    * ``"compiled"`` — the generated depth-1 prefix kernel, summed per
      root (plain :class:`~repro.core.config.ExecutionPlan` with at
      least two loops); otherwise
    * the interpreter engine family's ``count_prefix`` (every mode).

    Returns ``(counter, effective)`` where ``effective`` names the
    strategy actually built, post-fallback.  Counters return **raw**
    (pre-IEP-division) counts so partial sums add; apply
    ``make_engine(ctx).finalize_count`` to the total.
    """
    _check_inner(inner)
    from repro.core.vectorised import VectorisedBackend, frontier_engine_for

    # Eligibility is the vectorised backend's own supports() predicate —
    # one definition of what the frontier engine covers, no drift; the
    # factory then builds the engine class matching the mode (directed
    # contexts get the directed frontier engine).
    if inner == "vectorised" and VectorisedBackend().supports(ctx):
        return frontier_engine_for(ctx).count_roots, "vectorised"
    worker = "compiled" if inner in ("vectorised", "compiled") else "interpreter"
    prefix_counter, effective = make_prefix_counter(ctx, 1, worker)
    return (
        lambda roots: sum(prefix_counter((int(r),)) for r in roots)
    ), effective


def distributed_count_ctx(
    ctx: MatchContext,
    *,
    n_tasks: int | None = None,
    node_counts: Sequence[int] = DEFAULT_NODE_COUNTS,
    threads_per_node: int = 24,
    steal_latency: float = 5e-4,
    dispatch_overhead: float = 1e-6,
    policy: StealPolicy | None = None,
    distribution: str = "block",
    inner: str = "vectorised",
    seed: int = 2020,
    record_tasks: bool = False,
    simulate: bool = True,
) -> DistributedReport:
    """Count a context exactly and simulate its multi-node schedule.

    The master enumerates viable root vertices (restrictions at depth 0
    already applied), partitions them into ``n_tasks`` ranges with
    :func:`~repro.runtime.worksteal.initial_distribution`, executes each
    range through the ``inner`` executor while measuring wall-clock cost,
    then replays those costs through the cluster simulator at every node
    count in ``node_counts``.  ``simulate=False`` skips the replay
    (``results`` comes back empty) — the counting-only path.
    """
    if not node_counts:
        raise ValueError("node_counts must name at least one node count")
    if n_tasks is not None and n_tasks < 1:
        raise ValueError("n_tasks must be >= 1")
    engine = make_engine(ctx)
    roots = [prefix[0] for prefix in engine.iter_prefixes(1)]
    n_roots = len(roots)
    if n_tasks is None:
        n_tasks = min(n_roots, DEFAULT_MAX_TASKS) or 1
    n_tasks = min(n_tasks, max(n_roots, 1))

    counter, effective = make_task_counter(ctx, inner)

    # Reuse the cluster's distribution policy for root -> task ranges:
    # each "queue" is one task's root list ("block" = contiguous ranges).
    task_lists = [
        [roots[i] for i in queue]
        for queue in initial_distribution(n_roots, n_tasks, mode=distribution)
    ]
    task_lists = [t for t in task_lists if t]

    raw = 0
    task_seconds: list[float] = []
    t_start = time.perf_counter()
    for i, task_roots in enumerate(task_lists):
        t0 = time.perf_counter()
        with span("task", task=i, roots=len(task_roots)) as sp:
            c = counter(task_roots)
            sp.set(raw=c)
        raw += c
        task_seconds.append(time.perf_counter() - t0)
        obs_metrics.DISTRIBUTED_TASKS.inc()
    seconds_execute = time.perf_counter() - t_start
    count = engine.finalize_count(raw)

    results: list[SimulationResult] = []
    if task_seconds and simulate:
        results = scaling_curve(
            np.asarray(task_seconds, dtype=np.float64),
            node_counts,
            threads_per_node=threads_per_node,
            steal_latency=steal_latency,
            dispatch_overhead=dispatch_overhead,
            seed=seed,
            policy=policy,
            distribution=distribution,
        )

    return DistributedReport(
        count=count,
        n_roots=n_roots,
        n_tasks=len(task_lists),
        inner_backend=effective,
        distribution=distribution,
        split_depth=1,
        threads_per_node=threads_per_node,
        node_counts=tuple(int(n) for n in node_counts),
        results=tuple(results),
        task_seconds=tuple(task_seconds),
        seconds_execute=seconds_execute,
        task_roots=tuple(tuple(t) for t in task_lists) if record_tasks else None,
    )


@register_backend
class DistributedBackend(ExecutionBackend):
    """Simulated multi-node execution: exact counts plus a Fig. 12 profile.

    Constructor options mirror :func:`distributed_count_ctx`:
    ``node_counts`` (the simulated x-axis), ``n_tasks``,
    ``threads_per_node``, ``steal_latency``, ``policy``
    (:class:`~repro.runtime.worksteal.StealPolicy`), ``distribution``
    (``"block"``/``"cyclic"``), ``inner`` (the per-task executor, one
    of :data:`INNER_BACKENDS`, default ``"vectorised"``), ``seed``,
    ``record_tasks`` and ``simulate`` (``False`` skips the cost replay
    on every entry point — for callers that only want exact counts
    through the distributed partitioning).

    Capabilities are honest per instance: the class-level default
    declares ``iep=False`` because the default inner executor is the
    vectorised frontier engine (so a name-channel
    ``backend="distributed"`` preference plans IEP-free, the regime the
    bulk path covers); an instance configured with an IEP-capable inner
    (``inner="compiled"`` or ``"interpreter"``) advertises ``iep=True``
    and gets IEP plans, executed via per-root prefix counting with the
    single final overcount division — the paper's distributed
    aggregation.
    """

    name = "distributed"
    supports_enumeration = False
    capabilities = BackendCapabilities(
        modes=frozenset(MODES), iep=False, traced=True
    )

    def __init__(
        self,
        *,
        node_counts: Sequence[int] = DEFAULT_NODE_COUNTS,
        n_tasks: int | None = None,
        threads_per_node: int = 24,
        steal_latency: float = 5e-4,
        dispatch_overhead: float = 1e-6,
        policy: StealPolicy | None = None,
        distribution: str = "block",
        inner: str = "vectorised",
        seed: int = 2020,
        record_tasks: bool = False,
        simulate: bool = True,
    ):
        # Validate up front so misconfiguration fails at construction
        # (the CLI's error path), not mid-count: a typo ("vectorized")
        # or an executor with no per-task entry point ("parallel")
        # would otherwise silently demote every task to the interpreter
        # and skew the measured cost profile.
        _check_inner(inner)
        if n_tasks is not None and n_tasks < 1:
            raise ValueError("n_tasks must be >= 1")
        if not node_counts or any(int(n) < 1 for n in node_counts):
            raise ValueError(
                "node_counts must name at least one positive node count"
            )
        self.node_counts = tuple(int(n) for n in node_counts)
        self.n_tasks = n_tasks
        self.threads_per_node = threads_per_node
        self.steal_latency = steal_latency
        self.dispatch_overhead = dispatch_overhead
        self.policy = policy
        self.distribution = distribution
        self.inner = inner
        self.seed = seed
        self.record_tasks = record_tasks
        self.simulate = simulate
        inner_caps = capabilities_of(inner)
        if inner_caps is not None and inner_caps.iep:
            # Per-instance honesty: with an IEP-capable inner executor,
            # capability-aware planning may keep the IEP suffix.
            self.capabilities = dataclasses.replace(
                type(self).capabilities, iep=True
            )

    def supports(self, ctx: MatchContext) -> bool:
        # Root tasks split the outermost loop, so the plan needs a
        # second loop to hand the workers (same rule as `parallel`).
        return ctx.mode in MODES and getattr(ctx.plan, "n_loops", 0) >= 2

    def run(
        self, ctx: MatchContext, *, simulate: bool | None = None
    ) -> DistributedReport:
        """Execute and simulate; the full-report entry point."""
        self._require(ctx)
        if simulate is None:
            simulate = self.simulate
        return distributed_count_ctx(
            ctx,
            n_tasks=self.n_tasks,
            node_counts=self.node_counts,
            threads_per_node=self.threads_per_node,
            steal_latency=self.steal_latency,
            dispatch_overhead=self.dispatch_overhead,
            policy=self.policy,
            distribution=self.distribution,
            inner=self.inner,
            seed=self.seed,
            record_tasks=self.record_tasks,
            simulate=simulate,
        )

    def count_with_report(self, ctx: MatchContext) -> tuple[int, DistributedReport]:
        """The session-layer protocol: ``(count, side-channel report)``.

        :meth:`~repro.core.session.MatchSession.count` looks this method
        up by name and, when present, surfaces the second element as
        ``MatchResult.distributed_report``.
        """
        report = self.run(ctx)
        return report.count, report

    def count(self, ctx: MatchContext) -> int:
        # Counting-only callers discard the report, so the cost replay
        # would be pure waste: skip the simulation, keep the real count.
        return self.run(ctx, simulate=False).count
