"""Error–latency profiles (ELP): ASAP's accuracy/latency knob.

ASAP lets users request "5% error at 95% confidence" and picks the
sample budget by *building an error-latency profile* from pilot runs.
The statistics behind the knob: for an unbiased estimator with per-trial
variance σ², the mean of n trials has standard error σ/√n, so the
relative half-width of the confidence interval shrinks as 1/√n and the
sample budget for a target relative error ε is::

    n(ε) = (z · σ / (ε · μ))²

with μ, σ estimated from a pilot run.  The profile degrades exactly as
the paper's introduction says it must: rare patterns have σ/μ ≫ 1 (most
trials miss), so n(ε) explodes and sampling stops being competitive with
exact GraphPi counting.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.approx.sampling import NeighborhoodSampler
from repro.graph.csr import Graph
from repro.pattern.pattern import Pattern


@dataclass(frozen=True)
class ErrorLatencyProfile:
    """Calibrated sampling profile for one (graph, pattern) problem.

    ``pilot_mean``/``pilot_std`` summarise the pilot run;
    ``samples_for`` maps a target relative error to a sample budget,
    ``error_at`` the other way around.
    """

    pilot_mean: float
    pilot_std: float
    pilot_samples: int
    pilot_hits: int
    confidence: float
    z: float

    @property
    def coefficient_of_variation(self) -> float:
        """σ/μ — the difficulty of the problem for sampling (∞ when the
        pilot saw nothing)."""
        if self.pilot_mean == 0:
            return math.inf
        return self.pilot_std / self.pilot_mean

    def samples_for(self, relative_error: float) -> int:
        """Sample budget for a target relative error at the profile's
        confidence level.  Raises when the pilot saw no embeddings —
        the profile contains no signal to calibrate against (ASAP's
        rare-embedding failure)."""
        if relative_error <= 0:
            raise ValueError("relative_error must be positive")
        if self.pilot_hits == 0:
            raise RareEmbeddingError(
                "pilot run produced 0 hits: the error-latency profile "
                "cannot be calibrated for this (graph, pattern); use exact "
                "counting instead"
            )
        cv = self.coefficient_of_variation
        return max(1, math.ceil((self.z * cv / relative_error) ** 2))

    def error_at(self, n_samples: int) -> float:
        """Expected relative error with ``n_samples`` trials."""
        if n_samples <= 0:
            raise ValueError("n_samples must be positive")
        if self.pilot_hits == 0:
            return math.inf
        return self.z * self.coefficient_of_variation / math.sqrt(n_samples)


class RareEmbeddingError(RuntimeError):
    """The pilot run saw no embeddings; sampling cannot be calibrated."""


def build_elp(
    graph: Graph,
    pattern: Pattern,
    *,
    pilot_samples: int = 2_000,
    confidence: float = 0.95,
    seed=None,
) -> ErrorLatencyProfile:
    """Run a pilot and return the calibrated profile."""
    from statistics import NormalDist

    sampler = NeighborhoodSampler(graph, pattern, seed=seed)
    pilot = sampler.estimate(pilot_samples, confidence=confidence)
    std = pilot.std_error * math.sqrt(pilot.n_samples)  # per-trial std
    return ErrorLatencyProfile(
        pilot_mean=pilot.estimate,
        pilot_std=std,
        pilot_samples=pilot.n_samples,
        pilot_hits=pilot.hits,
        confidence=confidence,
        z=NormalDist().inv_cdf(0.5 + confidence / 2),
    )
