"""Approximate pattern counting (the ASAP baseline family).

The paper's introduction positions GraphPi against approximate systems:
*"ASAP [23] is a distributed approximate pattern matching system for
estimating the count of embeddings ... It allows users to make a
trade-off between the result accuracy and latency.  Although ASAP shows
outstanding scalability, it is not applicable in some situations.  For
example, ASAP fails to generate relatively accurate estimation by
sampling if there are very few embeddings in the graph."*  (§I)

This subpackage reproduces that comparator class:

* :mod:`repro.approx.sampling` — an unbiased neighbourhood-sampling
  estimator (Horvitz–Thompson over the restricted DFS tree, the same
  search space ASAP's neighbourhood sampling explores);
* :mod:`repro.approx.elp` — ASAP's error–latency profile: calibrate the
  number of samples needed for a target error from a pilot run.

``benchmarks/bench_approx_tradeoff.py`` reproduces both intro claims:
the accuracy/latency knob, and the rare-embedding failure mode.
"""

from repro.approx.elp import ErrorLatencyProfile, build_elp
from repro.approx.sampling import EstimateResult, NeighborhoodSampler, approximate_count

__all__ = [
    "NeighborhoodSampler",
    "EstimateResult",
    "approximate_count",
    "ErrorLatencyProfile",
    "build_elp",
]
