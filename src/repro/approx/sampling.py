"""Unbiased neighbourhood-sampling estimation of embedding counts.

ASAP's core primitive is *neighbourhood sampling* [Pagh–Tsourakakis]:
grow one random partial embedding, track the probability of having grown
exactly it, and output the inverse probability on success, zero on
failure.  Averaging many such trials gives an unbiased estimate of the
embedding count with an accuracy/latency knob (the number of trials).

Our estimator grows the partial embedding through the *same* loop
structure GraphPi executes — schedule, candidate intersections and
asymmetric restrictions included:

* depth 0 samples a data vertex uniformly from V (weight |V|);
* depth i samples uniformly from the restricted candidate set the
  engine would loop over (weight = its cardinality, after removing
  already-used vertices);
* a trial that reaches the deepest loop yields the product of weights;
  a trial whose candidate set is empty yields 0.

Every root-to-leaf path of the restricted DFS tree is reached with
probability exactly ``1/∏ weights``, so the Horvitz–Thompson estimate
``∏ weights · [success]`` is unbiased for the leaf count — which, with a
valid restriction set, *is* the distinct-embedding count.  No separate
probability bookkeeping can drift out of sync with the search structure,
because they are the same object.

The estimator inherits ASAP's documented weakness on purpose: relative
variance grows as embeddings get rare (success probability → 0 while
weights stay large), which `bench_approx_tradeoff.py` demonstrates.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.core.api import PatternMatcher
from repro.core.config import ExecutionPlan
from repro.core.engine import Engine
from repro.graph.csr import Graph
from repro.pattern.pattern import Pattern


@dataclass(frozen=True)
class EstimateResult:
    """Outcome of a sampling run.

    ``estimate`` is the sample mean of the per-trial Horvitz–Thompson
    values; the confidence interval is the normal approximation at the
    requested level.  ``hits`` counts trials that completed a full
    embedding — when it is 0 the interval collapses to [0, 0] and the
    estimate carries no information beyond "rare" (the ASAP failure
    mode: an empty sample cannot distinguish few from none).
    """

    estimate: float
    std_error: float
    n_samples: int
    hits: int
    confidence: float

    @property
    def ci_low(self) -> float:
        return max(0.0, self.estimate - self._z() * self.std_error)

    @property
    def ci_high(self) -> float:
        return self.estimate + self._z() * self.std_error

    def _z(self) -> float:
        # two-sided normal quantile via the error function inverse
        from statistics import NormalDist

        return NormalDist().inv_cdf(0.5 + self.confidence / 2)

    def relative_error(self, truth: int | float) -> float:
        """|estimate − truth| / truth (inf when truth is 0 but estimate > 0)."""
        if truth == 0:
            return 0.0 if self.estimate == 0 else math.inf
        return abs(self.estimate - truth) / truth

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"EstimateResult({self.estimate:.4g} ± {self.std_error:.3g}, "
            f"{self.hits}/{self.n_samples} hits)"
        )


class NeighborhoodSampler:
    """Samples one pattern's count on one graph through a GraphPi plan.

    Parameters
    ----------
    graph, pattern:
        The counting problem.
    plan:
        Optional pre-compiled plan; defaults to the performance-model
        choice with IEP disabled (sampling needs all loops explicit).
    seed:
        RNG seed for reproducible estimates.
    """

    def __init__(
        self,
        graph: Graph,
        pattern: Pattern,
        *,
        plan: ExecutionPlan | None = None,
        seed=None,
    ):
        if plan is None:
            matcher = PatternMatcher(pattern, use_codegen=False)
            report = matcher.plan(graph, use_iep=False, codegen=False)
            plan = report.plan
        if plan.iep_k:
            raise ValueError("sampling requires a plan compiled with iep_k=0")
        self.graph = graph
        self.pattern = pattern
        self.plan = plan
        self._engine = Engine(graph, plan)
        self._rng = np.random.default_rng(seed)

    # ------------------------------------------------------------------
    def sample_once(self) -> float:
        """One Horvitz–Thompson trial: ∏ candidate-set sizes, or 0."""
        if self.plan.n > self.graph.n_vertices:
            return 0.0
        assigned: list[int] = []
        weight = 1.0
        for depth in range(self.plan.n):
            cand = self._engine.candidates(depth, assigned)
            if len(assigned):
                # exclude already-used vertices, as the loops do inline
                mask = ~np.isin(cand, assigned)
                cand = cand[mask]
            if len(cand) == 0:
                return 0.0
            weight *= len(cand)
            assigned.append(int(cand[self._rng.integers(len(cand))]))
        return weight

    def estimate(self, n_samples: int, *, confidence: float = 0.95) -> EstimateResult:
        """Average ``n_samples`` independent trials."""
        if n_samples <= 0:
            raise ValueError("n_samples must be positive")
        if not 0 < confidence < 1:
            raise ValueError("confidence must be in (0, 1)")
        values = np.fromiter(
            (self.sample_once() for _ in range(n_samples)),
            dtype=np.float64,
            count=n_samples,
        )
        mean = float(values.mean())
        # sample std error of the mean
        se = float(values.std(ddof=1) / math.sqrt(n_samples)) if n_samples > 1 else 0.0
        return EstimateResult(
            estimate=mean,
            std_error=se,
            n_samples=n_samples,
            hits=int(np.count_nonzero(values)),
            confidence=confidence,
        )


def approximate_count(
    graph: Graph,
    pattern: Pattern,
    *,
    n_samples: int = 10_000,
    seed=None,
    confidence: float = 0.95,
) -> EstimateResult:
    """One-shot approximate count (plan + sample)."""
    sampler = NeighborhoodSampler(graph, pattern, seed=seed)
    return sampler.estimate(n_samples, confidence=confidence)
