"""Command-line interface: ``python -m repro <command> ...``.

Mirrors the GraphPi binary's ergonomics — feed it a pattern and a data
graph, get counts — plus introspection commands for the preprocessing
pipeline.

Commands
--------
count    count embeddings of a pattern in a dataset/edge-list file
         (--mode plain|labeled|directed, --semantics edge|induced,
         --backend to pick the execution backend, --approx N for the
         sampling estimator; every mode routes through the unified
         MatchQuery/MatchSession facade with its plan cache.
         --backend distributed additionally prints the simulated
         multi-node scaling table: --nodes 1,4,16 picks the simulated
         node counts, --tasks the root-range task granularity and
         --inner the per-task executor)
plan     show the preprocessing decisions (restrictions, schedule, model)
motifs   run a k-motif census (--induced converts the census; the whole
         census shares one MatchSession, so plans are reused)
stream   replay an edge-churn file (`+ u v` / `- u v` lines) against a
         dataset, maintaining exact pattern counts incrementally via
         the streaming subsystem — per-batch live table, final summary,
         and a full-recount verification (--no-verify to skip)
serve    drive the matching-as-a-service runtime: replay a mixed
         count/enumerate/churn trace file (or a --synthetic workload)
         through a MatchService worker pool — per-kind summary,
         latency p50/p99, memo/backpressure stats, and a verification
         of every count against a direct MatchSession call
backends list the registered execution backends
metrics  dump the process-global metrics registry in Prometheus text
         format (--exercise runs a small count first so values are live)
datasets list the built-in dataset proxies
patterns list the built-in patterns

``count --explain`` traces the query and prints the span tree (plan,
compile and execute phases, with per-depth detail on backends whose
``traced`` capability is set); ``count --trace-out FILE`` writes the
same trace as Chrome ``trace_event`` JSON for Perfetto.
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.core.api import PatternMatcher
from repro.core.backend import available_backends, backend_names, get_backend
from repro.core.query import MatchQuery
from repro.core.session import get_session
from repro.graph.datasets import DATASETS, load_dataset
from repro.graph.stats import GraphStats
from repro.obs import trace as obs_trace
from repro.pattern.catalog import NAMED_PATTERNS, get_pattern, paper_patterns
from repro.runtime.distributed import INNER_BACKENDS
from repro.utils.tables import Table, format_seconds


def _add_graph_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--dataset", default="wiki-vote",
                        help="proxy dataset name (see `datasets`)")
    parser.add_argument("--scale", type=float, default=0.2,
                        help="proxy scale factor (default 0.2)")
    parser.add_argument("--seed", type=int, default=2020)
    parser.add_argument("--edge-list", default=None, metavar="PATH",
                        help="load a real edge-list file instead of a proxy")


def _load_graph(args):
    if args.edge_list:
        return load_dataset(args.dataset, path=args.edge_list)
    return load_dataset(args.dataset, scale=args.scale, seed=args.seed)


def _add_backend_arg(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--backend", default=None, choices=backend_names(),
                        help="execution backend (default: compiled when the "
                             "plan supports it, interpreter otherwise)")
    parser.add_argument("--workers", type=int, default=None, metavar="N",
                        help="worker processes for --backend parallel")
    parser.add_argument("--nodes", default=None, metavar="N[,N...]",
                        help="simulated node counts for --backend distributed "
                             "(comma-separated, e.g. 1,4,16,64)")
    parser.add_argument("--tasks", type=int, default=None, metavar="N",
                        help="root-range task count for --backend distributed")
    parser.add_argument("--inner", default=None, choices=list(INNER_BACKENDS),
                        help="inner per-task executor for --backend "
                             "distributed (default vectorised)")


def _parse_nodes(spec: str) -> list[int]:
    try:
        nodes = [int(part) for part in spec.split(",") if part.strip()]
    except ValueError:
        raise ValueError(f"--nodes expects comma-separated integers, got {spec!r}")
    if not nodes or any(n < 1 for n in nodes):
        raise ValueError(f"--nodes expects positive node counts, got {spec!r}")
    return nodes


def _resolve_backend(args, *, count_report: bool = True):
    """The backend instance the CLI flags ask for (None = default policy).

    ``count_report=False`` marks callers that only print counts (the
    motif census): a distributed backend is then built with
    ``simulate=False`` so no cost replay runs for a report nobody sees.
    """
    if args.backend != "distributed":
        for flag, value in (("--nodes", args.nodes), ("--tasks", args.tasks),
                            ("--inner", args.inner)):
            if value is not None:
                # Silently dropping a scaling-study flag would hand the
                # user a plain count they believe is a multi-node run.
                raise ValueError(f"{flag} requires --backend distributed")
    if args.backend != "parallel" and args.workers is not None:
        raise ValueError("--workers requires --backend parallel")
    if args.backend is None:
        return None
    if args.backend == "parallel":
        return get_backend("parallel", n_workers=args.workers)
    if args.backend == "distributed":
        options = {}
        if args.nodes is not None:
            options["node_counts"] = _parse_nodes(args.nodes)
        if args.tasks is not None:
            options["n_tasks"] = args.tasks
        if args.inner is not None:
            options["inner"] = args.inner
        if not count_report:
            if args.nodes is not None:
                raise ValueError(
                    "--nodes configures the scaling report, which this "
                    "command does not print; it applies to "
                    "`count --backend distributed`"
                )
            options["simulate"] = False
        return get_backend("distributed", **options)
    return get_backend(args.backend)


def _print_distributed_report(report) -> None:
    """Render a DistributedReport's scaling curve under a count."""
    print(f"distributed: {report.describe()}")
    table = Table(["nodes", "threads", "makespan", "speedup", "efficiency", "steals"],
                  title=f"simulated scaling ({report.threads_per_node} threads/node, "
                        f"measured task costs replayed)")
    for n, res, speedup in zip(report.node_counts, report.results, report.speedups):
        table.add_row([
            n,
            n * report.threads_per_node,
            format_seconds(res.makespan),
            f"{speedup:.1f}x",
            f"{res.efficiency * 100:.0f}%",
            res.steals,
        ])
    print(table.render())


def _mode_inputs(args, graph):
    """(data graph, pattern) for the requested matching mode.

    Raises ValueError for bad inputs; ``cmd_count`` turns that into the
    usual ``error: ...`` + exit code 2.
    """
    if args.mode == "labeled":
        from repro.graph.labeled import assign_random_labels
        from repro.pattern.labeled import LabeledPattern

        if args.labels < 1:
            raise ValueError("--labels must be >= 1")
        base = get_pattern(args.pattern)
        data = assign_random_labels(graph, args.labels, seed=args.seed)
        pattern = LabeledPattern(
            base, tuple(i % args.labels for i in range(base.n_vertices))
        )
        return data, pattern
    if args.mode == "directed":
        from repro.graph.digraph import digraph_from_edges
        from repro.pattern.directed import get_directed_pattern

        pattern = get_directed_pattern(args.pattern)
        data = digraph_from_edges(
            list(graph.edges()), n_vertices=graph.n_vertices, name=graph.name
        )
        return data, pattern
    return graph, get_pattern(args.pattern)


def _describe_pattern(pattern) -> str:
    from repro.pattern.directed import DiPattern
    from repro.pattern.labeled import LabeledPattern

    if isinstance(pattern, LabeledPattern):
        return (f"{pattern.name or pattern!r} ({pattern.n_vertices} vertices, "
                f"{pattern.pattern.n_edges} edges, labels={list(pattern.labels)})")
    if isinstance(pattern, DiPattern):
        return (f"{pattern.name or pattern!r} ({pattern.n_vertices} vertices, "
                f"{pattern.n_arcs} arcs)")
    return (f"{pattern.name or pattern!r} ({pattern.n_vertices} vertices, "
            f"{pattern.n_edges} edges)")


def cmd_count(args) -> int:
    graph = _load_graph(args)
    semantics = "induced" if (args.induced or args.semantics == "induced") else "edge"
    if semantics == "induced" and args.mode != "plain":
        print(f"error: --semantics induced is only defined for --mode plain, "
              f"not {args.mode!r}", file=sys.stderr)
        return 2
    # Resolved (and flag-validated) before the --approx early return, so
    # a scaling-study flag without --backend distributed errors instead
    # of being silently dropped on the sampling path.
    try:
        resolved_backend = _resolve_backend(args)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    if args.approx:
        if args.mode != "plain" or semantics != "edge":
            print("error: --approx only supports --mode plain with edge "
                  "semantics", file=sys.stderr)
            return 2
        if args.explain or args.trace_out:
            print("error: --explain/--trace-out profile the exact matching "
                  "pipeline; the --approx estimator is not traced",
                  file=sys.stderr)
            return 2
        if args.backend is not None:
            print("error: --approx is a sampling estimator and does not "
                  "execute through a backend; drop --approx or "
                  f"--backend {args.backend}", file=sys.stderr)
            return 2
        from repro.approx.sampling import approximate_count

        pattern = get_pattern(args.pattern)
        print(f"graph:   {graph}")
        print(f"pattern: {_describe_pattern(pattern)}")
        t0 = time.perf_counter()
        res = approximate_count(graph, pattern, n_samples=args.approx, seed=args.seed)
        elapsed = time.perf_counter() - t0
        print(f"estimate: {res.estimate:.6g}  "
              f"[{res.ci_low:.6g}, {res.ci_high:.6g}] at 95% "
              f"({res.hits}/{res.n_samples} hits)")
        print(f"time:     {format_seconds(elapsed)}")
        return 0

    if args.mode == "directed" and "," in args.pattern:
        if args.explain or args.trace_out:
            print("error: --explain/--trace-out trace one count at a time; "
                  "drop them or count a single directed pattern",
                  file=sys.stderr)
            return 2
        return _cmd_count_directed_batch(args, graph, resolved_backend)

    try:
        data, pattern = _mode_inputs(args, graph)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.mode == "labeled":
        print(f"graph:   {graph} with {args.labels} random labels")
    else:
        print(f"graph:   {data}")
    print(f"pattern: {_describe_pattern(pattern)}")
    if args.mode == "directed":
        print("orientation: undirected edges oriented low id -> high id")
    if semantics == "induced":
        print("semantics: vertex-induced (AutoMine/GraphZero definition)")

    # The backend preference rides on the query (not the call) so the
    # session plans for its capabilities — e.g. an IEP-free plan when
    # --backend vectorised is asked for.
    query = MatchQuery(
        pattern=pattern,
        mode=args.mode,
        semantics=semantics,
        use_iep=False if args.no_iep else None,
        backend=resolved_backend,
    )
    session = get_session(data)
    want_trace = args.explain or args.trace_out
    was_enabled = obs_trace.enabled()
    if want_trace:
        obs_trace.enable()
    try:
        t0 = time.perf_counter()
        result = session.count(query)
        elapsed = time.perf_counter() - t0
    finally:
        if want_trace and not was_enabled:
            obs_trace.disable()
    print(f"config:  {result.provenance}")
    print(f"backend: {result.backend}")
    plan = session.plan_for(query).plan
    if plan.iep_k:
        print(f"IEP:     innermost {plan.iep_k} loops")
    print(f"count:   {result.count}")
    print(f"time:    {format_seconds(elapsed)} "
          f"(preprocessing {format_seconds(result.seconds_plan)}"
          f"{', plan-cache hit' if result.cache_hit else ''})")
    if result.autotune_report is not None:
        print(f"autotune: {result.autotune_report.describe()}")
    if result.distributed_report is not None:
        _print_distributed_report(result.distributed_report)
    if want_trace and result.trace is None:
        print("trace:   empty (no spans collected)", file=sys.stderr)
    if args.explain and result.trace is not None:
        print("\nwhere the time went:")
        print(result.trace.render())
    if args.trace_out and result.trace is not None:
        with open(args.trace_out, "w") as fh:
            fh.write(result.trace.to_chrome_json())
        print(f"\ntrace:   wrote Chrome trace_event JSON to {args.trace_out} "
              "(load in Perfetto or chrome://tracing)")
    return 0


def _cmd_count_directed_batch(args, graph, resolved_backend) -> int:
    """Batched directed counting: comma-separated pattern names routed
    through ``MatchSession.count_many``, so orientations sharing an
    undirected skeleton are served by one reduction pass."""
    from repro.graph.digraph import digraph_from_edges
    from repro.pattern.directed import get_directed_pattern

    names = [s.strip() for s in args.pattern.split(",") if s.strip()]
    try:
        patterns = [get_directed_pattern(n) for n in names]
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    data = digraph_from_edges(
        list(graph.edges()), n_vertices=graph.n_vertices, name=graph.name
    )
    print(f"graph:   {data}")
    print("orientation: undirected edges oriented low id -> high id")
    print(f"batch:   {len(patterns)} directed patterns "
          "(skeleton-sharing reduction where applicable)")
    queries = [
        MatchQuery(pattern=p, mode="directed", backend=resolved_backend)
        for p in patterns
    ]
    session = get_session(data)
    t0 = time.perf_counter()
    results = session.count_many(queries)
    elapsed = time.perf_counter() - t0
    width = max(len(n) for n in names)
    for name, res in zip(names, results):
        print(f"  {name:<{width}}  count={res.count:<12d} backend={res.backend}")
    reduced = [r for r in results if r.backend == "reduction"]
    if reduced:
        print(f"reduction: {reduced[0].provenance}")
    print(f"time:    {format_seconds(elapsed)}")
    return 0


def cmd_plan(args) -> int:
    graph = _load_graph(args)
    pattern = get_pattern(args.pattern)
    matcher = PatternMatcher(pattern)
    report = matcher.plan(graph, use_iep=not args.no_iep)
    print(report.describe())
    print(f"\ngraph stats: {report.stats.describe()}")
    print(f"\nrestriction sets ({len(report.restriction_sets)}):")
    for rs in report.restriction_sets[:10]:
        print("  ", ", ".join(f"id({g})>id({s})" for g, s in sorted(rs)) or "(none)")
    if len(report.restriction_sets) > 10:
        print(f"   ... and {len(report.restriction_sets) - 10} more")
    print("\ntop 5 configurations by predicted cost:")
    for r in report.ranking[:5]:
        print(f"   {r.predicted_cost:12.4g}  {r.config.describe()}")
    if args.show_code and report.generated is not None:
        print("\ngenerated code:\n")
        print(report.generated.source)
    return 0


def cmd_motifs(args) -> int:
    from repro.mining.motifs import induced_motif_census, motif_census

    graph = _load_graph(args)
    try:
        backend = _resolve_backend(args, count_report=False)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    session = get_session(graph)  # one session: plans reused across the census
    t0 = time.perf_counter()
    if args.induced:
        census = induced_motif_census(graph, args.k, backend=backend, session=session)
    else:
        census = motif_census(graph, args.k,
                              use_iep=False if args.no_iep else None,
                              backend=backend, session=session)
    elapsed = time.perf_counter() - t0
    semantics = "vertex-induced" if args.induced else "edge-induced"
    table = Table(["motif", "edges", "count"],
                  title=f"{args.k}-motif census ({semantics}) of "
                        f"{graph.name or 'graph'} ({format_seconds(elapsed)})")
    for m in census:
        table.add_row([m.pattern.name, m.pattern.n_edges, m.count])
    print(table.render())
    info = session.cache_info()
    print(f"plan cache: {info.size} plans, {info.hits} hits, {info.misses} misses")
    return 0


def cmd_stream(args) -> int:
    from repro.graph.dynamic import DynamicGraph
    from repro.streaming import StreamSession, read_churn_file

    if args.batch < 1:
        print("error: --batch must be >= 1", file=sys.stderr)
        return 2
    graph = _load_graph(args)
    try:
        updates = read_churn_file(args.file)
    except (OSError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    stream = StreamSession(DynamicGraph.from_graph(graph))
    names = [p.strip() for p in args.pattern.split(",") if p.strip()]
    handles = []
    for name in names:
        try:
            handles.append(stream.watch(get_pattern(name)))
        except (KeyError, ValueError) as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
    print(f"graph:   {graph}")
    print(f"churn:   {len(updates)} updates from {args.file} "
          f"(batches of {args.batch})")
    for h in handles:
        print(f"watch:   {h.name}: initial count {h.count} "
              f"({len(h.plan.anchored)} anchored sub-plans)")

    table = Table(
        ["batch", "+/-", "|E|"]
        + [c for h in handles for c in (h.name, "delta")]
        + ["ms"],
        title="incremental maintenance replay",
    )
    t0 = time.perf_counter()
    for start in range(0, len(updates), args.batch):
        batch = updates[start : start + args.batch]
        try:
            report = stream.apply(batch)
        except (KeyError, ValueError, IndexError) as exc:
            print(f"error: update {start + 1}..{start + len(batch)}: {exc}",
                  file=sys.stderr)
            return 2
        cells = [
            start // args.batch,
            f"+{report.n_inserts}/-{report.n_deletes}",
            stream.graph.n_edges,
        ]
        for w in report.watches:
            cells += [w.count, f"{w.delta:+d}"]
        table.add_row(cells + [f"{report.seconds * 1e3:.1f}"])
    elapsed = time.perf_counter() - t0
    print(table.render())
    print(f"time:    {format_seconds(elapsed)} for {len(updates)} updates "
          f"({len(handles)} watched patterns, "
          f"{format_seconds(elapsed / max(1, len(updates)))}/update)")
    if not args.no_verify:
        expected = stream.expected_counts()
        for h in handles:
            if h.count != expected[h.name]:
                print(f"error: maintained count for {h.name} is {h.count}, "
                      f"full recount gives {expected[h.name]}", file=sys.stderr)
                return 1
        print(f"verify:  all {len(handles)} maintained counts equal a full "
              "recount on the final snapshot")
    return 0


def cmd_serve(args) -> int:
    from repro.core.session import get_session as _get_session
    from repro.graph.dynamic import DynamicGraph
    from repro.serving import (
        MatchService,
        latency_percentiles,
        read_trace_file,
        replay_trace,
        synthetic_trace,
    )

    if (args.trace is None) == (args.synthetic is None):
        print("error: exactly one of --trace or --synthetic is required",
              file=sys.stderr)
        return 2
    if args.workers < 1 or args.queue_limit < 1:
        print("error: --workers and --queue-limit must be >= 1", file=sys.stderr)
        return 2
    graph = _load_graph(args)
    dyn = DynamicGraph.from_graph(graph)
    if args.trace is not None:
        try:
            ops = read_trace_file(args.trace)
        except (OSError, ValueError) as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
    else:
        names = [p.strip() for p in args.pattern.split(",") if p.strip()]
        try:
            for name in names:
                get_pattern(name)  # fail fast on unknown names
        except (KeyError, ValueError) as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        ops = synthetic_trace(
            names,
            args.synthetic,
            churn_every=args.churn_every,
            n_vertices=dyn.n_vertices,
            avoid_edges=set(dyn.edges()),
            seed=args.seed,
        )
    service = MatchService(
        n_workers=args.workers, queue_limit=args.queue_limit
    )
    service.add_graph("default", dyn)
    watches = []
    for name in [p.strip() for p in args.watch.split(",") if p.strip()]:
        try:
            watches.append(service.watch(get_pattern(name)))
        except (KeyError, ValueError) as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2

    print(f"graph:   {graph}")
    print(f"service: {args.workers} workers, queue limit {args.queue_limit}")
    print(f"trace:   {len(ops)} operations "
          f"({'file ' + args.trace if args.trace else 'synthetic'})")
    for w in watches:
        print(f"watch:   {w.name}: initial count {w.count}")

    t0 = time.perf_counter()
    try:
        outcome = replay_trace(service, ops)
    except (KeyError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        service.close()
        return 2
    outcome.wait()
    elapsed = time.perf_counter() - t0
    stats = service.stats()

    by_kind: dict[str, list] = {}
    for h in outcome.handles:
        by_kind.setdefault(h.request.kind, []).append(h)
    table = Table(["kind", "jobs", "done", "failed", "p50 ms", "p99 ms"],
                  title="serving replay summary")
    for kind in sorted(by_kind):
        handles = by_kind[kind]
        done = [h for h in handles if h.state == "done"]
        p50, p99 = latency_percentiles([h.latency for h in done])
        table.add_row([kind, len(handles), len(done),
                       len(handles) - len(done),
                       f"{p50 * 1e3:.2f}", f"{p99 * 1e3:.2f}"])
    print(table.render())
    served = len(outcome.handles)
    qps = served / elapsed if elapsed > 0 else 0.0
    print(f"load:    {served} jobs + {outcome.churn_applied} churn in "
          f"{format_seconds(elapsed)} ({qps:.0f} jobs/s); "
          f"{outcome.rejected} rejected by backpressure")
    print(f"memo:    {stats.memo.hits} hits / {stats.memo.misses} misses / "
          f"{stats.memo.collapsed} collapsed "
          f"(hit ratio {stats.memo_hit_ratio:.2f})")
    for name, info in stats.plan_caches.items():
        print(f"plans:   {name}: {info.size} plans, {info.hits} hits, "
              f"{info.misses} misses")
    for w in watches:
        print(f"watch:   {w.name}: maintained count {w.count}")
    service.close()

    if not args.no_verify:
        failures = 0
        checked = 0
        for h in outcome.handles:
            if h.request.kind != "count" or h.state != "done":
                continue
            checked += 1
            expected = int(_get_session(h.graph).count(h.request.query))
            if h.result() != expected:
                failures += 1
                print(f"error: job {h.id} returned {h.result()}, direct "
                      f"session count gives {expected} (version {h.version})",
                      file=sys.stderr)
        if failures:
            return 1
        print(f"verify:  all {checked} served counts equal direct "
              "MatchSession calls on the same graph version")
    return 0


def cmd_backends(args) -> int:
    table = Table(["name", "modes", "iep", "enumerates", "kernels", "traced",
                   "description"],
                  title="registered execution backends")
    for name, info in available_backends().items():
        caps = info.capabilities
        table.add_row([
            name,
            ",".join(sorted(caps.modes)) or "-",
            "yes" if caps.iep else "no",
            "yes" if caps.enumeration else "no",
            "yes" if caps.generated_kernels else "no",
            "yes" if caps.traced else "no",
            info.summary(),
        ])
    print(table.render())
    if getattr(args, "profile", None):
        from repro.core.autotune import load_profile

        profile = load_profile(args.profile)
        if profile is None:
            # load_profile already warned with the specific reason.
            print(f"\nprofile: {args.profile}: not usable; "
                  "backend='auto' would fall back to static selection",
                  file=sys.stderr)
            return 1
        print(f"\nprofile: {args.profile}: {profile.describe()}")
        ptable = Table(
            ["pattern bucket", "graph bucket", "best choice", "geomean", "runner-up"],
            title="calibrated buckets (what backend='auto' will pick)",
        )
        for entry in profile.entries.values():
            ranked = entry.ranked()
            best_choice, best_secs = ranked[0]
            runner_up = ranked[1][0].describe() if len(ranked) > 1 else "-"
            mode, nv, ne = entry.pattern_sig
            ptable.add_row([
                f"{mode} {nv}v{ne}e",
                "/".join(str(b) for b in entry.graph_sig),
                best_choice.describe(),
                format_seconds(best_secs),
                runner_up,
            ])
        print(ptable.render())
    return 0


def cmd_metrics(args) -> int:
    """Dump the process-global metrics registry (Prometheus text format)."""
    from repro.obs import REGISTRY

    if args.exercise:
        # A small end-to-end count so the exposition shows live values —
        # without it a fresh process prints an all-zero registry.
        from repro.graph.generators import erdos_renyi

        session = get_session(erdos_renyi(120, 0.1, seed=args.seed))
        for name in ("triangle", "house"):
            session.count(get_pattern(name), backend="vectorised")
            session.count(get_pattern(name))
    print(REGISTRY.render_prometheus(), end="")
    return 0


def cmd_datasets(_args) -> int:
    table = Table(["name", "paper |V|", "paper |E|", "description"],
                  title="built-in dataset proxies (Table I)")
    for name, spec in DATASETS.items():
        table.add_row([name, spec.paper_vertices, spec.paper_edges, spec.description])
    print(table.render())
    return 0


def cmd_patterns(_args) -> int:
    table = Table(["name", "vertices", "edges"], title="built-in patterns")
    for name in sorted(NAMED_PATTERNS):
        p = NAMED_PATTERNS[name]()
        table.add_row([name, p.n_vertices, p.n_edges])
    for name, p in paper_patterns().items():
        table.add_row([name, p.n_vertices, p.n_edges])
    table.add_row(["clique-K / cycle-K / path-K / star-K", "parametric", ""])
    print(table.render())
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="GraphPi reproduction: graph pattern matching with "
                    "effective redundancy elimination (SC 2020)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_count = sub.add_parser("count", help="count embeddings")
    p_count.add_argument("--pattern", default="house",
                         help="pattern name; with --mode directed use a "
                              "directed name (ffl, bifan, dcycle-N, ...) or "
                              "a comma-separated batch (counted via "
                              "skeleton-sharing reduction)")
    p_count.add_argument("--mode", default="plain",
                         choices=["plain", "labeled", "directed"],
                         help="matching mode (default plain); labeled "
                              "assigns random vertex labels, directed "
                              "orients the dataset's edges low->high")
    p_count.add_argument("--semantics", default="edge",
                         choices=["edge", "induced"],
                         help="edge-induced (GraphPi) or vertex-induced "
                              "(AutoMine/GraphZero) semantics")
    p_count.add_argument("--labels", type=int, default=3, metavar="N",
                         help="label alphabet size for --mode labeled")
    p_count.add_argument("--no-iep", action="store_true")
    p_count.add_argument("--induced", action="store_true",
                         help="alias for --semantics induced")
    p_count.add_argument("--approx", type=int, default=0, metavar="N",
                         help="ASAP-style sampling estimate with N trials")
    p_count.add_argument("--explain", action="store_true",
                         help="trace the count and print the span tree "
                              "(plan/compile/execute phases with per-depth "
                              "detail on traced backends)")
    p_count.add_argument("--trace-out", default=None, metavar="FILE",
                         help="write the trace as Chrome trace_event JSON "
                              "(open in Perfetto or chrome://tracing)")
    _add_backend_arg(p_count)
    _add_graph_args(p_count)
    p_count.set_defaults(func=cmd_count)

    p_plan = sub.add_parser("plan", help="show preprocessing decisions")
    p_plan.add_argument("--pattern", default="house")
    p_plan.add_argument("--no-iep", action="store_true")
    p_plan.add_argument("--show-code", action="store_true")
    _add_graph_args(p_plan)
    p_plan.set_defaults(func=cmd_plan)

    p_motifs = sub.add_parser("motifs", help="k-motif census")
    p_motifs.add_argument("--k", type=int, default=3)
    p_motifs.add_argument("--no-iep", action="store_true")
    p_motifs.add_argument("--induced", action="store_true",
                          help="vertex-induced census (Möbius-converted)")
    _add_backend_arg(p_motifs)
    _add_graph_args(p_motifs)
    p_motifs.set_defaults(func=cmd_motifs)

    p_stream = sub.add_parser(
        "stream", help="replay an edge-churn file with live pattern counts"
    )
    p_stream.add_argument("--file", required=True, metavar="PATH",
                          help="churn file: one `+ u v` or `- u v` per line "
                               "(# comments and blank lines skipped)")
    p_stream.add_argument("--pattern", default="triangle,house",
                          help="comma-separated pattern names to maintain "
                               "(default triangle,house)")
    p_stream.add_argument("--batch", type=int, default=64, metavar="N",
                          help="updates applied per batch (default 64)")
    p_stream.add_argument("--no-verify", action="store_true",
                          help="skip the final full-recount verification")
    _add_graph_args(p_stream)
    p_stream.set_defaults(func=cmd_stream)

    p_serve = sub.add_parser(
        "serve",
        help="replay a mixed count/enumerate/churn trace through the "
             "serving runtime",
    )
    p_serve.add_argument("--trace", default=None, metavar="PATH",
                         help="trace file: `count P [prio=N] [timeout=S]`, "
                              "`enumerate P LIMIT`, `churn +|- U V` lines")
    p_serve.add_argument("--synthetic", type=int, default=None, metavar="N",
                         help="generate a Zipf-weighted N-operation workload "
                              "over --pattern instead of reading --trace")
    p_serve.add_argument("--pattern", default="triangle,house,rectangle",
                         help="pattern pool for --synthetic "
                              "(comma-separated names)")
    p_serve.add_argument("--churn-every", type=int, default=0, metavar="N",
                         help="synthetic workloads: one edge toggle every N "
                              "operations (default 0 = no churn)")
    p_serve.add_argument("--watch", default="",
                         help="comma-separated patterns to stream-maintain "
                              "across churn (default none)")
    p_serve.add_argument("--workers", type=int, default=4, metavar="N",
                         help="service worker threads (default 4)")
    p_serve.add_argument("--queue-limit", type=int, default=64, metavar="N",
                         help="queue high-water mark before jobs are "
                              "rejected (default 64)")
    p_serve.add_argument("--no-verify", action="store_true",
                         help="skip the count-vs-direct-session verification")
    _add_graph_args(p_serve)
    p_serve.set_defaults(func=cmd_serve)

    p_backends = sub.add_parser("backends", help="list execution backends")
    p_backends.add_argument(
        "--profile", default=None, metavar="PATH",
        help="also inspect a calibration profile (tools/calibrate.py "
             "output): per-bucket winners backend='auto' would pick",
    )
    p_backends.set_defaults(func=cmd_backends)

    p_metrics = sub.add_parser(
        "metrics",
        help="dump the metrics registry (Prometheus text exposition)",
    )
    p_metrics.add_argument("--exercise", action="store_true",
                           help="run a small count first so the registry "
                                "shows live values")
    p_metrics.add_argument("--seed", type=int, default=2020)
    p_metrics.set_defaults(func=cmd_metrics)

    sub.add_parser("datasets", help="list dataset proxies").set_defaults(
        func=cmd_datasets
    )
    sub.add_parser("patterns", help="list built-in patterns").set_defaults(
        func=cmd_patterns
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
