"""Configurations and compiled execution plans.

The paper (§IV-C): *"we use configuration to denote a combination of a
schedule and a set of restrictions.  A pattern indicates what kind of
subgraph structures to find, while a configuration indicates how to find
them efficiently."*

``Configuration`` is the declarative object the optimiser ranks;
``ExecutionPlan`` is its compiled form consumed by the interpreter
(:mod:`repro.core.engine`), the code generator
(:mod:`repro.core.codegen`) and the performance model.

Compilation resolves, per loop depth ``i``:

* ``deps[i]``       — earlier depths whose bound vertices' neighbourhoods
  are intersected to form the candidate set (pattern adjacency);
* ``lower[i]``      — earlier depths ``j`` with restriction
  ``id(vertex_i) > id(vertex_j)`` → candidates must be ``> value_j``;
* ``upper[i]``      — earlier depths ``j`` with restriction
  ``id(vertex_j) > id(vertex_i)`` → candidates must be ``< value_j``.

On the sorted candidate arrays both bound kinds become binary-search
slices — the generalisation of the paper's ``break`` statements.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.core.restrictions import (
    Restriction,
    check_restrictions_applicable,
    iep_overcount_multiplicity,
)
from repro.core.schedule import (
    Schedule,
    intersection_free_suffix_length,
    schedule_dependencies,
)
from repro.pattern.pattern import Pattern


@dataclass(frozen=True)
class Configuration:
    """A (schedule, restriction set) pair for a pattern."""

    pattern: Pattern
    schedule: Schedule
    restrictions: frozenset[Restriction]

    def __post_init__(self):
        if sorted(self.schedule) != list(range(self.pattern.n_vertices)):
            raise ValueError(
                f"schedule {self.schedule!r} is not a permutation of the "
                f"{self.pattern.n_vertices} pattern vertices"
            )
        check_restrictions_applicable(self.pattern, self.restrictions)

    def compile(self, iep_k: int = 0) -> "ExecutionPlan":
        return compile_plan(self, iep_k=iep_k)

    def describe(self) -> str:
        res = ", ".join(f"id({g})>id({s})" for g, s in sorted(self.restrictions))
        return f"schedule={list(self.schedule)} restrictions=[{res}]"


@dataclass(frozen=True)
class ExecutionPlan:
    """Compiled loop-nest description (see module docstring).

    ``iep_k`` > 0 means the innermost ``iep_k`` loops are replaced by an
    Inclusion–Exclusion evaluation; ``iep_overcount`` is the paper's
    ``x`` divisor correcting for inner restrictions that were dropped.
    """

    config: Configuration
    deps: tuple[tuple[int, ...], ...]
    lower: tuple[tuple[int, ...], ...]
    upper: tuple[tuple[int, ...], ...]
    iep_k: int = 0
    iep_overcount: int = 1
    dropped_restrictions: frozenset[Restriction] = frozenset()

    @property
    def n(self) -> int:
        return len(self.deps)

    @property
    def n_loops(self) -> int:
        """Loop depths actually executed (IEP absorbs the last iep_k)."""
        return self.n - self.iep_k

    def restriction_depths(self) -> list[tuple[int, int | None, bool]]:
        """Flattened (depth, partner_depth, is_lower) rows, for reporting."""
        rows = []
        for i in range(self.n):
            for j in self.lower[i]:
                rows.append((i, j, True))
            for j in self.upper[i]:
                rows.append((i, j, False))
        return rows


def compile_plan(config: Configuration, *, iep_k: int = 0, auts=None) -> ExecutionPlan:
    """Resolve schedule+restrictions into per-depth operations.

    ``iep_k`` requests IEP over the innermost k loops.  Requirements
    (validated here): the last k scheduled vertices must be pairwise
    non-adjacent — this is exactly what phase-2 schedules guarantee.

    Restriction placement with IEP (a refinement over §IV-D, which drops
    every restriction touching the inner loops):

    * outer↔outer — enforced in the loops, as usual;
    * outer↔inner — enforced as *range bounds* on that inner vertex's
      IEP candidate set (IEP is valid for arbitrary finite sets, so
      bounding S_i loses nothing);
    * inner↔inner — genuinely unenforceable (the tuples are never
      enumerated); dropped and compensated by the exact per-orbit
      multiplicity divisor ``iep_overcount``
      (:func:`repro.core.restrictions.iep_overcount_multiplicity`).
      If the multiplicity is not uniform across orbits no divisor
      exists and compilation raises
      :class:`repro.core.restrictions.NonUniformOvercountError`;
      callers retry with a smaller k (k = 1 never drops anything).

    ``auts`` overrides the automorphism group used for the overcount
    multiplicity — the labeled pipeline passes the label-preserving
    subgroup (its restriction sets break exactly that group, so its
    cosets are the orbits being overcounted).
    """
    pattern, schedule = config.pattern, config.schedule
    n = pattern.n_vertices
    if not 0 <= iep_k < n:
        raise ValueError(f"iep_k={iep_k} out of range for a {n}-vertex pattern")
    if iep_k > 0:
        realisable = intersection_free_suffix_length(pattern, schedule)
        if iep_k > realisable:
            raise ValueError(
                f"iep_k={iep_k} but schedule {schedule!r} only has an "
                f"independent suffix of length {realisable}"
            )

    deps = tuple(schedule_dependencies(pattern, schedule))
    position = {v: i for i, v in enumerate(schedule)}

    inner_positions = set(range(n - iep_k, n)) if iep_k else set()
    lower: list[list[int]] = [[] for _ in range(n)]
    upper: list[list[int]] = [[] for _ in range(n)]
    dropped: set[Restriction] = set()
    for g, s in config.restrictions:
        pg, ps = position[g], position[s]
        late, early = (pg, ps) if pg > ps else (ps, pg)
        if late in inner_positions and early in inner_positions:
            # inner↔inner: unenforceable under IEP.
            dropped.add((g, s))
            continue
        if late == pg:
            # id(g) > id(s), g bound later: candidate at depth pg must be
            # greater than the value bound at depth ps.
            lower[late].append(early)
        else:
            upper[late].append(early)

    overcount = 1
    if dropped:
        kept = frozenset(config.restrictions) - frozenset(dropped)
        overcount = iep_overcount_multiplicity(pattern, kept, auts=auts)

    return ExecutionPlan(
        config=config,
        deps=deps,
        lower=tuple(tuple(sorted(x)) for x in lower),
        upper=tuple(tuple(sorted(x)) for x in upper),
        iep_k=iep_k,
        iep_overcount=overcount,
        dropped_restrictions=frozenset(dropped),
    )


def enumerate_configurations(
    pattern: Pattern,
    schedules: Sequence[Schedule],
    restriction_sets: Sequence[frozenset[Restriction]],
) -> list[Configuration]:
    """The full candidate space the performance model ranks."""
    return [
        Configuration(pattern, s, frozenset(r))
        for s in schedules
        for r in restriction_sets
    ]
