"""2-phase computation-avoid schedule generation (§IV-B).

A *schedule* is an order in which the pattern's vertices are searched;
the matcher is a nest of loops, one per scheduled vertex, whose candidate
set is the intersection of the neighbourhoods of its already-bound
pattern neighbours.

Of the n! orders, most are terrible.  GraphPi filters them in two
phases:

* **Phase 1 (connected prefix)** — the i-th vertex must be adjacent to
  at least one of the first i-1.  Otherwise its candidate set is the
  whole vertex set |V| instead of a (much smaller) neighbourhood
  intersection.
* **Phase 2 (independent suffix)** — let k be the size of the largest
  pairwise-nonadjacent vertex set.  Keep only schedules whose *last* k
  vertices are pairwise non-adjacent: the expensive intersections then
  happen in outer loops, which run fewer times, and the k innermost
  loops intersect nothing — which is also precisely the shape the IEP
  optimisation (§IV-D) needs.
"""

from __future__ import annotations

from itertools import permutations
from typing import Iterable, Iterator, Sequence

from repro.pattern.automorphism import automorphisms
from repro.pattern.pattern import Pattern

Schedule = tuple[int, ...]


def is_connected_prefix(pattern: Pattern, schedule: Sequence[int]) -> bool:
    """Phase-1 test: every vertex after the first touches an earlier one."""
    for i in range(1, len(schedule)):
        if not any(pattern.has_edge(schedule[i], schedule[j]) for j in range(i)):
            return False
    return True


def independent_suffix_size(pattern: Pattern) -> int:
    """k of phase 2: the maximum independent set size of the pattern."""
    return pattern.max_independent_set_size()


def has_independent_suffix(pattern: Pattern, schedule: Sequence[int], k: int) -> bool:
    """Phase-2 test: the last k scheduled vertices are pairwise non-adjacent."""
    if k <= 1:
        return True
    return pattern.is_independent_set(schedule[-k:])


def all_schedules(pattern: Pattern) -> Iterator[Schedule]:
    """All n! vertex orders (the raw space phases 1–2 filter)."""
    return permutations(range(pattern.n_vertices))


def generate_schedules(
    pattern: Pattern,
    *,
    phase1: bool = True,
    phase2: bool = True,
    dedup_automorphic: bool = False,
) -> list[Schedule]:
    """The paper's schedule generator.

    ``phase1``/``phase2`` toggles exist for the ablation benchmark.  If
    phase 2 would reject *every* phase-1 survivor (possible only for
    degenerate patterns), it is skipped — the system must always return
    at least one runnable schedule.

    ``dedup_automorphic`` keeps one representative per automorphism
    orbit of schedules: relabelling a schedule by an automorphism yields
    an identical loop structure, so the duplicates only inflate the
    space the performance model must score.
    """
    if not pattern.is_connected() and phase1:
        raise ValueError(
            "phase-1 generation requires a connected pattern; "
            f"{pattern!r} is disconnected"
        )
    survivors: list[Schedule] = [
        s for s in all_schedules(pattern) if not phase1 or is_connected_prefix(pattern, s)
    ]
    if phase2:
        k = independent_suffix_size(pattern)
        filtered = [s for s in survivors if has_independent_suffix(pattern, s, k)]
        if filtered:
            survivors = filtered
    if dedup_automorphic:
        survivors = dedup_schedules(pattern, survivors)
    return survivors


def dedup_schedules(pattern: Pattern, schedules: Iterable[Schedule]) -> list[Schedule]:
    """Keep one schedule per automorphism orbit.

    Two schedules s, s' are equivalent when s' = σ ∘ s for an
    automorphism σ: the loop nests are identical up to renaming pattern
    vertices, so cost and result coincide for correspondingly renamed
    restriction sets.
    """
    auts = automorphisms(pattern)
    seen: set[Schedule] = set()
    out: list[Schedule] = []
    for s in schedules:
        orbit = {tuple(sigma[v] for v in s) for sigma in auts}
        canon = min(orbit)
        if canon in seen:
            continue
        seen.add(canon)
        out.append(s)
    return out


def schedule_dependencies(pattern: Pattern, schedule: Sequence[int]) -> list[tuple[int, ...]]:
    """For each depth i, the earlier depths whose vertices are pattern-adjacent.

    ``deps[i]`` drives the candidate set of loop i: intersect the data
    neighbourhoods of the vertices bound at those depths (empty ⇒ the
    candidate set is all of V, which phase 1 avoids except at depth 0).
    """
    deps: list[tuple[int, ...]] = []
    for i in range(len(schedule)):
        deps.append(
            tuple(j for j in range(i) if pattern.has_edge(schedule[i], schedule[j]))
        )
    return deps


def intersection_free_suffix_length(pattern: Pattern, schedule: Sequence[int]) -> int:
    """The number of trailing loops with at most one dependency each *and*
    pairwise non-adjacent scheduled vertices — the k that IEP can absorb.

    This is the per-schedule realisable k: the paper's phase-2 k is a
    pattern-level upper bound, but a specific schedule may realise less.
    """
    n = len(schedule)
    best = 0
    for k in range(1, n):  # at least one outer loop must remain
        suffix = schedule[n - k :]
        if pattern.is_independent_set(suffix):
            best = k
        else:
            break
    return best
