"""Extended performance model: more structural information (§V-C).

The paper attributes its one visible misprediction (P4 on Wiki-Vote) to
*"the insufficient structural information we leverage (only the numbers
of vertices, edges and triangles).  To achieve more accurate prediction,
we need to use more structural information of data graphs."*

This module implements that suggested extension.  The base model
predicts the cardinality of every neighbourhood intersection as
``|V| · p1 · p2^(x-1)`` — it only knows how *wedges* close.  The
extended model adds the **rectangle closure probability**: for a vertex
whose dependencies form a path of length 2 in the pattern (the
candidate closes a 4-cycle rather than a triangle), the right estimator
uses the 4-cycle count, not the triangle count.

Estimators (ExtendedGraphStats):

* ``p2``  — wedge closure, as before;
* ``p_rect`` — probability a 3-path closes into a 4-cycle, from the
  4-cycle count: rect_cnt ≈ (#4-cycle embeddings); the expected size of
  ``N(a) ∩ N(b)`` for a *non-adjacent* pair (a,b) at pattern distance 2
  is ``rect_cnt / wedge_cnt`` by the same accounting the paper uses for
  triangles.

Per-depth, the extended model inspects whether the pattern vertices
backing an intersection are adjacent (triangle regime) or not
(rectangle regime) and picks the matching closure probability.  The
ablation benchmark (`bench_ablation_model_ext.py`) measures whether
this fixes P4-style selections on clustered proxies.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.config import ExecutionPlan
from repro.core.perf_model import (
    LOOP_OVERHEAD,
    filter_probabilities,
)
from repro.graph.csr import Graph
from repro.graph.intersection import intersect_count
from repro.graph.stats import GraphStats, wedge_count


def four_cycle_count(graph: Graph) -> int:
    """Number of distinct 4-cycles (C4 subgraphs).

    Counted via common-neighbour pairs: Σ over unordered vertex pairs
    {a,b} of C(common(a,b), 2) counts each 4-cycle exactly twice (once
    per diagonal pair), so halve it.  O(Σ deg²) with sorted-array
    intersections — fine at proxy scale, and computed once per graph.
    """
    total = 0
    for a in range(graph.n_vertices):
        na = graph.neighbors(a)
        for b in range(a + 1, graph.n_vertices):
            c = intersect_count(na, graph.neighbors(b))
            if c >= 2:
                total += c * (c - 1) // 2
    return total // 2


def four_cycle_count_sampled(graph: Graph, max_pairs: int = 200_000, seed: int = 1
                             ) -> float:
    """Estimated 4-cycle count via uniform pair sampling.

    The exact counter is quadratic in |V|; the extended model only needs
    a consistent estimate, so large graphs sample vertex pairs.
    """
    import numpy as np

    n = graph.n_vertices
    total_pairs = n * (n - 1) // 2
    if total_pairs <= max_pairs:
        return float(four_cycle_count(graph))
    rng = np.random.default_rng(seed)
    acc = 0
    for _ in range(max_pairs):
        a = int(rng.integers(0, n))
        b = int(rng.integers(0, n))
        if a == b:
            continue
        c = intersect_count(graph.neighbors(a), graph.neighbors(b))
        acc += c * (c - 1) // 2
    return acc / max_pairs * total_pairs / 2.0


@dataclass(frozen=True)
class ExtendedGraphStats:
    """GraphStats + 4-cycle closure information."""

    base: GraphStats
    four_cycles: float
    wedges: int

    @classmethod
    def of(cls, graph: Graph, *, exact: bool | None = None) -> "ExtendedGraphStats":
        base = GraphStats.of(graph)
        use_exact = exact if exact is not None else graph.n_vertices <= 1200
        cycles = (
            float(four_cycle_count(graph)) if use_exact
            else four_cycle_count_sampled(graph)
        )
        return cls(base=base, four_cycles=cycles, wedges=wedge_count(graph))

    @property
    def expected_common_nonadjacent(self) -> float:
        """E[|N(a) ∩ N(b)|] for a random pattern-distance-2 pair.

        Each 4-cycle contributes two diagonal pairs each seeing the two
        common neighbours; wedges provide the normalising pair count:
        E ≈ 2 · (2 · C4) / wedges  (every wedge is one (a,b) sighting of
        one common vertex, every C4 is two such sightings squared — the
        ratio estimator the paper's tri_cnt/(2|E|) mirrors).
        """
        if self.wedges == 0:
            return 0.0
        return 4.0 * self.four_cycles / self.wedges + 1.0
        # +1: the wedge centre that *defined* the pair is always common.


def loop_size_estimates_ext(plan: ExecutionPlan, stats: ExtendedGraphStats) -> list[float]:
    """l_i with regime-aware closure probabilities.

    For an intersection over dependencies D at depth i:
    * if every pair in D is pattern-adjacent, repeated closures are
      triangle-like → base model unchanged;
    * if some pair in D is non-adjacent in the pattern, the candidate
      closes 4-cycles through that pair → use the rectangle estimator
      for the final shrink step.
    """
    pattern = plan.config.pattern
    schedule = plan.config.schedule
    base = stats.base
    out: list[float] = []
    for depth, deps in enumerate(plan.deps):
        x = len(deps)
        if x == 0:
            out.append(float(base.n_vertices))
            continue
        if x == 1:
            out.append(base.avg_degree)
            continue
        verts = [schedule[j] for j in deps]
        nonadjacent_pair = any(
            not pattern.has_edge(verts[i], verts[j])
            for i in range(len(verts))
            for j in range(i + 1, len(verts))
        )
        if nonadjacent_pair:
            est = stats.expected_common_nonadjacent
            # Additional adjacent deps shrink by the wedge closure as usual.
            est *= base.p2 ** max(0, x - 2)
            out.append(est)
        else:
            out.append(base.expected_candidate_size(x))
    return out


def estimate_cost_ext(plan: ExecutionPlan, stats: ExtendedGraphStats) -> float:
    """The paper's recursion with the extended cardinalities."""
    from repro.core.perf_model import intersection_cost_estimates

    n = plan.n
    ls = loop_size_estimates_ext(plan, stats)
    fs = filter_probabilities(plan)
    cs = intersection_cost_estimates(plan, stats.base)
    n_loops = plan.n_loops
    if plan.iep_k > 0:
        cost = 0.0
        for i in range(n_loops, n):
            cost += cs[i] + ls[i] + LOOP_OVERHEAD
        for i in range(n_loops - 1, -1, -1):
            cost = ls[i] * (1.0 - fs[i]) * (cs[i] + LOOP_OVERHEAD + cost)
    else:
        cost = ls[n - 1] * (1.0 - fs[n - 1])
        for i in range(n - 2, -1, -1):
            cost = ls[i] * (1.0 - fs[i]) * (cs[i] + LOOP_OVERHEAD + cost)
    return float(cost)


class ExtendedPerformanceModel:
    """Drop-in alternative to PerformanceModel using 4-cycle information."""

    def __init__(self, stats: ExtendedGraphStats):
        self.stats = stats

    def rank(self, configurations, *, iep_k: int = 0):
        from repro.core.perf_model import RankedConfiguration, _compile_best_effort

        ranked = []
        for config in configurations:
            plan = _compile_best_effort(config, iep_k)
            ranked.append(
                RankedConfiguration(config, plan, estimate_cost_ext(plan, self.stats))
            )
        ranked.sort(key=lambda r: r.predicted_cost)
        return ranked

    def choose(self, configurations, *, iep_k: int = 0):
        ranked = self.rank(configurations, iep_k=iep_k)
        if not ranked:
            raise ValueError("no configurations to choose from")
        return ranked[0]
