"""The vectorised frontier backend: bulk extension of whole candidate sets.

Every other single-process backend in this repository expands candidates
one partial embedding at a time — the nested-loop DFS of
:mod:`repro.core.engine` and the generated code of
:mod:`repro.core.codegen` both pay Python interpreter overhead per
embedding.  Set-centric systems (GraphMini, Peregrine's pattern-aware
exploration) avoid that by operating on whole candidate sets at once;
this module brings the same execution style to GraphPi's planned
schedules and restrictions:

* the partial embeddings at loop depth ``d`` are one 2-D ``numpy`` array
  (the *frontier*, shape ``(n_partial, d)``, one row per embedding);
* extending the frontier to depth ``d + 1`` is a handful of whole-array
  operations: clip each row's candidate range to its restriction
  window by binary-searching sorted keys, gather the clipped ranges
  (:func:`~repro.graph.intersection.gather_ranges`), and intersect
  against the remaining bound neighbourhoods with batched binary search
  (:func:`~repro.graph.intersection.bulk_contains_sorted`) — GraphPi's
  restriction inequalities ``id(u) > id(v)`` are thereby enforced
  *before* the gather, and :func:`restriction_mask` re-applies them as
  vectorised boolean masks where candidates are re-examined;
* the innermost loop never materialises in plain mode: its surviving
  candidates are simply counted, the bulk form of the interpreter's
  last-loop shortcut.

Auxiliary-graph pruning (GraphMini)
-----------------------------------
The direct path re-gathers and re-intersects the same hub rows for
every sibling row at a depth.  When that redundancy is worth removing,
the engine materialises a *scratch CSR* — one pruned candidate row per
distinct prefix — and the subtree below reads those small rows instead
of the full CSR (:class:`_CandidateSource`).  Two mechanisms feed it:

* **group dedup**: frontier rows sharing their dependency-column values
  share one ``∩ of neighbourhoods`` build
  (:func:`~repro.graph.intersection.bulk_intersect_rows` over the
  distinct groups found with ``np.unique``; duplicates are generally
  *not* consecutive, so run detection is not enough);
* **pool chaining**: when ``deps[d] ⊇ covers`` of a pool built at an
  earlier depth, the next pool is the old pool intersected with the
  residual neighbourhoods
  (:func:`~repro.graph.intersection.refine_scratch_rows`) — on
  clique-like patterns each depth's candidate rows shrink by a
  density factor instead of restarting from full degree rows.

Materialisation is gated by a cost model over
:class:`~repro.graph.stats.DegreeStats` (estimated reuse x row size vs.
build cost) so sparse prefixes keep the direct path; ``aux=True/False``
forces the choice for ablation (``benchmarks/bench_auxiliary.py``).

Labeled and induced execution
-----------------------------
The same frontier pipeline serves labeled and vertex-induced contexts:
labeled roots come pre-filtered
(:meth:`~repro.graph.labeled.LabeledGraph.vertices_with_label`) and each
depth applies a vectorised label mask; induced contexts add anti-edge
masks (``~bulk_contains_sorted`` plus ``!=``) against each
non-adjacent bound column — exactly
:class:`repro.core.induced.InducedEngine`'s ``difference`` calls, bulk.

Directed execution
------------------
:class:`DirectedFrontierEngine` runs the same pipeline over a
:class:`~repro.graph.digraph.DiGraph` under a
:class:`~repro.core.directed.DirectedPlan`: each depth's candidate pool
is drawn from the *out*-CSR rows of its ``out_deps`` columns and the
*in*-CSR rows of its ``in_deps`` columns (an antiparallel dependency
contributes one membership probe against each CSR), with restriction
windows resolved by exactly the keyed binary search of the undirected
engine — each CSR carries its own sorted ``u * n + v`` key array, so
"is ``c`` a successor/predecessor of ``x``" is the same ``x * n + c``
probe against the matching key array.

What the backend deliberately does **not** cover (the automatic
interpreter fallback in :func:`~repro.core.backend.select_backend`
handles these): plans compiled with an IEP suffix (``iep_k > 0``) —
IEP evaluates per-prefix counting formulas that do not vectorise
across a frontier (the session layer plans IEP-free when this backend
is preferred) — and schedules with a disconnected prefix (the phase-1
generator never emits these).

Frontiers grow multiplicatively with depth, so :class:`FrontierEngine`
bounds peak memory by processing the root vertices in chunks
(``root_chunk``): each chunk runs through the whole loop nest before the
next starts, which also keeps enumeration lazy and in the interpreter's
DFS order (every gather is owner-major with ascending candidates, with
or without auxiliary pools).
"""

from __future__ import annotations

import math
import weakref
from typing import Iterator, Sequence

import numpy as np

from repro.core.config import ExecutionPlan
from repro.core.directed import DirectedPlan
from repro.graph.csr import Graph
from repro.graph.digraph import DiGraph
from repro.graph.intersection import (
    bulk_contains_sorted,
    bulk_intersect_rows,
    gather_ranges,
    refine_scratch_rows,
    sorted_edge_keys,
)
from repro.graph.labeled import LabeledGraph
from repro.graph.stats import degree_statistics
from repro.obs import metrics as obs_metrics
from repro.obs.trace import span

#: default number of root vertices processed per frontier sweep.
DEFAULT_ROOT_CHUNK = 32768

#: auxiliary pruning is not considered below this frontier size in
#: ``aux="auto"`` mode — the bookkeeping cannot amortise.
AUX_MIN_ROWS = 48

#: the ``np.unique`` dedup sort is charged this fraction of a gather
#: element-visit in the group-materialisation gate.
AUX_SORT_COST = 0.25

#: one ``bulk_contains`` membership probe (a log₂E searchsorted into the
#: full adjacency array) is charged this many gather element-visits in
#: the group-materialisation gate.
AUX_CONTAINS_COST = 1.0

#: a pool the next depth could chain from is worth building only when
#: the group dedup also removes at least this fraction of the frontier
#: rows — with no duplicates (G == F, e.g. a clique's edge frontier)
#: the unwindowed build loses to the windowed direct gather outright.
AUX_STORE_DEDUP = 0.75

#: per-graph sorted edge keys, weakly keyed: dropping the last reference
#: to a graph releases its O(E) key array instead of pinning up to a
#: fixed number of dead graphs the way the old ``lru_cache(8)`` did.
_EDGE_KEY_CACHE: "weakref.WeakKeyDictionary[Graph, np.ndarray]" = (
    weakref.WeakKeyDictionary()
)


def _graph_edge_keys(graph: Graph) -> np.ndarray:
    """The graph's sorted edge-key array, computed once per live graph.

    Graphs are immutable, so the keys can be shared by every engine the
    backend builds — repeated cached-plan executions (a motif census, a
    service draining requests) must not pay the O(E) rebuild per call.
    """
    keys = _EDGE_KEY_CACHE.get(graph)
    if keys is None:
        keys = sorted_edge_keys(graph.indptr, graph.indices)
        _EDGE_KEY_CACHE[graph] = keys
    return keys


def restriction_mask(
    front: np.ndarray,
    owner: np.ndarray,
    cand: np.ndarray,
    lower: Sequence[int],
    upper: Sequence[int],
) -> np.ndarray:
    """Vectorised GraphPi restriction predicate for one extension step.

    ``front`` is the depth-``d`` frontier, ``(owner, cand)`` the proposed
    extension pairs (``cand[i]`` extends row ``front[owner[i]]``), and
    ``lower``/``upper`` the plan's restriction columns at the new depth:
    a column ``j`` in ``lower`` means ``id(new) > id(bound_j)``, in
    ``upper`` ``id(bound_j) > id(new)`` — exactly the scalar predicates
    of :mod:`repro.core.restrictions`, evaluated for every pair at once.
    """
    mask = np.ones(len(cand), dtype=bool)
    for j in lower:
        mask &= cand > front[owner, j]
    for j in upper:
        mask &= cand < front[owner, j]
    return mask


def _encode_columns(cols: list[np.ndarray]) -> np.ndarray | None:
    """Pack parallel int columns into one int64 key, or ``None`` on
    overflow risk (callers then skip the dedup, never miscount)."""
    key = cols[0].astype(np.int64, copy=True)
    span = int(key.max()) + 1 if len(key) else 1
    for col in cols[1:]:
        base = int(col.max()) + 1 if len(col) else 1
        if span > (2**62) // max(base, 1):
            return None
        key *= base
        key += col
        span *= base
    return key


class _CandidateSource:
    """Per-frontier-row candidate pools in keyed-CSR form.

    Uniform view over the two places candidates come from:

    * the graph itself (*virtual*: ``indptr``/``values``/``keys`` are
      the CSR arrays and ``row_map`` holds the pivot column's vertices;
      ``post_deps`` lists the dependencies still to be mask-checked);
    * a materialised scratch CSR (auxiliary pruning: one pruned row per
      distinct prefix, ``row_map`` maps frontier rows onto pool rows,
      ``covers`` are already intersected in, ``post_deps`` is empty).

    ``keys[i] = row_id * n + values[i]`` is globally sorted either way,
    so per-row restriction windows resolve with two ``searchsorted``
    calls regardless of the source kind.
    """

    __slots__ = ("indptr", "values", "keys", "row_map", "covers", "post_deps", "materialised")

    def __init__(self, indptr, values, keys, row_map, covers, post_deps, materialised):
        self.indptr = indptr
        self.values = values
        self.keys = keys
        self.row_map = row_map
        self.covers = covers
        self.post_deps = post_deps
        self.materialised = materialised

    def aligned(self, owner: np.ndarray) -> "_CandidateSource":
        """The same pool re-aligned to an extended frontier (row ``i`` of
        the new frontier descends from old row ``owner[i]``)."""
        return _CandidateSource(
            self.indptr,
            self.values,
            self.keys,
            self.row_map[owner],
            self.covers,
            self.post_deps,
            self.materialised,
        )


class FrontierEngine:
    """Executes one IEP-free plan against one graph, breadth-first.

    The vectorised counterpart of :class:`repro.core.engine.Engine`
    (and, via ``lpattern``/``induced``, of the labeled and induced
    engines): same plan, same counts, but each loop depth is one bulk
    array operation over the whole frontier instead of a recursive call
    per partial embedding.

    Parameters
    ----------
    graph:
        A :class:`~repro.graph.csr.Graph`, or a
        :class:`~repro.graph.labeled.LabeledGraph` when ``lpattern`` is
        given.
    aux:
        Auxiliary-graph pruning: ``"auto"`` (cost-gated, default),
        ``True`` (always materialise/chain when structurally possible)
        or ``False`` (pure direct path — the pre-pruning engine).
    lpattern:
        A :class:`~repro.pattern.labeled.LabeledPattern` switching the
        engine to labeled semantics (roots and every depth filtered to
        the pattern's labels).
    induced:
        Vertex-induced semantics: anti-edge masks against every
        non-adjacent bound column (cannot be combined with
        ``lpattern``).
    """

    def __init__(
        self,
        graph: Graph | LabeledGraph,
        plan: ExecutionPlan,
        *,
        root_chunk: int = DEFAULT_ROOT_CHUNK,
        aux: "bool | str" = "auto",
        lpattern=None,
        induced: bool = False,
    ):
        if plan.iep_k > 0:
            raise ValueError(
                "the frontier engine requires an IEP-free plan (iep_k=0); "
                "plan with use_iep=False or fall back to the interpreter"
            )
        if any(not plan.deps[d] for d in range(1, plan.n)):
            raise ValueError(
                "the frontier engine requires a connected-prefix schedule "
                "(every depth past the first needs a dependency to pivot on)"
            )
        if root_chunk < 1:
            raise ValueError("root_chunk must be >= 1")
        if aux not in (True, False, "auto"):
            raise ValueError('aux must be True, False or "auto"')
        if induced and lpattern is not None:
            raise ValueError("labeled induced matching is not supported")
        if lpattern is not None:
            if not isinstance(graph, LabeledGraph):
                raise TypeError("labeled execution needs a LabeledGraph")
            self._labels = graph.labels
            graph = graph.graph
        else:
            if isinstance(graph, LabeledGraph):
                graph = graph.graph
            self._labels = None
        self.graph = graph
        self.plan = plan
        self.root_chunk = root_chunk
        self.aux = aux
        self._induced = induced
        self._n = graph.n_vertices
        self._edge_keys = _graph_edge_keys(graph)
        self._degrees = graph.degrees
        self._dstats = degree_statistics(graph)
        schedule = plan.config.schedule
        if lpattern is not None:
            self._depth_labels = tuple(lpattern.labels[v] for v in schedule)
        else:
            self._depth_labels = None
        if induced:
            pattern = plan.config.pattern
            self._antideps = tuple(
                tuple(j for j in range(d) if not pattern.has_edge(v, schedule[j]))
                for d, v in enumerate(schedule)
            )
        else:
            self._antideps = None

    # ------------------------------------------------------------------
    # bounded candidate ranges (the bulk form of ``bounded_slice``)
    # ------------------------------------------------------------------
    def _bounds(
        self, front: np.ndarray, depth: int
    ) -> tuple[np.ndarray | None, np.ndarray | None]:
        """Per-row restriction window ``(lo, hi)`` for the new vertex.

        A candidate must exceed every ``lower`` column's value and stay
        below every ``upper`` column's — for integers that collapses to
        the open interval ``(max lowers, min uppers)`` per frontier row,
        exactly what the interpreter's ``bounded_slice`` resolves.
        """
        plan = self.plan
        lower, upper = plan.lower[depth], plan.upper[depth]
        lo = front[:, lower].max(axis=1) if lower else None
        hi = front[:, upper].min(axis=1) if upper else None
        return lo, hi

    def _ranges(
        self, values: np.ndarray, lo: np.ndarray | None, hi: np.ndarray | None
    ) -> tuple[np.ndarray, np.ndarray]:
        """``(starts, counts)`` of each vertex's CSR row clipped to (lo, hi).

        Because the edge keys ``u * n + v`` are globally sorted, the
        binary search for "first neighbour of ``values[i]`` above
        ``lo[i]``" runs for the whole frontier in one ``searchsorted``
        — restriction pruning happens *before* the gather, so excluded
        candidates are never materialised (the paper's ``break``, bulk).
        """
        indptr, n = self.graph.indptr, self._n
        keyed = values * n
        starts = (
            indptr[values]
            if lo is None
            else np.searchsorted(self._edge_keys, keyed + lo, side="right")
        )
        ends = (
            indptr[values + 1]
            if hi is None
            else np.searchsorted(self._edge_keys, keyed + hi, side="left")
        )
        return starts, np.maximum(ends - starts, 0)

    def _window_ranges(
        self, src: _CandidateSource, lo: np.ndarray | None, hi: np.ndarray | None
    ) -> tuple[np.ndarray, np.ndarray]:
        """:meth:`_ranges` generalised to any candidate source: the same
        keyed binary search works because scratch keys share the
        ``row_id * n + value`` layout of the edge keys."""
        row = src.row_map
        keyed = row * self._n
        starts = (
            src.indptr[row]
            if lo is None
            else np.searchsorted(src.keys, keyed + lo, side="right")
        )
        ends = (
            src.indptr[row + 1]
            if hi is None
            else np.searchsorted(src.keys, keyed + hi, side="left")
        )
        return starts, np.maximum(ends - starts, 0)

    def _pivot_ranges(
        self, front: np.ndarray, deps, lo, hi
    ) -> tuple[int, np.ndarray, np.ndarray]:
        """The dependency column whose bounded ranges expand to the
        fewest pairs, with those ranges; the other dependencies become
        per-pair membership filters (one binary search each)."""
        best = None
        for j in deps:
            starts, counts = self._ranges(front[:, j], lo, hi)
            total = int(counts.sum())
            if best is None or total < best[0]:
                best = (total, j, starts, counts)
        return best[1], best[2], best[3]

    # ------------------------------------------------------------------
    # auxiliary candidate sources (GraphMini-style pruning)
    # ------------------------------------------------------------------
    def _chain_source(
        self, front: np.ndarray, depth: int, prev: _CandidateSource | None
    ) -> _CandidateSource | None:
        """Chain a previously materialised pool into this depth.

        Applicable when the pool's ``covers`` is a subset of this
        depth's dependencies: the new candidate rows are the old pool
        rows intersected with the residual neighbourhoods — never the
        full CSR rows.  With no residual the pool is reused as-is
        (free); otherwise distinct ``(pool row, residual values)``
        groups are refined once and shared.
        """
        if prev is None or self.aux is False:
            return None
        deps = self.plan.deps[depth]
        if len(deps) < 2 or not set(prev.covers) <= set(deps):
            return None
        resid = tuple(j for j in deps if j not in prev.covers)
        if not resid:
            return prev
        if self.aux == "auto" and not self._chain_pays(front, deps, prev, resid):
            return None
        resid_cols = [front[:, j] for j in resid]
        key = _encode_columns([prev.row_map] + resid_cols)
        if key is None:
            reps = np.arange(len(front), dtype=np.int64)
            inverse = reps
        else:
            _, reps, inverse = np.unique(key, return_index=True, return_inverse=True)
        indptr, values, keys = refine_scratch_rows(
            prev.indptr,
            prev.values,
            prev.row_map[reps],
            self._edge_keys,
            np.column_stack([front[reps, j] for j in resid]),
            self._n,
        )
        covers = tuple(sorted(set(prev.covers) | set(resid)))
        return _CandidateSource(indptr, values, keys, inverse, covers, (), True)

    def _chain_pays(self, front, deps, prev: _CandidateSource, resid) -> bool:
        """Chaining wins when refining the (already pruned) pool rows
        beats re-gathering a pivot's degree-sized rows: mean pool row x
        (1 gather + |resid| membership passes) vs. mean pivot row x
        (1 gather + |deps|-1 membership passes)."""
        rows = prev.row_map
        pool_mean = float((prev.indptr[rows + 1] - prev.indptr[rows]).mean())
        pivot_mean = min(float(self._degrees[front[:, j]].mean()) for j in deps)
        return pool_mean * (1 + len(resid)) <= pivot_mean * len(deps)

    def _group_source(
        self, front: np.ndarray, depth: int
    ) -> _CandidateSource | None:
        """Materialise one pruned row per distinct dependency-value group.

        Frontier rows that agree on all dependency columns share their
        candidate intersection exactly (restriction windows and
        injectivity masks still differ per row and are applied at use
        time).  Duplicates are generally *not* consecutive — e.g. a
        depth depending on columns {1, 2} repeats across every value of
        column 0 — so groups are found with ``np.unique`` over the
        packed dependency values, not run detection.
        """
        if self.aux is False:
            return None
        deps = self.plan.deps[depth]
        if len(deps) < 2:
            return None
        if self.aux == "auto" and len(front) < AUX_MIN_ROWS:
            return None
        key = _encode_columns([front[:, j] for j in deps])
        if key is None:
            return None
        _, reps, inverse = np.unique(key, return_index=True, return_inverse=True)
        n_groups, n_rows = len(reps), len(front)
        store_wanted = depth + 1 < self.plan.n and set(deps) <= set(
            self.plan.deps[depth + 1]
        )
        if self.aux == "auto":
            # A pool the next depth can chain from earns a relaxed gate,
            # but only when the dedup itself removes real duplicates —
            # a duplicate-free frontier (G == F) makes the unwindowed
            # build a pure loss however reusable the pool is.
            chain_pays = store_wanted and n_groups <= AUX_STORE_DEDUP * n_rows
            if not chain_pays:
                # The cost-model gate.  Per frontier row the direct path
                # gathers a pivot-degree-sized row and then runs a
                # membership probe over every gathered element for each
                # remaining dependency; the pool does that work once per
                # *group*, so each duplicate row saves the whole pass.
                # The pool's own extra costs are the dedup sort and the
                # per-row window-gather of a pre-intersected row, whose
                # expected size shrinks by p1 per extra dependency
                # (DegreeStats supplies p1; the pivot degree is measured
                # on the live frontier, which skews to hubs that the
                # global average badly understates).
                k = len(deps)
                pivot_mean = min(
                    float(self._degrees[front[:, j]].mean()) for j in deps
                )
                per_row = pivot_mean * (1.0 + AUX_CONTAINS_COST * (k - 1))
                pooled_row = max(pivot_mean * self._dstats.p1 ** (k - 1), 1.0)
                saved = (n_rows - n_groups) * per_row
                build = n_rows * pooled_row
                build += AUX_SORT_COST * n_rows * math.log2(max(n_rows, 2))
                if saved < build:
                    return None
        indptr, values, keys = bulk_intersect_rows(
            self.graph.indptr,
            self.graph.indices,
            self._edge_keys,
            front[np.ix_(reps, list(deps))],
            self._n,
        )
        return _CandidateSource(indptr, values, keys, inverse, tuple(deps), (), True)

    def _prepare(
        self, front: np.ndarray, depth: int, prev: _CandidateSource | None
    ) -> tuple[_CandidateSource, np.ndarray, np.ndarray]:
        """Choose this depth's candidate source and window it per row."""
        deps = self.plan.deps[depth]
        lo, hi = self._bounds(front, depth)
        src = self._chain_source(front, depth, prev)
        if src is None:
            src = self._group_source(front, depth)
        if src is not None:
            starts, counts = self._window_ranges(src, lo, hi)
            return src, starts, counts
        if len(deps) == 1:
            j = deps[0]
            src = _CandidateSource(
                self.graph.indptr,
                self.graph.indices,
                self._edge_keys,
                front[:, j],
                (j,),
                (),
                False,
            )
            starts, counts = self._window_ranges(src, lo, hi)
            return src, starts, counts
        pivot, starts, counts = self._pivot_ranges(front, deps, lo, hi)
        src = _CandidateSource(
            self.graph.indptr,
            self.graph.indices,
            self._edge_keys,
            front[:, pivot],
            (pivot,),
            tuple(j for j in deps if j != pivot),
            False,
        )
        return src, starts, counts

    # ------------------------------------------------------------------
    # frontier extension
    # ------------------------------------------------------------------
    def _extend(
        self, front: np.ndarray, depth: int, prev: _CandidateSource | None = None
    ) -> tuple[np.ndarray, np.ndarray, _CandidateSource]:
        """All valid ``(owner, candidate)`` extensions of ``front``.

        Owner-major with ascending candidates inside each owner — the
        same order the DFS interpreter visits, so frontiers (and
        therefore enumeration) stay in DFS order by induction, with or
        without an auxiliary source.  Returns the source used so the
        caller can carry a materialised pool into the next depth.
        """
        plan, n = self.plan, self._n
        deps = plan.deps[depth]
        src, starts, counts = self._prepare(front, depth, prev)
        owner, cand = gather_ranges(src.values, starts, counts)
        obs_metrics.FRONTIER_ROWS.inc(len(cand))
        obs_metrics.FRONTIER_SOURCES.labels(
            source="pool" if src.materialised else "csr"
        ).inc()
        mask = np.ones(len(cand), dtype=bool)
        if src.post_deps:
            obs_metrics.FRONTIER_INTERSECTIONS.labels(kernel="membership").inc(
                len(src.post_deps)
            )
        for j in src.post_deps:
            mask &= bulk_contains_sorted(self._edge_keys, front[owner, j] * n + cand)
        if self._induced:
            # Anti-edges: the candidate must be distinct from *and*
            # non-adjacent to every non-dependency bound vertex (the
            # adjacency mask alone does not exclude equality — there
            # are no self-loops).
            for j in self._antideps[depth]:
                mask &= cand != front[owner, j]
                mask &= ~bulk_contains_sorted(
                    self._edge_keys, front[owner, j] * n + cand
                )
        else:
            # Injectivity: adjacency already rules out the dependency
            # columns (no self-loops), only the non-adjacent bound
            # vertices remain.
            for j in range(depth):
                if j not in deps:
                    mask &= cand != front[owner, j]
        if self._labels is not None:
            mask &= self._labels[cand] == self._depth_labels[depth]
        return owner[mask], cand[mask], src

    # ------------------------------------------------------------------
    # the innermost loop: count without materialising
    # ------------------------------------------------------------------
    def _count_last(
        self, front: np.ndarray, depth: int, prev: _CandidateSource | None
    ) -> int:
        """Candidates surviving the innermost loop, summed over ``front``."""
        if len(front) == 0:
            return 0
        if self._labels is None and not self._induced:
            src = self._chain_source(front, depth, prev)
            if src is not None and not src.post_deps:
                return self._count_last_pooled(front, depth, src)
            return self._count_last_direct(front, depth)
        # Labeled/induced masks need the candidates materialised; the
        # arrays are small (label/anti filters prune hard) and the
        # extension pipeline already applies every mask.
        _, cand, _ = self._extend(front, depth, prev)
        return len(cand)

    def _count_last_pooled(
        self, front: np.ndarray, depth: int, src: _CandidateSource
    ) -> int:
        """Innermost count off a pool covering every dependency: the
        windowed counts come straight from the keyed binary search —
        no gather at all — minus the already-used corrections."""
        obs_metrics.FRONTIER_INTERSECTIONS.labels(kernel="pooled").inc()
        plan = self.plan
        lo, hi = self._bounds(front, depth)
        _, counts = self._window_ranges(src, lo, hi)
        total = int(counts.sum())
        rows = np.arange(len(front))
        deps = plan.deps[depth]
        for k in range(depth):
            if k in deps:
                continue
            used = front[:, k]
            hit = bulk_contains_sorted(src.keys, src.row_map * self._n + used)
            hit &= restriction_mask(
                front, rows, used, plan.lower[depth], plan.upper[depth]
            )
            total -= int(hit.sum())
        return total

    def _count_last_direct(self, front: np.ndarray, depth: int) -> int:
        """The direct-path innermost count, with one amortisation:
        consecutive frontier rows that agree on the dependency and bound
        columns (the frontier is DFS-sorted, so the innermost-varying
        column produces long such runs) share one candidate-set
        evaluation — count once, multiply by the run length, then
        subtract the per-row already-used corrections."""
        obs_metrics.FRONTIER_INTERSECTIONS.labels(kernel="direct").inc()
        plan = self.plan
        deps = plan.deps[depth]
        n = self._n
        lo, hi = self._bounds(front, depth)

        key_cols = [front[:, j] for j in deps]
        if lo is not None:
            key_cols.append(lo)
        if hi is not None:
            key_cols.append(hi)
        keys = np.column_stack(key_cols)
        change = np.empty(len(front), dtype=bool)
        change[0] = True
        np.any(keys[1:] != keys[:-1], axis=1, out=change[1:])
        reps = np.flatnonzero(change)
        run_len = np.diff(np.append(reps, len(front)))

        rep_front = front[reps]
        rep_lo = lo[reps] if lo is not None else None
        rep_hi = hi[reps] if hi is not None else None
        pivot, starts, counts = self._pivot_ranges(rep_front, deps, rep_lo, rep_hi)
        if len(deps) == 1:
            base = counts
        else:
            owner, cand = gather_ranges(self.graph.indices, starts, counts)
            mask = np.ones(len(cand), dtype=bool)
            for j in deps:
                if j != pivot:
                    mask &= bulk_contains_sorted(
                        self._edge_keys, rep_front[owner, j] * n + cand
                    )
            base = np.bincount(owner[mask], minlength=len(reps))
        total = int((base * run_len).sum())

        # Already-used vertices inside the candidate window would be
        # over-counted; dependency columns cannot occur (no self-loops).
        rows = np.arange(len(front))
        for k in range(depth):
            if k in deps:
                continue
            used = front[:, k]
            hit = np.ones(len(front), dtype=bool)
            for j in deps:
                hit &= bulk_contains_sorted(
                    self._edge_keys, front[:, j] * n + used
                )
            hit &= restriction_mask(
                front, rows, used, plan.lower[depth], plan.upper[depth]
            )
            total -= int(hit.sum())
        return total

    def _roots(self) -> np.ndarray:
        roots = self.graph.vertices()
        if self._labels is not None:
            roots = roots[self._labels[roots] == self._depth_labels[0]]
        return roots

    def _root_chunks(self, first: int | None = None) -> Iterator[np.ndarray]:
        """Sweep the root vertices in chunks of at most ``root_chunk``.

        ``first`` starts smaller and grows geometrically — enumeration
        with a small ``limit`` should not pay for a full chunk's
        frontier when the first few roots already satisfy it.
        """
        roots = self._roots()
        start, size = 0, min(first or self.root_chunk, self.root_chunk)
        while start < len(roots):
            yield roots[start : start + size]
            start += size
            size = min(size * 2, self.root_chunk)

    # ------------------------------------------------------------------
    # counting
    # ------------------------------------------------------------------
    def count(self) -> int:
        """Total number of embeddings under this plan (cf. ``Engine.count``)."""
        return self.count_roots(self.graph.vertices())

    def count_roots(self, roots) -> int:
        """Embeddings whose root (outermost loop) vertex lies in ``roots``.

        The per-task entry point of the distributed backend: a root-range
        task is one bulk frontier sweep, and summing ``count_roots`` over
        a partition of the vertex set equals :meth:`count` exactly.
        ``roots`` may be any 1-D sequence of vertex ids; it is swept in
        ``root_chunk``-sized batches like the full count.
        """
        plan = self.plan
        if plan.n > self._n:
            return 0
        roots = np.asarray(roots, dtype=np.int64)
        if self._labels is not None:
            roots = roots[self._labels[roots] == self._depth_labels[0]]
        if plan.n == 1:
            return len(roots)
        total = 0
        for start in range(0, len(roots), self.root_chunk):
            front = roots[start : start + self.root_chunk, None]
            prev: _CandidateSource | None = None
            for depth in range(1, plan.n):
                if depth == plan.n - 1:
                    with span("depth", depth=depth, last=True) as sp:
                        c = self._count_last(front, depth, prev)
                        sp.set(rows=len(front), count=c)
                    total += c
                    break
                with span("depth", depth=depth) as sp:
                    owner, cand, src = self._extend(front, depth, prev)
                    sp.set(
                        rows=len(front),
                        kept=len(cand),
                        source="pool" if src.materialised else "csr",
                    )
                if len(cand) == 0:
                    break
                front = np.concatenate([front[owner], cand[:, None]], axis=1)
                prev = src.aligned(owner) if src.materialised else None
        return total

    # ------------------------------------------------------------------
    # enumeration
    # ------------------------------------------------------------------
    def enumerate_embeddings(self, limit: int | None = None) -> Iterator[tuple[int, ...]]:
        """Yield embeddings as tuples indexed by pattern vertex.

        Chunked root processing keeps this lazy: only one chunk's
        frontier is ever alive, and with a ``limit`` the sweep starts
        from a small chunk (growing geometrically), so a
        ``limit=5`` call touches a handful of roots, not the graph.
        """
        plan = self.plan
        if plan.n > self._n:
            return
        schedule = plan.config.schedule
        inverse = [0] * len(schedule)
        for pos, v in enumerate(schedule):
            inverse[v] = pos
        remaining = float("inf") if limit is None else limit
        for roots in self._root_chunks(first=64 if limit is not None else None):
            front = roots[:, None]
            prev: _CandidateSource | None = None
            for depth in range(1, plan.n):
                owner, cand, src = self._extend(front, depth, prev)
                if len(cand) == 0:
                    front = front[:0]
                    break
                front = np.concatenate([front[owner], cand[:, None]], axis=1)
                prev = src.aligned(owner) if src.materialised else None
            for row in front:
                if remaining <= 0:
                    return
                remaining -= 1
                yield tuple(int(row[inverse[v]]) for v in range(len(schedule)))

    def frontier_blocks(self) -> Iterator[np.ndarray]:
        """Yield fully-extended frontier blocks, one per root chunk.

        Each block is an ``(n_embeddings, plan.n)`` int64 array whose
        column ``d`` holds the data vertex bound at schedule position
        ``d`` — the raw material of skeleton-sharing reduction
        (:mod:`repro.core.reduction`), which classifies whole blocks
        against directed arc constraints without ever materialising
        per-embedding tuples.  Requires an IEP-free plan (enforced at
        construction).
        """
        plan = self.plan
        if plan.n > self._n:
            return
        for roots in self._root_chunks():
            front = roots[:, None]
            prev: _CandidateSource | None = None
            for depth in range(1, plan.n):
                owner, cand, src = self._extend(front, depth, prev)
                if len(cand) == 0:
                    front = front[:0]
                    break
                front = np.concatenate([front[owner], cand[:, None]], axis=1)
                prev = src.aligned(owner) if src.materialised else None
            if len(front):
                yield front


# ---------------------------------------------------------------------------
# directed frontiers
# ---------------------------------------------------------------------------
#: per-digraph (out_keys, in_keys) sorted key arrays, weakly keyed for
#: the same lifetime reasons as ``_EDGE_KEY_CACHE``.
_DIGRAPH_KEY_CACHE: "weakref.WeakKeyDictionary[DiGraph, tuple[np.ndarray, np.ndarray]]" = (
    weakref.WeakKeyDictionary()
)


def _digraph_edge_keys(graph: DiGraph) -> tuple[np.ndarray, np.ndarray]:
    """Sorted ``u * n + v`` key arrays over the out- and in-CSR.

    Each key array is built over its *own* CSR's rows, so both
    directions answer with the same probe shape: ``c`` is a successor
    of ``x`` iff ``x * n + c`` is in ``out_keys``, and a predecessor
    iff it is in ``in_keys``.
    """
    keys = _DIGRAPH_KEY_CACHE.get(graph)
    if keys is None:
        keys = (
            sorted_edge_keys(graph.out_indptr, graph.out_indices),
            sorted_edge_keys(graph.in_indptr, graph.in_indices),
        )
        _DIGRAPH_KEY_CACHE[graph] = keys
    return keys


class _DepRef:
    """One adjacency constraint at a depth: the new vertex must lie in
    the CSR row (out or in) of the value bound at frontier column
    ``col``.  An antiparallel pattern pair produces two refs on the
    same column, one per direction."""

    __slots__ = ("col", "indptr", "indices", "keys")

    def __init__(self, col, indptr, indices, keys):
        self.col = col
        self.indptr = indptr
        self.indices = indices
        self.keys = keys


class DirectedFrontierEngine:
    """Bulk frontier execution of one IEP-free :class:`DirectedPlan`.

    The directed counterpart of :class:`FrontierEngine` and the
    vectorised counterpart of
    :class:`repro.core.directed.DirectedEngine`: same plan, same
    counts, one bulk array operation per loop depth.  Candidates at
    depth ``d`` come from the out-CSR rows of the ``out_deps[d]``
    columns and the in-CSR rows of the ``in_deps[d]`` columns; the
    restriction machinery (per-row windows via keyed binary search) is
    unchanged from the undirected engine because restrictions only
    compare vertex ids, never directions.
    """

    def __init__(
        self,
        graph: DiGraph,
        plan: DirectedPlan,
        *,
        root_chunk: int = DEFAULT_ROOT_CHUNK,
    ):
        if plan.iep_k > 0:
            raise ValueError(
                "the frontier engine requires an IEP-free plan (iep_k=0); "
                "plan with use_iep=False or fall back to the interpreter"
            )
        if any(
            not (plan.out_deps[d] or plan.in_deps[d]) for d in range(1, plan.n)
        ):
            raise ValueError(
                "the frontier engine requires a connected-prefix schedule "
                "(every depth past the first needs a dependency to pivot on)"
            )
        if root_chunk < 1:
            raise ValueError("root_chunk must be >= 1")
        self.graph = graph
        self.plan = plan
        self.root_chunk = root_chunk
        self._n = graph.n_vertices
        out_keys, in_keys = _digraph_edge_keys(graph)
        refs: list[tuple[_DepRef, ...]] = []
        dep_cols: list[frozenset[int]] = []
        for d in range(plan.n):
            refs.append(
                tuple(
                    _DepRef(j, graph.out_indptr, graph.out_indices, out_keys)
                    for j in plan.out_deps[d]
                )
                + tuple(
                    _DepRef(j, graph.in_indptr, graph.in_indices, in_keys)
                    for j in plan.in_deps[d]
                )
            )
            dep_cols.append(frozenset(plan.out_deps[d]) | frozenset(plan.in_deps[d]))
        self._refs = tuple(refs)
        self._dep_cols = tuple(dep_cols)

    def _bounds(
        self, front: np.ndarray, depth: int
    ) -> tuple[np.ndarray | None, np.ndarray | None]:
        """Per-row restriction window, exactly :meth:`FrontierEngine._bounds`."""
        plan = self.plan
        lower, upper = plan.lower[depth], plan.upper[depth]
        lo = front[:, lower].max(axis=1) if lower else None
        hi = front[:, upper].min(axis=1) if upper else None
        return lo, hi

    def _ref_ranges(
        self,
        ref: _DepRef,
        values: np.ndarray,
        lo: np.ndarray | None,
        hi: np.ndarray | None,
    ) -> tuple[np.ndarray, np.ndarray]:
        """``(starts, counts)`` of each value's row in ``ref``'s CSR,
        clipped to the per-row window by keyed binary search."""
        keyed = values * self._n
        starts = (
            ref.indptr[values]
            if lo is None
            else np.searchsorted(ref.keys, keyed + lo, side="right")
        )
        ends = (
            ref.indptr[values + 1]
            if hi is None
            else np.searchsorted(ref.keys, keyed + hi, side="left")
        )
        return starts, np.maximum(ends - starts, 0)

    def _extend(
        self, front: np.ndarray, depth: int
    ) -> tuple[np.ndarray, np.ndarray]:
        """All valid ``(owner, candidate)`` extensions of ``front``.

        The pivot is the dependency ref whose windowed rows expand to
        the fewest pairs (chosen by ref, not by column — an
        antiparallel column carries one ref per direction and both
        probes must run); the remaining refs become bulk membership
        filters against their own key arrays.
        """
        n = self._n
        refs = self._refs[depth]
        lo, hi = self._bounds(front, depth)
        best = None
        for i, ref in enumerate(refs):
            starts, counts = self._ref_ranges(ref, front[:, ref.col], lo, hi)
            total = int(counts.sum())
            if best is None or total < best[0]:
                best = (total, i, starts, counts)
        _, pivot_i, starts, counts = best
        owner, cand = gather_ranges(refs[pivot_i].indices, starts, counts)
        obs_metrics.FRONTIER_ROWS.inc(len(cand))
        if len(refs) > 1:
            obs_metrics.FRONTIER_INTERSECTIONS.labels(kernel="directed").inc(
                len(refs) - 1
            )
        mask = np.ones(len(cand), dtype=bool)
        for i, ref in enumerate(refs):
            if i == pivot_i:
                continue
            mask &= bulk_contains_sorted(ref.keys, front[owner, ref.col] * n + cand)
        # Injectivity: adjacency rules out the dependency columns (no
        # self-loops), only non-adjacent bound vertices remain.
        deps = self._dep_cols[depth]
        for j in range(depth):
            if j not in deps:
                mask &= cand != front[owner, j]
        return owner[mask], cand[mask]

    def _root_chunks(self, first: int | None = None) -> Iterator[np.ndarray]:
        roots = self.graph.vertices()
        start, size = 0, min(first or self.root_chunk, self.root_chunk)
        while start < len(roots):
            yield roots[start : start + size]
            start += size
            size = min(size * 2, self.root_chunk)

    def count(self) -> int:
        """Total embeddings under this plan (cf. ``DirectedEngine.count``)."""
        return self.count_roots(self.graph.vertices())

    def count_roots(self, roots) -> int:
        """Embeddings rooted in ``roots`` — the distributed task entry
        point, summing to :meth:`count` over any partition."""
        plan = self.plan
        if plan.n > self._n:
            return 0
        roots = np.asarray(roots, dtype=np.int64)
        if plan.n == 1:
            return len(roots)
        total = 0
        for start in range(0, len(roots), self.root_chunk):
            front = roots[start : start + self.root_chunk, None]
            for depth in range(1, plan.n):
                with span("depth", depth=depth) as sp:
                    owner, cand = self._extend(front, depth)
                    sp.set(rows=len(front), kept=len(cand))
                if depth == plan.n - 1:
                    total += len(cand)
                    break
                if len(cand) == 0:
                    break
                front = np.concatenate([front[owner], cand[:, None]], axis=1)
        return total

    def enumerate_embeddings(
        self, limit: int | None = None
    ) -> Iterator[tuple[int, ...]]:
        """Yield embeddings as tuples indexed by pattern vertex (lazy,
        chunked like :meth:`FrontierEngine.enumerate_embeddings`)."""
        plan = self.plan
        if plan.n > self._n:
            return
        schedule = plan.schedule
        inverse = [0] * len(schedule)
        for pos, v in enumerate(schedule):
            inverse[v] = pos
        remaining = float("inf") if limit is None else limit
        for roots in self._root_chunks(first=64 if limit is not None else None):
            front = roots[:, None]
            for depth in range(1, plan.n):
                owner, cand = self._extend(front, depth)
                if len(cand) == 0:
                    front = front[:0]
                    break
                front = np.concatenate([front[owner], cand[:, None]], axis=1)
            for row in front:
                if remaining <= 0:
                    return
                remaining -= 1
                yield tuple(int(row[inverse[v]]) for v in range(len(schedule)))


# ---------------------------------------------------------------------------
# the registered backend
# ---------------------------------------------------------------------------
# Imported at the bottom of repro.core.backend so registration happens
# whenever the registry itself is imported; importing this module first
# works too (the registry import below is cycle-free by then).
from repro.core.backend import (  # noqa: E402
    BackendCapabilities,
    ExecutionBackend,
    MatchContext,
    register_backend,
)

#: the matching modes the undirected frontier pipeline executes directly.
_FRONTIER_MODES = frozenset({"plain", "induced", "labeled"})


def frontier_engine_for(
    ctx: MatchContext,
    *,
    root_chunk: int = DEFAULT_ROOT_CHUNK,
    aux: "bool | str" = "auto",
) -> "FrontierEngine | DirectedFrontierEngine":
    """Build the right frontier engine for a match context.

    The one place that knows which engine class serves which mode —
    shared by :class:`VectorisedBackend` and the distributed task
    counter (:func:`repro.runtime.distributed.make_task_counter`), so a
    new frontier-served mode lights up everywhere at once.
    """
    if ctx.mode == "directed":
        return DirectedFrontierEngine(ctx.graph, ctx.plan, root_chunk=root_chunk)
    return FrontierEngine(
        ctx.graph,
        ctx.plan,
        root_chunk=root_chunk,
        aux=aux,
        lpattern=ctx.lpattern if ctx.mode == "labeled" else None,
        induced=ctx.mode == "induced",
    )


@register_backend
class VectorisedBackend(ExecutionBackend):
    """Bulk frontier execution over numpy arrays (IEP-free plans).

    Constructor options: ``root_chunk`` — root vertices per frontier
    sweep (peak-memory bound; default ``DEFAULT_ROOT_CHUNK``); ``aux``
    — auxiliary-graph pruning (``"auto"`` cost-gated default, ``True``
    forced, ``False`` disabled — the ablation knob).
    """

    name = "vectorised"
    supports_enumeration = True
    capabilities = BackendCapabilities(
        modes=frozenset(_FRONTIER_MODES | {"directed"}),
        iep=False,
        enumeration=True,
        traced=True,
    )

    def __init__(
        self, *, root_chunk: int = DEFAULT_ROOT_CHUNK, aux: "bool | str" = "auto"
    ):
        self.root_chunk = root_chunk
        self.aux = aux

    def supports(self, ctx: MatchContext) -> bool:
        if ctx.mode == "directed":
            return (
                isinstance(ctx.plan, DirectedPlan)
                and ctx.plan.iep_k == 0
                and all(
                    ctx.plan.out_deps[d] or ctx.plan.in_deps[d]
                    for d in range(1, ctx.plan.n)
                )
            )
        return (
            ctx.mode in _FRONTIER_MODES
            and isinstance(ctx.plan, ExecutionPlan)
            and ctx.plan.iep_k == 0
            and all(ctx.plan.deps[d] for d in range(1, ctx.plan.n))
        )

    def _engine(self, ctx: MatchContext) -> "FrontierEngine | DirectedFrontierEngine":
        return frontier_engine_for(ctx, root_chunk=self.root_chunk, aux=self.aux)

    def count(self, ctx: MatchContext) -> int:
        self._require(ctx)
        return self._engine(ctx).count()

    def enumerate_embeddings(self, ctx, limit=None):
        self._require(ctx)
        return self._engine(ctx).enumerate_embeddings(limit=limit)
