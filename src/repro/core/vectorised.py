"""The vectorised frontier backend: bulk extension of whole candidate sets.

Every other single-process backend in this repository expands candidates
one partial embedding at a time — the nested-loop DFS of
:mod:`repro.core.engine` and the generated code of
:mod:`repro.core.codegen` both pay Python interpreter overhead per
embedding.  Set-centric systems (GraphMini, Peregrine's pattern-aware
exploration) avoid that by operating on whole candidate sets at once;
this module brings the same execution style to GraphPi's planned
schedules and restrictions:

* the partial embeddings at loop depth ``d`` are one 2-D ``numpy`` array
  (the *frontier*, shape ``(n_partial, d)``, one row per embedding);
* extending the frontier to depth ``d + 1`` is a handful of whole-array
  operations: clip each row's CSR neighbour range to its restriction
  window by binary-searching the sorted edge keys, gather the clipped
  pivot ranges (:func:`~repro.graph.intersection.gather_ranges`), and
  intersect against the remaining bound neighbourhoods with batched
  binary search over those same keys
  (:func:`~repro.graph.intersection.bulk_contains_sorted`) — GraphPi's
  restriction inequalities ``id(u) > id(v)`` are thereby enforced
  *before* the gather, and :func:`restriction_mask` re-applies them as
  vectorised boolean masks where candidates are re-examined;
* the innermost loop never materialises: its surviving candidates are
  simply counted, the bulk form of the interpreter's last-loop shortcut.

The semantics are exactly the interpreter's — same plans, same
restriction placement, same counts — only the iteration strategy
changes, so the cross-backend equivalence suite pins this backend
against the same brute-force oracle as every other.

What it deliberately does **not** cover (the automatic interpreter
fallback in :func:`~repro.core.backend.select_backend` handles these):

* plans compiled with an IEP suffix (``iep_k > 0``) — IEP evaluates
  per-prefix counting formulas that do not vectorise across a frontier;
  the session layer plans IEP-free when this backend is preferred, so
  the fallback only triggers for explicitly requested IEP plans;
* labeled / induced / directed contexts — different engine families;
* schedules with a disconnected prefix (no dependency to pivot on; the
  phase-1 generator never emits these).

Frontiers grow multiplicatively with depth, so :class:`FrontierEngine`
bounds peak memory by processing the root vertices in chunks
(``root_chunk``): each chunk runs through the whole loop nest before the
next starts, which also keeps enumeration lazy and in the interpreter's
DFS order.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Iterator, Sequence

import numpy as np

from repro.core.config import ExecutionPlan
from repro.graph.csr import Graph
from repro.graph.intersection import (
    bulk_contains_sorted,
    gather_ranges,
    sorted_edge_keys,
)

#: default number of root vertices processed per frontier sweep.
DEFAULT_ROOT_CHUNK = 32768


@lru_cache(maxsize=8)
def _graph_edge_keys(graph: Graph) -> np.ndarray:
    """The graph's sorted edge-key array, computed once per graph.

    Graphs are immutable, so the keys can be shared by every engine the
    backend builds — repeated cached-plan executions (a motif census, a
    service draining requests) must not pay the O(E) rebuild per call.
    The small LRU mirrors the session registry's retention policy.
    """
    return sorted_edge_keys(graph.indptr, graph.indices)


def restriction_mask(
    front: np.ndarray,
    owner: np.ndarray,
    cand: np.ndarray,
    lower: Sequence[int],
    upper: Sequence[int],
) -> np.ndarray:
    """Vectorised GraphPi restriction predicate for one extension step.

    ``front`` is the depth-``d`` frontier, ``(owner, cand)`` the proposed
    extension pairs (``cand[i]`` extends row ``front[owner[i]]``), and
    ``lower``/``upper`` the plan's restriction columns at the new depth:
    a column ``j`` in ``lower`` means ``id(new) > id(bound_j)``, in
    ``upper`` ``id(bound_j) > id(new)`` — exactly the scalar predicates
    of :mod:`repro.core.restrictions`, evaluated for every pair at once.
    """
    mask = np.ones(len(cand), dtype=bool)
    for j in lower:
        mask &= cand > front[owner, j]
    for j in upper:
        mask &= cand < front[owner, j]
    return mask


class FrontierEngine:
    """Executes one IEP-free plan against one graph, breadth-first.

    The vectorised counterpart of :class:`repro.core.engine.Engine`:
    same plan, same counts, but each loop depth is one bulk array
    operation over the whole frontier instead of a recursive call per
    partial embedding.
    """

    def __init__(
        self, graph: Graph, plan: ExecutionPlan, *, root_chunk: int = DEFAULT_ROOT_CHUNK
    ):
        if plan.iep_k > 0:
            raise ValueError(
                "the frontier engine requires an IEP-free plan (iep_k=0); "
                "plan with use_iep=False or fall back to the interpreter"
            )
        if any(not plan.deps[d] for d in range(1, plan.n)):
            raise ValueError(
                "the frontier engine requires a connected-prefix schedule "
                "(every depth past the first needs a dependency to pivot on)"
            )
        if root_chunk < 1:
            raise ValueError("root_chunk must be >= 1")
        self.graph = graph
        self.plan = plan
        self.root_chunk = root_chunk
        self._edge_keys = _graph_edge_keys(graph)

    # ------------------------------------------------------------------
    # bounded candidate ranges (the bulk form of ``bounded_slice``)
    # ------------------------------------------------------------------
    def _bounds(
        self, front: np.ndarray, depth: int
    ) -> tuple[np.ndarray | None, np.ndarray | None]:
        """Per-row restriction window ``(lo, hi)`` for the new vertex.

        A candidate must exceed every ``lower`` column's value and stay
        below every ``upper`` column's — for integers that collapses to
        the open interval ``(max lowers, min uppers)`` per frontier row,
        exactly what the interpreter's ``bounded_slice`` resolves.
        """
        plan = self.plan
        lower, upper = plan.lower[depth], plan.upper[depth]
        lo = front[:, lower].max(axis=1) if lower else None
        hi = front[:, upper].min(axis=1) if upper else None
        return lo, hi

    def _ranges(
        self, values: np.ndarray, lo: np.ndarray | None, hi: np.ndarray | None
    ) -> tuple[np.ndarray, np.ndarray]:
        """``(starts, counts)`` of each vertex's CSR row clipped to (lo, hi).

        Because the edge keys ``u * n + v`` are globally sorted, the
        binary search for "first neighbour of ``values[i]`` above
        ``lo[i]``" runs for the whole frontier in one ``searchsorted``
        — restriction pruning happens *before* the gather, so excluded
        candidates are never materialised (the paper's ``break``, bulk).
        """
        indptr, n = self.graph.indptr, self.graph.n_vertices
        keyed = values * n
        starts = (
            indptr[values]
            if lo is None
            else np.searchsorted(self._edge_keys, keyed + lo, side="right")
        )
        ends = (
            indptr[values + 1]
            if hi is None
            else np.searchsorted(self._edge_keys, keyed + hi, side="left")
        )
        return starts, np.maximum(ends - starts, 0)

    def _pivot_ranges(
        self, front: np.ndarray, deps, lo, hi
    ) -> tuple[int, np.ndarray, np.ndarray]:
        """The dependency column whose bounded ranges expand to the
        fewest pairs, with those ranges; the other dependencies become
        per-pair membership filters (one binary search each)."""
        best = None
        for j in deps:
            starts, counts = self._ranges(front[:, j], lo, hi)
            total = int(counts.sum())
            if best is None or total < best[0]:
                best = (total, j, starts, counts)
        return best[1], best[2], best[3]

    # ------------------------------------------------------------------
    # frontier extension
    # ------------------------------------------------------------------
    def _extend(self, front: np.ndarray, depth: int) -> tuple[np.ndarray, np.ndarray]:
        """All valid ``(owner, candidate)`` extensions of ``front``.

        Owner-major with ascending candidates inside each owner — the
        same order the DFS interpreter visits, so frontiers (and
        therefore enumeration) stay in DFS order by induction.
        """
        plan, graph = self.plan, self.graph
        deps = plan.deps[depth]
        lo, hi = self._bounds(front, depth)
        pivot, starts, counts = self._pivot_ranges(front, deps, lo, hi)
        owner, cand = gather_ranges(graph.indices, starts, counts)
        n = graph.n_vertices
        mask = np.ones(len(cand), dtype=bool)
        for j in deps:
            if j != pivot:
                mask &= bulk_contains_sorted(
                    self._edge_keys, front[owner, j] * n + cand
                )
        # Injectivity: adjacency already rules out the dependency columns
        # (no self-loops), only the non-adjacent bound vertices remain.
        for j in range(depth):
            if j not in deps:
                mask &= cand != front[owner, j]
        return owner[mask], cand[mask]

    # ------------------------------------------------------------------
    # the innermost loop: count without materialising
    # ------------------------------------------------------------------
    def _count_last(self, front: np.ndarray, depth: int) -> int:
        """Candidates surviving the innermost loop, summed over ``front``.

        The bulk form of the interpreter's last-loop shortcut, with one
        extra amortisation: consecutive frontier rows that agree on the
        dependency and bound columns (the frontier is DFS-sorted, so the
        innermost-varying column produces long such runs) share one
        candidate-set evaluation — count once, multiply by the run
        length, then subtract the per-row already-used corrections.
        """
        plan = self.plan
        deps = plan.deps[depth]
        n = self.graph.n_vertices
        lo, hi = self._bounds(front, depth)

        if len(front) == 0:
            return 0

        key_cols = [front[:, j] for j in deps]
        if lo is not None:
            key_cols.append(lo)
        if hi is not None:
            key_cols.append(hi)
        keys = np.column_stack(key_cols)
        change = np.empty(len(front), dtype=bool)
        change[0] = True
        np.any(keys[1:] != keys[:-1], axis=1, out=change[1:])
        reps = np.flatnonzero(change)
        run_len = np.diff(np.append(reps, len(front)))

        rep_front = front[reps]
        rep_lo = lo[reps] if lo is not None else None
        rep_hi = hi[reps] if hi is not None else None
        pivot, starts, counts = self._pivot_ranges(rep_front, deps, rep_lo, rep_hi)
        if len(deps) == 1:
            base = counts
        else:
            owner, cand = gather_ranges(self.graph.indices, starts, counts)
            mask = np.ones(len(cand), dtype=bool)
            for j in deps:
                if j != pivot:
                    mask &= bulk_contains_sorted(
                        self._edge_keys, rep_front[owner, j] * n + cand
                    )
            base = np.bincount(owner[mask], minlength=len(reps))
        total = int((base * run_len).sum())

        # Already-used vertices inside the candidate window would be
        # over-counted; dependency columns cannot occur (no self-loops).
        rows = np.arange(len(front))
        for k in range(depth):
            if k in deps:
                continue
            used = front[:, k]
            hit = np.ones(len(front), dtype=bool)
            for j in deps:
                hit &= bulk_contains_sorted(
                    self._edge_keys, front[:, j] * n + used
                )
            hit &= restriction_mask(
                front, rows, used, plan.lower[depth], plan.upper[depth]
            )
            total -= int(hit.sum())
        return total

    def _root_chunks(self, first: int | None = None) -> Iterator[np.ndarray]:
        """Sweep the root vertices in chunks of at most ``root_chunk``.

        ``first`` starts smaller and grows geometrically — enumeration
        with a small ``limit`` should not pay for a full chunk's
        frontier when the first few roots already satisfy it.
        """
        roots = self.graph.vertices()
        start, size = 0, min(first or self.root_chunk, self.root_chunk)
        while start < len(roots):
            yield roots[start : start + size]
            start += size
            size = min(size * 2, self.root_chunk)

    # ------------------------------------------------------------------
    # counting
    # ------------------------------------------------------------------
    def count(self) -> int:
        """Total number of embeddings under this plan (cf. ``Engine.count``)."""
        return self.count_roots(self.graph.vertices())

    def count_roots(self, roots) -> int:
        """Embeddings whose root (outermost loop) vertex lies in ``roots``.

        The per-task entry point of the distributed backend: a root-range
        task is one bulk frontier sweep, and summing ``count_roots`` over
        a partition of the vertex set equals :meth:`count` exactly.
        ``roots`` may be any 1-D sequence of vertex ids; it is swept in
        ``root_chunk``-sized batches like the full count.
        """
        plan = self.plan
        if plan.n > self.graph.n_vertices:
            return 0
        roots = np.asarray(roots, dtype=np.int64)
        if plan.n == 1:
            return len(roots)
        total = 0
        for start in range(0, len(roots), self.root_chunk):
            front = roots[start : start + self.root_chunk, None]
            for depth in range(1, plan.n):
                if depth == plan.n - 1:
                    total += self._count_last(front, depth)
                    break
                owner, cand = self._extend(front, depth)
                if len(cand) == 0:
                    break
                front = np.concatenate([front[owner], cand[:, None]], axis=1)
        return total

    # ------------------------------------------------------------------
    # enumeration
    # ------------------------------------------------------------------
    def enumerate_embeddings(self, limit: int | None = None) -> Iterator[tuple[int, ...]]:
        """Yield embeddings as tuples indexed by pattern vertex.

        Chunked root processing keeps this lazy: only one chunk's
        frontier is ever alive, and with a ``limit`` the sweep starts
        from a small chunk (growing geometrically), so a
        ``limit=5`` call touches a handful of roots, not the graph.
        """
        plan = self.plan
        if plan.n > self.graph.n_vertices:
            return
        schedule = plan.config.schedule
        inverse = [0] * len(schedule)
        for pos, v in enumerate(schedule):
            inverse[v] = pos
        remaining = float("inf") if limit is None else limit
        for roots in self._root_chunks(first=64 if limit is not None else None):
            front = roots[:, None]
            for depth in range(1, plan.n):
                owner, cand = self._extend(front, depth)
                if len(cand) == 0:
                    front = front[:0]
                    break
                front = np.concatenate([front[owner], cand[:, None]], axis=1)
            for row in front:
                if remaining <= 0:
                    return
                remaining -= 1
                yield tuple(int(row[inverse[v]]) for v in range(len(schedule)))


# ---------------------------------------------------------------------------
# the registered backend
# ---------------------------------------------------------------------------
# Imported at the bottom of repro.core.backend so registration happens
# whenever the registry itself is imported; importing this module first
# works too (the registry import below is cycle-free by then).
from repro.core.backend import (  # noqa: E402
    BackendCapabilities,
    ExecutionBackend,
    MatchContext,
    register_backend,
)


@register_backend
class VectorisedBackend(ExecutionBackend):
    """Bulk frontier execution over numpy arrays (plain, IEP-free plans).

    Constructor options: ``root_chunk`` — root vertices per frontier
    sweep (peak-memory bound; default ``DEFAULT_ROOT_CHUNK``).
    """

    name = "vectorised"
    supports_enumeration = True
    capabilities = BackendCapabilities(
        modes=frozenset({"plain"}),
        iep=False,
        enumeration=True,
    )

    def __init__(self, *, root_chunk: int = DEFAULT_ROOT_CHUNK):
        self.root_chunk = root_chunk

    def supports(self, ctx: MatchContext) -> bool:
        return (
            ctx.mode == "plain"
            and isinstance(ctx.plan, ExecutionPlan)
            and ctx.plan.iep_k == 0
            and all(ctx.plan.deps[d] for d in range(1, ctx.plan.n))
        )

    def _engine(self, ctx: MatchContext) -> FrontierEngine:
        return FrontierEngine(ctx.graph, ctx.plan, root_chunk=self.root_chunk)

    def count(self, ctx: MatchContext) -> int:
        self._require(ctx)
        return self._engine(ctx).count()

    def enumerate_embeddings(self, ctx, limit=None):
        self._require(ctx)
        return self._engine(ctx).enumerate_embeddings(limit=limit)
